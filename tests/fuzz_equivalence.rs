//! Randomized end-to-end properties:
//!
//! 1. **SIMT equivalence** — a parameterised kernel family produces exactly
//!    the host-oracle result for random shapes, with and without GPUShield
//!    (protection is functionally invisible).
//! 2. **Static-analysis soundness** — enabling check elision never changes
//!    which launches are aborted: a Type 1 classification may only remove
//!    checks the access could never fail.
//!
//! Seeded loops on the in-tree RNG (formerly proptest), gated behind
//! `--features proptest-tests`: each case derives from a fixed seed, so
//! failures reproduce exactly.
#![cfg(feature = "proptest-tests")]

use gpushield::{Arg, BcuConfig, DriverConfig, GpuConfig, System, SystemConfig};
use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use gpushield_runtime::rng::StdRng;
use std::sync::Arc;

fn tiny_cfg(shield: bool, static_analysis: bool) -> SystemConfig {
    SystemConfig {
        gpu: GpuConfig::test_tiny(),
        driver: DriverConfig {
            enable_shield: shield,
            enable_static_analysis: static_analysis,
            ..DriverConfig::default()
        },
        bcu: BcuConfig::default(),
        seed: 7,
    }
}

/// `out[tid] = f(in0[tid], …) if tid < n`, where `f` xors the inputs and
/// applies `alu` rounds of `x*A + B` — mirrored exactly by the host oracle.
fn streaming_like(inputs: usize, alu: usize, mul: i64, add: i64) -> Arc<Kernel> {
    let mut b = KernelBuilder::new("fuzz_stream");
    let ins: Vec<_> = (0..inputs)
        .map(|i| b.param_buffer(&format!("in{i}"), true))
        .collect();
    let out = b.param_buffer("out", false);
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let guard = b.lt(tid, n);
    b.if_then(guard, |b| {
        let off = b.shl(tid, Operand::Imm(2));
        let mut acc = b.mov(Operand::Imm(0));
        for p in &ins {
            let x = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(*p, off));
            acc = b.xor(acc, x);
        }
        for _ in 0..alu {
            let t = b.mul(acc, Operand::Imm(mul));
            acc = b.add(t, Operand::Imm(add));
        }
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), acc);
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

fn host_oracle(rows: &[Vec<u32>], alu: usize, mul: i64, add: i64, i: usize) -> u32 {
    let mut acc: u64 = 0;
    for r in rows {
        acc ^= u64::from(r[i]);
    }
    for _ in 0..alu {
        acc = acc.wrapping_mul(mul as u64).wrapping_add(add as u64);
    }
    acc as u32
}

#[test]
fn simt_matches_host_oracle_protected_and_not() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    for case in 0..8 {
        let inputs = rng.gen_range(1usize..4);
        let alu = rng.gen_range(0usize..6);
        let mul = rng.gen_range(3i64..99);
        let add = rng.gen_range(0i64..1000);
        let n = rng.gen_range(17u64..200);
        let rows: Vec<Vec<u32>> = (0..inputs)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect();
        let kernel = streaming_like(inputs, alu, mul, add);
        // The last workgroup is partial unless n is a multiple of 16.
        let grid = (n as u32).div_ceil(16);

        for shield in [false, true] {
            let mut sys = System::new(tiny_cfg(shield, true));
            let mut args = Vec::new();
            for r in &rows {
                let h = sys.alloc(n * 4).unwrap();
                for (i, v) in r.iter().enumerate() {
                    sys.write_buffer(h, i as u64 * 4, &v.to_le_bytes());
                }
                args.push(Arg::Buffer(h));
            }
            let out = sys.alloc(n * 4).unwrap();
            args.push(Arg::Buffer(out));
            args.push(Arg::Scalar(n));
            let r = sys.launch(kernel.clone(), grid, 16, &args).unwrap();
            assert!(
                r.completed(),
                "benign kernel aborted (case {case}, shield={shield})"
            );
            for i in 0..n as usize {
                let got = sys.read_uint(out, i as u64 * 4, 4) as u32;
                assert_eq!(
                    got,
                    host_oracle(&rows, alu, mul, add, i),
                    "case {case}, element {i} (shield={shield})"
                );
            }
        }
    }
}

/// `out[tid * stride] = tid` with random buffer sizing: sometimes safe,
/// sometimes overflowing. Static analysis must agree with the all-runtime
/// configuration about which launches abort.
#[test]
fn static_elision_never_changes_abort_behaviour() {
    let mut rng = StdRng::seed_from_u64(0xE2);
    for _ in 0..32 {
        let stride = rng.gen_range(1i64..8);
        let elems = rng.gen_range(8u64..256);
        let threads_pow = rng.gen_range(1u32..4);

        let mut b = KernelBuilder::new("fuzz_static");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let idx = b.mul(tid, Operand::Imm(stride));
        let off = b.shl(idx, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        let kernel = Arc::new(b.finish().unwrap());
        let grid = 1u32 << threads_pow; // 16 × grid threads

        let run = |static_on: bool| -> bool {
            let mut sys = System::new(tiny_cfg(true, static_on));
            let buf = sys.alloc(elems * 4).unwrap();
            let r = sys
                .launch(kernel.clone(), grid, 16, &[Arg::Buffer(buf)])
                .unwrap();
            r.completed()
        };
        let with_static = run(true);
        let without_static = run(false);
        assert_eq!(
            with_static, without_static,
            "static analysis changed detection (stride={stride}, elems={elems}, grid={grid})"
        );
        // Cross-check against ground truth: the launch is safe iff the
        // largest touched element fits.
        let max_index = (u64::from(grid) * 16 - 1) * stride as u64;
        assert_eq!(without_static, max_index < elems, "runtime check oracle");
    }
}
