//! Workload-suite integration: metadata sanity for every benchmark and
//! full simulated runs (baseline + protected) for a fast representative
//! subset, asserting zero false positives.

use gpushield::SystemConfig;
use gpushield_bench::SystemHost;
use gpushield_workloads::{all, by_name, fig19_set, opencl_set, rcache_sensitive_set};

#[test]
fn every_workload_has_consistent_metadata() {
    for w in all() {
        let p = w.probe();
        assert!(p.launches > 0, "{}", w.name());
        assert!(!p.kernel_names.is_empty(), "{}", w.name());
        assert!(p.total_threads > 0, "{}", w.name());
        // The paper's programming-model limit (§2.1).
        assert!(p.max_buffers_per_kernel <= 128, "{}", w.name());
    }
}

#[test]
fn named_figure_sets_resolve() {
    assert_eq!(rcache_sensitive_set().len(), 17);
    assert_eq!(opencl_set().len(), 17);
    assert_eq!(fig19_set().len(), 9);
}

fn run_both(name: &str) {
    let w = by_name(name).unwrap_or_else(|| panic!("workload {name}"));
    let mut base = SystemHost::new(SystemConfig::nvidia_baseline());
    w.run(&mut base);
    assert!(!base.any_abort(), "{name} aborted on baseline");
    let base_cycles = base.total_cycles();

    let mut prot = SystemHost::new(SystemConfig::nvidia_protected());
    w.run(&mut prot);
    assert!(!prot.any_abort(), "{name}: false positive under GPUShield");
    let ratio = prot.total_cycles() as f64 / base_cycles as f64;
    assert!(
        ratio < 1.05,
        "{name}: default-config overhead {ratio} exceeds the paper's bound"
    );
}

#[test]
fn vectoradd_runs_clean_on_both_systems() {
    run_both("vectoradd");
}

#[test]
fn histogram_runs_clean_on_both_systems() {
    run_both("Histogram");
}

#[test]
fn sensitive_interleaved_workload_runs_clean() {
    run_both("Dxtc");
}

#[test]
fn graph_workload_runs_clean() {
    run_both("trianglecount");
}

#[test]
fn local_memory_workload_runs_clean() {
    run_both("myocyte");
}

#[test]
fn opencl_workload_runs_on_intel() {
    // A graph workload: indirect accesses guarantee runtime checks even
    // with static analysis enabled.
    let w = by_name("ocl:bfs").unwrap();
    let mut host = SystemHost::new(SystemConfig::intel_protected());
    w.run(&mut host);
    assert!(!host.any_abort(), "ocl:bfs false positive on Intel");
    assert!(host.system().bcu_stats().checks > 0);
}
