//! Randomized property tests on the system's core invariants.
//!
//! Formerly proptest-based; now seeded loops over the in-tree
//! `gpushield_runtime::rng` so the default build resolves offline. Gated
//! behind `--features proptest-tests` to keep plain `cargo test` fast:
//! every case is derived from a fixed seed, so failures reproduce exactly.
#![cfg(feature = "proptest-tests")]

use gpushield_driver::{decrypt_id, encrypt_id, BoundsEntry};
use gpushield_isa::{PtrClass, TaggedPtr};
use gpushield_mem::coalesce::warp_address_range;
use gpushield_mem::{coalesce_warp, AllocPolicy, VirtualMemorySpace, TRANSACTION_BYTES};
use gpushield_runtime::rng::StdRng;

const CASES: usize = 256;

/// The 14-bit ID cipher is a bijection for every key.
#[test]
fn cipher_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xC1);
    for _ in 0..CASES {
        let id = rng.gen_range(0u16..(1 << 14));
        let key: u64 = rng.gen();
        let ct = encrypt_id(id, key);
        assert!(ct < (1 << 14));
        assert_eq!(decrypt_id(ct, key), id, "id={id:#x} key={key:#x}");
    }
}

/// Distinct IDs stay distinct after encryption (injectivity spot check).
#[test]
fn cipher_is_injective() {
    let mut rng = StdRng::seed_from_u64(0xC2);
    for _ in 0..CASES {
        let a = rng.gen_range(0u16..(1 << 14));
        let b = rng.gen_range(0u16..(1 << 14));
        if a == b {
            continue;
        }
        let key: u64 = rng.gen();
        assert_ne!(
            encrypt_id(a, key),
            encrypt_id(b, key),
            "a={a} b={b} key={key:#x}"
        );
    }
}

/// Tagged-pointer fields survive a round trip for all inputs.
#[test]
fn tagged_pointer_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xC3);
    for _ in 0..CASES {
        let va = rng.gen_range(0u64..(1 << 48));
        let id = rng.gen_range(0u16..(1 << 14));
        let p = TaggedPtr::with_region_id(va, id);
        assert_eq!(p.class(), PtrClass::Region);
        assert_eq!(p.va(), va);
        assert_eq!(p.info(), id);
    }
}

/// Pointer arithmetic below the tag bits preserves class and info.
#[test]
fn pointer_arithmetic_preserves_tag() {
    let mut rng = StdRng::seed_from_u64(0xC4);
    for _ in 0..CASES {
        let va = rng.gen_range(0u64..(1u64 << 40));
        let id = rng.gen_range(0u16..(1 << 14));
        let delta = rng.gen_range(0u64..(1u64 << 30));
        let p = TaggedPtr::with_region_id(va, id);
        let q = TaggedPtr::from_raw(p.raw().wrapping_add(delta));
        assert_eq!(q.class(), PtrClass::Region);
        assert_eq!(q.info(), id);
        assert_eq!(q.va(), va + delta);
    }
}

/// Coalescing covers every active lane and produces unique, sorted,
/// aligned transactions.
#[test]
fn coalescer_covers_and_partitions() {
    let mut rng = StdRng::seed_from_u64(0xC5);
    for _ in 0..CASES {
        let lanes = rng.gen_range(1usize..33);
        let addrs: Vec<Option<u64>> = (0..lanes)
            .map(|_| rng.gen_bool(0.75).then(|| rng.gen_range(0u64..(1 << 20))))
            .collect();
        let width = [1u64, 2, 4, 8][rng.gen_range(0usize..4)];
        let txs = coalesce_warp(&addrs, width);
        // Unique and sorted.
        for w in txs.windows(2) {
            assert!(w[0].base < w[1].base);
        }
        for t in &txs {
            assert_eq!(t.base % TRANSACTION_BYTES, 0);
        }
        // Coverage: every byte of every active access is in some tx.
        for a in addrs.iter().flatten() {
            for byte in *a..(*a + width) {
                assert!(
                    txs.iter().any(|t| t.contains(byte)),
                    "byte {byte} uncovered"
                );
            }
        }
        // The gathered range bounds every lane address.
        if let Some((lo, hi)) = warp_address_range(&addrs, width) {
            for a in addrs.iter().flatten() {
                assert!(*a >= lo && *a + width <= hi);
            }
        }
    }
}

/// Device allocations never overlap, regardless of the size sequence and
/// policy mix.
#[test]
fn allocations_never_overlap() {
    let mut rng = StdRng::seed_from_u64(0xC6);
    for _ in 0..CASES / 2 {
        let mut vm = VirtualMemorySpace::new();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for _ in 0..rng.gen_range(1usize..40) {
            let size = rng.gen_range(1u64..10_000);
            let policy = match rng.gen_range(0u8..3) {
                0 => AllocPolicy::Device512,
                1 => AllocPolicy::PowerOfTwo,
                _ => AllocPolicy::Isolated,
            };
            let a = vm.alloc(size, policy).unwrap();
            assert!(a.reserved >= a.size);
            for (lo, hi) in &ranges {
                assert!(
                    a.reserved_end() <= *lo || a.va >= *hi,
                    "overlap: [{}, {}) vs [{}, {})",
                    a.va,
                    a.reserved_end(),
                    lo,
                    hi
                );
            }
            ranges.push((a.va, a.reserved_end()));
        }
    }
}

/// Functional memory is a memory: the last write wins, other bytes are
/// untouched.
#[test]
fn memory_reads_see_last_write() {
    let mut rng = StdRng::seed_from_u64(0xC7);
    for _ in 0..CASES / 2 {
        let mut vm = VirtualMemorySpace::new();
        let a = vm.alloc(8192, AllocPolicy::Device512).unwrap();
        let mut model = std::collections::HashMap::new();
        for _ in 0..rng.gen_range(1usize..50) {
            let off = rng.gen_range(0u64..4000) & !3; // aligned words
            let val: u32 = rng.gen();
            vm.write_uint(a.va + off, 4, u64::from(val)).unwrap();
            model.insert(off, val);
        }
        for (off, val) in model {
            assert_eq!(vm.read_uint(a.va + off, 4).unwrap(), u64::from(val));
        }
    }
}

/// The RBT bounds comparison agrees with a direct range oracle.
#[test]
fn bounds_entry_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC8);
    for _ in 0..CASES {
        let base = rng.gen_range(0u64..(1 << 30));
        let size = rng.gen_range(1u32..(1 << 20));
        let lo = rng.gen_range(0u64..(1 << 31));
        let len = rng.gen_range(1u64..4096);
        let e = BoundsEntry {
            valid: true,
            readonly: false,
            kernel_id: 1,
            base,
            size,
        };
        let hi = lo + len;
        let oracle = lo >= base && hi <= base + u64::from(size);
        assert_eq!(
            e.in_bounds(lo, hi),
            oracle,
            "[{lo}, {hi}) vs base={base} size={size}"
        );
    }
}

/// RBT entries round-trip through their packed encoding.
#[test]
fn rbt_encoding_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xC9);
    for _ in 0..CASES {
        let e = BoundsEntry {
            valid: rng.gen(),
            readonly: rng.gen(),
            kernel_id: rng.gen_range(0u16..(1 << 12)),
            base: rng.gen_range(0u64..(1 << 48)),
            size: rng.gen(),
        };
        assert_eq!(BoundsEntry::decode(e.encode()), e);
    }
}

/// Interval arithmetic soundness: the abstract result of an operation
/// contains every concrete result of members of the inputs.
mod interval_soundness {
    use gpushield_compiler::Interval;
    use gpushield_runtime::rng::StdRng;

    fn small_interval(rng: &mut StdRng) -> (Interval, Vec<i128>) {
        let lo = i128::from(rng.gen_range(-1000i64..1000));
        let w = i128::from(rng.gen_range(0i64..50));
        let iv = Interval::range(lo, lo + w);
        let samples = vec![lo, lo + w / 2, lo + w];
        (iv, samples)
    }

    #[test]
    fn add_sub_mul_are_sound() {
        let mut rng = StdRng::seed_from_u64(0xD1);
        for _ in 0..super::CASES {
            let (a, xa) = small_interval(&mut rng);
            let (b, xb) = small_interval(&mut rng);
            for &x in &xa {
                for &y in &xb {
                    assert!(a.add(&b).contains(x + y));
                    assert!(a.sub(&b).contains(x - y));
                    assert!(a.mul(&b).contains(x * y));
                    assert!(a.min_(&b).contains(x.min(y)));
                    assert!(a.max_(&b).contains(x.max(y)));
                }
            }
        }
    }

    #[test]
    fn bit_ops_are_sound() {
        let mut rng = StdRng::seed_from_u64(0xD2);
        for _ in 0..super::CASES {
            let (a, xa) = small_interval(&mut rng);
            let mask = i128::from(rng.gen_range(0i64..4096));
            let shift = i128::from(rng.gen_range(0i64..8));
            let m = Interval::constant(mask);
            let s = Interval::constant(shift);
            for &x in &xa {
                assert!(a.and(&m).contains(x & mask));
                if x >= 0 {
                    assert!(a.or_xor(&m).contains(x | mask) || a.lo() < 0);
                    assert!(a.shr(&s).contains(x >> shift) || a.lo() < 0);
                }
                assert!(a.shl(&s).contains(x << shift));
                if mask > 0 {
                    assert!(a.rem(&Interval::constant(mask)).contains(x % mask));
                    assert!(a.div(&Interval::constant(mask)).contains(x / mask));
                }
            }
        }
    }

    #[test]
    fn union_and_widen_grow() {
        let mut rng = StdRng::seed_from_u64(0xD3);
        for _ in 0..super::CASES {
            let (a, xa) = small_interval(&mut rng);
            let (b, xb) = small_interval(&mut rng);
            let u = a.union(&b);
            for &x in xa.iter().chain(&xb) {
                assert!(u.contains(x));
            }
            let w = a.widen(&u);
            for &x in xa.iter().chain(&xb) {
                assert!(w.contains(x));
            }
        }
    }
}
