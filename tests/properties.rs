//! Property-based tests on the system's core invariants (proptest).

use gpushield_driver::{decrypt_id, encrypt_id, BoundsEntry};
use gpushield_isa::{PtrClass, TaggedPtr};
use gpushield_mem::coalesce::warp_address_range;
use gpushield_mem::{coalesce_warp, AllocPolicy, VirtualMemorySpace, TRANSACTION_BYTES};
use proptest::prelude::*;

proptest! {
    /// The 14-bit ID cipher is a bijection for every key.
    #[test]
    fn cipher_roundtrips(id in 0u16..(1 << 14), key in any::<u64>()) {
        let ct = encrypt_id(id, key);
        prop_assert!(ct < (1 << 14));
        prop_assert_eq!(decrypt_id(ct, key), id);
    }

    /// Distinct IDs stay distinct after encryption (injectivity spot check).
    #[test]
    fn cipher_is_injective(a in 0u16..(1 << 14), b in 0u16..(1 << 14), key in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(encrypt_id(a, key), encrypt_id(b, key));
    }

    /// Tagged-pointer fields survive a round trip for all inputs.
    #[test]
    fn tagged_pointer_roundtrips(va in 0u64..(1 << 48), id in 0u16..(1 << 14)) {
        let p = TaggedPtr::with_region_id(va, id);
        prop_assert_eq!(p.class(), PtrClass::Region);
        prop_assert_eq!(p.va(), va);
        prop_assert_eq!(p.info(), id);
    }

    /// Pointer arithmetic below the tag bits preserves class and info.
    #[test]
    fn pointer_arithmetic_preserves_tag(
        va in 0u64..(1u64 << 40),
        id in 0u16..(1 << 14),
        delta in 0u64..(1u64 << 30),
    ) {
        let p = TaggedPtr::with_region_id(va, id);
        let q = TaggedPtr::from_raw(p.raw().wrapping_add(delta));
        prop_assert_eq!(q.class(), PtrClass::Region);
        prop_assert_eq!(q.info(), id);
        prop_assert_eq!(q.va(), va + delta);
    }

    /// Coalescing covers every active lane and produces unique, sorted,
    /// aligned transactions.
    #[test]
    fn coalescer_covers_and_partitions(
        addrs in proptest::collection::vec(
            proptest::option::of(0u64..(1 << 20)), 1..33),
        width in prop_oneof![Just(1u64), Just(2), Just(4), Just(8)],
    ) {
        let txs = coalesce_warp(&addrs, width);
        // Unique and sorted.
        for w in txs.windows(2) {
            prop_assert!(w[0].base < w[1].base);
        }
        for t in &txs {
            prop_assert_eq!(t.base % TRANSACTION_BYTES, 0);
        }
        // Coverage: every byte of every active access is in some tx.
        for a in addrs.iter().flatten() {
            for byte in *a..(*a + width) {
                prop_assert!(
                    txs.iter().any(|t| t.contains(byte)),
                    "byte {byte} uncovered"
                );
            }
        }
        // The gathered range bounds every lane address.
        if let Some((lo, hi)) = warp_address_range(&addrs, width) {
            for a in addrs.iter().flatten() {
                prop_assert!(*a >= lo && *a + width <= hi);
            }
        }
    }

    /// Device allocations never overlap, regardless of the size sequence
    /// and policy mix.
    #[test]
    fn allocations_never_overlap(
        sizes in proptest::collection::vec((1u64..10_000, 0u8..3), 1..40)
    ) {
        let mut vm = VirtualMemorySpace::new();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for (size, pol) in sizes {
            let policy = match pol {
                0 => AllocPolicy::Device512,
                1 => AllocPolicy::PowerOfTwo,
                _ => AllocPolicy::Isolated,
            };
            let a = vm.alloc(size, policy).unwrap();
            prop_assert!(a.reserved >= a.size);
            for (lo, hi) in &ranges {
                prop_assert!(
                    a.reserved_end() <= *lo || a.va >= *hi,
                    "overlap: [{}, {}) vs [{}, {})", a.va, a.reserved_end(), lo, hi
                );
            }
            ranges.push((a.va, a.reserved_end()));
        }
    }

    /// Functional memory is a memory: the last write wins, other bytes are
    /// untouched.
    #[test]
    fn memory_reads_see_last_write(
        writes in proptest::collection::vec((0u64..4000, any::<u32>()), 1..50)
    ) {
        let mut vm = VirtualMemorySpace::new();
        let a = vm.alloc(8192, AllocPolicy::Device512).unwrap();
        let mut model = std::collections::HashMap::new();
        for (off, val) in &writes {
            let off = off & !3; // aligned words
            vm.write_uint(a.va + off, 4, u64::from(*val)).unwrap();
            model.insert(off, *val);
        }
        for (off, val) in model {
            prop_assert_eq!(vm.read_uint(a.va + off, 4).unwrap(), u64::from(val));
        }
    }

    /// The RBT bounds comparison agrees with a direct range oracle.
    #[test]
    fn bounds_entry_matches_oracle(
        base in 0u64..(1 << 30),
        size in 1u32..(1 << 20),
        lo in 0u64..(1 << 31),
        len in 1u64..4096,
    ) {
        let e = BoundsEntry {
            valid: true,
            readonly: false,
            kernel_id: 1,
            base,
            size,
        };
        let hi = lo + len;
        let oracle = lo >= base && hi <= base + u64::from(size);
        prop_assert_eq!(e.in_bounds(lo, hi), oracle);
    }

    /// RBT entries round-trip through their packed encoding.
    #[test]
    fn rbt_encoding_roundtrips(
        valid in any::<bool>(),
        readonly in any::<bool>(),
        kernel_id in 0u16..(1 << 12),
        base in 0u64..(1 << 48),
        size in any::<u32>(),
    ) {
        let e = BoundsEntry { valid, readonly, kernel_id, base, size };
        prop_assert_eq!(BoundsEntry::decode(e.encode()), e);
    }
}

/// Interval arithmetic soundness: the abstract result of an operation
/// contains every concrete result of members of the inputs.
mod interval_soundness {
    use gpushield_compiler::Interval;
    use proptest::prelude::*;

    fn small_interval() -> impl Strategy<Value = (Interval, Vec<i128>)> {
        (-1000i128..1000, 0i128..50).prop_map(|(lo, w)| {
            let iv = Interval::range(lo, lo + w);
            let samples = vec![lo, lo + w / 2, lo + w];
            (iv, samples)
        })
    }

    proptest! {
        #[test]
        fn add_sub_mul_are_sound(
            (a, xa) in small_interval(),
            (b, xb) in small_interval(),
        ) {
            for &x in &xa {
                for &y in &xb {
                    prop_assert!(a.add(&b).contains(x + y));
                    prop_assert!(a.sub(&b).contains(x - y));
                    prop_assert!(a.mul(&b).contains(x * y));
                    prop_assert!(a.min_(&b).contains(x.min(y)));
                    prop_assert!(a.max_(&b).contains(x.max(y)));
                }
            }
        }

        #[test]
        fn bit_ops_are_sound(
            (a, xa) in small_interval(),
            mask in 0i128..4096,
            shift in 0i128..8,
        ) {
            let m = Interval::constant(mask);
            let s = Interval::constant(shift);
            for &x in &xa {
                prop_assert!(a.and(&m).contains(x & mask));
                if x >= 0 {
                    prop_assert!(a.or_xor(&m).contains(x | mask) || a.lo() < 0);
                    prop_assert!(a.shr(&s).contains(x >> shift) || a.lo() < 0);
                }
                prop_assert!(a.shl(&s).contains(x << shift));
                if mask > 0 {
                    prop_assert!(a.rem(&Interval::constant(mask)).contains(x % mask));
                    prop_assert!(a.div(&Interval::constant(mask)).contains(x / mask));
                }
            }
        }

        #[test]
        fn union_and_widen_grow(
            (a, xa) in small_interval(),
            (b, xb) in small_interval(),
        ) {
            let u = a.union(&b);
            for &x in xa.iter().chain(&xb) {
                prop_assert!(u.contains(x));
            }
            let w = a.widen(&u);
            for &x in xa.iter().chain(&xb) {
                prop_assert!(w.contains(x));
            }
        }
    }
}
