//! Functional verification of real GPU algorithms against host oracles —
//! the strongest evidence the simulator's SIMT semantics (divergence,
//! barriers, atomics) and GPUShield's transparency are correct: every
//! algorithm runs fully protected and still computes exact answers.

use gpushield::{Arg, System, SystemConfig};
use gpushield_workloads::algos::{
    bfs_step_kernel, bitonic_step_kernel, histogram_atomic_kernel, scan_block_kernel,
    spmv_csr_kernel,
};
use gpushield_workloads::{random_u32s, uniform_csr, workload_rng};

fn upload_u32s(sys: &mut System, h: gpushield::BufferHandle, vals: &[u32]) {
    let mut bytes = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    sys.write_buffer(h, 0, &bytes);
}

fn read_u32s(sys: &System, h: gpushield::BufferHandle, n: usize) -> Vec<u32> {
    (0..n)
        .map(|i| sys.read_uint(h, i as u64 * 4, 4) as u32)
        .collect()
}

#[test]
fn bitonic_network_sorts_under_protection() {
    const N: u64 = 1024;
    let mut rng = workload_rng("bitonic-verify");
    let input = random_u32s(&mut rng, N as usize, 1 << 30);
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let data = sys.alloc(N * 4).unwrap();
    upload_u32s(&mut sys, data, &input);

    let kernel = bitonic_step_kernel();
    let mut k = 2u64;
    while k <= N {
        let mut j = k / 2;
        while j >= 1 {
            let r = sys
                .launch(
                    kernel.clone(),
                    (N / 256) as u32,
                    256,
                    &[
                        Arg::Buffer(data),
                        Arg::Scalar(N),
                        Arg::Scalar(j),
                        Arg::Scalar(k),
                    ],
                )
                .unwrap();
            assert!(r.completed(), "bitonic step k={k} j={j} aborted");
            j /= 2;
        }
        k *= 2;
    }

    let sorted = read_u32s(&sys, data, N as usize);
    let mut expect = input.clone();
    expect.sort_unstable();
    assert_eq!(sorted, expect, "network must produce a true sort");
}

#[test]
fn block_scan_matches_host_prefix_sums() {
    const BLOCK: u32 = 64;
    const N: u64 = 512; // 8 blocks
    let mut rng = workload_rng("scan-verify");
    let input = random_u32s(&mut rng, N as usize, 1000);
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let inb = sys.alloc(N * 4).unwrap();
    upload_u32s(&mut sys, inb, &input);
    let outb = sys.alloc(N * 4).unwrap();
    let sums = sys.alloc((N / u64::from(BLOCK)) * 4).unwrap();

    let r = sys
        .launch(
            scan_block_kernel(BLOCK),
            (N / u64::from(BLOCK)) as u32,
            BLOCK,
            &[
                Arg::Buffer(inb),
                Arg::Buffer(outb),
                Arg::Buffer(sums),
                Arg::Scalar(N),
            ],
        )
        .unwrap();
    assert!(r.completed());

    let out = read_u32s(&sys, outb, N as usize);
    let block_sums = read_u32s(&sys, sums, (N / u64::from(BLOCK)) as usize);
    for (blk, expected_total) in block_sums.iter().enumerate() {
        let mut acc = 0u32;
        for i in 0..BLOCK as usize {
            let idx = blk * BLOCK as usize + i;
            acc = acc.wrapping_add(input[idx]);
            assert_eq!(out[idx], acc, "inclusive scan at {idx}");
        }
        assert_eq!(*expected_total, acc, "block {blk} total");
    }
}

#[test]
fn bfs_levels_match_host_bfs() {
    const N: usize = 2048;
    let mut rng = workload_rng("bfs-verify");
    let g = uniform_csr(&mut rng, N, 4);

    // Host oracle.
    let mut expect = vec![u32::MAX; N];
    expect[0] = 0;
    let mut frontier = vec![0usize];
    let mut cur = 0u32;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for e in g.row[v] as usize..g.row[v + 1] as usize {
                let j = g.col[e] as usize;
                if expect[j] == u32::MAX {
                    expect[j] = cur + 1;
                    next.push(j);
                }
            }
        }
        frontier = next;
        cur += 1;
    }

    // Device run, fully protected.
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let row = sys.alloc(g.row.len() as u64 * 4).unwrap();
    upload_u32s(&mut sys, row, &g.row);
    let col = sys.alloc(g.col.len().max(1) as u64 * 4).unwrap();
    upload_u32s(&mut sys, col, &g.col);
    let level = sys.alloc(N as u64 * 4).unwrap();
    let mut init = vec![u32::MAX; N];
    init[0] = 0;
    upload_u32s(&mut sys, level, &init);
    let found = sys.alloc(4).unwrap();

    let kernel = bfs_step_kernel();
    for depth in 0..N as u64 {
        sys.write_buffer(found, 0, &0u32.to_le_bytes());
        let r = sys
            .launch(
                kernel.clone(),
                (N as u32).div_ceil(256),
                256,
                &[
                    Arg::Buffer(row),
                    Arg::Buffer(col),
                    Arg::Buffer(level),
                    Arg::Buffer(found),
                    Arg::Scalar(N as u64),
                    Arg::Scalar(depth),
                ],
            )
            .unwrap();
        assert!(r.completed(), "bfs level {depth} aborted");
        if sys.read_uint(found, 0, 4) == 0 {
            break;
        }
    }

    let levels = read_u32s(&sys, level, N);
    assert_eq!(levels, expect, "device BFS must equal host BFS");
}

#[test]
fn spmv_matches_host_product() {
    const N: usize = 1024;
    let mut rng = workload_rng("spmv-verify");
    let g = uniform_csr(&mut rng, N, 6);
    let vals = random_u32s(&mut rng, g.edges(), 50);
    let xs = random_u32s(&mut rng, N, 50);

    let mut expect = vec![0u32; N];
    for (v, slot) in expect.iter_mut().enumerate() {
        let mut acc = 0u32;
        for e in g.row[v] as usize..g.row[v + 1] as usize {
            acc = acc.wrapping_add(vals[e].wrapping_mul(xs[g.col[e] as usize]));
        }
        *slot = acc;
    }

    let mut sys = System::new(SystemConfig::nvidia_protected());
    let row = sys.alloc(g.row.len() as u64 * 4).unwrap();
    upload_u32s(&mut sys, row, &g.row);
    let col = sys.alloc(g.col.len().max(1) as u64 * 4).unwrap();
    upload_u32s(&mut sys, col, &g.col);
    let val = sys.alloc(g.edges().max(1) as u64 * 4).unwrap();
    upload_u32s(&mut sys, val, &vals);
    let x = sys.alloc(N as u64 * 4).unwrap();
    upload_u32s(&mut sys, x, &xs);
    let y = sys.alloc(N as u64 * 4).unwrap();

    let r = sys
        .launch(
            spmv_csr_kernel(),
            (N as u32).div_ceil(256),
            256,
            &[
                Arg::Buffer(row),
                Arg::Buffer(col),
                Arg::Buffer(val),
                Arg::Buffer(x),
                Arg::Buffer(y),
                Arg::Scalar(N as u64),
            ],
        )
        .unwrap();
    assert!(r.completed());
    assert_eq!(read_u32s(&sys, y, N), expect);
}

#[test]
fn atomic_histogram_counts_exactly() {
    const N: usize = 8192;
    const BINS: usize = 32;
    let mut rng = workload_rng("hist-verify");
    let data = random_u32s(&mut rng, N, u32::MAX);

    let mut expect = vec![0u32; BINS];
    for v in &data {
        expect[(*v as usize) % BINS] += 1;
    }

    let mut sys = System::new(SystemConfig::nvidia_protected());
    let d = sys.alloc(N as u64 * 4).unwrap();
    upload_u32s(&mut sys, d, &data);
    let hist = sys.alloc(BINS as u64 * 4).unwrap();
    let r = sys
        .launch(
            histogram_atomic_kernel(BINS as i64),
            (N as u32).div_ceil(256),
            256,
            &[Arg::Buffer(d), Arg::Buffer(hist), Arg::Scalar(N as u64)],
        )
        .unwrap();
    assert!(r.completed());
    let got = read_u32s(&sys, hist, BINS);
    assert_eq!(got, expect, "atomic increments must not lose updates");
    assert_eq!(got.iter().sum::<u32>() as usize, N);
}

#[test]
fn atomic_fetch_add_returns_unique_tickets() {
    // Every thread takes a ticket; tickets must be a permutation 0..n.
    use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};
    use std::sync::Arc;
    let mut b = KernelBuilder::new("tickets");
    let counter = b.param_buffer("counter", false);
    let out = b.param_buffer("out", false);
    let tid = b.global_thread_id();
    let zero = b.shl(Operand::Imm(0), Operand::Imm(0));
    let ticket = b.atom_add(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(counter, zero),
        Operand::Imm(1),
    );
    let off = b.shl(tid, Operand::Imm(2));
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(out, off),
        ticket,
    );
    b.ret();
    let k = Arc::new(b.finish().unwrap());

    const N: usize = 512;
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let counter = sys.alloc(64).unwrap();
    let out = sys.alloc(N as u64 * 4).unwrap();
    let r = sys
        .launch(
            k,
            (N as u32) / 128,
            128,
            &[Arg::Buffer(counter), Arg::Buffer(out)],
        )
        .unwrap();
    assert!(r.completed());
    let mut tickets = read_u32s(&sys, out, N);
    tickets.sort_unstable();
    let expect: Vec<u32> = (0..N as u32).collect();
    assert_eq!(tickets, expect, "atomics must serialize without loss");
    assert_eq!(sys.read_uint(counter, 0, 4), N as u64);
}
