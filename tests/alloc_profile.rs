//! Allocation profile of the simulator hot path.
//!
//! The workspace crates all `forbid(unsafe_code)`; the root integration
//! tests are the one place a counting `#[global_allocator]` can live. The
//! steady-state simulation loop (scheduling, ALU issue, the LSU/BCU
//! pipeline, address translation) is designed to be allocation-free:
//! decoded kernels are interned behind `Arc` and issued as `Copy`
//! instructions, the page table is a flat radix tree, and per-access lane
//! buffers live in per-core reusable scratch. What still allocates is
//! per-workgroup state (register files, shared memory) at dispatch — a
//! bounded, per-kilocycle-small amount this test pins.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn hot_path_allocations_per_kilocycle_stay_bounded() {
    use gpushield_bench::runner::{run_workload, Protection, Target};
    use gpushield_workloads::by_name;

    // The longest-running registry workload (~300k cycles), so per-run
    // setup (host, caches, buffers) amortises away and the measurement
    // reflects the steady-state loop.
    let w = by_name("streamcluster").expect("streamcluster registered");

    // Warm-up run: one-time lazies (workload construction, registry
    // strings) don't count against the steady state.
    let warm = run_workload(&w, Target::Nvidia, Protection::shield_lat(1, 3));
    assert!(warm.cycles > 0);

    let before = allocs();
    let r = run_workload(&w, Target::Nvidia, Protection::shield_lat(1, 3));
    let during = allocs() - before;

    let per_kilocycle = during as f64 * 1000.0 / r.cycles as f64;
    // Pre-rewrite this was dominated by per-instruction clones and
    // per-access lane vectors (thousands per kilocycle). Post-rewrite the
    // remaining ~110/kilocycle are per-launch setup and per-workgroup
    // dispatch (register files, SIMT stacks) across streamcluster's 150
    // small launches; a reintroduced per-access allocation lands at
    // 1000+/kilocycle, far above this bound.
    assert!(
        per_kilocycle < 150.0,
        "hot path regressed to {per_kilocycle:.1} allocations per kilocycle \
         ({during} allocations over {} cycles)",
        r.cycles
    );
}

/// The telemetry disabled path costs nothing: running through the
/// instrumented entry point with a [`Registry::disabled`] registry must
/// satisfy the same allocation bound as the plain hot-path run above —
/// registration returns `MetricId::NONE` without allocating and every
/// recording hook degenerates to one early-returning branch.
#[test]
fn disabled_telemetry_keeps_the_hot_path_allocation_free() {
    use gpushield::Registry;
    use gpushield_bench::adapter::SystemHost;
    use gpushield_bench::runner::{config, Protection, Target};
    use gpushield_workloads::by_name;

    let w = by_name("streamcluster").expect("streamcluster registered");
    let run = || {
        let mut host = SystemHost::new(config(Target::Nvidia, Protection::shield_lat(1, 3)));
        host.attach_registry(Registry::disabled());
        w.run(&mut host);
        host
    };

    // Warm-up run, as in the plain-path test.
    let warm = run();
    assert!(warm.total_cycles() > 0);

    let before = allocs();
    let mut host = run();
    let during = allocs() - before;

    let reg = host.take_registry().expect("registry attached");
    assert!(!reg.enabled());
    assert!(reg.is_empty(), "a disabled registry must register nothing");

    let cycles = host.total_cycles();
    let per_kilocycle = during as f64 * 1000.0 / cycles as f64;
    assert!(
        per_kilocycle < 150.0,
        "disabled-telemetry path regressed to {per_kilocycle:.1} allocations \
         per kilocycle ({during} allocations over {cycles} cycles)"
    );
}

/// Publishing into a disabled registry builds no label strings: the
/// `driver.*`, `driver.tenant.*`, and `driver.audit.*` surfaces all pass
/// their labels as lazy closures, so the disabled early-return fires
/// before any `format!` runs. Zero allocations, not just "few".
#[test]
fn disabled_registry_publish_builds_no_label_strings() {
    use gpushield::Registry;
    use gpushield_driver::{Driver, DriverConfig, TenantId, TenantTable};

    let driver = Driver::new(DriverConfig::default(), 7);
    let mut table = TenantTable::new(2);
    let _ = table.record_launch(TenantId(0), 1);
    let _ = table.note_probe(TenantId(1), true);

    let mut reg = Registry::disabled();
    // Warm-up: nothing to warm, but keep symmetry with the other tests.
    driver.publish_telemetry(&mut reg);
    table.publish_telemetry(&mut reg);

    let before = allocs();
    driver.publish_telemetry(&mut reg);
    table.publish_telemetry(&mut reg);
    table.audit().publish(&mut reg);
    let during = allocs() - before;

    assert!(reg.is_empty(), "a disabled registry must register nothing");
    assert_eq!(
        during, 0,
        "disabled-registry publish allocated {during} times: a label \
         string is being formatted eagerly"
    );
}
