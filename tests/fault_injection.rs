//! Fault-injection integration tests: the deterministic corruption harness
//! must produce byte-identical outcomes regardless of worker count, the
//! watchdog and heap-deadlock detectors must convert injected livelocks
//! into structured errors, and an empty plan must be indistinguishable
//! from a plain launch.

use gpushield::{
    Arg, DriverConfig, DriverError, FaultKind, FaultPlan, GpuConfig, RunError, System,
    SystemConfig, SystemError,
};
use gpushield_isa::{CmpOp, Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use gpushield_runtime::pool;
use std::sync::Arc;

fn shielded_config() -> SystemConfig {
    let mut cfg = SystemConfig::nvidia_protected();
    cfg.driver = DriverConfig {
        enable_static_analysis: false,
        ..cfg.driver
    };
    cfg
}

/// `out[tid] = tid` — the benign store workload.
fn store_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("fi_store");
    let out = b.param_buffer("out", false);
    let tid = b.global_thread_id();
    let off = b.shl(tid, Operand::Imm(2));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
    b.ret();
    Arc::new(b.finish().unwrap())
}

/// Spins while `flag[0] == 0`; with the flag left at zero this never
/// terminates on its own.
fn spin_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("fi_spin");
    let flag = b.param_buffer("flag", false);
    b.while_loop(
        |b| {
            let v = b.ld(
                MemSpace::Global,
                MemWidth::W4,
                b.base_offset(flag, Operand::Imm(0)),
            );
            Operand::Reg(b.cmp(CmpOp::Eq, v, Operand::Imm(0)))
        },
        |_| {},
    );
    b.ret();
    Arc::new(b.finish().unwrap())
}

/// One full injected run, summarised as a comparable string: the launch
/// outcome, the violation log, the injection log, and the output bytes.
fn injected_run_fingerprint(seed: u64) -> String {
    let mut sys = System::new(shielded_config());
    let buf = sys.alloc(128 * 4).expect("alloc");
    let plan = FaultPlan::generate(seed, &FaultKind::ALL, 3, 4);
    let outcome = sys.launch_with_faults(store_kernel(), 4, 32, &[Arg::Buffer(buf)], plan);
    let mut out = String::new();
    match outcome {
        Ok((report, injected)) => {
            out.push_str(&format!(
                "completed={} cycles={} injected={:?}\n",
                report.completed(),
                report.cycles,
                injected
            ));
        }
        Err(e) => out.push_str(&format!("error={e}\n")),
    }
    out.push_str(&format!("violations={:?}\n", sys.violations()));
    for i in 0..128 {
        out.push_str(&format!("{:x} ", sys.read_uint(buf, i * 4, 4)));
    }
    out
}

#[test]
fn same_seed_and_plan_give_identical_outcomes() {
    let a = injected_run_fingerprint(7);
    for _ in 0..3 {
        assert_eq!(a, injected_run_fingerprint(7));
    }
    assert_ne!(
        injected_run_fingerprint(7),
        injected_run_fingerprint(8),
        "different seeds should perturb different accesses"
    );
}

#[test]
fn outcomes_are_identical_across_worker_counts() {
    let seeds: Vec<u64> = (0..12).collect();
    let run = |workers: usize| -> Vec<String> {
        let tasks: Vec<_> = seeds
            .iter()
            .map(|&s| move || injected_run_fingerprint(s))
            .collect();
        pool::run_all(tasks, workers)
    };
    assert_eq!(run(1), run(8), "fan-out must not change any trial");
}

#[test]
fn watchdog_converts_livelock_into_cycle_budget_error() {
    let mut cfg = shielded_config();
    cfg.gpu = GpuConfig {
        max_cycles: 5_000,
        ..cfg.gpu
    };
    let mut sys = System::new(cfg);
    let flag = sys.alloc(64).expect("alloc");
    // flag[0] stays 0: the spin never exits without the watchdog.
    let err = sys
        .launch(spin_kernel(), 1, 32, &[Arg::Buffer(flag)])
        .expect_err("watchdog must fire");
    match err {
        SystemError::Run(RunError::CycleBudgetExceeded { cycle, budget }) => {
            assert_eq!(budget, 5_000);
            assert!(cycle >= budget, "terminated at cycle {cycle}");
        }
        other => panic!("expected CycleBudgetExceeded, got {other:?}"),
    }
}

#[test]
fn blocking_malloc_exhaustion_is_reported_as_heap_deadlock() {
    let mut cfg = shielded_config();
    cfg.gpu = GpuConfig {
        malloc_blocks_on_exhaustion: true,
        ..cfg.gpu
    };
    let mut sys = System::new(cfg);
    sys.set_heap_limit(256).unwrap();
    let mut b = KernelBuilder::new("fi_malloc");
    b.malloc(Operand::Imm(1024));
    b.ret();
    let kernel = Arc::new(b.finish().unwrap());
    let err = sys
        .launch(kernel, 1, 32, &[])
        .expect_err("exhausted blocking malloc must deadlock");
    assert!(
        matches!(err, SystemError::Run(RunError::HeapDeadlock { .. })),
        "expected HeapDeadlock, got {err:?}"
    );
}

#[test]
fn empty_plan_matches_a_plain_launch() {
    let run_plain = |with_faults: bool| -> (bool, u64, Vec<u64>) {
        let mut sys = System::new(shielded_config());
        let buf = sys.alloc(128 * 4).expect("alloc");
        let report = if with_faults {
            let (r, injected) = sys
                .launch_with_faults(
                    store_kernel(),
                    4,
                    32,
                    &[Arg::Buffer(buf)],
                    FaultPlan::empty(),
                )
                .expect("launch");
            assert!(injected.is_empty());
            r
        } else {
            sys.launch(store_kernel(), 4, 32, &[Arg::Buffer(buf)])
                .expect("launch")
        };
        let words = (0..128).map(|i| sys.read_uint(buf, i * 4, 4)).collect();
        (report.completed(), report.cycles, words)
    };
    assert_eq!(run_plain(false), run_plain(true));
}

#[test]
fn degenerate_launch_geometry_is_a_structured_error() {
    let mut sys = System::new(shielded_config());
    for (grid, block) in [(0, 32), (4, 0), (0, 0)] {
        let err = sys
            .launch(store_kernel(), grid, block, &[])
            .expect_err("degenerate geometry must be rejected");
        match err {
            SystemError::Driver(DriverError::DegenerateLaunch { grid: g, block: b }) => {
                assert_eq!((g, b), (grid, block));
            }
            other => panic!("expected DegenerateLaunch, got {other:?}"),
        }
        assert!(err.to_string().contains("degenerate launch geometry"));
    }
}
