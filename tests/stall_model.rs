//! End-to-end verification of the Fig. 12 stall-visibility rule through
//! the execution trace: which memory accesses pay a BCU bubble, and when.

use gpushield::{Arg, System, SystemConfig, Trace, TraceKind};
use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use std::sync::Arc;

/// A kernel that loads the same (L1-resident, single-transaction) line
/// repeatedly through a runtime-checked pointer: offset loaded from
/// memory so static analysis cannot elide the checks.
fn repeated_load_kernel(rounds: usize) -> Arc<Kernel> {
    let mut b = KernelBuilder::new("stall_probe");
    let buf = b.param_buffer("buf", false);
    let j = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(buf, Operand::Imm(0)),
    );
    let off = b.shl(j, Operand::Imm(2));
    let acc = b.mov(Operand::Imm(0));
    for _ in 0..rounds {
        let v = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(buf, off));
        let t = b.add(acc, v);
        b.assign(acc, t);
    }
    let out_off = b.shl(j, Operand::Imm(3));
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(buf, out_off),
        acc,
    );
    b.ret();
    Arc::new(b.finish().unwrap())
}

fn stalls_under(l1_lat: u64, l2_lat: u64) -> (u64, u64) {
    let mut cfg = SystemConfig::nvidia_protected();
    cfg.bcu.l1_latency = l1_lat;
    cfg.bcu.l2_latency = l2_lat;
    let mut sys = System::new(cfg);
    let buf = sys.alloc(4096).unwrap();
    let mut trace = Trace::new(4096);
    let r = sys
        .launch_traced(
            repeated_load_kernel(12),
            1,
            32,
            &[Arg::Buffer(buf)],
            &mut trace,
        )
        .unwrap();
    assert!(r.completed());
    let mut stalled = 0u64;
    let mut unstalled = 0u64;
    for e in trace.events() {
        if let TraceKind::Mem { stall, .. } = e.kind {
            if stall > 0 {
                stalled += 1;
            } else {
                unstalled += 1;
            }
        }
    }
    (stalled, unstalled)
}

#[test]
fn default_latencies_never_stall_l1_rcache_hits() {
    // L1 RCache hit path (1 cycle) is fully hidden by the 4-stage LSU
    // pipeline; only the very first accesses (RBT fetch) may show a stall.
    let (stalled, unstalled) = stalls_under(1, 3);
    assert!(unstalled >= 12, "warm accesses must be free");
    assert!(
        stalled <= 1,
        "at most the initial RBT fetch may be visible, got {stalled}"
    );
}

#[test]
fn two_cycle_l1_rcache_exposes_one_bubble_per_warm_access() {
    // With L1:2 the per-access path exceeds the overlap budget by one
    // cycle, so (nearly) every single-transaction L1D-hit access stalls.
    let (stalled, unstalled) = stalls_under(2, 5);
    assert!(
        stalled >= 10,
        "lengthened RCache must expose bubbles, got {stalled} stalled / {unstalled} free"
    );
}

#[test]
fn multi_transaction_accesses_hide_the_bubble() {
    // A strided access producing many transactions keeps the BCU hidden
    // even with slow RCaches (the Fig. 12 "all other cases" rule).
    let mut b = KernelBuilder::new("strided");
    let buf = b.param_buffer("buf", false);
    let j = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(buf, Operand::Imm(0)),
    );
    let tid = b.global_thread_id();
    // 128-byte stride: every lane its own transaction.
    let lane_off = b.mul(tid, Operand::Imm(128));
    let jo = b.shl(j, Operand::Imm(2));
    let off = b.add(lane_off, jo);
    let acc = b.mov(Operand::Imm(0));
    for _ in 0..6 {
        let v = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(buf, off));
        let t = b.add(acc, v);
        b.assign(acc, t);
    }
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(buf, jo), acc);
    b.ret();
    let k = Arc::new(b.finish().unwrap());

    let mut cfg = SystemConfig::nvidia_protected();
    cfg.bcu.l1_latency = 2;
    cfg.bcu.l2_latency = 5;
    let mut sys = System::new(cfg);
    let buf = sys.alloc(32 * 128 + 4096).unwrap();
    let mut trace = Trace::new(4096);
    let r = sys
        .launch_traced(k, 1, 32, &[Arg::Buffer(buf)], &mut trace)
        .unwrap();
    assert!(r.completed());
    for e in trace.events() {
        if let TraceKind::Mem {
            transactions,
            stall,
            ..
        } = e.kind
        {
            if transactions > 1 {
                assert_eq!(stall, 0, "multi-tx access must hide the BCU");
            }
        }
    }
    // And the strided loads really were multi-transaction.
    assert!(
        trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Mem { transactions, .. } if transactions > 8)),
        "expected heavily uncoalesced accesses in the trace"
    );
}
