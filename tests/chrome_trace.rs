//! Chrome Trace Event Format export: the JSON the `profile --trace` path
//! writes must be valid JSON carrying the viewer's required keys (`ph`,
//! `ts`, `pid`, `tid`, `name`) on every event.

use gpushield::{Arg, Registry, System, SystemConfig, Trace};
use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};
use gpushield_runtime::report::Json;
use std::sync::Arc;

fn iota() -> Arc<gpushield_isa::Kernel> {
    let mut b = KernelBuilder::new("iota");
    let out = b.param_buffer("out", false);
    let tid = b.global_thread_id();
    let off = b.shl(tid, Operand::Imm(2));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

#[test]
fn chrome_export_carries_required_keys_on_every_event() {
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let buf = sys.alloc(256 * 4).expect("alloc");
    let mut reg = Registry::new();
    let mut trace = Trace::new(4096);
    let report = sys
        .launch_instrumented(
            iota(),
            8,
            32,
            &[Arg::Buffer(buf)],
            &mut reg,
            Some(&mut trace),
        )
        .expect("launch");
    assert!(report.completed());
    assert!(!trace.events().is_empty(), "the run produced trace events");

    let mut chrome = trace.to_chrome();
    chrome.push_span("launch 0", "launch", 0, report.cycles, u32::MAX, 0);
    let rendered = chrome.render();

    let doc = Json::parse(&rendered).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), chrome.len());
    assert!(!events.is_empty());
    for (i, e) in events.iter().enumerate() {
        for key in ["ph", "ts", "pid", "tid", "name"] {
            assert!(
                e.get(key).is_some(),
                "event {i} is missing required key {key}"
            );
        }
        let ph = e.get("ph").and_then(Json::as_str).expect("ph is a string");
        assert!(
            ["X", "B", "E", "i"].contains(&ph),
            "event {i} has unexpected phase {ph}"
        );
        if ph == "X" {
            assert!(e.get("dur").is_some(), "complete event {i} needs dur");
        }
    }
    // The launch span rendered as a begin/end pair.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"launch 0"));
    let phases: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("launch 0"))
        .filter_map(|e| e.get("ph").and_then(Json::as_str))
        .collect();
    assert_eq!(phases, ["B", "E"]);
}

#[test]
fn instrumented_launch_populates_registry_and_trace_together() {
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let buf = sys.alloc(256 * 4).expect("alloc");
    let mut reg = Registry::new();
    let mut trace = Trace::new(64);
    let report = sys
        .launch_instrumented(
            iota(),
            8,
            32,
            &[Arg::Buffer(buf)],
            &mut reg,
            Some(&mut trace),
        )
        .expect("launch");
    assert!(report.completed());
    // Both feeds saw the same run.
    assert_eq!(
        reg.value("sim.launch.instructions"),
        Some(report.instructions())
    );
    assert_eq!(reg.value("sim.run.launches"), Some(1));
    // Driver metadata gauges arrived through the same entry point.
    assert_eq!(reg.value("driver.launches_prepared"), Some(1));
    assert!(reg.value("driver.rbt_allocs").unwrap_or(0) >= 1);
}
