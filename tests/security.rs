//! Security integration tests: every Table 1 "overflow possible" row is
//! demonstrated on the unprotected system and stopped by GPUShield, plus
//! the §6.1 attacks against GPUShield itself.

use gpushield::{Arg, System, SystemConfig, ViolationKind};
use gpushield_core::{Bcu, BcuConfig};
use gpushield_driver::{Driver, DriverConfig};
use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth, Operand, TaggedPtr};
use gpushield_sim::{Gpu, GpuConfig, MemGuard};
use std::sync::Arc;

fn oob_store_kernel(offset_elems: i64) -> Arc<Kernel> {
    let mut b = KernelBuilder::new("oob_store");
    let a = b.param_buffer("A", false);
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(a, Operand::Imm(offset_elems * 4)),
        Operand::Imm(0xBAD),
    );
    b.ret();
    Arc::new(b.finish().unwrap())
}

/// Stores through its pointer at an offset *loaded from memory*, which no
/// static analysis can prove — the access always takes the runtime path.
fn indirect_store_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("indirect_store");
    let a = b.param_buffer("A", false);
    let j = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(a, Operand::Imm(0)),
    );
    let off = b.shl(j, Operand::Imm(2));
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(a, off),
        Operand::Imm(0xBAD),
    );
    b.ret();
    Arc::new(b.finish().unwrap())
}

#[test]
fn global_overflow_silently_corrupts_without_shield() {
    let mut sys = System::new(SystemConfig::nvidia_baseline());
    let a = sys.alloc(64).unwrap();
    let victim = sys.alloc(64).unwrap();
    let r = sys
        .launch(oob_store_kernel(0x80), 1, 1, &[Arg::Buffer(a)])
        .unwrap();
    assert!(r.completed(), "unprotected GPU completes the overflow");
    assert_eq!(sys.read_uint(victim, 0, 4), 0xBAD, "victim corrupted");
}

#[test]
fn global_overflow_is_aborted_with_shield() {
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let a = sys.alloc(64).unwrap();
    let victim = sys.alloc(64).unwrap();
    let r = sys
        .launch(oob_store_kernel(0x80), 1, 1, &[Arg::Buffer(a)])
        .unwrap();
    assert!(!r.completed());
    assert_eq!(sys.read_uint(victim, 0, 4), 0, "victim intact");
    assert_eq!(sys.violations()[0].kind, ViolationKind::OutOfBounds);
    assert!(sys.violations()[0].is_store);
}

#[test]
fn oob_reads_are_also_detected() {
    // Canary tools cannot catch reads (§1); GPUShield can.
    let mut b = KernelBuilder::new("oob_read");
    let a = b.param_buffer("A", true);
    let out = b.param_buffer("out", false);
    let v = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(a, Operand::Imm(0x200)),
    );
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(out, Operand::Imm(0)),
        v,
    );
    b.ret();
    let k = Arc::new(b.finish().unwrap());
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let a = sys.alloc(64).unwrap();
    let out = sys.alloc(64).unwrap();
    let r = sys
        .launch(k, 1, 1, &[Arg::Buffer(a), Arg::Buffer(out)])
        .unwrap();
    assert!(!r.completed());
    assert!(!sys.violations()[0].is_store);
}

#[test]
fn non_adjacent_jump_over_canary_region_is_caught() {
    // A store that leaps far past any canary a canary-based tool would
    // place — region bounds catch it anyway.
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let a = sys.alloc(64).unwrap();
    let r = sys
        .launch(oob_store_kernel(0x4000), 1, 1, &[Arg::Buffer(a)])
        .unwrap();
    assert!(!r.completed());
}

#[test]
fn negative_offset_underflow_is_caught() {
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let _pad = sys.alloc(4096).unwrap();
    let a = sys.alloc(64).unwrap();
    let r = sys
        .launch(oob_store_kernel(-8), 1, 1, &[Arg::Buffer(a)])
        .unwrap();
    assert!(!r.completed(), "underflow below the base must fault");
}

#[test]
fn readonly_buffers_reject_stores() {
    let mut b = KernelBuilder::new("ro_store");
    let a = b.param_buffer("A", true); // declared read-only
                                       // Loaded offset: unprovable, so the runtime check (which owns
                                       // read-only enforcement) fires — and rejects the store even though the
                                       // loaded index (0) is in bounds.
    let j = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(a, Operand::Imm(0)),
    );
    let off = b.shl(j, Operand::Imm(2));
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(a, off),
        Operand::Imm(1),
    );
    b.ret();
    let k = Arc::new(b.finish().unwrap());
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let a = sys.alloc(4096).unwrap();
    let r = sys.launch(k, 1, 1, &[Arg::Buffer(a)]).unwrap();
    assert!(!r.completed());
    assert_eq!(sys.violations()[0].kind, ViolationKind::ReadOnly);
}

#[test]
fn local_variable_overflow_is_caught() {
    let mut b = KernelBuilder::new("local_oob");
    let v = b.local_var("arr", 16);
    let base = b.local_base(v);
    b.st(
        MemSpace::Local,
        MemWidth::W4,
        b.base_offset(base, Operand::Imm(1 << 20)),
        Operand::Imm(0xBAD),
    );
    b.ret();
    let k = Arc::new(b.finish().unwrap());
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let r = sys.launch(k, 1, 32, &[]).unwrap();
    assert!(!r.completed());
}

#[test]
fn heap_overflow_beyond_chunk_is_caught() {
    let mut b = KernelBuilder::new("heap_oob");
    let p = b.malloc(Operand::Imm(16));
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, Operand::Imm(1 << 21)), // past the 64KB heap
        Operand::Imm(0xBAD),
    );
    b.ret();
    let k = Arc::new(b.finish().unwrap());
    let mut sys = System::new(SystemConfig::nvidia_protected());
    sys.set_heap_limit(1 << 16).unwrap();
    let r = sys.launch(k, 1, 1, &[]).unwrap();
    assert!(!r.completed());
}

#[test]
fn shared_memory_stays_on_chip_and_unchecked() {
    // Table 1: shared-memory overflow is possible (GPUShield scopes to
    // off-chip regions); our model wraps inside the workgroup allocation,
    // so it cannot touch other memory but is not a fault either.
    let mut b = KernelBuilder::new("shared_oob");
    b.shared_mem(64);
    let out = b.param_buffer("out", false);
    b.st(
        MemSpace::Shared,
        MemWidth::W4,
        b.flat(Operand::Imm(1 << 20)),
        Operand::Imm(7),
    );
    let v = b.ld(
        MemSpace::Shared,
        MemWidth::W4,
        b.flat(Operand::Imm((1 << 20) % 64)),
    );
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(out, Operand::Imm(0)),
        v,
    );
    b.ret();
    let k = Arc::new(b.finish().unwrap());
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let out = sys.alloc(64).unwrap();
    let r = sys.launch(k, 1, 4, &[Arg::Buffer(out)]).unwrap();
    assert!(r.completed());
    assert_eq!(sys.read_uint(out, 0, 4), 7);
}

#[test]
fn forged_plaintext_id_fails() {
    // §6.1: an attacker who knows the pointer format but not the key.
    let mut driver = Driver::new(DriverConfig::default(), 77);
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let mut bcu = Bcu::new(BcuConfig::default(), 2);
    let buf = driver.malloc(4096).unwrap();
    let prepared = driver
        .prepare_launch(
            indirect_store_kernel(),
            1,
            1,
            &[gpushield_driver::Arg::Buffer(buf)],
        )
        .unwrap();
    bcu.register_kernel(prepared.shield.unwrap());
    let legit = TaggedPtr::from_raw(prepared.launch.args[0]);
    // In-bounds store, but with a forged (unencrypted) ID.
    let mut forged = prepared.launch.clone();
    forged.args[0] = TaggedPtr::with_region_id(legit.va(), 0x1A2B).raw();
    let r = gpu
        .run(
            driver.vm_mut(),
            &[forged],
            Some(&mut bcu as &mut dyn MemGuard),
        )
        .unwrap();
    assert!(!r.completed(), "forged ID must not authorize access");
}

#[test]
fn kernels_cannot_read_the_rbt() {
    // §6.1/§5.4: RBT pages are driver-protected; a kernel dereferencing
    // them faults even though the BCU itself reads them via the bypass.
    let mut driver = Driver::new(DriverConfig::default(), 78);
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let mut bcu = Bcu::new(BcuConfig::default(), 2);
    let buf = driver.malloc(64).unwrap();
    let prepared = driver
        .prepare_launch(
            oob_store_kernel(0),
            1,
            1,
            &[gpushield_driver::Arg::Buffer(buf)],
        )
        .unwrap();
    let setup = prepared.shield.unwrap();
    bcu.register_kernel(setup);

    // A second kernel that stores straight to the RBT's address.
    let mut b = KernelBuilder::new("rbt_write");
    let p = b.param_buffer("p", false);
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, Operand::Imm(0)),
        Operand::Imm(0xBAD),
    );
    b.ret();
    let k = Arc::new(b.finish().unwrap());
    let attack_buf = driver.malloc(64).unwrap();
    let mut attack = driver
        .prepare_launch(k, 1, 1, &[gpushield_driver::Arg::Buffer(attack_buf)])
        .unwrap();
    bcu.register_kernel(attack.shield.unwrap());
    // Overwrite the pointer with the raw RBT address (untagged).
    attack.launch.args[0] = TaggedPtr::unprotected(setup.rbt_base).raw();
    let r = gpu
        .run(
            driver.vm_mut(),
            &[attack.launch],
            Some(&mut bcu as &mut dyn MemGuard),
        )
        .unwrap();
    assert!(!r.completed(), "direct RBT writes must fault");
}

#[test]
fn squash_mode_logs_and_continues() {
    let mut cfg = SystemConfig::nvidia_protected();
    cfg.bcu.precise_faults = false;
    let mut sys = System::new(cfg);
    let a = sys.alloc(64).unwrap();
    let victim = sys.alloc(64).unwrap();
    let r = sys
        .launch(oob_store_kernel(0x80), 1, 1, &[Arg::Buffer(a)])
        .unwrap();
    assert!(r.completed(), "squash mode does not abort");
    assert_eq!(r.launches[0].violations_squashed, 1);
    assert_eq!(sys.read_uint(victim, 0, 4), 0, "store dropped silently");
    assert_eq!(sys.violations().len(), 1, "but the error is logged");
}

#[test]
fn squashed_loads_return_zero() {
    let mut b = KernelBuilder::new("oob_read_squash");
    let a = b.param_buffer("A", true);
    let out = b.param_buffer("out", false);
    let v = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(a, Operand::Imm(0x300)),
    );
    let v2 = b.add(v, Operand::Imm(5));
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(out, Operand::Imm(0)),
        v2,
    );
    b.ret();
    let k = Arc::new(b.finish().unwrap());
    let mut cfg = SystemConfig::nvidia_protected();
    cfg.bcu.precise_faults = false;
    let mut sys = System::new(cfg);
    let a = sys.alloc(64).unwrap();
    sys.write_buffer(a, 0, &0xFFu32.to_le_bytes());
    let out = sys.alloc(64).unwrap();
    let r = sys
        .launch(k, 1, 1, &[Arg::Buffer(a), Arg::Buffer(out)])
        .unwrap();
    assert!(r.completed());
    assert_eq!(sys.read_uint(out, 0, 4), 5, "squashed load yields zero");
}
