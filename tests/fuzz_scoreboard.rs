//! Determinism and conformance gates for the adversarial fuzz sweep.
//!
//! The scoreboard is a CI artifact (`BENCH_detection.json`, the `trend`
//! gate), so it must be a pure function of the corpus seed: byte-identical
//! at any `--jobs` fan-out and any `--sim-threads` engine sharding, with
//! every specimen classified and zero watchdog hangs.

use gpushield_bench::fuzzsweep::run_sweep;
use gpushield_bench::runner;
use gpushield_fuzzgen::{corpus, BugClass, CORPUS_SEED, PER_CLASS};

/// Debug-format fingerprint of a corpus (kernel structure + oracles).
fn corpus_fingerprint(seed: u64, per_class: usize) -> String {
    corpus(seed, per_class)
        .iter()
        .map(|s| format!("{s:#?}\n"))
        .collect()
}

#[test]
fn corpus_is_byte_identical_for_a_seed() {
    assert_eq!(
        corpus_fingerprint(CORPUS_SEED, PER_CLASS),
        corpus_fingerprint(CORPUS_SEED, PER_CLASS)
    );
    assert_ne!(
        corpus_fingerprint(CORPUS_SEED, 2),
        corpus_fingerprint(CORPUS_SEED ^ 1, 2)
    );
}

/// One test drives every full sweep: the worker-count knobs are
/// process-wide, so a single serial body keeps them race-free.
#[test]
fn full_scoreboard_is_deterministic_and_conforms() {
    runner::set_sim_threads(1);
    let base = run_sweep(CORPUS_SEED, PER_CLASS, 1);
    let base_text = base.render_text();
    let base_json = base.to_json().render();

    // --jobs fan-out must not change a byte.
    let wide = run_sweep(CORPUS_SEED, PER_CLASS, 4);
    assert_eq!(base_text, wide.render_text(), "jobs 1 vs 4 diverged");
    assert_eq!(base_json, wide.to_json().render());

    // Neither must engine sharding (7 deliberately does not divide the
    // simulated core count).
    runner::set_sim_threads(7);
    let sharded = run_sweep(CORPUS_SEED, PER_CLASS, 4);
    runner::set_sim_threads(1);
    assert_eq!(
        base_text,
        sharded.render_text(),
        "sim-threads 1 vs 7 diverged"
    );
    assert_eq!(base_json, sharded.to_json().render());

    // Coverage: the acceptance floor for the committed corpus.
    assert!(base.total() >= 200, "only {} specimens", base.total());
    assert_eq!(base.rows.len(), BugClass::ALL.len());
    let bug_classes = base
        .rows
        .iter()
        .filter(|r| r.class != BugClass::Benign)
        .count();
    assert!(bug_classes >= 6, "only {bug_classes} bug classes");

    // Every specimen classified, none hung, and every class behaves as
    // its taxonomy entry documents.
    for row in &base.rows {
        assert_eq!(
            row.specimens(),
            PER_CLASS,
            "{} row incomplete",
            row.class.slug()
        );
        assert_eq!(row.tally[5], 0, "{} hung", row.class.slug());
        assert_eq!(
            row.conforming,
            row.specimens(),
            "{}: expected every specimen to be {:?}, tally {:?}",
            row.class.slug(),
            row.class.expected(),
            row.tally
        );
    }

    // The Type 1 class must also be caught before launch: the BAT proves
    // the constant-offset overrun and records a StaticViolation.
    let static_row = &base.rows[0];
    assert_eq!(static_row.class, BugClass::StaticOobWrite);
    assert_eq!(static_row.static_flagged, static_row.specimens());
}
