//! Per-space integration tests covering every Table 1 memory type and
//! every access width.

use gpushield::{Arg, System, SystemConfig, ViolationKind};
use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand, ValidateError};
use std::sync::Arc;

#[test]
fn texture_space_is_read_only_at_validation() {
    let mut b = KernelBuilder::new("tex_store");
    let t = b.param_buffer_in("tex", MemSpace::Texture, true);
    b.st(
        MemSpace::Texture,
        MemWidth::W4,
        b.base_offset(t, Operand::Imm(0)),
        Operand::Imm(1),
    );
    b.ret();
    assert!(matches!(
        b.finish().unwrap_err(),
        ValidateError::ConstStore(_, _)
    ));
}

#[test]
fn texture_loads_run_and_are_protected() {
    // Reads through a texture-space buffer work; an OOB read is caught.
    let mut b = KernelBuilder::new("tex_read");
    let t = b.param_buffer_in("tex", MemSpace::Texture, true);
    let out = b.param_buffer("out", false);
    let tid = b.global_thread_id();
    let off = b.shl(tid, Operand::Imm(2));
    let v = b.ld(MemSpace::Texture, MemWidth::W4, b.base_offset(t, off));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), v);
    b.ret();
    let k = Arc::new(b.finish().unwrap());

    let mut sys = System::new(SystemConfig::nvidia_protected());
    let tex = sys.alloc(64 * 4).unwrap();
    for i in 0..64u64 {
        sys.write_buffer(tex, i * 4, &(7 * i as u32).to_le_bytes());
    }
    let out = sys.alloc(64 * 4).unwrap();
    let r = sys
        .launch(k.clone(), 2, 32, &[Arg::Buffer(tex), Arg::Buffer(out)])
        .unwrap();
    assert!(r.completed());
    assert_eq!(sys.read_uint(out, 63 * 4, 4), 7 * 63);

    // Oversized launch: threads ≥ 64 read out of bounds.
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let tex = sys.alloc(64 * 4).unwrap();
    let out = sys.alloc(256 * 4).unwrap();
    let r = sys
        .launch(k, 8, 32, &[Arg::Buffer(tex), Arg::Buffer(out)])
        .unwrap();
    assert!(!r.completed());
    assert_eq!(sys.violations()[0].kind, ViolationKind::OutOfBounds);
}

#[test]
fn constant_space_loads_work_under_protection() {
    let mut b = KernelBuilder::new("const_read");
    let c = b.param_buffer_in("coeffs", MemSpace::Const, true);
    let out = b.param_buffer("out", false);
    let tid = b.global_thread_id();
    let small = b.rem(tid, Operand::Imm(8));
    let coff = b.shl(small, Operand::Imm(2));
    let v = b.ld(MemSpace::Const, MemWidth::W4, b.base_offset(c, coff));
    let goff = b.shl(tid, Operand::Imm(2));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, goff), v);
    b.ret();
    let k = Arc::new(b.finish().unwrap());

    let mut sys = System::new(SystemConfig::nvidia_protected());
    let coeffs = sys.alloc(8 * 4).unwrap();
    for i in 0..8u64 {
        sys.write_buffer(coeffs, i * 4, &(100 + i as u32).to_le_bytes());
    }
    let out = sys.alloc(64 * 4).unwrap();
    let r = sys
        .launch(k, 2, 32, &[Arg::Buffer(coeffs), Arg::Buffer(out)])
        .unwrap();
    assert!(r.completed());
    assert_eq!(sys.read_uint(out, 10 * 4, 4), 102);
}

#[test]
fn all_access_widths_round_trip() {
    for (width, bytes) in [
        (MemWidth::W1, 1u64),
        (MemWidth::W2, 2),
        (MemWidth::W4, 4),
        (MemWidth::W8, 8),
    ] {
        let mut b = KernelBuilder::new("widths");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.mul(tid, Operand::Imm(bytes as i64));
        // Store tid (truncated to the width by the memory system).
        b.st(MemSpace::Global, width, b.base_offset(out, off), tid);
        b.ret();
        let k = Arc::new(b.finish().unwrap());

        let mut sys = System::new(SystemConfig::nvidia_protected());
        let out = sys.alloc(64 * bytes).unwrap();
        let r = sys.launch(k, 2, 32, &[Arg::Buffer(out)]).unwrap();
        assert!(r.completed(), "width {bytes}");
        let mask = if bytes == 8 {
            u64::MAX
        } else {
            (1u64 << (bytes * 8)) - 1
        };
        for i in 0..64u64 {
            let got = sys.read_uint(out, i * bytes, bytes);
            assert_eq!(got, i & mask, "width {bytes} element {i}");
        }
    }
}

#[test]
fn three_concurrent_kernels_share_the_gpu() {
    use gpushield::{ConcurrentKernel, MultiKernelMode};
    fn iota() -> Arc<gpushield_isa::Kernel> {
        let mut b = KernelBuilder::new("iota3");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        Arc::new(b.finish().unwrap())
    }
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let bufs: Vec<_> = (0..3).map(|_| sys.alloc(128 * 4).unwrap()).collect();
    let kernels = bufs
        .iter()
        .map(|b| ConcurrentKernel {
            kernel: iota(),
            grid: 4,
            block: 32,
            args: vec![Arg::Buffer(*b)],
        })
        .collect();
    let r = sys
        .launch_concurrent(kernels, MultiKernelMode::IntraCore)
        .unwrap();
    assert!(r.completed());
    assert_eq!(r.launches.len(), 3);
    for b in bufs {
        assert_eq!(sys.read_uint(b, 127 * 4, 4), 127);
    }
}

#[test]
fn mem_fraction_and_ipc_are_sane() {
    let mut b = KernelBuilder::new("mix");
    let out = b.param_buffer("out", false);
    let tid = b.global_thread_id();
    let off = b.shl(tid, Operand::Imm(2));
    let x = b.mul(tid, Operand::Imm(3));
    let y = b.add(x, Operand::Imm(1));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), y);
    b.ret();
    let k = Arc::new(b.finish().unwrap());
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let out = sys.alloc(256 * 4).unwrap();
    let r = sys.launch(k, 8, 32, &[Arg::Buffer(out)]).unwrap();
    let l = &r.launches[0];
    assert!(l.mem_fraction() > 0.0 && l.mem_fraction() < 0.5);
    assert!(l.ipc() > 0.0);
}
