//! Driver/system feature tests: §6.3 buffer-ID merging, §6.2 context
//! switching, and §5.5.2 error reporting.

use gpushield::{Arg, System, SystemConfig, ViolationKind};
use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use std::sync::Arc;

/// A kernel whose four buffer accesses are all unprovable (loaded index),
/// forcing four Region-classed pointers.
fn four_buffer_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("four_bufs");
    let bufs: Vec<_> = (0..4)
        .map(|i| b.param_buffer(&format!("b{i}"), false))
        .collect();
    let j = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(bufs[0], Operand::Imm(0)),
    );
    let off = b.shl(j, Operand::Imm(2));
    for p in &bufs {
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(*p, off), j);
    }
    b.ret();
    Arc::new(b.finish().unwrap())
}

#[test]
fn id_merging_keeps_kernels_running_under_tight_budget() {
    // §6.3: with only 2 region IDs available, adjacent buffers share
    // merged bounds metadata and legitimate accesses still pass.
    let mut cfg = SystemConfig::nvidia_protected();
    cfg.driver.max_region_ids = 2;
    let mut sys = System::new(cfg);
    let bufs: Vec<_> = (0..4).map(|_| sys.alloc(256).unwrap()).collect();
    let args: Vec<Arg> = bufs.iter().map(|b| Arg::Buffer(*b)).collect();
    let r = sys.launch(four_buffer_kernel(), 1, 1, &args).unwrap();
    assert!(r.completed(), "{}", sys.error_report());
    assert_eq!(sys.violations().len(), 0);
}

#[test]
fn id_merging_still_catches_far_out_of_bounds() {
    // Coarser protection inside a merged group, but leaving the merged
    // span entirely still faults.
    let mut cfg = SystemConfig::nvidia_protected();
    cfg.driver.max_region_ids = 1;
    let mut sys = System::new(cfg);
    let a = sys.alloc(256).unwrap();
    let b2 = sys.alloc(256).unwrap();

    let mut b = KernelBuilder::new("merged_oob");
    let pa = b.param_buffer("a", false);
    let pb = b.param_buffer("b", false);
    let j = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(pa, Operand::Imm(0)),
    );
    let _keep = b.add(j, Operand::Imm(0));
    // Store far outside the merged [a, b] span.
    let far = b.add(j, Operand::Imm(1 << 20));
    let off = b.shl(far, Operand::Imm(2));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(pb, off), j);
    b.ret();
    let k = Arc::new(b.finish().unwrap());
    let r = sys
        .launch(k, 1, 1, &[Arg::Buffer(a), Arg::Buffer(b2)])
        .unwrap();
    assert!(!r.completed(), "far OOB must fault even with merged IDs");
    assert_eq!(sys.violations()[0].kind, ViolationKind::OutOfBounds);
}

#[test]
fn merged_groups_lose_only_intra_group_precision() {
    // Documented trade-off: with merging forced, a write that lands in the
    // *adjacent group member* is no longer caught (the merged bounds cover
    // both) — but the default configuration (no merging) catches it.
    fn overflowing_pair(max_ids: usize) -> bool {
        let mut cfg = SystemConfig::nvidia_protected();
        cfg.driver.max_region_ids = max_ids;
        let mut sys = System::new(cfg);
        let a = sys.alloc(256).unwrap();
        let victim = sys.alloc(256).unwrap();
        let mut b = KernelBuilder::new("neighbour_oob");
        let pa = b.param_buffer("a", false);
        let pv = b.param_buffer("v", false);
        let j = b.ld(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(pa, Operand::Imm(0)),
        );
        // a and victim are 512 B apart (Device512 packing); +0x80 elements
        // of 4 B lands exactly on the victim.
        let idx = b.add(j, Operand::Imm(0x80));
        let off = b.shl(idx, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(pa, off), j);
        // Keep the victim as a second *runtime-checked* region (a loaded
        // offset, so static analysis cannot downgrade it to Type 1).
        let voff = b.shl(j, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(pv, voff), j);
        b.ret();
        let k = Arc::new(b.finish().unwrap());
        let r = sys
            .launch(k, 1, 1, &[Arg::Buffer(a), Arg::Buffer(victim)])
            .unwrap();
        r.completed()
    }
    assert!(
        !overflowing_pair(1 << 14),
        "separate IDs catch the neighbour overflow"
    );
    assert!(
        overflowing_pair(1),
        "a single merged ID cannot distinguish the members (the §6.3 cost)"
    );
}

#[test]
fn error_report_lists_violations() {
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let a = sys.alloc(64).unwrap();
    let mut b = KernelBuilder::new("oob");
    let p = b.param_buffer("a", false);
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, Operand::Imm(4096)),
        Operand::Imm(1),
    );
    b.ret();
    let k = Arc::new(b.finish().unwrap());
    assert_eq!(sys.error_report(), "no memory-safety violations detected");
    let _ = sys.launch(k, 1, 1, &[Arg::Buffer(a)]).unwrap();
    let report = sys.error_report();
    assert!(report.contains("1 memory-safety violation"), "{report}");
    assert!(report.contains("out-of-bounds access"), "{report}");
    assert!(report.contains("store"), "{report}");
}

#[test]
fn context_switch_flushes_rcaches_without_breaking_checks() {
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let a = sys.alloc(64).unwrap();
    // Unprovable but in-bounds store (index loaded, zero-initialised).
    let mut b = KernelBuilder::new("ctx");
    let p = b.param_buffer("a", false);
    let j = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, Operand::Imm(0)),
    );
    let off = b.shl(j, Operand::Imm(2));
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, off),
        Operand::Imm(9),
    );
    b.ret();
    let k = Arc::new(b.finish().unwrap());

    let r1 = sys.launch(k.clone(), 1, 1, &[Arg::Buffer(a)]).unwrap();
    assert!(r1.completed());
    let fetches_before = sys.bcu_stats().rbt_fetches;
    sys.context_switch();
    let r2 = sys.launch(k, 1, 1, &[Arg::Buffer(a)]).unwrap();
    assert!(r2.completed());
    // The flush forces a fresh RBT fetch on the next launch.
    assert!(sys.bcu_stats().rbt_fetches > fetches_before);
}
