//! Determinism matrix for the cycle-quantum parallel engine.
//!
//! Sharding the simulated GPU's SIMT cores across worker threads is a
//! wall-clock optimisation only: every simulated quantity — cycle counts,
//! scheduling order, verdicts, abort cycles, memory contents, telemetry —
//! must be byte-identical at every `sim_threads` value. These tests pin
//! that across the interesting worker counts: 1 (sequential), 2 and 4
//! (even shards of the 16-core Nvidia config), and 7 (cores don't divide
//! evenly, so claim order and shard sizes differ maximally), including
//! the park-and-drain paths (device malloc, global atomics) and the
//! quantum-granular abort path.

use gpushield::{Arg, FaultKind, FaultPlan, Registry, System, SystemConfig};
use gpushield_bench::adapter::SystemHost;
use gpushield_bench::runner::{config, Protection, Target};
use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use gpushield_workloads::by_name;
use std::sync::Arc;

const WORKER_MATRIX: [usize; 4] = [1, 2, 4, 7];

/// Protected Nvidia system with an explicit engine worker count.
fn protected_system(sim_threads: usize) -> System {
    let mut cfg = SystemConfig::nvidia_protected();
    cfg.gpu.sim_threads = sim_threads;
    System::new(cfg)
}

/// Runs one registered workload end-to-end at `sim_threads` workers with
/// full telemetry, and serializes everything observable: every run
/// report and the rendered registry dump.
fn workload_fingerprint(name: &str, sim_threads: usize) -> String {
    let w = by_name(name).expect("workload registered");
    let mut cfg = config(Target::Nvidia, Protection::shield_lat(1, 3));
    cfg.gpu.sim_threads = sim_threads;
    let mut host = SystemHost::new(cfg);
    host.attach_registry(Registry::new());
    w.run(&mut host);
    let reg = host.take_registry().expect("registry attached");
    format!("{:#?}\n{}", host.reports, reg.render_json())
}

#[test]
fn workload_results_are_identical_at_every_worker_count() {
    for name in ["vectoradd", "bfs-dtc"] {
        let base = workload_fingerprint(name, WORKER_MATRIX[0]);
        for &n in &WORKER_MATRIX[1..] {
            assert_eq!(
                base,
                workload_fingerprint(name, n),
                "{name}: reports or telemetry drift at sim_threads={n}"
            );
        }
    }
}

/// Stores one word out of bounds from every block; under the shield the
/// launch aborts via the quantum drain's canonical first-abort rule.
fn oob_store_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("par_oob_store");
    let a = b.param_buffer("A", false);
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(a, Operand::Imm(0x80 * 4)),
        Operand::Imm(0xBAD),
    );
    b.ret();
    Arc::new(b.finish().unwrap())
}

#[test]
fn abort_cycle_and_violation_log_are_identical_at_every_worker_count() {
    let run = |sim_threads: usize| -> String {
        let mut sys = protected_system(sim_threads);
        let a = sys.alloc(64).unwrap();
        let victim = sys.alloc(64).unwrap();
        let r = sys
            .launch(oob_store_kernel(), 8, 32, &[Arg::Buffer(a)])
            .unwrap();
        assert!(!r.completed(), "shield must abort the overflow");
        let victim_words: Vec<u64> = (0..16).map(|i| sys.read_uint(victim, i * 4, 4)).collect();
        format!("{r:#?}\n{:#?}\n{victim_words:?}", sys.violations())
    };
    let base = run(WORKER_MATRIX[0]);
    for &n in &WORKER_MATRIX[1..] {
        assert_eq!(base, run(n), "abort drift at sim_threads={n}");
    }
}

/// Every thread stores its ID; the fault plan corrupts the protection
/// metadata mid-run.
fn faulted_store_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("par_faulted_store");
    let a = b.param_buffer("A", false);
    let tid = b.global_thread_id();
    let off = b.shl(tid, Operand::Imm(2));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(a, off), tid);
    b.ret();
    Arc::new(b.finish().unwrap())
}

/// A non-empty fault plan routes the run through the sequential engine
/// (mid-run metadata corruption cannot be replayed against a snapshot),
/// so `sim_threads` must have no observable effect on a faulted session
/// either — report, injection record, verdicts, and memory identical.
#[test]
fn faulted_sessions_are_identical_at_every_worker_count() {
    let run = |sim_threads: usize| -> String {
        let mut sys = protected_system(sim_threads);
        let a = sys.alloc(8 * 32 * 4).unwrap();
        let res = sys.launch_with_faults(
            faulted_store_kernel(),
            8,
            32,
            &[Arg::Buffer(a)],
            FaultPlan::generate(7, &FaultKind::ALL, 3, 64),
        );
        let words: Vec<u64> = (0..16).map(|i| sys.read_uint(a, i * 4, 4)).collect();
        format!("{res:#?}\n{:#?}\n{words:?}", sys.violations())
    };
    let base = run(WORKER_MATRIX[0]);
    for &n in &WORKER_MATRIX[1..] {
        assert_eq!(base, run(n), "faulted-session drift at sim_threads={n}");
    }
}

/// Every thread device-mallocs a block, bumps a global counter
/// atomically, synchronizes, and records its pointer — covering all
/// three park-and-drain operations (malloc, global atomic, barrier
/// release) in one kernel.
fn park_heavy_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("par_park_heavy");
    let out = b.param_buffer("out", false);
    let ctr = b.param_buffer("ctr", false);
    let tid = b.global_thread_id();
    let p = b.malloc(Operand::Imm(64));
    let _ = b.atom_add(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(ctr, Operand::Imm(0)),
        Operand::Imm(1),
    );
    b.bar();
    let off = b.shl(tid, Operand::Imm(3));
    b.st(MemSpace::Global, MemWidth::W8, b.base_offset(out, off), p);
    b.ret();
    Arc::new(b.finish().unwrap())
}

#[test]
fn park_and_drain_paths_are_identical_at_every_worker_count() {
    let run = |sim_threads: usize| -> String {
        let mut sys = protected_system(sim_threads);
        sys.set_heap_limit(1 << 20).unwrap();
        let threads = 8 * 32u64;
        let out = sys.alloc(threads * 8).unwrap();
        let ctr = sys.alloc(64).unwrap();
        let r = sys
            .launch(
                park_heavy_kernel(),
                8,
                32,
                &[Arg::Buffer(out), Arg::Buffer(ctr)],
            )
            .unwrap();
        assert!(r.completed(), "benign kernel must complete");
        assert_eq!(
            sys.read_uint(ctr, 0, 4),
            threads,
            "atomic counter saw every thread exactly once"
        );
        let ptrs: Vec<u64> = (0..threads).map(|i| sys.read_uint(out, i * 8, 8)).collect();
        format!("{r:#?}\n{ptrs:?}")
    };
    let base = run(WORKER_MATRIX[0]);
    for &n in &WORKER_MATRIX[1..] {
        assert_eq!(base, run(n), "park/drain drift at sim_threads={n}");
    }
}
