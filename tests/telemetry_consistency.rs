//! Counter-consistency invariants: the telemetry registry, the
//! [`LaunchReport`] totals, and the per-path [`StallAttribution`] all
//! describe the same run, so they must reconcile exactly — a drifting
//! counter means one of the feeds lost or double-counted events.

use gpushield::Registry;
use gpushield_bench::adapter::SystemHost;
use gpushield_bench::runner::{config, Protection, Target};
use gpushield_sim::StallAttribution;
use gpushield_workloads::by_name;

/// Runs `name` instrumented under default GPUShield and returns the host
/// (with its reports) and the populated registry.
fn instrumented(name: &str) -> (SystemHost, Registry) {
    let w = by_name(name).expect("workload registered");
    let mut host = SystemHost::new(config(Target::Nvidia, Protection::shield_default()));
    host.attach_registry(Registry::new());
    w.run(&mut host);
    let reg = host.take_registry().expect("registry attached");
    (host, reg)
}

#[test]
fn registry_counters_reconcile_with_launch_reports() {
    let (host, reg) = instrumented("vectoradd");
    let launches: Vec<_> = host
        .reports
        .iter()
        .flat_map(|r| r.launches.iter())
        .collect();
    assert!(!launches.is_empty());

    let total =
        |f: fn(&gpushield_sim::LaunchReport) -> u64| -> u64 { launches.iter().map(|l| f(l)).sum() };
    assert_eq!(
        reg.value("sim.run.launches"),
        Some(launches.len() as u64),
        "every launch publishes itself exactly once"
    );
    assert_eq!(
        reg.value("sim.launch.instructions"),
        Some(total(|l| l.instructions))
    );
    assert_eq!(
        reg.value("sim.launch.mem_instructions"),
        Some(total(|l| l.mem_instructions))
    );
    assert_eq!(
        reg.value("sim.launch.transactions"),
        Some(total(|l| l.transactions))
    );
    assert_eq!(
        reg.value("sim.launch.checks_performed"),
        Some(total(|l| l.checks_performed))
    );
    assert_eq!(
        reg.value("sim.launch.checks_skipped"),
        Some(total(|l| l.checks_skipped))
    );
    assert_eq!(
        reg.value("sim.launch.guard_stall_cycles"),
        Some(total(|l| l.guard_stall_cycles))
    );
    assert_eq!(reg.value("sim.launch.aborts"), Some(0));
}

#[test]
fn stall_attribution_reconciles_with_launch_totals() {
    // A mix of workloads so every quantity is exercised with checks both
    // performed and skipped.
    for name in ["vectoradd", "gaussian", "backprop"] {
        let (host, reg) = instrumented(name);
        let mut attribution = StallAttribution::default();
        let mut checks_performed = 0u64;
        let mut checks_skipped = 0u64;
        let mut mem_instructions = 0u64;
        let mut instructions = 0u64;
        let mut guard_stall_cycles = 0u64;
        for l in host.reports.iter().flat_map(|r| r.launches.iter()) {
            attribution.merge(&l.stall_attribution);
            checks_performed += l.checks_performed;
            checks_skipped += l.checks_skipped;
            mem_instructions += l.mem_instructions;
            instructions += l.instructions;
            guard_stall_cycles += l.guard_stall_cycles;
        }
        // Every performed check was attributed to exactly one path.
        assert_eq!(
            checks_performed,
            attribution.consultations(),
            "{name}: checks_performed vs attribution consultations"
        );
        // Every visible stall cycle was attributed to exactly one path.
        assert_eq!(
            guard_stall_cycles,
            attribution.stall_cycles(),
            "{name}: guard_stall_cycles vs attribution stall cycles"
        );
        // Structural sanity: a warp executes at most one check decision
        // per memory instruction, and memory instructions are a subset of
        // all instructions.
        assert!(instructions >= mem_instructions, "{name}");
        assert!(
            checks_performed + checks_skipped <= mem_instructions,
            "{name}: at most one check decision per memory instruction"
        );
        // The registry's per-path counters agree with the merged struct.
        assert_eq!(
            reg.value("sim.stall.l1_rcache.checks"),
            Some(attribution.l1_hits),
            "{name}"
        );
        assert_eq!(
            reg.value("sim.stall.l2_rcache.checks"),
            Some(attribution.l2_hits),
            "{name}"
        );
        assert_eq!(
            reg.value("sim.stall.rbt_fetch.checks"),
            Some(attribution.rbt_fetches),
            "{name}"
        );
        assert_eq!(
            reg.value("sim.stall.l1_rcache.stall_cycles"),
            Some(attribution.l1_stall_cycles),
            "{name}"
        );
    }
}

#[test]
fn profile_gauges_are_the_single_source_of_truth() {
    let (host, reg) = instrumented("vectoradd");
    let mut profile = gpushield_sim::SimProfile::default();
    for r in &host.reports {
        profile.merge(&r.profile);
    }
    // `publish_run_report` accumulates each run's profile as counters,
    // so after the last launch the registry holds the workload totals —
    // the same numbers `SimProfile::merge` produces from the reports.
    assert_eq!(
        reg.value("sim.profile.bcu_checks"),
        Some(profile.bcu_checks)
    );
    assert_eq!(
        reg.value("sim.profile.bcu_stall_cycles"),
        Some(profile.bcu_stall_cycles)
    );
    assert_eq!(
        reg.value("sim.profile.mem_issues"),
        Some(profile.mem_issues)
    );
}

#[test]
fn disabled_registry_stays_empty_through_a_full_run() {
    let w = by_name("vectoradd").expect("vectoradd registered");
    let mut host = SystemHost::new(config(Target::Nvidia, Protection::shield_default()));
    host.attach_registry(Registry::disabled());
    w.run(&mut host);
    let reg = host.take_registry().expect("registry attached");
    assert!(reg.is_empty());
    assert_eq!(reg.value("sim.launch.instructions"), None);
}
