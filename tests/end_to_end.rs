//! End-to-end integration: driver → compiler → BCU → simulator, checking
//! that protection never changes results and costs (almost) nothing.

use gpushield::{Arg, System, SystemConfig};
use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use std::sync::Arc;

fn saxpy_kernel() -> Arc<Kernel> {
    // y[i] = a * x[i] + y[i], guarded.
    let mut b = KernelBuilder::new("saxpy");
    let x = b.param_buffer("x", true);
    let y = b.param_buffer("y", false);
    let a = b.param_scalar("a");
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let c = b.lt(tid, n);
    b.if_then(c, |b| {
        let off = b.shl(tid, Operand::Imm(2));
        let xv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(x, off));
        let yv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(y, off));
        let ax = b.mul(xv, a);
        let s = b.add(ax, yv);
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(y, off), s);
    });
    b.ret();
    Arc::new(b.finish().unwrap())
}

fn run_saxpy(cfg: SystemConfig) -> (Vec<u32>, u64) {
    const N: u64 = 500; // deliberately not a multiple of the block size
    let mut sys = System::new(cfg);
    let x = sys.alloc(N * 4).unwrap();
    let y = sys.alloc(N * 4).unwrap();
    for i in 0..N {
        sys.write_buffer(x, i * 4, &(i as u32).to_le_bytes());
        sys.write_buffer(y, i * 4, &(1000 + i as u32).to_le_bytes());
    }
    let r = sys
        .launch(
            saxpy_kernel(),
            2,
            256,
            &[
                Arg::Buffer(x),
                Arg::Buffer(y),
                Arg::Scalar(3),
                Arg::Scalar(N),
            ],
        )
        .unwrap();
    assert!(r.completed());
    let out = (0..N).map(|i| sys.read_uint(y, i * 4, 4) as u32).collect();
    (out, r.cycles)
}

#[test]
fn protection_is_functionally_invisible() {
    let (base, base_cycles) = run_saxpy(SystemConfig::nvidia_baseline());
    let (prot, prot_cycles) = run_saxpy(SystemConfig::nvidia_protected());
    assert_eq!(base, prot, "shield must not change results");
    for (i, v) in base.iter().enumerate() {
        assert_eq!(*v, 3 * i as u32 + 1000 + i as u32, "element {i}");
    }
    // The default configuration is near-free (paper Fig. 14).
    let ratio = prot_cycles as f64 / base_cycles as f64;
    assert!(
        ratio <= 1.02,
        "default GPUShield overhead too high: {ratio}"
    );
}

#[test]
fn guarded_saxpy_is_fully_static() {
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let x = sys.alloc(500 * 4).unwrap();
    let y = sys.alloc(500 * 4).unwrap();
    let r = sys
        .launch(
            saxpy_kernel(),
            2,
            256,
            &[
                Arg::Buffer(x),
                Arg::Buffer(y),
                Arg::Scalar(3),
                Arg::Scalar(500),
            ],
        )
        .unwrap();
    assert!(r.completed());
    let bat = sys.last_bat().unwrap();
    assert_eq!(bat.sites_static, bat.sites_total);
    assert_eq!(sys.bcu_stats().checks, 0);
}

#[test]
fn intel_and_nvidia_agree_functionally() {
    let (nv, _) = run_saxpy(SystemConfig::nvidia_protected());
    let (intel, _) = run_saxpy(SystemConfig::intel_protected());
    assert_eq!(nv, intel);
}

#[test]
fn multi_launch_state_persists_across_kernels() {
    // Two kernels chained through the same buffer.
    let mut inc = KernelBuilder::new("inc");
    let buf = inc.param_buffer("buf", false);
    let tid = inc.global_thread_id();
    let off = inc.shl(tid, Operand::Imm(2));
    let v = inc.ld(MemSpace::Global, MemWidth::W4, inc.base_offset(buf, off));
    let v2 = inc.add(v, Operand::Imm(1));
    inc.st(
        MemSpace::Global,
        MemWidth::W4,
        inc.base_offset(buf, off),
        v2,
    );
    inc.ret();
    let inc = Arc::new(inc.finish().unwrap());

    let mut sys = System::new(SystemConfig::nvidia_protected());
    let b = sys.alloc(64 * 4).unwrap();
    for _ in 0..5 {
        let r = sys.launch(inc.clone(), 2, 32, &[Arg::Buffer(b)]).unwrap();
        assert!(r.completed());
    }
    for i in 0..64 {
        assert_eq!(sys.read_uint(b, i * 4, 4), 5, "element {i}");
    }
}

#[test]
fn local_memory_roundtrips_per_thread() {
    // Each thread spills a value to local memory and reads it back.
    let mut b = KernelBuilder::new("spill");
    let out = b.param_buffer("out", false);
    let total = b.param_scalar("total");
    let arr = b.local_var("slot", 4);
    let tid = b.global_thread_id();
    let base = b.local_base(arr);
    // Interleaved layout: word 0 of thread t lives at t*4.
    let off = b.shl(tid, Operand::Imm(2));
    let _ = total; // layout only needs tid for a single word
    let magic = b.mul(tid, Operand::Imm(7));
    b.st(
        MemSpace::Local,
        MemWidth::W4,
        b.base_offset(base, off),
        magic,
    );
    let v = b.ld(MemSpace::Local, MemWidth::W4, b.base_offset(base, off));
    let goff = b.shl(tid, Operand::Imm(2));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, goff), v);
    b.ret();
    let k = Arc::new(b.finish().unwrap());

    let mut sys = System::new(SystemConfig::nvidia_protected());
    let out = sys.alloc(64 * 4).unwrap();
    let r = sys
        .launch(k, 2, 32, &[Arg::Buffer(out), Arg::Scalar(64)])
        .unwrap();
    assert!(r.completed());
    for i in 0..64 {
        assert_eq!(sys.read_uint(out, i * 4, 4), 7 * i, "thread {i}");
    }
}

#[test]
fn heap_allocations_are_disjoint_and_checked() {
    let mut b = KernelBuilder::new("heapuse");
    let out = b.param_buffer("out", false);
    let p = b.malloc(Operand::Imm(32));
    let tid = b.global_thread_id();
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, Operand::Imm(0)),
        tid,
    );
    let v = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, Operand::Imm(0)),
    );
    let off = b.shl(tid, Operand::Imm(2));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), v);
    b.ret();
    let k = Arc::new(b.finish().unwrap());

    let mut sys = System::new(SystemConfig::nvidia_protected());
    sys.set_heap_limit(1 << 20).unwrap();
    let out = sys.alloc(128 * 4).unwrap();
    let r = sys.launch(k, 4, 32, &[Arg::Buffer(out)]).unwrap();
    assert!(r.completed(), "in-bounds heap use must pass checking");
    for i in 0..128 {
        assert_eq!(sys.read_uint(out, i * 4, 4), i, "thread {i}");
    }
}
