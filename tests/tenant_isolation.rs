//! Cross-tenant isolation integration tests: a table-driven sweep of
//! attacker/victim tenant pairs across every pointer-addressing vector
//! (raw class-0 VAs, legitimate Region pointers pushed out of bounds,
//! forged Region IDs, forged Type 3 size claims). Every probe must
//! classify as Detected — never Masked, never SilentCorruption — and the
//! violation must be attributed to the attacking tenant via its recorded
//! kernel ID.

use gpushield::{
    Arg, BcuConfig, DriverConfig, DriverError, GpuConfig, System, SystemConfig, SystemError,
    TenantId, TenantTable, ViolationKind,
};
use gpushield_bench::serving::{run_serving, JobKind, ServingConfig};
use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use std::sync::Arc;

fn strict_tenant_config() -> SystemConfig {
    SystemConfig {
        gpu: GpuConfig {
            max_cycles: 200_000,
            ..GpuConfig::nvidia()
        },
        driver: DriverConfig {
            enable_static_analysis: false,
            enable_type3: false,
            ..DriverConfig::default()
        },
        bcu: BcuConfig {
            strict_runtime_tags: true,
            ..BcuConfig::default()
        },
        seed: 0x6057_5E1D,
    }
}

/// Stores through its own pointer at an offset loaded from memory.
fn indirect_offset_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("isolation_indirect");
    let a = b.param_buffer("A", false);
    let off = b.ld(
        MemSpace::Global,
        MemWidth::W8,
        b.base_offset(a, Operand::Imm(8)),
    );
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(a, off),
        Operand::Imm(0xBAD),
    );
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// The full attacker x victim x vector matrix, driven through the serving
/// loop: one probe per run, and the run's classification record must show
/// exactly one Detected outcome with the attacker charged.
#[test]
fn every_cross_tenant_probe_is_detected_and_attributed() {
    const N: usize = 3;
    let vectors: [fn(usize) -> JobKind; 4] = [
        |v| JobKind::AttackRawVa { victim: v },
        |v| JobKind::AttackRegionOob { victim: v },
        |v| JobKind::AttackForgedId { victim: v },
        |v| JobKind::AttackForgedType3 { victim: v },
    ];
    for attacker in 0..N {
        for victim in (0..N).filter(|v| *v != attacker) {
            for (vi, vector) in vectors.iter().enumerate() {
                let mut queues = vec![Vec::new(); N];
                queues[attacker] = vec![vector(victim)];
                let cfg = ServingConfig {
                    slices: (0..N as u16)
                        .map(|t| (1 + t * 64, 65 + t * 64, 1))
                        .collect(),
                    queues,
                    strict_runtime_tags: true,
                    max_cycles: 200_000,
                };
                let s = run_serving(&cfg);
                let ctx = format!("attacker={attacker} victim={victim} vector={vi}");
                assert_eq!(
                    s.tallies[2], 1,
                    "probe not Detected ({ctx}): {:?}",
                    s.tallies
                );
                assert_eq!(
                    s.tallies[3] + s.tallies[4],
                    0,
                    "probe Masked or Silent ({ctx})"
                );
                assert!(s.secrets_intact, "victim secret corrupted ({ctx})");
                assert_eq!(s.misattributed, 0, "violation misattributed ({ctx})");
                assert!(
                    s.per_tenant[attacker].violations_attributed >= 1,
                    "attacker not charged ({ctx})"
                );
                for t in (0..N).filter(|t| *t != attacker) {
                    assert_eq!(
                        s.per_tenant[t].violations_attributed, 0,
                        "bystander charged ({ctx})"
                    );
                }
            }
        }
    }
}

/// Facade-level attribution: the violation record's kernel ID resolves to
/// the attacking tenant through the table's launch registry.
#[test]
fn violation_kernel_id_resolves_to_the_attacking_tenant() {
    let mut sys = System::new(strict_tenant_config());
    let mut tenants = TenantTable::with_slices([(1u16, 65u16, 1u64), (65, 129, 1)]);
    let attacker_buf = sys.alloc(64).expect("attacker buffer");
    let victim_buf = sys.alloc(64).expect("victim buffer");
    let delta = sys
        .driver()
        .buffer_va(victim_buf)
        .wrapping_sub(sys.driver().buffer_va(attacker_buf));
    sys.write_buffer(attacker_buf, 8, &delta.to_le_bytes());
    let (report, violations) = sys
        .launch_tenant(
            &mut tenants,
            TenantId(0),
            indirect_offset_kernel(),
            1,
            1,
            &[Arg::Buffer(attacker_buf)],
        )
        .expect("launch admitted");
    assert!(!report.completed(), "probe must abort under precise faults");
    assert!(!violations.is_empty(), "violation logged");
    for v in &violations {
        assert_eq!(
            tenants.owner_of_kernel(v.kernel_id),
            Some(TenantId(0)),
            "violation attributed to the wrong tenant"
        );
        assert_eq!(v.kind, ViolationKind::OutOfBounds);
    }
    let stats = tenants.stats(TenantId(0)).expect("attacker stats");
    assert_eq!(stats.violations_attributed, violations.len() as u64);
    assert_eq!(
        tenants
            .stats(TenantId(1))
            .expect("victim stats")
            .violations_attributed,
        0
    );
}

/// Without strict runtime tags the raw-VA probe completes silently and
/// corrupts the victim — the exposure the serving configuration closes.
#[test]
fn lax_tags_let_raw_va_probes_corrupt_silently() {
    let cfg = ServingConfig {
        slices: vec![(1, 65, 1), (65, 129, 1)],
        queues: vec![vec![JobKind::AttackRawVa { victim: 1 }], Vec::new()],
        strict_runtime_tags: false,
        max_cycles: 200_000,
    };
    let s = run_serving(&cfg);
    assert_eq!(
        s.tallies[4], 1,
        "raw-VA probe should corrupt silently: {:?}",
        s.tallies
    );
}

/// A tenant whose slice is exhausted gets a typed rejection, and the
/// launch path surfaces it without panicking; once traffic drains, the
/// recycled slice admits new launches again.
#[test]
fn slice_exhaustion_is_typed_and_recoverable() {
    let mut sys = System::new(strict_tenant_config());
    let mut tenants = TenantTable::with_slices([(1u16, 2u16, 1u64)]);
    let buf = sys.alloc(64).expect("buffer");

    let mut two_buffers = KernelBuilder::new("isolation_two_bufs");
    let x = two_buffers.param_buffer("x", false);
    let y = two_buffers.param_buffer("y", false);
    let tid = two_buffers.global_thread_id();
    let off = two_buffers.shl(tid, Operand::Imm(2));
    two_buffers.st(
        MemSpace::Global,
        MemWidth::W4,
        two_buffers.base_offset(x, off),
        tid,
    );
    two_buffers.st(
        MemSpace::Global,
        MemWidth::W4,
        two_buffers.base_offset(y, off),
        tid,
    );
    two_buffers.ret();
    let wide = Arc::new(two_buffers.finish().expect("valid kernel"));

    let err = sys
        .launch_tenant(
            &mut tenants,
            TenantId(0),
            wide,
            1,
            4,
            &[Arg::Buffer(buf), Arg::Buffer(buf)],
        )
        .expect_err("two IDs cannot fit a one-ID slice");
    assert!(
        matches!(
            err,
            SystemError::Driver(DriverError::RegionIdsExhausted { needed: 2 })
        ),
        "wrong error: {err:?}"
    );
    assert_eq!(
        tenants.stats(TenantId(0)).expect("stats").launches_rejected,
        1
    );

    // Single-ID launches keep working, recycling the lone ID each time.
    let mut single = KernelBuilder::new("isolation_single");
    let a = single.param_buffer("A", false);
    let tid = single.global_thread_id();
    let off = single.shl(tid, Operand::Imm(2));
    single.st(
        MemSpace::Global,
        MemWidth::W4,
        single.base_offset(a, off),
        tid,
    );
    single.ret();
    let narrow = Arc::new(single.finish().expect("valid kernel"));
    for _ in 0..3 {
        let (report, violations) = sys
            .launch_tenant(
                &mut tenants,
                TenantId(0),
                narrow.clone(),
                1,
                4,
                &[Arg::Buffer(buf)],
            )
            .expect("single-ID launch admitted");
        assert!(report.completed());
        assert!(violations.is_empty());
    }
    let stats = tenants.stats(TenantId(0)).expect("stats");
    assert_eq!(stats.launches_completed, 3);
}
