#!/usr/bin/env bash
# Offline CI gate: everything here must pass with zero registry access.
#
#   scripts/ci.sh          # format check, build, default tests, fig1 smoke
#   CI_FULL=1 scripts/ci.sh # also run the randomized property suites
#   CI_PERF=0 scripts/ci.sh # skip the simulator-throughput regression gate
#                           # (for machines much slower than the baseline's)
#
# The workspace has no external dependencies, so --offline is a hard
# guarantee, not an optimization.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test (workspace, default features) --offline"
cargo test -q --workspace --offline

if [[ "${CI_FULL:-0}" == "1" ]]; then
    echo "== cargo test --features proptest-tests --offline"
    cargo test -q --features proptest-tests --offline
fi

if [[ "${CI_PERF:-1}" == "1" ]]; then
    echo "== simulator throughput smoke gate (CI_PERF=0 to skip)"
    # Fails when the smoke sweep's instrs/sec drops more than 30% below
    # the rate recorded in the committed BENCH_simcore.json.
    ./target/release/throughput --smoke --check BENCH_simcore.json
fi

echo "== experiments fig1 smoke run"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
./target/release/experiments fig1 "$out" --jobs 2
test -s "$out/fig1.txt"
test -s "$out/fig1.json"

echo "CI OK"
