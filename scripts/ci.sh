#!/usr/bin/env bash
# Offline CI gate: everything here must pass with zero registry access.
#
#   scripts/ci.sh          # format check, build, default tests, fig1 smoke
#   CI_FULL=1 scripts/ci.sh # also run the randomized property suites
#   CI_PERF=0 scripts/ci.sh # skip the simulator-throughput regression gate
#                           # (for machines much slower than the baseline's)
#
# The workspace has no external dependencies, so --offline is a hard
# guarantee, not an optimization.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== panic-surface gate (driver/sim/mem unwrap+expect ceiling)"
# Graceful-degradation budget: the protection substrate reports errors
# through DriverError/RunError/MemFault instead of panicking. New unwrap()
# or expect( call sites in these crates (tests included) need either a
# conversion to a structured error or a deliberate ceiling bump here.
panic_sites=$(grep -rEo '\.unwrap\(\)|\.expect\(' \
    crates/driver/src crates/sim/src crates/mem/src | wc -l)
# 140 = 137 + 3 remaining invariant assertions in sim/par.rs (live PCs,
# resident workgroups, forkable guards); the checked-translation and
# decoded-operand expects were converted to typed MemFault aborts /
# defensive skips, so a metadata mapping changing mid-run degrades
# gracefully instead of panicking.
panic_ceiling=140
if [[ "$panic_sites" -gt "$panic_ceiling" ]]; then
    echo "panic surface grew: $panic_sites unwrap/expect sites in" \
         "driver+sim+mem (ceiling $panic_ceiling)" >&2
    exit 1
fi
echo "   $panic_sites unwrap/expect sites (ceiling $panic_ceiling)"

echo "== cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test (workspace, default features) --offline"
cargo test -q --workspace --offline

if [[ "${CI_FULL:-0}" == "1" ]]; then
    echo "== cargo test --features proptest-tests --offline"
    cargo test -q --features proptest-tests --offline
fi

if [[ "${CI_PERF:-1}" == "1" ]]; then
    echo "== simulator throughput smoke gate (CI_PERF=0 to skip)"
    # Fails when the smoke sweep's instrs/sec drops more than 30% below
    # the rate recorded in the committed BENCH_simcore.json.
    ./target/release/throughput --smoke --check BENCH_simcore.json
fi

echo "== kernel-verifier registry sweep (warnings/errors must be justified)"
# Runs the static-analysis pass pipeline (def-use, barrier divergence,
# shared-memory races, redundant checks) over every registry kernel; any
# unjustified warning/error finding fails CI.
./target/release/verify

echo "== experiments fig1 smoke run"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
./target/release/experiments fig1 "$out" --jobs 2
test -s "$out/fig1.txt"
test -s "$out/fig1.json"

echo "== telemetry schema gate"
# The registry key set is the machine-readable surface downstream tooling
# parses; the fixture pins the names (values are free to drift). A
# mismatch means a metric was renamed/removed without regenerating
# tests/golden/telemetry_schema.json.
./target/release/profile --check-schema tests/golden/telemetry_schema.json

if [[ "${CI_PERF:-1}" == "1" ]]; then
    echo "== stall-attribution exhibit determinism (CI_PERF=0 to skip)"
    # The Fig. 13-analogue table must be byte-identical regardless of the
    # fan-out width — results merge in submission order, never arrival
    # order.
    ./target/release/experiments profile "$out" --jobs 1
    mv "$out/profile.txt" "$out/profile.j1.txt"
    ./target/release/experiments profile "$out" --jobs 4
    cmp "$out/profile.j1.txt" "$out/profile.txt"
fi

if [[ "${CI_PERF:-1}" == "1" ]]; then
    echo "== fault-resilience smoke run (CI_PERF=0 to skip)"
    # The injected-fault sweep must classify every trial and terminate
    # within the tightened watchdog budget; identical matrices at 1 and 8
    # jobs pin the determinism guarantee.
    ./target/release/experiments fault_resilience "$out" --jobs 1 --max-cycles 100000
    mv "$out/fault_resilience.txt" "$out/fault_resilience.j1.txt"
    ./target/release/experiments fault_resilience "$out" --jobs 8 --max-cycles 100000
    cmp "$out/fault_resilience.j1.txt" "$out/fault_resilience.txt"
    grep -q '"quarantined": false' "$out/fault_resilience.json"
fi

if [[ "${CI_PERF:-1}" == "1" ]]; then
    echo "== adversarial fuzz scoreboard (CI_PERF=0 to skip)"
    # 225 seeded specimens spanning all three check types; the scoreboard
    # must be byte-identical at any --jobs fan-out and any --sim-threads
    # sharding, and the trend gate fails on any per-class detection-rate
    # regression or schema drift against the committed BENCH_detection.json.
    ./target/release/experiments fuzz_scoreboard "$out" --jobs 1
    mv "$out/fuzz_scoreboard.txt" "$out/fuzz_scoreboard.j1.txt"
    ./target/release/experiments fuzz_scoreboard "$out" --jobs 4
    cmp "$out/fuzz_scoreboard.j1.txt" "$out/fuzz_scoreboard.txt"
    ./target/release/experiments fuzz_scoreboard "$out" --jobs 4 --sim-threads 7
    cmp "$out/fuzz_scoreboard.j1.txt" "$out/fuzz_scoreboard.txt"

    echo "== static-precision exhibit determinism (CI_PERF=0 to skip)"
    # Classification, stall delta and certificate audit must be
    # byte-identical at any --jobs fan-out and --sim-threads sharding;
    # zero audit violations is asserted on the rendered text.
    ./target/release/experiments static_precision "$out" --jobs 1
    mv "$out/static_precision.txt" "$out/static_precision.j1.txt"
    ./target/release/experiments static_precision "$out" --jobs 4
    cmp "$out/static_precision.j1.txt" "$out/static_precision.txt"
    ./target/release/experiments static_precision "$out" --jobs 4 --sim-threads 7
    cmp "$out/static_precision.j1.txt" "$out/static_precision.txt"
    grep -q ' 0 violations' "$out/static_precision.txt"

    echo "== flight-recorder forensics matrix (CI_PERF=0 to skip)"
    # Replayed fuzz specimens and fault-injection trials must produce
    # byte-identical post-mortems at any --jobs fan-out and --sim-threads
    # sharding (the ring drains per-core outboxes in deterministic order),
    # and every detected specimen's post-mortem must name the oracle's
    # guilty memory instruction and victim region.
    ./target/release/experiments forensics "$out" --jobs 1
    mv "$out/forensics.txt" "$out/forensics.j1.txt"
    ./target/release/experiments forensics "$out" --jobs 4
    cmp "$out/forensics.j1.txt" "$out/forensics.txt"
    ./target/release/experiments forensics "$out" --jobs 4 --sim-threads 7
    cmp "$out/forensics.j1.txt" "$out/forensics.txt"
    grep -q 'match=yes' "$out/forensics.txt"
    if grep -q 'match=NO\|victim_named=NO\|window_overlap=NO' "$out/forensics.txt"; then
        echo "forensics post-mortem disagrees with the fuzz oracle" >&2
        exit 1
    fi

    echo "== observation-overhead gate (CI_PERF=0 to skip)"
    # The committed BENCH_observe.json mirrors the throughput smoke sweep
    # (same workload, protections, reps), so its disabled-mode sim_cycles
    # must equal BENCH_simcore.json's smoke sim_cycles: the always-on
    # recorder hook costs the uninstrumented hot path zero simulated
    # cycles. The trend gate below recomputes the sweep and additionally
    # pins counters/full against disabled.
    obs_cycles=$(grep -m1 '"sim_cycles"' BENCH_observe.json | grep -oE '[0-9]+')
    smoke_cycles=$(grep '"sim_cycles"' BENCH_simcore.json | tail -1 | grep -oE '[0-9]+')
    if [[ "$obs_cycles" != "$smoke_cycles" ]]; then
        echo "BENCH_observe disabled sim_cycles ($obs_cycles) !=" \
             "BENCH_simcore smoke sim_cycles ($smoke_cycles) — stale baseline" >&2
        exit 1
    fi
    echo "   disabled-mode sim_cycles match simcore smoke: $obs_cycles"

    echo "== detection + precision + observation trend gate (CI_PERF=0 to skip)"
    ./target/release/trend --check --jobs 4
fi

if [[ "${CI_PERF:-1}" == "1" ]]; then
    echo "== multi-tenant serving exhibit (CI_PERF=0 to skip)"
    # 2000 queued launches from 8 tenants under weighted-fair admission:
    # every cross-tenant probe must classify as detected (never masked or
    # silent), the per-tenant driver.tenant.* accounting must land in the
    # results JSON, and the rendered exhibit must be byte-identical at any
    # worker count.
    ./target/release/experiments multi_tenant "$out" --jobs 1
    mv "$out/multi_tenant.txt" "$out/multi_tenant.j1.txt"
    ./target/release/experiments multi_tenant "$out" --jobs 4
    cmp "$out/multi_tenant.j1.txt" "$out/multi_tenant.txt"
    grep -q 'masked=0 silent=0' "$out/multi_tenant.txt"
    grep -q 'misattributed=0 secrets_intact=true' "$out/multi_tenant.txt"
    grep -q '"driver.tenant.launches_admitted"' "$out/multi_tenant.json"

    echo "== QoS fairness exhibit (CI_PERF=0 to skip)"
    ./target/release/experiments qos_fairness "$out" --jobs 1
    mv "$out/qos_fairness.txt" "$out/qos_fairness.j1.txt"
    ./target/release/experiments qos_fairness "$out" --jobs 4
    cmp "$out/qos_fairness.j1.txt" "$out/qos_fairness.txt"
    grep -q 'jain_index_over_mean_wait' "$out/qos_fairness.txt"

    echo "== cycle-quantum engine determinism (CI_PERF=0 to skip)"
    # Sharding a single run's SIMT cores across engine workers is a
    # wall-clock optimisation only: the stall-attribution table (full
    # simulated timing + telemetry) must be byte-identical whether the
    # engine runs sequentially or sharded 7 ways (7 doesn't divide the
    # core count, so shard sizes and claim order differ maximally).
    ./target/release/profile --jobs 1 --sim-threads 1 > "$out/profile.st1.txt"
    ./target/release/profile --jobs 1 --sim-threads 7 > "$out/profile.st7.txt"
    cmp "$out/profile.st1.txt" "$out/profile.st7.txt"

    echo "== parallel-engine speedup gate (CI_PERF=0 to skip)"
    # BENCH_parcore.json is the committed fig14 sweep at --sim-threads 4;
    # its producer recorded how many hardware threads it actually had.
    # The >= 2.5x instrs/sec claim is only meaningful when the producer
    # had the cores to back it, so the ratio gate arms itself from the
    # recorded host_parallelism instead of silently passing garbage.
    par_host=$(grep -m1 '"host_parallelism"' BENCH_parcore.json | grep -oE '[0-9]+')
    par_rate=$(grep -m1 '"instrs_per_sec"' BENCH_parcore.json | grep -oE '[0-9]+(\.[0-9]+)?')
    ser_rate=$(grep -m1 '"instrs_per_sec"' BENCH_simcore.json | grep -oE '[0-9]+(\.[0-9]+)?')
    if [[ "$par_host" -ge 4 ]]; then
        awk -v p="$par_rate" -v s="$ser_rate" 'BEGIN {
            r = p / s;
            printf "   parcore/simcore full-sweep ratio: %.2fx\n", r;
            if (r < 2.5) { print "parallel speedup below 2.5x gate" > "/dev/stderr"; exit 1 }
        }'
    else
        awk -v p="$par_rate" -v s="$ser_rate" -v h="$par_host" 'BEGIN {
            printf "   skipped: BENCH_parcore.json came from a %d-thread host (ratio %.2fx); the 2.5x gate needs a producer with >= 4 hardware threads\n", h, p / s;
        }'
    fi
fi

echo "CI OK"
