//! Pointer-forging attacks against GPUShield itself (paper §5.2.4, §6.1):
//! an attacker who controls pointer bits tries to fabricate a region ID
//! that maps to a victim buffer. The per-kernel encrypted random IDs make
//! every attempt land on an invalid RBT entry and fault.
//!
//! ```text
//! cargo run --release --example pointer_forging
//! ```

use gpushield_core::{Bcu, BcuConfig, ViolationKind};
use gpushield_driver::{decrypt_id, Arg, Driver, DriverConfig};
use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth, Operand, TaggedPtr};
use gpushield_sim::{Gpu, GpuConfig, MemGuard};
use std::error::Error;
use std::sync::Arc;

/// Writes through its single pointer argument at a *loaded* offset, so
/// the access is never statically provable and the runtime check always
/// inspects the (possibly forged) pointer tag.
fn write_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("attacker_write");
    let p = b.param_buffer("p", false);
    let j = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, Operand::Imm(0)),
    );
    let off = b.shl(j, Operand::Imm(2));
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, off),
        Operand::Imm(0xBAD),
    );
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut driver = Driver::new(DriverConfig::default(), 1234);
    let mut gpu = Gpu::new(GpuConfig::nvidia());
    let mut bcu = Bcu::new(BcuConfig::default(), 16);

    // The victim's buffer, set up legitimately: its pointer carries an
    // encrypted region ID for this kernel's RBT.
    let secret = driver.malloc(4096)?;
    // Force a runtime-checked pointer (an attacker-reachable one) by
    // launching a kernel whose access is not statically provable.
    let victim_prepared = driver.prepare_launch(write_kernel(), 1, 1, &[Arg::Buffer(secret)])?;
    let setup = victim_prepared.shield.expect("shield on");
    bcu.register_kernel(setup);
    let legit_ptr = TaggedPtr::from_raw(victim_prepared.launch.args[0]);
    println!("victim pointer: {legit_ptr}");
    println!(
        "  encrypted ID 0x{:04x} decrypts to RBT index 0x{:04x} under the kernel key",
        legit_ptr.info(),
        decrypt_id(legit_ptr.info(), setup.key)
    );

    // Attack: the adversary knows the victim's VA and the tag FORMAT, but
    // not the per-launch key. Try a sweep of forged IDs.
    let mut faults = 0;
    let mut successes = 0;
    const TRIES: u16 = 64;
    for forged_id in 0..TRIES {
        let mut launch = victim_prepared.launch.clone();
        launch.args[0] = TaggedPtr::with_region_id(legit_ptr.va(), forged_id * 251).raw();
        let report = gpu.run(
            driver.vm_mut(),
            &[launch],
            Some(&mut bcu as &mut dyn MemGuard),
        )?;
        if report.completed() {
            successes += 1;
        } else {
            faults += 1;
        }
    }
    println!("\nforged-ID sweep: {TRIES} attempts -> {faults} faulted, {successes} succeeded");
    let bad_region = bcu
        .violations()
        .iter()
        .filter(|v| v.kind == ViolationKind::BadRegion)
        .count();
    println!("  {bad_region} rejected as invalid/forged region IDs (BadRegion)");

    // Even *replaying the correct encrypted ID* against a later launch
    // fails: each launch gets a fresh key and fresh random IDs.
    let replay = driver.prepare_launch(write_kernel(), 1, 1, &[Arg::Buffer(secret)])?;
    bcu.register_kernel(replay.shield.expect("shield on"));
    let mut launch = replay.launch.clone();
    launch.args[0] = legit_ptr.raw(); // yesterday's pointer
    let report = gpu.run(
        driver.vm_mut(),
        &[launch],
        Some(&mut bcu as &mut dyn MemGuard),
    )?;
    println!(
        "\nreplaying a previous launch's encrypted pointer: completed={}",
        report.completed()
    );
    assert!(!report.completed(), "stale tags must not survive re-keying");
    Ok(())
}
