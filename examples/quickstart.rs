//! Quickstart: build a kernel, run it on a GPUShield-protected GPU, and
//! watch an out-of-bounds kernel get caught.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpushield::{Arg, System, SystemConfig};
use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // --- 1. Write a kernel in the IR DSL: c[i] = a[i] + b[i] ------------
    let mut b = KernelBuilder::new("vectoradd");
    let a = b.param_buffer("a", true);
    let bb = b.param_buffer("b", true);
    let c = b.param_buffer("c", false);
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let guard = b.lt(tid, n);
    b.if_then(guard, |b| {
        let off = b.shl(tid, Operand::Imm(2));
        let x = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(a, off));
        let y = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(bb, off));
        let s = b.add(x, y);
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(c, off), s);
    });
    b.ret();
    let kernel = Arc::new(b.finish()?);

    // --- 2. Run it on the protected Nvidia-like system ------------------
    const N: u64 = 1024;
    let mut sys = System::new(SystemConfig::nvidia_protected());
    let ha = sys.alloc(N * 4)?;
    let hb = sys.alloc(N * 4)?;
    let hc = sys.alloc(N * 4)?;
    for i in 0..N {
        sys.write_buffer(ha, i * 4, &(i as u32).to_le_bytes());
        sys.write_buffer(hb, i * 4, &(2 * i as u32).to_le_bytes());
    }
    let report = sys.launch(
        kernel.clone(),
        (N / 256) as u32,
        256,
        &[
            Arg::Buffer(ha),
            Arg::Buffer(hb),
            Arg::Buffer(hc),
            Arg::Scalar(N),
        ],
    )?;
    assert!(report.completed());
    assert_eq!(sys.read_uint(hc, 100 * 4, 4), 300);
    println!(
        "vectoradd: {} cycles, {} instructions, result verified",
        report.cycles,
        report.instructions()
    );

    // The compiler proved every access safe, so zero runtime checks ran.
    let bat = sys.last_bat().expect("shield enabled");
    println!(
        "static analysis: {}/{} sites proven safe ({} runtime checks executed)",
        bat.sites_static,
        bat.sites_total,
        sys.bcu_stats().checks
    );

    // --- 3. Now a buggy launch: more threads than elements --------------
    // Without the `tid < n` guard this would scribble past `c`; GPUShield
    // detects the first out-of-bounds warp access and aborts the kernel.
    let mut buggy = KernelBuilder::new("vectoradd_buggy");
    let a2 = buggy.param_buffer("a", true);
    let c2 = buggy.param_buffer("c", false);
    let tid2 = buggy.global_thread_id();
    let off2 = buggy.shl(tid2, Operand::Imm(2));
    let x2 = buggy.ld(MemSpace::Global, MemWidth::W4, buggy.base_offset(a2, off2));
    buggy.st(
        MemSpace::Global,
        MemWidth::W4,
        buggy.base_offset(c2, off2),
        x2,
    );
    buggy.ret();
    let buggy = Arc::new(buggy.finish()?);

    let small = sys.alloc(64 * 4)?; // 64 elements, but 1024 threads
    let report = sys.launch(buggy, 4, 256, &[Arg::Buffer(ha), Arg::Buffer(small)])?;
    assert!(!report.completed());
    let v = &sys.violations()[0];
    println!(
        "buggy kernel: {} — {:?} at addresses 0x{:x}..0x{:x}",
        report.launches[0]
            .abort
            .map(|a| a.to_string())
            .unwrap_or_default(),
        v.kind,
        v.range.0,
        v.range.1
    );
    Ok(())
}
