//! The three GPU memory-addressing methods of paper Figs. 2 and 3,
//! rendered as vendor-flavoured listings from one vector-add kernel.
//!
//! ```text
//! cargo run --release --example addressing_modes
//! ```

use gpushield_isa::{
    vendor_listing, Kernel, KernelBuilder, MemSpace, MemWidth, Operand, VendorStyle,
};

/// `c[id] = a[id] + b[id]` using the requested addressing method.
fn vectoradd(method: char) -> Kernel {
    let mut b = KernelBuilder::new("add");
    let a = b.param_buffer("a", true);
    let bb = b.param_buffer("b", true);
    let c = b.param_buffer("c", false);
    let id = b.global_thread_id();
    let off = b.shl(id, Operand::Imm(2));
    let (addr_a, addr_b, addr_c) = match method {
        // Method A: binding table + offset (Intel BTS): the buffer is
        // named by the BTI in the message descriptor.
        'A' => (
            b.binding_table(0, off),
            b.binding_table(1, off),
            b.binding_table(2, off),
        ),
        // Method B: full virtual address in a register (Nvidia/AMD flat).
        'B' => {
            let fa = b.add(a, off);
            let fb = b.add(bb, off);
            let fc = b.add(c, off);
            (b.flat(fa), b.flat(fb), b.flat(fc))
        }
        // Method C: base + offset.
        _ => (
            b.base_offset(a, off),
            b.base_offset(bb, off),
            b.base_offset(c, off),
        ),
    };
    let x = b.ld(MemSpace::Global, MemWidth::W4, addr_a);
    let y = b.ld(MemSpace::Global, MemWidth::W4, addr_b);
    let s = b.add(x, y);
    b.st(MemSpace::Global, MemWidth::W4, addr_c, s);
    b.ret();
    b.finish().expect("valid kernel")
}

fn main() {
    println!("== Method A: binding table + offset (Intel send/BTS) ==");
    println!(
        "{}",
        vendor_listing(&vectoradd('A'), VendorStyle::IntelSend)
    );

    println!("== Method B: full virtual address (Nvidia SASS) ==");
    println!(
        "{}",
        vendor_listing(&vectoradd('B'), VendorStyle::NvidiaSass)
    );

    println!("== Method B: full virtual address (AMD flat) ==");
    println!("{}", vendor_listing(&vectoradd('B'), VendorStyle::AmdFlat));

    println!("== Method C: base + offset (generic IR) ==");
    println!("{}", vectoradd('C'));

    println!("GPUShield pointer classes per method (Fig. 7):");
    println!("  Method A/C -> eligible for Type 3 (size embedded in pointer, no RBT access)");
    println!("  Method B   -> Type 2 (encrypted region ID, RBT-indexed check)");
    println!("  statically proven accesses -> Type 1 (no runtime check at all)");
}
