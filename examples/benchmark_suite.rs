//! Run a slice of the benchmark suite on baseline and protected systems
//! and print per-workload statistics — a miniature of the Fig. 14 harness.
//!
//! ```text
//! cargo run --release --example benchmark_suite [filter]
//! ```

use gpushield_bench::{run_workload, Protection, Target};
use gpushield_workloads::cuda_set;

fn main() {
    let filter = std::env::args().nth(1);
    let selected: Vec<_> = cuda_set()
        .into_iter()
        .filter(|w| {
            filter
                .as_deref()
                .map(|f| w.name().contains(f))
                .unwrap_or_else(|| {
                    // Default: one representative per category.
                    [
                        "mm",
                        "vectoradd",
                        "bfs-dtc",
                        "pagerank",
                        "blacksholes",
                        "hotspot",
                        "nw",
                    ]
                    .contains(&w.name())
                })
        })
        .collect();

    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>8} {:>9} {:>8}",
        "workload", "cat", "base(cyc)", "shield", "ovh%", "l1rc-hit%", "reduct%"
    );
    for w in selected {
        let base = run_workload(&w, Target::Nvidia, Protection::baseline());
        let gs = run_workload(&w, Target::Nvidia, Protection::shield_default());
        let st = run_workload(
            &w,
            Target::Nvidia,
            Protection::shield_default().with_static(),
        );
        println!(
            "{:<14} {:>6} {:>10} {:>10} {:>8.2} {:>9.1} {:>8.1}",
            w.display_name(),
            w.category().to_string(),
            base.cycles,
            gs.cycles,
            (gs.cycles as f64 / base.cycles as f64 - 1.0) * 100.0,
            gs.bcu.l1_hit_rate() * 100.0,
            st.check_reduction * 100.0,
        );
    }
    println!("\n(run with a name filter to select specific workloads, e.g. `streamcluster`)");
}
