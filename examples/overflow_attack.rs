//! The paper's Fig. 4 exploit, end to end: out-of-bounds writes on
//! 512-byte-aligned SVM buffers behave exactly as observed on a real
//! Nvidia GPU — suppressed inside the alignment slot, silently corrupting
//! within the 2 MB mapped region, aborting only across it — and a
//! mind-control-style function-pointer overwrite works. GPUShield stops
//! all of it.
//!
//! ```text
//! cargo run --release --example overflow_attack
//! ```

use gpushield::{Arg, System, SystemConfig, ViolationKind};
use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use std::error::Error;
use std::sync::Arc;

/// `A[off] = 0xBAD` from one thread.
fn overflow_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("kernel_overflow");
    let a = b.param_buffer("A", false);
    let off_elems = b.param_scalar("off");
    let off = b.shl(off_elems, Operand::Imm(2));
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(a, off),
        Operand::Imm(0xBAD),
    );
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// A victim "dispatch" kernel: reads a function-pointer slot from its
/// table and stores which function ran. The attacker's overflow rewrites
/// the slot — the mind-control-attack setup phase (§5.7).
fn dispatch_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("dispatch");
    let table = b.param_buffer("fn_table", false);
    let outcome = b.param_buffer("outcome", false);
    let f = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(table, Operand::Imm(0)),
    );
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(outcome, Operand::Imm(0)),
        f,
    );
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("== Fig. 4: three OOB writes on an UNPROTECTED GPU ==");
    {
        let mut sys = System::new(SystemConfig::nvidia_baseline());
        let a = sys.alloc(16 * 4)?; // 64 B, 512 B-aligned slot
        let b = sys.alloc(16 * 4)?; // adjacent

        // Case 1: within A's 512 B slot — suppressed (no side effect).
        let r = sys.launch(
            overflow_kernel(),
            1,
            1,
            &[Arg::Buffer(a), Arg::Scalar(0x10)],
        )?;
        println!(
            "A[0x10]    -> completed={} B[0]=0x{:x} (suppressed by alignment padding)",
            r.completed(),
            sys.read_uint(b, 0, 4)
        );

        // Case 2: 512 B past A — lands exactly on B. Observable by the CPU.
        let r = sys.launch(
            overflow_kernel(),
            1,
            1,
            &[Arg::Buffer(a), Arg::Scalar(0x80)],
        )?;
        println!(
            "A[0x80]    -> completed={} B[0]=0x{:x} (SILENT CORRUPTION)",
            r.completed(),
            sys.read_uint(b, 0, 4)
        );

        // Case 3: 2 MB past A — leaves the mapped region, kernel aborted.
        let r = sys.launch(
            overflow_kernel(),
            1,
            1,
            &[Arg::Buffer(a), Arg::Scalar(0x80000)],
        )?;
        println!(
            "A[0x80000] -> completed={} ({})",
            r.completed(),
            r.launches[0]
                .abort
                .map(|x| x.to_string())
                .unwrap_or_default()
        );
    }

    println!("\n== The same three writes under GPUShield ==");
    {
        for off in [0x10u64, 0x80, 0x80000] {
            let mut sys = System::new(SystemConfig::nvidia_protected());
            let a = sys.alloc(16 * 4)?;
            let b = sys.alloc(16 * 4)?;
            let r = sys.launch(overflow_kernel(), 1, 1, &[Arg::Buffer(a), Arg::Scalar(off)])?;
            println!(
                "A[0x{off:x}] -> completed={} violation={:?} B intact={}",
                r.completed(),
                sys.violations().first().map(|v| v.kind),
                sys.read_uint(b, 0, 4) == 0
            );
            assert!(!r.completed());
            assert_eq!(sys.violations()[0].kind, ViolationKind::OutOfBounds);
        }
    }

    println!("\n== Mind-control-style control-flow hijack ==");
    {
        // Unprotected: the attacker overflows `A` to rewrite the adjacent
        // function-pointer table, and the victim dispatch kernel runs the
        // attacker's "function".
        let mut sys = System::new(SystemConfig::nvidia_baseline());
        let a = sys.alloc(16 * 4)?;
        let fn_table = sys.alloc(16 * 4)?;
        let outcome = sys.alloc(4)?;
        sys.write_buffer(fn_table, 0, &1u32.to_le_bytes()); // legit fn id 1
        let _ = sys.launch(
            overflow_kernel(),
            1,
            1,
            &[Arg::Buffer(a), Arg::Scalar(0x80)],
        )?;
        let _ = sys.launch(
            dispatch_kernel(),
            1,
            1,
            &[Arg::Buffer(fn_table), Arg::Buffer(outcome)],
        )?;
        println!(
            "unprotected: dispatch ran function 0x{:x} (0xBAD = attacker-controlled)",
            sys.read_uint(outcome, 0, 4)
        );
        assert_eq!(sys.read_uint(outcome, 0, 4), 0xBAD);

        // GPUShield: the setup phase itself is blocked.
        let mut sys = System::new(SystemConfig::nvidia_protected());
        let a = sys.alloc(16 * 4)?;
        let fn_table = sys.alloc(16 * 4)?;
        let outcome = sys.alloc(4)?;
        sys.write_buffer(fn_table, 0, &1u32.to_le_bytes());
        let r = sys.launch(
            overflow_kernel(),
            1,
            1,
            &[Arg::Buffer(a), Arg::Scalar(0x80)],
        )?;
        assert!(!r.completed());
        let _ = sys.launch(
            dispatch_kernel(),
            1,
            1,
            &[Arg::Buffer(fn_table), Arg::Buffer(outcome)],
        )?;
        println!(
            "GPUShield:   setup phase aborted; dispatch ran function 0x{:x}",
            sys.read_uint(outcome, 0, 4)
        );
        assert_eq!(sys.read_uint(outcome, 0, 4), 1);
    }
    Ok(())
}
