//! Execution tracing: watch a kernel's dispatch, memory traffic, barriers,
//! and retirement cycle by cycle — and see exactly where a bounds
//! violation fired.
//!
//! ```text
//! cargo run --release --example trace_debug
//! ```

use gpushield::{Arg, System, SystemConfig, Trace, TraceKind};
use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // A two-phase kernel: stage values in shared memory, synchronize,
    // then write reversed within the workgroup.
    let mut b = KernelBuilder::new("reverse");
    let out = b.param_buffer("out", false);
    b.shared_mem(64 * 4);
    let tid = b.mov(b.thread_id());
    let soff = b.shl(tid, Operand::Imm(2));
    b.st(MemSpace::Shared, MemWidth::W4, b.flat(soff), tid);
    b.bar();
    let mate = b.sub(Operand::Imm(63), tid);
    let moff = b.shl(mate, Operand::Imm(2));
    let v = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(moff));
    let g = b.global_thread_id();
    let goff = b.shl(g, Operand::Imm(2));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, goff), v);
    b.ret();
    let kernel = Arc::new(b.finish()?);

    let mut sys = System::new(SystemConfig::nvidia_protected());
    let buf = sys.alloc(128 * 4)?;
    let mut trace = Trace::new(4096);
    let report = sys.launch_traced(kernel, 2, 64, &[Arg::Buffer(buf)], &mut trace)?;
    assert!(report.completed());
    assert_eq!(
        sys.read_uint(buf, 0, 4),
        63,
        "reversed within the workgroup"
    );

    println!("== first 20 events ==");
    for e in trace.events().iter().take(20) {
        println!("{e}");
    }
    let barriers = trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceKind::Barrier)
        .count();
    let mems = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Mem { .. }))
        .count();
    println!(
        "\n{} events total: {barriers} barrier arrivals, {mems} memory instructions",
        trace.events().len()
    );

    // Now trace an out-of-bounds kernel and find the abort.
    let mut bad = KernelBuilder::new("oob");
    let p = bad.param_buffer("p", false);
    bad.st(
        MemSpace::Global,
        MemWidth::W4,
        bad.base_offset(p, Operand::Imm(1 << 20)),
        Operand::Imm(1),
    );
    bad.ret();
    let bad = Arc::new(bad.finish()?);
    let small = sys.alloc(64)?;
    let mut trace = Trace::new(256);
    let report = sys.launch_traced(bad, 1, 1, &[Arg::Buffer(small)], &mut trace)?;
    assert!(!report.completed());
    println!("\n== violating launch ==");
    for e in trace.events() {
        println!("{e}");
    }
    println!("\n{}", sys.error_report());
    Ok(())
}
