//! Workspace-root crate holding the repository's examples and integration
//! tests. The real library surface lives in the [`gpushield`] facade crate
//! and the per-subsystem crates it re-exports.

pub use gpushield;
