//! TLB model: a thin wrapper over [`Cache`] keyed by virtual page number.

use crate::cache::{Cache, CacheStats, Replacement};
use crate::vm::PAGE_SIZE;

/// TLB statistics (same shape as cache statistics).
pub type TlbStats = CacheStats;

/// A translation lookaside buffer.
///
/// Table 5 configures a 64-entry fully associative LRU L1 TLB per core and
/// a 1024-entry 32-way shared L2 TLB.
///
/// # Example
///
/// ```
/// use gpushield_mem::Tlb;
///
/// let mut tlb = Tlb::new(64, 0);
/// assert!(!tlb.access(0x1234)); // cold
/// assert!(tlb.access(0x1fff)); // same 4KB page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: Cache,
}

impl Tlb {
    /// Creates a TLB with `entries` translations and `ways` associativity
    /// (0 = fully associative). Replacement is LRU per Table 5.
    pub fn new(entries: usize, ways: usize) -> Self {
        Tlb {
            // Key the underlying cache by page-granular "lines".
            inner: Cache::new(
                entries as u64 * PAGE_SIZE,
                PAGE_SIZE,
                ways,
                Replacement::Lru,
            ),
        }
    }

    /// Looks up the page of `va`, allocating on miss; `true` on hit.
    pub fn access(&mut self, va: u64) -> bool {
        self.inner.access(va)
    }

    /// Pure lookup: would `access` hit? No allocation, no statistics, no
    /// LRU update — the observation the parallel engine's phase stage uses
    /// to predict timing against a quantum-start snapshot.
    pub fn probe(&self, va: u64) -> bool {
        self.inner.probe(va)
    }

    /// Flushes all translations.
    pub fn flush(&mut self) {
        self.inner.flush();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.inner.stats()
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4, 0);
        assert!(!t.access(0));
        assert!(t.access(4095));
        assert!(!t.access(4096));
    }

    #[test]
    fn capacity_evictions() {
        let mut t = Tlb::new(2, 0);
        t.access(0);
        t.access(PAGE_SIZE);
        t.access(0); // refresh page 0
        t.access(2 * PAGE_SIZE); // evicts page 1
        assert!(t.access(0));
        assert!(!t.access(PAGE_SIZE));
    }

    #[test]
    fn flush_forgets() {
        let mut t = Tlb::new(4, 0);
        t.access(0);
        t.flush();
        assert!(!t.access(0));
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn set_associative_tlb_maps_pages_to_sets() {
        // 4 entries, 2-way → 2 sets; pages alternate sets.
        let mut t = Tlb::new(4, 2);
        for p in 0..4u64 {
            t.access(p * PAGE_SIZE);
        }
        for p in 0..4u64 {
            assert!(t.access(p * PAGE_SIZE), "page {p} resident");
        }
        // Two more pages in set 0 evict the oldest there.
        t.access(4 * PAGE_SIZE);
        t.access(6 * PAGE_SIZE);
        assert!(!t.access(0), "page 0 evicted from its set");
        assert!(t.access(PAGE_SIZE), "other set untouched");
    }
}
