//! FR-FCFS-flavoured DRAM channel model (paper Table 5: 2 KB row buffer,
//! FR-FCFS policy, 16 channels).
//!
//! The model is latency-based rather than event-driven: each channel keeps
//! its `busy_until` cycle and the currently open row. A request's service
//! start is `max(now, busy_until)`; its service time depends on whether it
//! hits the open row (the first-ready aspect of FR-FCFS — row hits are
//! cheap — emerges because consecutive coalesced transactions from the same
//! warp land in the same row). This reproduces the two DRAM behaviours the
//! evaluation depends on: bandwidth saturation under memory-intensive
//! kernels and row-locality advantages for streaming access.

/// DRAM timing/geometry configuration (cycles are GPU core cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Cycles to stream one transaction out of an open row.
    pub row_hit_cycles: u64,
    /// Cycles to precharge + activate + read on a row conflict.
    pub row_miss_cycles: u64,
    /// Fixed interconnect latency added to every request.
    pub interconnect_cycles: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 16,
            row_bytes: 2048,
            row_hit_cycles: 20,
            row_miss_cycles: 80,
            interconnect_cycles: 100,
        }
    }
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Serviced requests.
    pub requests: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Total queueing cycles across requests.
    pub queue_cycles: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Channel {
    open_row: Option<u64>,
    busy_until: u64,
    /// Total cycles this channel spent servicing requests (occupancy).
    busy_cycles: u64,
}

/// The DRAM device: channels with open-row state.
///
/// # Example
///
/// ```
/// use gpushield_mem::{Dram, DramConfig};
///
/// let mut dram = Dram::new(DramConfig::default());
/// let t1 = dram.access(0x0000, 0);
/// let t2 = dram.access(0x0080, t1); // same row: cheaper
/// assert!(t2 - t1 < t1);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    channels: Vec<Channel>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM device.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.channels == 0` or `cfg.row_bytes == 0`.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.channels > 0, "need at least one channel");
        assert!(cfg.row_bytes > 0, "zero row size");
        Dram {
            channels: vec![Channel::default(); cfg.channels],
            cfg,
            stats: DramStats::default(),
        }
    }

    /// Channel interleaving: consecutive 256B chunks rotate channels, so a
    /// warp's coalesced transactions spread across channels while staying
    /// row-local within one.
    fn channel_of(&self, pa: u64) -> usize {
        ((pa / 256) % self.channels.len() as u64) as usize
    }

    fn row_of(&self, pa: u64) -> u64 {
        pa / (self.cfg.row_bytes * self.channels.len() as u64)
    }

    /// Services a request to physical address `pa` issued at cycle `now`;
    /// returns the completion cycle.
    pub fn access(&mut self, pa: u64, now: u64) -> u64 {
        let ch_idx = self.channel_of(pa);
        let row = self.row_of(pa);
        let ch = &mut self.channels[ch_idx];
        let start = now.max(ch.busy_until);
        let hit = ch.open_row == Some(row);
        let service = if hit {
            self.cfg.row_hit_cycles
        } else {
            self.cfg.row_miss_cycles
        };
        ch.open_row = Some(row);
        ch.busy_until = start + service;
        ch.busy_cycles += service;
        self.stats.requests += 1;
        if hit {
            self.stats.row_hits += 1;
        }
        self.stats.queue_cycles += start - now;
        start + service + self.cfg.interconnect_cycles
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Per-channel occupancy: total service cycles each channel has spent
    /// busy, in channel order. The spread across channels is the
    /// interleaving-quality signal telemetry histograms.
    pub fn channel_busy_cycles(&self) -> Vec<u64> {
        self.channels.iter().map(|c| c.busy_cycles).collect()
    }

    /// Clears statistics and channel state.
    pub fn reset(&mut self) {
        self.stats = DramStats::default();
        for ch in &mut self.channels {
            *ch = Channel::default();
        }
    }

    /// Builds a timing-only snapshot of the channel state for speculative
    /// scheduling (see [`DramView`]).
    pub fn view(&self) -> DramView {
        DramView {
            cfg: self.cfg,
            channels: self.channels.clone(),
        }
    }

    /// Refreshes an existing view in place (no allocation once the channel
    /// vector exists).
    pub fn refresh_view(&self, view: &mut DramView) {
        view.cfg = self.cfg;
        view.channels.clear();
        view.channels.extend_from_slice(&self.channels);
    }
}

/// A private timing-only copy of the DRAM channel state.
///
/// The parallel engine gives each SIMT core a view refreshed from the real
/// [`Dram`] at every quantum start; during the phase the core predicts
/// completion cycles against its view (mutating only the copy), and the
/// quantum drain replays the accesses against the real device in canonical
/// order. Views never touch statistics — those come from the replay.
#[derive(Debug, Clone, Default)]
pub struct DramView {
    cfg: DramConfig,
    channels: Vec<Channel>,
}

impl DramView {
    /// Predicted completion cycle for a request at `pa` issued at `now`,
    /// using the same FR-FCFS timing math as [`Dram::access`].
    pub fn access(&mut self, pa: u64, now: u64) -> u64 {
        let ch_idx = ((pa / 256) % self.channels.len() as u64) as usize;
        let row = pa / (self.cfg.row_bytes * self.channels.len() as u64);
        let ch = &mut self.channels[ch_idx];
        let start = now.max(ch.busy_until);
        let service = if ch.open_row == Some(row) {
            self.cfg.row_hit_cycles
        } else {
            self.cfg.row_miss_cycles
        };
        ch.open_row = Some(row);
        ch.busy_until = start + service;
        start + service + self.cfg.interconnect_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_cheaper_than_miss() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        let miss = d.access(0, 0);
        let base = miss; // issue after first completes to avoid queueing
        let hit = d.access(128, base) - base;
        let far = d.access(1 << 24, base + hit) - (base + hit);
        assert!(
            hit < far,
            "open-row access should be faster: {hit} vs {far}"
        );
    }

    #[test]
    fn channel_contention_queues() {
        let cfg = DramConfig {
            channels: 1,
            ..DramConfig::default()
        };
        let mut d = Dram::new(cfg);
        let t1 = d.access(0, 0);
        let t2 = d.access(1 << 24, 0); // same (only) channel, conflicting row
        assert!(t2 > t1, "second request must queue behind the first");
        assert!(d.stats().queue_cycles > 0);
    }

    #[test]
    fn channels_run_in_parallel() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        let t1 = d.access(0, 0);
        let t2 = d.access(256, 0); // next 256B chunk → different channel
        assert_eq!(t1, t2, "independent channels should not serialize");
    }

    #[test]
    fn stats_count_hits() {
        let mut d = Dram::new(DramConfig::default());
        d.access(0, 0);
        d.access(64, 0);
        let s = d.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.row_hits, 1);
    }

    #[test]
    fn channel_busy_cycles_track_service_time() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        d.access(0, 0); // channel 0, row miss
        d.access(128, 200); // channel 0, row hit
        d.access(256, 0); // channel 1, row miss
        let busy = d.channel_busy_cycles();
        assert_eq!(busy.len(), cfg.channels);
        assert_eq!(busy[0], cfg.row_miss_cycles + cfg.row_hit_cycles);
        assert_eq!(busy[1], cfg.row_miss_cycles);
        assert!(busy[2..].iter().all(|&b| b == 0));
        d.reset();
        assert!(d.channel_busy_cycles().iter().all(|&b| b == 0));
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn reset_clears_rows_and_stats() {
        let mut d = Dram::new(DramConfig::default());
        d.access(0, 0);
        d.access(64, 0);
        assert!(d.stats().row_hits > 0);
        d.reset();
        assert_eq!(d.stats().requests, 0);
        // First access after reset is a row miss again.
        let t = d.access(64, 0);
        assert!(t >= DramConfig::default().row_miss_cycles);
    }

    #[test]
    fn queueing_cycles_accumulate_under_bursts() {
        let cfg = DramConfig {
            channels: 1,
            ..DramConfig::default()
        };
        let mut d = Dram::new(cfg);
        for i in 0..10 {
            d.access(i << 22, 0); // all conflict on channel 0, distinct rows
        }
        let s = d.stats();
        assert_eq!(s.requests, 10);
        assert_eq!(s.row_hits, 0);
        assert!(s.queue_cycles >= 9 * cfg.row_miss_cycles);
    }
}
