//! GPU memory-subsystem substrate for the GPUShield reproduction.
//!
//! Provides the components the cycle-level simulator composes into a memory
//! hierarchy (paper Table 5):
//!
//! * [`VirtualMemorySpace`] — VMAs with Nvidia-style allocation semantics
//!   (512-byte-aligned buffers packed into 2 MB mapped regions, which is
//!   what makes the Fig. 4 out-of-bounds behaviour reproducible), a 4 KB
//!   page table, and a sparse functional backing store.
//! * [`Cache`] — a generic set-associative tag-array model with LRU/FIFO
//!   replacement and hit/miss statistics.
//! * [`Tlb`] — a TLB specialisation of the same idea, keyed by page number.
//! * [`Dram`] — FR-FCFS-flavoured channel model with open-row tracking.
//! * [`coalesce`] — the warp address-coalescing unit that merges per-lane
//!   accesses into 128-byte transactions.
//! * [`SharedMemorySystem`] — the chip-shared L2 + L2 TLB + DRAM backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod coalesce;
mod dram;
mod shared;
mod telemetry;
mod tlb;
mod vm;

pub use cache::{Cache, CacheStats, Replacement};
pub use coalesce::{coalesce_warp, coalesce_warp_into, Transaction, TRANSACTION_BYTES};
pub use dram::{Dram, DramConfig, DramStats, DramView};
pub use shared::{MemTimings, SharedMemorySystem};
pub use telemetry::{
    publish_cache_stats, publish_dram_channels, publish_dram_stats, publish_tlb_stats,
};
pub use tlb::{Tlb, TlbStats};
pub use vm::{AllocPolicy, Allocation, MemFault, VirtualMemorySpace, PAGE_SIZE, REGION_SIZE};
