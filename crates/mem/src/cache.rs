//! Generic set-associative cache tag-array model.
//!
//! Data values live in the functional backing store
//! ([`crate::VirtualMemorySpace`]); the cache tracks *presence* and produces
//! hit/miss outcomes and statistics, which is all the timing model needs.

use std::fmt;

/// Replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used.
    Lru,
    /// First-in first-out (the paper's L1 RCache is a FIFO queue, §5.5).
    Fifo,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Line allocations that displaced a valid resident line — the
    /// capacity/conflict contention signal (co-located kernels fighting
    /// over sets show up here).
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; defined as 1 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} hits ({:.1}%)",
            self.hits,
            self.accesses(),
            self.hit_rate() * 100.0
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    /// LRU timestamp or FIFO insertion order.
    stamp: u64,
}

/// A set-associative cache of address tags.
///
/// # Example
///
/// ```
/// use gpushield_mem::{Cache, Replacement};
///
/// // 16KB, 4-way, 128B lines — the paper's Nvidia L1 Dcache (Table 5).
/// let mut l1 = Cache::new(16 * 1024, 128, 4, Replacement::Lru);
/// assert!(!l1.access(0x1000)); // cold miss
/// assert!(l1.access(0x1000)); // hit
/// assert!(l1.access(0x1040)); // same 128B line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    /// All lines in one flat slab, `ways` consecutive slots per set — a
    /// single allocation per cache (cores are rebuilt per kernel batch, so
    /// construction cost is on the simulator's warm path) and one cache
    /// line walk per set scan.
    lines: Vec<Line>,
    nsets: usize,
    line_bytes: u64,
    ways: usize,
    policy: Replacement,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `line_bytes` lines and `ways`
    /// associativity. A `ways` of 0 means fully associative.
    ///
    /// # Panics
    ///
    /// Panics if sizes are zero or not divisible into whole sets.
    pub fn new(size_bytes: u64, line_bytes: u64, ways: usize, policy: Replacement) -> Self {
        assert!(size_bytes > 0 && line_bytes > 0, "zero-size cache");
        let lines = size_bytes / line_bytes;
        assert!(lines > 0, "cache smaller than one line");
        let ways = if ways == 0 { lines as usize } else { ways };
        let nsets = (lines as usize).div_ceil(ways);
        assert_eq!(
            nsets * ways,
            lines as usize,
            "cache lines not divisible into sets"
        );
        Cache {
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    stamp: 0,
                };
                nsets * ways
            ],
            nsets,
            line_bytes,
            ways,
            policy,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Convenience constructor for a fully associative cache of `entries`
    /// lines (the paper's L2 RCache shape).
    pub fn fully_associative(entries: usize, line_bytes: u64, policy: Replacement) -> Self {
        Cache::new(entries as u64 * line_bytes, line_bytes, 0, policy)
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) % self.nsets as u64) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes / self.nsets as u64
    }

    fn set(&self, set_idx: usize) -> &[Line] {
        &self.lines[set_idx * self.ways..(set_idx + 1) * self.ways]
    }

    fn set_mut(&mut self, set_idx: usize) -> &mut [Line] {
        let ways = self.ways;
        &mut self.lines[set_idx * ways..(set_idx + 1) * ways]
    }

    /// Looks up `addr`, allocating the line on miss. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let policy = self.policy;
        let set_idx = self.set_of(addr);
        let tag = self.tag_of(addr);
        let hit = {
            let set = self.set_mut(set_idx);
            if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
                if policy == Replacement::Lru {
                    line.stamp = tick;
                }
                true
            } else {
                false
            }
        };
        if hit {
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let set = self.set_mut(set_idx);
        // Invalid slots rank as stamp 0, so they fill first (in slot
        // order), exactly like the old grow-then-evict behaviour.
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("non-empty set");
        let displaced = victim.valid;
        victim.tag = tag;
        victim.valid = true;
        victim.stamp = tick;
        if displaced {
            self.stats.evictions += 1;
        }
        false
    }

    /// Pure lookup: returns `true` when the line holding `addr` is present.
    /// Unlike [`Cache::access`] it never allocates, never refreshes
    /// LRU/FIFO state, and never counts toward statistics — probing a cache
    /// to *ask* about its contents must not change them.
    pub fn probe(&self, addr: u64) -> bool {
        let set_idx = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.set(set_idx).iter().any(|l| l.valid && l.tag == tag)
    }

    /// Inserts the line containing `addr` without counting an access.
    pub fn fill(&mut self, addr: u64) {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_of(addr);
        let tag = self.tag_of(addr);
        let set = self.set_mut(set_idx);
        if set.iter().any(|l| l.valid && l.tag == tag) {
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("non-empty set");
        let displaced = victim.valid;
        victim.tag = tag;
        victim.valid = true;
        victim.stamp = tick;
        if displaced {
            self.stats.evictions += 1;
        }
    }

    /// Invalidates everything (kernel termination / context switch flush).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears statistics (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        // 2 lines, fully associative, LRU.
        let mut c = Cache::new(256, 128, 0, Replacement::Lru);
        c.access(0); // A
        c.access(128); // B
        c.access(0); // touch A
        c.access(256); // C evicts B
        assert!(c.access(0), "A should survive");
        assert!(!c.access(128), "B should have been evicted");
    }

    #[test]
    fn fifo_evicts_first_in() {
        let mut c = Cache::new(256, 128, 0, Replacement::Fifo);
        c.access(0); // A first in
        c.access(128); // B
        c.access(0); // touching A does not refresh FIFO order
        c.access(256); // C evicts A
        assert!(!c.access(0), "A evicted despite being touched");
    }

    #[test]
    fn set_mapping_separates_conflicts() {
        // 2 sets, direct-mapped.
        let mut c = Cache::new(256, 128, 1, Replacement::Lru);
        c.access(0); // set 0
        c.access(128); // set 1
        assert!(c.access(0));
        assert!(c.access(128));
        c.access(256); // set 0, evicts 0
        assert!(!c.access(0));
        assert!(c.access(128), "other set untouched");
    }

    #[test]
    fn flush_empties() {
        let mut c = Cache::new(256, 128, 0, Replacement::Lru);
        c.access(0);
        c.flush();
        assert!(!c.access(0));
    }

    #[test]
    fn stats_track_rates() {
        let mut c = Cache::new(256, 128, 0, Replacement::Lru);
        c.access(0);
        c.access(0);
        c.access(0);
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn evictions_count_only_valid_victims() {
        // Two lines, fully associative: the first two allocations land in
        // invalid slots (no eviction), the third displaces a resident.
        let mut c = Cache::new(256, 128, 0, Replacement::Lru);
        c.access(0);
        c.access(128);
        assert_eq!(c.stats().evictions, 0, "cold fills evict nothing");
        c.access(256);
        assert_eq!(c.stats().evictions, 1);
        c.fill(384);
        assert_eq!(c.stats().evictions, 2, "fill() evictions count too");
        // Re-filling a resident line displaces nothing.
        c.fill(384);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = Cache::new(256, 128, 0, Replacement::Lru);
        assert!(!c.probe(0));
        assert!(!c.probe(0));
        c.fill(0);
        assert!(c.probe(0));
    }

    #[test]
    fn probe_is_observation_only() {
        let mut c = Cache::new(256, 128, 0, Replacement::Lru);
        c.access(0); // A
        c.access(128); // B — A is now LRU
        let stats_before = c.stats();
        assert!(c.probe(0), "A resident");
        assert_eq!(c.stats(), stats_before, "probe leaves stats untouched");
        // A probe must not refresh LRU order: C still evicts A.
        c.access(256);
        assert!(!c.probe(0), "A evicted despite being probed");
        assert!(c.probe(128), "B survived");
    }
}
