//! The chip-shared memory backend: L2 cache, shared L2 TLB, and DRAM.
//!
//! Per-core structures (L1 Dcache, L1 TLB, the LSU pipeline, and GPUShield's
//! RCaches) live in the simulator; everything below them is shared between
//! cores and modelled here (Table 5: 2 MB 16-way L2, 1024-entry 32-way L2
//! TLB, 16-channel FR-FCFS DRAM).

use crate::cache::{Cache, CacheStats, Replacement};
use crate::dram::{Dram, DramConfig, DramStats};
use crate::tlb::{Tlb, TlbStats};

/// Latency parameters (GPU core cycles) of the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTimings {
    /// LSU pipeline depth for an L1 Dcache hit: AGEN, coalesce, TLB∥tag,
    /// data (Fig. 12 shows this 4-stage path).
    pub l1_hit: u64,
    /// Additional cycles to reach the shared L2 on an L1 miss.
    pub l2_hit: u64,
    /// Cycles for a shared-L2-TLB hit after an L1 TLB miss.
    pub l2_tlb_hit: u64,
    /// Page-table-walk cycles after an L2 TLB miss.
    pub walk: u64,
}

impl Default for MemTimings {
    fn default() -> Self {
        MemTimings {
            l1_hit: 4,
            l2_hit: 90,
            l2_tlb_hit: 20,
            walk: 250,
        }
    }
}

/// The shared portion of the GPU memory hierarchy.
#[derive(Debug)]
pub struct SharedMemorySystem {
    l2: Cache,
    l2_tlb: Tlb,
    dram: Dram,
    timings: MemTimings,
}

impl SharedMemorySystem {
    /// Builds the Table 5 shared system: `l2_bytes` of 16-way LRU L2 with
    /// 128 B lines, `l2_tlb_entries` 32-way shared TLB, and `dram`.
    pub fn new(
        l2_bytes: u64,
        l2_tlb_entries: usize,
        dram: DramConfig,
        timings: MemTimings,
    ) -> Self {
        SharedMemorySystem {
            l2: Cache::new(l2_bytes, 128, 16, Replacement::Lru),
            l2_tlb: Tlb::new(l2_tlb_entries, 32),
            dram: Dram::new(dram),
            timings,
        }
    }

    /// Services a data transaction that missed a core's L1 Dcache at cycle
    /// `now`; returns its completion cycle.
    pub fn access_data(&mut self, pa: u64, now: u64) -> u64 {
        let at_l2 = now + self.timings.l2_hit;
        if self.l2.access(pa) {
            at_l2
        } else {
            self.dram.access(pa, at_l2)
        }
    }

    /// Services a translation that missed a core's L1 TLB at cycle `now`;
    /// returns the cycle the translation is available.
    pub fn translate(&mut self, va: u64, now: u64) -> u64 {
        let at_l2 = now + self.timings.l2_tlb_hit;
        if self.l2_tlb.access(va) {
            at_l2
        } else {
            // The walk itself reads page-table entries from DRAM; we charge
            // a fixed walk latency plus one DRAM access for the leaf PTE.
            let pte_pa = (va >> 12) * 8;
            self.dram.access(pte_pa, at_l2 + self.timings.walk)
        }
    }

    /// The timing parameters in use.
    pub fn timings(&self) -> MemTimings {
        self.timings
    }

    /// L2 cache statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Shared TLB statistics.
    pub fn l2_tlb_stats(&self) -> TlbStats {
        self.l2_tlb.stats()
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// The DRAM device (read-only), for per-channel occupancy telemetry.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// The L2 cache (read-only), for snapshot `probe`s by the parallel
    /// engine's phase stage.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The shared L2 TLB (read-only), for snapshot `probe`s.
    pub fn l2_tlb(&self) -> &Tlb {
        &self.l2_tlb
    }

    /// Flushes caches/TLB and resets statistics (fresh-context runs).
    pub fn reset(&mut self) {
        self.l2.flush();
        self.l2.reset_stats();
        self.l2_tlb.flush();
        self.l2_tlb.reset_stats();
        self.dram.reset();
    }

    /// Prepares for a new run whose cycle count restarts at zero: resets
    /// statistics and DRAM channel timing but keeps L2/TLB *contents* warm
    /// (kernel launches on a real GPU do not flush the shared L2).
    pub fn begin_run(&mut self) {
        self.l2.reset_stats();
        self.l2_tlb.reset_stats();
        self.dram.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SharedMemorySystem {
        SharedMemorySystem::new(
            2 * 1024 * 1024,
            1024,
            DramConfig::default(),
            MemTimings::default(),
        )
    }

    #[test]
    fn l2_hit_is_cheaper_than_dram() {
        let mut s = sys();
        let miss = s.access_data(0x1000, 0);
        let hit = s.access_data(0x1000, miss) - miss;
        assert!(hit < miss, "hit {hit} vs cold {miss}");
        assert_eq!(hit, s.timings().l2_hit);
    }

    #[test]
    fn tlb_hit_skips_walk() {
        let mut s = sys();
        let cold = s.translate(0x5000, 0);
        let warm = s.translate(0x5000, cold) - cold;
        assert_eq!(warm, s.timings().l2_tlb_hit);
        assert!(cold > warm);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = sys();
        s.access_data(0, 0);
        s.reset();
        assert_eq!(s.l2_stats().accesses(), 0);
        let again = s.access_data(0, 0);
        assert!(again > s.timings().l2_hit, "must miss after reset");
    }
}
