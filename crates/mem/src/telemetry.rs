//! Telemetry publishers for memory-hierarchy statistics.
//!
//! Every helper is prefix-parameterised so the same stats type can be
//! published for different hierarchy levels (`mem.l1d`, `mem.l2`, …) and
//! no-ops on a disabled registry.

use crate::cache::CacheStats;
use crate::dram::{Dram, DramStats};
use crate::tlb::TlbStats;
use gpushield_telemetry::Registry;

/// Publishes cache hits/misses/evictions as
/// `<prefix>.{hits,misses,evictions}` counters.
pub fn publish_cache_stats(reg: &mut Registry, prefix: &str, s: &CacheStats) {
    if !reg.enabled() {
        return;
    }
    reg.add_named(&format!("{prefix}.hits"), s.hits);
    reg.add_named(&format!("{prefix}.misses"), s.misses);
    reg.add_named(&format!("{prefix}.evictions"), s.evictions);
}

/// Publishes TLB hits/misses as `<prefix>.{hits,misses}` counters.
pub fn publish_tlb_stats(reg: &mut Registry, prefix: &str, s: &TlbStats) {
    publish_cache_stats(reg, prefix, s);
}

/// Publishes DRAM totals as `<prefix>.{requests,row_hits,queue_cycles}`
/// counters.
pub fn publish_dram_stats(reg: &mut Registry, prefix: &str, s: &DramStats) {
    if !reg.enabled() {
        return;
    }
    reg.add_named(&format!("{prefix}.requests"), s.requests);
    reg.add_named(&format!("{prefix}.row_hits"), s.row_hits);
    reg.add_named(&format!("{prefix}.queue_cycles"), s.queue_cycles);
}

/// Publishes per-channel DRAM occupancy: one histogram observation per
/// channel under `<prefix>.channel_busy_cycles`, plus a
/// `<prefix>.busy_cycles_total` counter. The histogram's spread across
/// log2 buckets shows how evenly interleaving loaded the channels.
pub fn publish_dram_channels(reg: &mut Registry, prefix: &str, dram: &Dram) {
    if !reg.enabled() {
        return;
    }
    let busy = dram.channel_busy_cycles();
    let hist = format!("{prefix}.channel_busy_cycles");
    let mut total = 0u64;
    for b in busy {
        reg.observe_named(&hist, b);
        total += b;
    }
    reg.add_named(&format!("{prefix}.busy_cycles_total"), total);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramConfig;

    #[test]
    fn publishers_accumulate_counters() {
        let mut reg = Registry::new();
        let s = CacheStats {
            hits: 3,
            misses: 2,
            evictions: 1,
        };
        publish_cache_stats(&mut reg, "mem.l1d", &s);
        publish_cache_stats(&mut reg, "mem.l1d", &s);
        assert_eq!(reg.value("mem.l1d.hits"), Some(6));
        assert_eq!(reg.value("mem.l1d.misses"), Some(4));
        assert_eq!(reg.value("mem.l1d.evictions"), Some(2));
    }

    #[test]
    fn dram_channel_occupancy_publishes_histogram_and_total() {
        let mut dram = Dram::new(DramConfig::default());
        dram.access(0, 0);
        dram.access(256, 0);
        let mut reg = Registry::new();
        publish_dram_channels(&mut reg, "mem.dram", &dram);
        let total = reg.value("mem.dram.busy_cycles_total");
        assert_eq!(total, Some(2 * DramConfig::default().row_miss_cycles));
        match reg.lookup("mem.dram.channel_busy_cycles") {
            Some(gpushield_telemetry::MetricValue::Histogram(h)) => {
                assert_eq!(h.count, DramConfig::default().channels as u64);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = Registry::disabled();
        publish_cache_stats(&mut reg, "x", &CacheStats::default());
        publish_dram_stats(&mut reg, "x", &DramStats::default());
        assert!(reg.is_empty());
    }
}
