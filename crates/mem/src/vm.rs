//! Virtual memory with GPU-driver allocation semantics.
//!
//! The paper's Fig. 4 exploit hinges on three properties of Nvidia's
//! allocator that this module reproduces:
//!
//! 1. buffers are 512-byte aligned and packed consecutively, so a small
//!    out-of-bounds write inside the same 512-byte slot is *suppressed*
//!    (it lands in the victim buffer's own padding);
//! 2. consecutive allocations share 2 MB mapped regions, so larger
//!    out-of-bounds writes *silently corrupt neighbouring buffers*;
//! 3. only accesses that leave every mapped region *fault*.
//!
//! Allocation policies also include power-of-two alignment with padding,
//! which GPUShield's Type 3 pointers require (§5.3.3).

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Translation granularity (bytes).
pub const PAGE_SIZE: u64 = 4096;
/// Mapped-region (VMA) granularity: Nvidia GPUs use 2 MB pages for device
/// memory, producing the 2 MB protection granularity observed in §3.1.
pub const REGION_SIZE: u64 = 2 * 1024 * 1024;

const ALLOC_ALIGN: u64 = 512;

/// How a buffer is aligned and padded inside the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Nvidia-style: 512-byte alignment, consecutive packing in 2 MB
    /// regions.
    Device512,
    /// Power-of-two size padding *and* alignment (GPUShield Type 3
    /// pointers). The wasted padding bytes are the memory-fragmentation
    /// cost §5.3.3 discusses; the driver can lay a canary in them.
    PowerOfTwo,
    /// Isolated: the buffer gets its own mapped region(s), so any
    /// out-of-bounds access faults (used for the RBT's own pages, which the
    /// driver makes inaccessible to normal translation, §5.4).
    Isolated,
}

/// A successful allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Base virtual address.
    pub va: u64,
    /// Requested size in bytes.
    pub size: u64,
    /// Size actually reserved (≥ `size`; differs under
    /// [`AllocPolicy::PowerOfTwo`]).
    pub reserved: u64,
}

impl Allocation {
    /// One past the last requested byte.
    pub fn end(&self) -> u64 {
        self.va + self.size
    }

    /// One past the last reserved byte.
    pub fn reserved_end(&self) -> u64 {
        self.va + self.reserved
    }
}

/// A memory-access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// The virtual address is not covered by any mapped region — the GPU
    /// aborts the kernel with an illegal-memory-access error (Fig. 4 case 3).
    Unmapped {
        /// Faulting virtual address.
        va: u64,
    },
    /// The address belongs to a page the driver made inaccessible (the RBT
    /// pages, §5.4).
    Protected {
        /// Faulting virtual address.
        va: u64,
    },
    /// An integer access asked for a width outside 1..=8 bytes — malformed
    /// input (e.g. a corrupted kernel image), not a memory condition.
    BadWidth {
        /// The rejected width.
        width: u64,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Unmapped { va } => write!(f, "illegal memory access at 0x{va:x}"),
            MemFault::Protected { va } => write!(f, "access to protected page at 0x{va:x}"),
            MemFault::BadWidth { width } => {
                write!(f, "unsupported integer access width {width}")
            }
        }
    }
}

impl Error for MemFault {}

#[derive(Debug, Clone, Copy)]
struct Region {
    start: u64,
    end: u64,
    protected: bool,
}

/// A per-context GPU virtual address space with a functional backing store.
///
/// # Example
///
/// ```
/// use gpushield_mem::{AllocPolicy, VirtualMemorySpace};
///
/// let mut vm = VirtualMemorySpace::new();
/// let a = vm.alloc(64, AllocPolicy::Device512).unwrap();
/// let b = vm.alloc(64, AllocPolicy::Device512).unwrap();
/// assert_eq!(b.va - a.va, 512); // 512B-aligned consecutive packing
/// vm.write(a.va, &42u64.to_le_bytes()).unwrap();
/// let mut buf = [0u8; 8];
/// vm.read(a.va, &mut buf).unwrap();
/// assert_eq!(u64::from_le_bytes(buf), 42);
/// ```
#[derive(Debug, Default)]
pub struct VirtualMemorySpace {
    regions: Vec<Region>,
    /// Two-level (radix) page table: the root is indexed by the high bits
    /// of the VA page number, each leaf by the low [`LEAF_BITS`] bits.
    /// Entries store *frame number + 1* (0 = unmapped), so a zeroed leaf is
    /// all-invalid. Allocations are carved from a monotonically increasing
    /// cursor, so the root stays small and dense — the common load/store
    /// translation is two array indexes.
    page_root: Vec<Option<Box<[u64; LEAF_ENTRIES]>>>,
    /// PA frame number → data, lazily populated (untouched pages read as
    /// zero without materializing a frame). Frames are atomic bytes behind
    /// a `OnceLock` so the *run-time* data path (`read`, `write`,
    /// `read_uint`, `write_uint`, the bypass pair) works through `&self`:
    /// simulated cores on different worker threads share one address space
    /// with no lock. Relaxed per-byte atomics deliberately model GPU global
    /// memory: racing same-byte plain accesses from different cores within
    /// one cycle quantum have no ordering guarantee (real GPUs give none
    /// either); programs that need cross-core ordering use atomics, which
    /// the simulator serialises at the quantum drain.
    frames: Vec<OnceLock<Box<[AtomicU8]>>>,
    next_frame: u64,
    /// Bump cursor inside the current shared region.
    cursor: u64,
    /// End of the current shared region.
    cursor_region_end: u64,
    /// Next unmapped VA (regions are carved from here).
    next_region_va: u64,
    /// Last successful [`VirtualMemorySpace::translate`], packed as
    /// `(page number + 1) << XLATE_FRAME_BITS | frame` (0 = empty; see
    /// [`xlate_pack`]). A single word so concurrent readers can share it
    /// without tearing: the cache is pure memoization — a hit returns
    /// exactly what the radix walk would — so cross-thread races only
    /// affect *which* translation is remembered, never the result.
    /// Invalidated by [`VirtualMemorySpace::protect`] (mappings are never
    /// removed, so new regions cannot stale it).
    last_xlate: AtomicU64,
    /// Last successful bypass translation; protection changes do not affect
    /// the bypass path, so this cache never needs invalidation.
    last_bypass: AtomicU64,
}

/// Bits of the packed translation-cache word holding the frame number.
/// VAs are ≤ 48 bits (pn + 1 < 2³⁷), leaving room for 26 frame bits —
/// 256 GB of backing store; larger spaces simply skip the one-entry cache.
const XLATE_FRAME_BITS: u32 = 26;

/// Packs a translation-cache entry, or `None` when it does not fit.
#[inline]
fn xlate_pack(pn: u64, frame: u64) -> Option<u64> {
    let tag = pn + 1;
    (frame < (1 << XLATE_FRAME_BITS) && tag < (1 << (64 - XLATE_FRAME_BITS)))
        .then_some((tag << XLATE_FRAME_BITS) | frame)
}

/// Probes a packed translation cache for `pn`, returning the PA page base.
#[inline]
fn xlate_probe(cache: &AtomicU64, pn: u64) -> Option<u64> {
    let packed = cache.load(Ordering::Relaxed);
    (packed >> XLATE_FRAME_BITS == pn + 1)
        .then(|| (packed & ((1 << XLATE_FRAME_BITS) - 1)) * PAGE_SIZE)
}

/// Copies frame bytes out into a plain buffer (relaxed per-byte loads
/// compile down to plain byte copies).
#[inline]
fn copy_out(src: &[AtomicU8], dst: &mut [u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.load(Ordering::Relaxed);
    }
}

/// Copies a plain buffer into frame bytes.
#[inline]
fn copy_in(src: &[u8], dst: &[AtomicU8]) {
    for (s, d) in src.iter().zip(dst) {
        d.store(*s, Ordering::Relaxed);
    }
}

/// Pages per page-table leaf (512 × 4 KB = one 2 MB region per leaf).
const LEAF_BITS: u32 = 9;
const LEAF_ENTRIES: usize = 1 << LEAF_BITS;

impl VirtualMemorySpace {
    /// Creates an empty address space. Region 0 is left unmapped so that
    /// null-ish pointers always fault.
    pub fn new() -> Self {
        VirtualMemorySpace {
            next_region_va: REGION_SIZE,
            ..VirtualMemorySpace::default()
        }
    }

    fn map_region(&mut self, bytes: u64, protected: bool) -> u64 {
        let nregions = bytes.div_ceil(REGION_SIZE).max(1);
        let start = self.next_region_va;
        let end = start + nregions * REGION_SIZE;
        self.next_region_va = end;
        self.regions.push(Region {
            start,
            end,
            protected,
        });
        // Install translations eagerly: the GPU driver backs device
        // allocations with physical memory up front.
        let mut va = start;
        while va < end {
            let pn = va / PAGE_SIZE;
            let root_idx = (pn >> LEAF_BITS) as usize;
            if root_idx >= self.page_root.len() {
                self.page_root.resize_with(root_idx + 1, || None);
            }
            let leaf =
                self.page_root[root_idx].get_or_insert_with(|| Box::new([0u64; LEAF_ENTRIES]));
            leaf[pn as usize & (LEAF_ENTRIES - 1)] = self.next_frame + 1;
            self.next_frame += 1;
            va += PAGE_SIZE;
        }
        self.frames
            .resize_with(self.next_frame as usize, OnceLock::new);
        start
    }

    /// Two-index page-table walk: VA page number → PA frame number.
    #[inline]
    fn lookup_frame(&self, pn: u64) -> Option<u64> {
        let leaf = self.page_root.get((pn >> LEAF_BITS) as usize)?.as_ref()?;
        leaf[pn as usize & (LEAF_ENTRIES - 1)].checked_sub(1)
    }

    /// Allocates `size` bytes under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unmapped`] only in the degenerate `size == 0`
    /// case is *not* an error — zero-size allocations reserve one alignment
    /// slot, matching CUDA. This method currently cannot fail but returns
    /// `Result` to keep the driver-facing API uniform with `read`/`write`.
    pub fn alloc(&mut self, size: u64, policy: AllocPolicy) -> Result<Allocation, MemFault> {
        match policy {
            AllocPolicy::Device512 => {
                let reserved = size.max(1).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
                if self.cursor + reserved > self.cursor_region_end {
                    let start = self.map_region(reserved, false);
                    self.cursor = start;
                    self.cursor_region_end = self.regions.last().expect("just mapped").end;
                }
                let va = self.cursor;
                self.cursor += reserved;
                Ok(Allocation { va, size, reserved })
            }
            AllocPolicy::PowerOfTwo => {
                let reserved = size.max(1).next_power_of_two().max(ALLOC_ALIGN);
                // Align the cursor itself to the reserved size.
                let aligned = self.cursor.div_ceil(reserved) * reserved;
                if aligned + reserved > self.cursor_region_end {
                    let start = self.map_region(reserved, false);
                    self.cursor = start;
                    self.cursor_region_end = self.regions.last().expect("just mapped").end;
                }
                let va = self.cursor.div_ceil(reserved) * reserved;
                self.cursor = va + reserved;
                Ok(Allocation { va, size, reserved })
            }
            AllocPolicy::Isolated => {
                let va = self.map_region(size.max(1), false);
                Ok(Allocation {
                    va,
                    size,
                    reserved: size.max(1).div_ceil(REGION_SIZE).max(1) * REGION_SIZE,
                })
            }
        }
    }

    /// Marks every page overlapping `[va, va+len)` as driver-protected;
    /// normal accesses then fault with [`MemFault::Protected`].
    pub fn protect(&mut self, va: u64, len: u64) {
        for r in &mut self.regions {
            if va < r.end && va + len > r.start {
                r.protected = true;
            }
        }
        // The normal-path translation cache may hold a page that just became
        // protected; drop it. (The bypass cache ignores protection.)
        self.last_xlate.store(0, Ordering::Relaxed);
    }

    fn region_of(&self, va: u64) -> Option<&Region> {
        // Regions are carved from a monotonically increasing cursor, so the
        // list is sorted by start address; binary search keeps the hot
        // functional-access path cheap.
        let idx = self.regions.partition_point(|r| r.start <= va);
        let r = self.regions.get(idx.checked_sub(1)?)?;
        (va < r.end).then_some(r)
    }

    /// Translates a virtual address, honouring protection.
    ///
    /// # Errors
    ///
    /// [`MemFault::Unmapped`] outside every region, [`MemFault::Protected`]
    /// inside a protected one.
    pub fn translate(&self, va: u64) -> Result<u64, MemFault> {
        let pn = va / PAGE_SIZE;
        if let Some(pa_base) = xlate_probe(&self.last_xlate, pn) {
            return Ok(pa_base + va % PAGE_SIZE);
        }
        match self.region_of(va) {
            None => Err(MemFault::Unmapped { va }),
            Some(r) if r.protected => Err(MemFault::Protected { va }),
            Some(_) => {
                let frame = self.lookup_frame(pn).ok_or(MemFault::Unmapped { va })?;
                if let Some(packed) = xlate_pack(pn, frame) {
                    self.last_xlate.store(packed, Ordering::Relaxed);
                }
                Ok(frame * PAGE_SIZE + va % PAGE_SIZE)
            }
        }
    }

    /// Like [`VirtualMemorySpace::translate`] but ignores protection — the
    /// hardware path GPU cores use for RBT fetches (§5.4: "RBT accesses in
    /// GPU cores will bypass the address translation").
    pub fn translate_bypass(&self, va: u64) -> Result<u64, MemFault> {
        let pn = va / PAGE_SIZE;
        if let Some(pa_base) = xlate_probe(&self.last_bypass, pn) {
            return Ok(pa_base + va % PAGE_SIZE);
        }
        match self.region_of(va) {
            None => Err(MemFault::Unmapped { va }),
            Some(_) => {
                let frame = self.lookup_frame(pn).ok_or(MemFault::Unmapped { va })?;
                if let Some(packed) = xlate_pack(pn, frame) {
                    self.last_bypass.store(packed, Ordering::Relaxed);
                }
                Ok(frame * PAGE_SIZE + va % PAGE_SIZE)
            }
        }
    }

    /// The frame's backing bytes, or `None` while it is still all-zero.
    #[inline]
    fn frame(&self, frame: u64) -> Option<&[AtomicU8]> {
        self.frames.get(frame as usize)?.get().map(|f| &f[..])
    }

    /// The frame's backing bytes, materializing the zero-filled page on
    /// first touch. Lock-free after initialization; losers of a racing
    /// first touch drop their page and use the winner's (both are zero).
    #[inline]
    fn frame_init(&self, frame: u64) -> &[AtomicU8] {
        self.frames[frame as usize]
            .get_or_init(|| (0..PAGE_SIZE).map(|_| AtomicU8::new(0)).collect())
    }

    /// Reads `buf.len()` bytes starting at `va`.
    ///
    /// # Errors
    ///
    /// Faults as [`VirtualMemorySpace::translate`] does, at the first
    /// untranslatable byte.
    pub fn read(&self, va: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va + done as u64;
            let pa = self.translate(cur)?;
            let in_page = (PAGE_SIZE - pa % PAGE_SIZE) as usize;
            let take = in_page.min(buf.len() - done);
            match self.frame(pa / PAGE_SIZE) {
                Some(f) => {
                    let off = (pa % PAGE_SIZE) as usize;
                    copy_out(&f[off..off + take], &mut buf[done..done + take]);
                }
                None => buf[done..done + take].fill(0),
            }
            done += take;
        }
        Ok(())
    }

    /// Writes `buf` starting at `va`.
    ///
    /// # Errors
    ///
    /// Faults as [`VirtualMemorySpace::translate`] does; bytes before the
    /// fault are written (device stores are not transactional).
    pub fn write(&self, va: u64, buf: &[u8]) -> Result<(), MemFault> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va + done as u64;
            let pa = self.translate(cur)?;
            let in_page = (PAGE_SIZE - pa % PAGE_SIZE) as usize;
            let take = in_page.min(buf.len() - done);
            let off = (pa % PAGE_SIZE) as usize;
            copy_in(
                &buf[done..done + take],
                &self.frame_init(pa / PAGE_SIZE)[off..off + take],
            );
            done += take;
        }
        Ok(())
    }

    /// Reads a little-endian unsigned integer of `width` ∈ 1..=8 bytes.
    ///
    /// # Errors
    ///
    /// Faults as [`VirtualMemorySpace::read`] does, plus
    /// [`MemFault::BadWidth`] for widths outside 1..=8.
    pub fn read_uint(&self, va: u64, width: u64) -> Result<u64, MemFault> {
        if width == 0 || width > 8 {
            return Err(MemFault::BadWidth { width });
        }
        let mut buf = [0u8; 8];
        self.read(va, &mut buf[..width as usize])?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes the low `width` bytes of `value` little-endian at `va`.
    ///
    /// # Errors
    ///
    /// Faults as [`VirtualMemorySpace::write`] does, plus
    /// [`MemFault::BadWidth`] for widths outside 1..=8.
    pub fn write_uint(&self, va: u64, width: u64, value: u64) -> Result<(), MemFault> {
        if width == 0 || width > 8 {
            return Err(MemFault::BadWidth { width });
        }
        let bytes = value.to_le_bytes();
        self.write(va, &bytes[..width as usize])
    }

    /// Bypass-translation write used by the driver/hardware for RBT pages.
    ///
    /// # Errors
    ///
    /// Faults only when the address is wholly unmapped.
    pub fn write_bypass(&self, va: u64, buf: &[u8]) -> Result<(), MemFault> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va + done as u64;
            let pa = self.translate_bypass(cur)?;
            let in_page = (PAGE_SIZE - pa % PAGE_SIZE) as usize;
            let take = in_page.min(buf.len() - done);
            let off = (pa % PAGE_SIZE) as usize;
            copy_in(
                &buf[done..done + take],
                &self.frame_init(pa / PAGE_SIZE)[off..off + take],
            );
            done += take;
        }
        Ok(())
    }

    /// Bypass-translation read used by the hardware for RBT fetches.
    ///
    /// # Errors
    ///
    /// Faults only when the address is wholly unmapped.
    pub fn read_bypass(&self, va: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va + done as u64;
            let pa = self.translate_bypass(cur)?;
            let in_page = (PAGE_SIZE - pa % PAGE_SIZE) as usize;
            let take = in_page.min(buf.len() - done);
            match self.frame(pa / PAGE_SIZE) {
                Some(f) => {
                    let off = (pa % PAGE_SIZE) as usize;
                    copy_out(&f[off..off + take], &mut buf[done..done + take]);
                }
                None => buf[done..done + take].fill(0),
            }
            done += take;
        }
        Ok(())
    }

    /// Number of distinct 4 KB pages covering `[va, va+size)` — the Fig. 11
    /// quantity.
    pub fn pages_spanned(va: u64, size: u64) -> u64 {
        if size == 0 {
            return 0;
        }
        (va + size - 1) / PAGE_SIZE - va / PAGE_SIZE + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_allocs_are_512_apart() {
        let mut vm = VirtualMemorySpace::new();
        let a = vm.alloc(64, AllocPolicy::Device512).unwrap();
        let b = vm.alloc(64, AllocPolicy::Device512).unwrap();
        assert_eq!(a.va % 512, 0);
        assert_eq!(b.va, a.va + 512);
    }

    #[test]
    fn oob_within_region_corrupts_neighbour() {
        // Fig. 4 case 2: a write past A's end lands in B without faulting.
        let mut vm = VirtualMemorySpace::new();
        let a = vm.alloc(64, AllocPolicy::Device512).unwrap();
        let b = vm.alloc(64, AllocPolicy::Device512).unwrap();
        vm.write_uint(a.va + 512, 4, 0xBAD).unwrap();
        assert_eq!(vm.read_uint(b.va, 4).unwrap(), 0xBAD);
    }

    #[test]
    fn degenerate_widths_fault_instead_of_panicking() {
        let mut vm = VirtualMemorySpace::new();
        let a = vm.alloc(64, AllocPolicy::Device512).unwrap();
        assert_eq!(vm.read_uint(a.va, 0), Err(MemFault::BadWidth { width: 0 }));
        assert_eq!(vm.read_uint(a.va, 9), Err(MemFault::BadWidth { width: 9 }));
        assert_eq!(
            vm.write_uint(a.va, 16, 1),
            Err(MemFault::BadWidth { width: 16 })
        );
        assert_eq!(
            MemFault::BadWidth { width: 9 }.to_string(),
            "unsupported integer access width 9"
        );
    }

    #[test]
    fn oob_crossing_region_faults() {
        // Fig. 4 case 3: crossing the 2MB mapped region aborts.
        let mut vm = VirtualMemorySpace::new();
        let a = vm.alloc(64, AllocPolicy::Device512).unwrap();
        let err = vm.write_uint(a.va + 4 * REGION_SIZE, 4, 0xBAD).unwrap_err();
        assert!(matches!(err, MemFault::Unmapped { .. }));
    }

    #[test]
    fn power_of_two_policy_aligns_and_pads() {
        let mut vm = VirtualMemorySpace::new();
        let a = vm.alloc(100, AllocPolicy::PowerOfTwo).unwrap();
        assert_eq!(a.reserved, 512); // max(next_pow2(100)=128, 512)
        assert_eq!(a.va % a.reserved, 0);
        let b = vm.alloc(5000, AllocPolicy::PowerOfTwo).unwrap();
        assert_eq!(b.reserved, 8192);
        assert_eq!(b.va % 8192, 0);
    }

    #[test]
    fn protected_pages_fault_but_bypass_works() {
        let mut vm = VirtualMemorySpace::new();
        let a = vm.alloc(4096, AllocPolicy::Isolated).unwrap();
        vm.write_uint(a.va, 8, 7).unwrap();
        vm.protect(a.va, a.size);
        assert!(matches!(
            vm.read_uint(a.va, 8),
            Err(MemFault::Protected { .. })
        ));
        let mut buf = [0u8; 8];
        vm.read_bypass(a.va, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 7);
    }

    #[test]
    fn rw_roundtrip_across_page_boundary() {
        let mut vm = VirtualMemorySpace::new();
        let a = vm.alloc(2 * PAGE_SIZE, AllocPolicy::Device512).unwrap();
        let va = a.va + PAGE_SIZE - 3;
        vm.write_uint(va, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(vm.read_uint(va, 8).unwrap(), 0x1122_3344_5566_7788);
    }

    #[test]
    fn pages_spanned_counts() {
        assert_eq!(VirtualMemorySpace::pages_spanned(0, 4096), 1);
        assert_eq!(VirtualMemorySpace::pages_spanned(4095, 2), 2);
        assert_eq!(VirtualMemorySpace::pages_spanned(0, 0), 0);
        assert_eq!(VirtualMemorySpace::pages_spanned(512, 8192), 3);
    }

    #[test]
    fn zero_addresses_fault() {
        let vm = VirtualMemorySpace::new();
        assert!(vm.translate(0).is_err());
        assert!(vm.translate(100).is_err());
    }
}
