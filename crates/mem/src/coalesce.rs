//! Warp address-coalescing unit.
//!
//! The ACU merges the per-lane addresses of one SIMT memory instruction into
//! the minimal set of aligned 128-byte transactions (§5.5.1). The number of
//! transactions a memory instruction produces is central to GPUShield's
//! timing: a *single* coalesced transaction that hits the L1 Dcache is the
//! only case where an L1 RCache miss costs a pipeline bubble (Fig. 12).

/// GPU memory transaction granularity in bytes (one L1 cache line).
pub const TRANSACTION_BYTES: u64 = 128;

/// One coalesced memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Transaction {
    /// 128-byte-aligned base address.
    pub base: u64,
}

impl Transaction {
    /// The transaction covering `addr`.
    pub fn covering(addr: u64) -> Self {
        Transaction {
            base: addr & !(TRANSACTION_BYTES - 1),
        }
    }

    /// True when `addr` falls inside this transaction.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + TRANSACTION_BYTES
    }
}

/// Coalesces the active lanes' addresses (`None` = masked-off lane) of one
/// `width`-byte access into unique, sorted 128-byte transactions.
///
/// Accesses that straddle a transaction boundary contribute to both
/// transactions, as real coalescers do.
///
/// # Example
///
/// ```
/// use gpushield_mem::coalesce_warp;
///
/// // A perfectly coalesced warp: 32 consecutive 4-byte accesses = 1 transaction.
/// let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(0x1000 + i * 4)).collect();
/// assert_eq!(coalesce_warp(&addrs, 4).len(), 1);
///
/// // A strided warp: every lane on its own line = 32 transactions.
/// let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(0x1000 + i * 128)).collect();
/// assert_eq!(coalesce_warp(&addrs, 4).len(), 32);
/// ```
pub fn coalesce_warp(lane_addrs: &[Option<u64>], width: u64) -> Vec<Transaction> {
    let mut txs = Vec::with_capacity(4);
    coalesce_warp_into(lane_addrs, width, &mut txs);
    txs
}

/// Allocation-free variant of [`coalesce_warp`]: clears `txs` and fills it
/// with the coalesced transactions, reusing its capacity. The simulator's
/// LSU calls this once per memory instruction with a per-core scratch
/// vector.
pub fn coalesce_warp_into(lane_addrs: &[Option<u64>], width: u64, txs: &mut Vec<Transaction>) {
    txs.clear();
    for addr in lane_addrs.iter().flatten() {
        let first = Transaction::covering(*addr);
        let last = Transaction::covering(addr + width.saturating_sub(1));
        let mut t = first;
        loop {
            if !txs.contains(&t) {
                txs.push(t);
            }
            if t == last {
                break;
            }
            t = Transaction {
                base: t.base + TRANSACTION_BYTES,
            };
        }
    }
    txs.sort_unstable();
}

/// The per-warp (min, max-inclusive-end) address range the BCU's address
/// gathering stage computes for workgroup/warp-level bounds checking
/// (§5.5.1: "computes the minimum and maximum address pair").
///
/// Returns `None` when every lane is masked off.
pub fn warp_address_range(lane_addrs: &[Option<u64>], width: u64) -> Option<(u64, u64)> {
    let mut range: Option<(u64, u64)> = None;
    for addr in lane_addrs.iter().flatten() {
        let lo = *addr;
        let hi = addr + width; // exclusive end
        range = Some(match range {
            None => (lo, hi),
            Some((a, b)) => (a.min(lo), b.max(hi)),
        });
    }
    range
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_masked_warp_produces_nothing() {
        let addrs = vec![None; 32];
        assert!(coalesce_warp(&addrs, 4).is_empty());
        assert!(warp_address_range(&addrs, 4).is_none());
    }

    #[test]
    fn straddling_access_touches_two_transactions() {
        let addrs = vec![Some(126u64)];
        let txs = coalesce_warp(&addrs, 4);
        assert_eq!(txs.len(), 2);
        assert_eq!(txs[0].base, 0);
        assert_eq!(txs[1].base, 128);
    }

    #[test]
    fn duplicate_addresses_merge() {
        let addrs: Vec<Option<u64>> = (0..32).map(|_| Some(0x2000)).collect();
        assert_eq!(coalesce_warp(&addrs, 8).len(), 1);
    }

    #[test]
    fn range_is_min_to_max_end() {
        let addrs = vec![Some(100u64), None, Some(10), Some(60)];
        assert_eq!(warp_address_range(&addrs, 4), Some((10, 104)));
    }

    #[test]
    fn transactions_are_sorted_and_unique() {
        let addrs = vec![Some(512u64), Some(0), Some(256), Some(0)];
        let txs = coalesce_warp(&addrs, 4);
        let bases: Vec<u64> = txs.iter().map(|t| t.base).collect();
        assert_eq!(bases, vec![0, 256, 512]);
    }
}
