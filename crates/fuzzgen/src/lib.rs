//! Seeded adversarial kernel generator.
//!
//! The harness so far injects *metadata* faults (flipped RBT bits, mangled
//! tags); real escapes come from adversarial *programs*. This crate grows
//! well-formed kernels through [`gpushield_isa::KernelBuilder`] and the
//! [`gpushield_workloads::dsl`] helpers, then plants exactly one bug from
//! a taxonomy spanning all three of the paper's check types — Type 1
//! (statically resolvable global addressing), Type 2 (runtime-checked
//! global and device-heap regions), Type 3 (size-embedded local pointers
//! plus the explicitly unprotected shared scratch of Table 1) — and ships
//! a machine-readable [`PlantedBug`] oracle alongside each specimen: the
//! buggy site, its addressing class, and the victim window the access
//! should land in.
//!
//! Everything is a pure function of the corpus seed. Each bug class draws
//! from its own labelled RNG stream ([`StdRng::stream`]) and each
//! specimen from a labelled split of that, so adding a class or growing a
//! class's population never perturbs any other specimen.
//!
//! The generator never panics on the shapes it draws: loop and buffer
//! plans go through the typed-validating `dsl` helpers
//! ([`dsl::counted_loop`], [`dsl::planned_buffer`]).

use gpushield_isa::{CmpOp, Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use gpushield_runtime::rng::StdRng;
use gpushield_workloads::dsl::{self, AddrStyle};
use std::sync::Arc;

/// The value an intra-region victim cell holds before the overflow.
pub const CLEAN_WORD: u64 = 0x0C1E_A401;
/// The value the planted overflow writes into the victim cell.
pub const EVIL_WORD: u64 = 0x0E71_1BAD;

/// The planted-bug taxonomy. One specimen carries exactly one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugClass {
    /// Type 1: a global store at a constant offset past the end of the
    /// buffer — fully resolvable (and provably out of bounds) at BAT
    /// construction time.
    StaticOobWrite,
    /// Type 2: a thread-indexed global load where the upper half of the
    /// grid runs off the end of the buffer.
    DynOobRead,
    /// Type 2: a store through a device-`malloc`ed pointer that lands past
    /// the end of the whole heap chunk.
    HeapOobWrite,
    /// Type 2 soft spot: an overflow out of one heap block into its
    /// neighbour. Both blocks live under the heap's single coarse RBT
    /// entry (§5.2.1), so the access is in-region and undetectable — the
    /// overflow silently corrupts the sibling.
    IntraRegionOverflow,
    /// Type 2 soft spot: a store through a pointer the kernel already
    /// passed to `deviceFree`. The model's `Free` is timing-only (no
    /// region is invalidated), so the access is indistinguishable from a
    /// live one.
    UseAfterFree,
    /// Type 2: a wide (8-byte) store that *starts* in bounds but straddles
    /// the end of the buffer — the checked range `[va, va+width)` must
    /// catch the tail.
    PartialWidthStraddle,
    /// Type 3: a store past the end of a local (stack) variable's
    /// power-of-two reservation.
    LocalOobWrite,
    /// Type 3 family, excluded surface: a shared-memory store past the
    /// workgroup's scratch size. On-chip scratch is not protected by
    /// GPUShield (Table 1) and the model wraps the offset, so nothing in
    /// global memory is touched.
    SharedOobWrite,
    /// Control: no planted bug. Anything but a clean completion is a
    /// false fault.
    Benign,
}

impl BugClass {
    /// Every class, in scoreboard order.
    pub const ALL: [BugClass; 9] = [
        BugClass::StaticOobWrite,
        BugClass::DynOobRead,
        BugClass::HeapOobWrite,
        BugClass::IntraRegionOverflow,
        BugClass::UseAfterFree,
        BugClass::PartialWidthStraddle,
        BugClass::LocalOobWrite,
        BugClass::SharedOobWrite,
        BugClass::Benign,
    ];

    /// Stable machine-readable name (scoreboard key).
    pub fn slug(self) -> &'static str {
        match self {
            BugClass::StaticOobWrite => "static-oob-write",
            BugClass::DynOobRead => "dyn-oob-read",
            BugClass::HeapOobWrite => "heap-oob-write",
            BugClass::IntraRegionOverflow => "intra-region-overflow",
            BugClass::UseAfterFree => "use-after-free",
            BugClass::PartialWidthStraddle => "partial-width-straddle",
            BugClass::LocalOobWrite => "local-oob-write",
            BugClass::SharedOobWrite => "shared-oob-write",
            BugClass::Benign => "benign-control",
        }
    }

    /// Which of the paper's check types guards the planted site.
    pub fn check_family(self) -> &'static str {
        match self {
            BugClass::StaticOobWrite => "type1",
            BugClass::DynOobRead
            | BugClass::HeapOobWrite
            | BugClass::IntraRegionOverflow
            | BugClass::UseAfterFree
            | BugClass::PartialWidthStraddle => "type2",
            BugClass::LocalOobWrite | BugClass::SharedOobWrite => "type3",
            BugClass::Benign => "control",
        }
    }

    /// The outcome the GPUShield model is expected to produce for this
    /// class — the scoreboard's conformance column and the trend gate's
    /// per-class floor.
    pub fn expected(self) -> Expected {
        match self {
            BugClass::StaticOobWrite
            | BugClass::DynOobRead
            | BugClass::HeapOobWrite
            | BugClass::PartialWidthStraddle
            | BugClass::LocalOobWrite => Expected::Detected,
            BugClass::IntraRegionOverflow => Expected::SilentCorruption,
            BugClass::UseAfterFree | BugClass::SharedOobWrite => Expected::Masked,
            BugClass::Benign => Expected::Completed,
        }
    }
}

/// Expected end-to-end outcome for a bug class (see
/// [`BugClass::expected`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// The shield reports a violation at the planted site.
    Detected,
    /// The bug cannot manifest in an observable way; the run completes
    /// clean (documented blind spot or excluded surface).
    Masked,
    /// The bug corrupts memory and nothing is logged (documented soft
    /// spot).
    SilentCorruption,
    /// Benign control: clean completion.
    Completed,
}

impl Expected {
    /// Stable machine-readable name.
    pub fn slug(self) -> &'static str {
        match self {
            Expected::Detected => "detected",
            Expected::Masked => "masked",
            Expected::SilentCorruption => "silent-corruption",
            Expected::Completed => "completed",
        }
    }
}

/// How far out of bounds the planted access reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Magnitude {
    /// First byte(s) past the protection boundary.
    OffByOne,
    /// Kilobytes past it.
    Far,
}

/// The memory the planted access should land in, in host-resolvable
/// terms (the generator does not know virtual addresses; the harness
/// resolves these against the driver's allocation records after launch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimRef {
    /// `[end+lo, end+hi)` relative to the end of buffer argument
    /// `param` (negative `lo` covers straddling accesses that begin in
    /// bounds).
    BufferEnd {
        /// Index of the victim buffer in the argument list.
        param: usize,
        /// Window start, bytes relative to the buffer's end.
        lo: i64,
        /// Window end (exclusive), bytes relative to the buffer's end.
        hi: i64,
    },
    /// `[end+lo, end+hi)` relative to the end of the device-heap chunk.
    HeapEnd {
        /// Window start, bytes past the chunk's end.
        lo: u64,
        /// Window end (exclusive), bytes past the chunk's end.
        hi: u64,
    },
    /// A sibling device-heap block inside the same coarse heap region —
    /// in bounds as far as the RBT is concerned.
    HeapSibling,
    /// A device-heap block the kernel has already freed (still mapped:
    /// the model's `Free` is timing-only).
    FreedHeapBlock,
    /// Past the end of local variable `var`'s per-launch allocation.
    LocalEnd {
        /// Local variable slot.
        var: u8,
    },
    /// The workgroup's on-chip shared scratch (unprotected, wrapping).
    SharedWindow,
    /// No victim: benign control specimen.
    None,
}

/// The machine-readable oracle attached to every specimen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantedBug {
    /// Which taxonomy entry was planted.
    pub class: BugClass,
    /// Ordinal of the buggy access among the kernel's memory
    /// instructions, in `iter_instrs` order (`None` for benign controls).
    pub mem_ordinal: Option<usize>,
    /// Addressing style of the buggy site, where a Fig. 2 style applies.
    pub style: Option<AddrStyle>,
    /// Whether the buggy access is a store.
    pub is_store: bool,
    /// Overshoot distance, where the class has one.
    pub magnitude: Option<Magnitude>,
    /// Where the access should land.
    pub victim: VictimRef,
}

/// Host-side corruption probe: after a completed run the harness reads
/// `offset` in buffer argument `param` and compares against `clean` —
/// a mismatch is silent corruption the shield let through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Buffer argument to read back.
    pub param: usize,
    /// Byte offset of the probed word.
    pub offset: u64,
    /// Value the word holds when the bug did not manifest.
    pub clean: u64,
}

/// One generated kernel plus everything the harness needs to run and
/// judge it.
#[derive(Debug, Clone)]
pub struct Specimen {
    /// Corpus-unique name (`fuzz_<class>_<index>`).
    pub name: String,
    /// Seed of this specimen's private RNG stream.
    pub seed: u64,
    /// The generated kernel (validated by construction).
    pub kernel: Arc<Kernel>,
    /// Sizes in bytes of the buffers to allocate and pass, in argument
    /// order.
    pub buffers: Vec<u64>,
    /// Grid dimension of the launch.
    pub grid: u32,
    /// Block dimension of the launch.
    pub block: u32,
    /// Device-heap limit to configure before launch (0: no heap).
    pub heap_limit: u64,
    /// Post-run corruption probe, when the class plants one.
    pub probe: Option<Probe>,
    /// The oracle.
    pub bug: PlantedBug,
}

/// Grid/block combinations the generator draws from. All totals are
/// powers of two so buffer plans sized from the thread count stay
/// power-of-two (exact Type 3 reservations — no canary padding to blur
/// the detection boundary).
const LAUNCH_COMBOS: [(u32, u32); 4] = [(1, 32), (2, 32), (1, 64), (2, 64)];

const STYLES: [AddrStyle; 3] = [
    AddrStyle::BaseOffset,
    AddrStyle::Flat,
    AddrStyle::BindingTable,
];

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

/// Benign shape noise: a few arithmetic ops and, sometimes, a bounded
/// counted loop, so specimens within a class differ structurally and not
/// just numerically. Never emits a memory access (the oracle's
/// `mem_ordinal` bookkeeping stays simple).
fn filler(b: &mut KernelBuilder, rng: &mut StdRng) {
    let tid = b.global_thread_id();
    let mut acc = b.add(tid, Operand::Imm(rng.gen_range(1..64)));
    for _ in 0..rng.gen_range(0usize..3) {
        acc = b.mul(acc, Operand::Imm(rng.gen_range(3..17)));
        acc = b.xor(acc, Operand::Imm(rng.gen_range(0..255)));
    }
    if rng.gen_bool(0.5) {
        let trips = rng.gen_range(1i64..4);
        dsl::counted_loop(b, 0, trips, 1, |b, i| {
            let t = b.add(i, acc);
            b.and(t, Operand::Imm(0xFFFF));
        })
        .expect("generator-chosen loop shape is valid");
    }
}

/// Corpus-unique kernel name for specimen `index` of `class`.
fn specimen_name(class: BugClass, index: usize) -> String {
    format!("fuzz_{}_{:03}", class.slug().replace('-', "_"), index)
}

fn gen_static_oob_write(rng: &mut StdRng, name: String) -> Specimen {
    let size = pick(rng, &[64u64, 128, 256, 512, 1024]);
    let style = pick(rng, &STYLES);
    let (grid, block) = pick(rng, &LAUNCH_COMBOS);
    let magnitude = if rng.gen_bool(0.5) {
        Magnitude::OffByOne
    } else {
        Magnitude::Far
    };
    let delta = match magnitude {
        Magnitude::OffByOne => 0,
        Magnitude::Far => 2048 + 1024 * rng.gen_range(0u64..4),
    };
    let mut b = KernelBuilder::new(name.clone());
    let a = dsl::planned_buffer(&mut b, "a", size, false).expect("one buffer");
    filler(&mut b, rng);
    let payload = rng.gen_range(1u64..0xFFFF);
    dsl::g_st(
        &mut b,
        style,
        a,
        Operand::Imm((size + delta) as i64),
        Operand::Imm(payload as i64),
    );
    b.ret();
    Specimen {
        name,
        seed: 0,
        kernel: Arc::new(b.finish().expect("generated kernel validates")),
        buffers: vec![size],
        grid,
        block,
        heap_limit: 0,
        probe: None,
        bug: PlantedBug {
            class: BugClass::StaticOobWrite,
            mem_ordinal: Some(0),
            style: Some(style),
            is_store: true,
            magnitude: Some(magnitude),
            victim: VictimRef::BufferEnd {
                param: 0,
                lo: delta as i64,
                hi: delta as i64 + 4,
            },
        },
    }
}

fn gen_dyn_oob_read(rng: &mut StdRng, name: String) -> Specimen {
    let style = pick(rng, &STYLES);
    // Bigger launches than the shared pool: the input buffer is half the
    // thread count in words, and it must be at least the allocator's
    // 512-byte reservation floor — otherwise the overrun lands in Type 3
    // power-of-two padding and is (correctly) not a violation.
    let (grid, block) = pick(rng, &[(8u32, 32u32), (4, 64), (8, 64), (16, 32)]);
    let threads = u64::from(grid) * u64::from(block);
    // Half the grid reads past the end.
    let a_bytes = threads * 2;
    let out_bytes = threads * 4;
    let mut b = KernelBuilder::new(name.clone());
    let a = dsl::planned_buffer(&mut b, "a", a_bytes, true).expect("input buffer");
    let out = dsl::planned_buffer(&mut b, "out", out_bytes, false).expect("output buffer");
    filler(&mut b, rng);
    let tid = b.global_thread_id();
    let off = dsl::byte_off4(&mut b, tid);
    let v = dsl::g_ld(&mut b, style, a, off);
    let sum = b.add(v, tid);
    dsl::g_st(&mut b, AddrStyle::BaseOffset, out, off, sum);
    b.ret();
    Specimen {
        name,
        seed: 0,
        kernel: Arc::new(b.finish().expect("generated kernel validates")),
        buffers: vec![a_bytes, out_bytes],
        grid,
        block,
        heap_limit: 0,
        probe: None,
        bug: PlantedBug {
            class: BugClass::DynOobRead,
            mem_ordinal: Some(0),
            style: Some(style),
            is_store: false,
            magnitude: Some(Magnitude::OffByOne),
            victim: VictimRef::BufferEnd {
                param: 0,
                lo: 0,
                hi: a_bytes as i64,
            },
        },
    }
}

fn gen_heap_oob_write(rng: &mut StdRng, name: String) -> Specimen {
    let heap_limit = pick(rng, &[1u64 << 14, 1 << 15]);
    let magnitude = if rng.gen_bool(0.5) {
        Magnitude::OffByOne
    } else {
        Magnitude::Far
    };
    let delta = match magnitude {
        Magnitude::OffByOne => 0,
        Magnitude::Far => 4096 * rng.gen_range(1u64..4),
    };
    let use_flat = rng.gen_bool(0.5);
    let mut b = KernelBuilder::new(name.clone());
    let out = dsl::planned_buffer(&mut b, "out", 64, false).expect("output buffer");
    filler(&mut b, rng);
    // Single-thread launch: the first malloc sits at the chunk base, so
    // `heap_limit + delta` from the block pointer is past the chunk end.
    let p = b.malloc(Operand::Imm(64));
    let off = (heap_limit + delta) as i64;
    let addr = if use_flat {
        let full = b.add(p, Operand::Imm(off));
        b.flat(full)
    } else {
        b.base_offset(p, Operand::Imm(off))
    };
    b.st(MemSpace::Global, MemWidth::W4, addr, Operand::Imm(0x0BAD));
    // Keep the block pointer observable so the malloc is not dead code.
    b.st(
        MemSpace::Global,
        MemWidth::W8,
        b.base_offset(out, Operand::Imm(0)),
        p,
    );
    b.ret();
    Specimen {
        name,
        seed: 0,
        kernel: Arc::new(b.finish().expect("generated kernel validates")),
        buffers: vec![64],
        grid: 1,
        block: 1,
        heap_limit,
        probe: None,
        bug: PlantedBug {
            class: BugClass::HeapOobWrite,
            mem_ordinal: Some(0),
            style: Some(if use_flat {
                AddrStyle::Flat
            } else {
                AddrStyle::BaseOffset
            }),
            is_store: true,
            magnitude: Some(magnitude),
            victim: VictimRef::HeapEnd {
                lo: delta,
                hi: delta + 4,
            },
        },
    }
}

fn gen_intra_region_overflow(rng: &mut StdRng, name: String) -> Specimen {
    // Block A's size is a multiple of the heap allocator's 16-byte grain,
    // so block B starts exactly at A's end.
    let a_size = pick(rng, &[32u64, 48, 64, 80, 96]);
    let magnitude = if rng.gen_bool(0.5) {
        Magnitude::OffByOne
    } else {
        Magnitude::Far
    };
    let k = match magnitude {
        Magnitude::OffByOne => 0,
        Magnitude::Far => 4 * rng.gen_range(1u64..8),
    };
    let mut b = KernelBuilder::new(name.clone());
    let out = dsl::planned_buffer(&mut b, "out", 64, false).expect("output buffer");
    filler(&mut b, rng);
    let pa = b.malloc(Operand::Imm(a_size as i64));
    let pb = b.malloc(Operand::Imm(64));
    // Victim cell starts clean; the overflow out of A clobbers it; the
    // readback exfiltrates what the shield let through.
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(pb, Operand::Imm(k as i64)),
        Operand::Imm(CLEAN_WORD as i64),
    );
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(pa, Operand::Imm((a_size + k) as i64)),
        Operand::Imm(EVIL_WORD as i64),
    );
    let v = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(pb, Operand::Imm(k as i64)),
    );
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(out, Operand::Imm(0)),
        v,
    );
    b.ret();
    Specimen {
        name,
        seed: 0,
        kernel: Arc::new(b.finish().expect("generated kernel validates")),
        buffers: vec![64],
        grid: 1,
        block: 1,
        heap_limit: 1 << 14,
        probe: Some(Probe {
            param: 0,
            offset: 0,
            clean: CLEAN_WORD,
        }),
        bug: PlantedBug {
            class: BugClass::IntraRegionOverflow,
            mem_ordinal: Some(1),
            style: Some(AddrStyle::BaseOffset),
            is_store: true,
            magnitude: Some(magnitude),
            victim: VictimRef::HeapSibling,
        },
    }
}

fn gen_use_after_free(rng: &mut StdRng, name: String) -> Specimen {
    let off = 4 * rng.gen_range(0u64..15);
    let mut b = KernelBuilder::new(name.clone());
    let out = dsl::planned_buffer(&mut b, "out", 64, false).expect("output buffer");
    filler(&mut b, rng);
    let p = b.malloc(Operand::Imm(64));
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, Operand::Imm(off as i64)),
        Operand::Imm(0x0A11_0C8D),
    );
    b.free(p);
    // The dangling store and load: the model's Free is timing-only, so
    // the region stays valid and this is expected to pass unremarked.
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, Operand::Imm(off as i64)),
        Operand::Imm(0x0DEA_D5E1),
    );
    let v = b.ld(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, Operand::Imm(off as i64)),
    );
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(out, Operand::Imm(0)),
        v,
    );
    b.ret();
    Specimen {
        name,
        seed: 0,
        kernel: Arc::new(b.finish().expect("generated kernel validates")),
        buffers: vec![64],
        grid: 1,
        block: 1,
        heap_limit: 1 << 14,
        probe: None,
        bug: PlantedBug {
            class: BugClass::UseAfterFree,
            mem_ordinal: Some(1),
            style: Some(AddrStyle::BaseOffset),
            is_store: true,
            magnitude: None,
            victim: VictimRef::FreedHeapBlock,
        },
    }
}

fn gen_partial_width_straddle(rng: &mut StdRng, name: String) -> Specimen {
    let size = pick(rng, &[64u64, 128, 256, 512]);
    let (grid, block) = pick(rng, &LAUNCH_COMBOS);
    let threads = u64::from(grid) * u64::from(block);
    let out_bytes = threads * 4;
    let mut b = KernelBuilder::new(name.clone());
    let a = dsl::planned_buffer(&mut b, "a", size, false).expect("victim buffer");
    let out = dsl::planned_buffer(&mut b, "out", out_bytes, false).expect("output buffer");
    filler(&mut b, rng);
    let tid = b.global_thread_id();
    // Only thread 0 performs the straddling wide store; the last 4 bytes
    // of `a` are in bounds, the next 4 are not.
    let is0 = b.cmp(CmpOp::Eq, tid, Operand::Imm(0));
    b.if_then(is0, |b| {
        b.st(
            MemSpace::Global,
            MemWidth::W8,
            b.base_offset(a, Operand::Imm(size as i64 - 4)),
            Operand::Imm(0x0102_0304_0506),
        );
    });
    let off = dsl::byte_off4(&mut b, tid);
    dsl::g_st(&mut b, AddrStyle::BaseOffset, out, off, tid);
    b.ret();
    Specimen {
        name,
        seed: 0,
        kernel: Arc::new(b.finish().expect("generated kernel validates")),
        buffers: vec![size, out_bytes],
        grid,
        block,
        heap_limit: 0,
        probe: None,
        bug: PlantedBug {
            class: BugClass::PartialWidthStraddle,
            mem_ordinal: Some(0),
            style: Some(AddrStyle::BaseOffset),
            is_store: true,
            magnitude: Some(Magnitude::OffByOne),
            victim: VictimRef::BufferEnd {
                param: 0,
                lo: -4,
                hi: 4,
            },
        },
    }
}

fn gen_local_oob_write(rng: &mut StdRng, name: String) -> Specimen {
    let (grid, block) = pick(rng, &LAUNCH_COMBOS);
    let threads = u64::from(grid) * u64::from(block);
    let bpt = pick(rng, &[16u64, 32, 64]);
    let total = bpt * threads;
    let magnitude = if rng.gen_bool(0.5) {
        Magnitude::OffByOne
    } else {
        Magnitude::Far
    };
    let delta = match magnitude {
        Magnitude::OffByOne => 0,
        Magnitude::Far => 4096,
    };
    let mut b = KernelBuilder::new(name.clone());
    let out = dsl::planned_buffer(&mut b, "out", threads * 4, false).expect("output buffer");
    let scratch = b.local_var("scratch", bpt);
    filler(&mut b, rng);
    let tid = b.global_thread_id();
    // Benign per-thread slot write, then the planted store one past (or
    // far past) the whole allocation's power-of-two reservation.
    let slot = b.mul(tid, Operand::Imm(bpt as i64));
    b.st(
        MemSpace::Local,
        MemWidth::W4,
        b.base_offset(b.local_base(scratch), slot),
        tid,
    );
    b.st(
        MemSpace::Local,
        MemWidth::W4,
        b.base_offset(b.local_base(scratch), Operand::Imm((total + delta) as i64)),
        Operand::Imm(0x10CA_100B),
    );
    let off = dsl::byte_off4(&mut b, tid);
    dsl::g_st(&mut b, AddrStyle::BaseOffset, out, off, tid);
    b.ret();
    Specimen {
        name,
        seed: 0,
        kernel: Arc::new(b.finish().expect("generated kernel validates")),
        buffers: vec![threads * 4],
        grid,
        block,
        heap_limit: 0,
        probe: None,
        bug: PlantedBug {
            class: BugClass::LocalOobWrite,
            mem_ordinal: Some(1),
            style: Some(AddrStyle::BaseOffset),
            is_store: true,
            magnitude: Some(magnitude),
            victim: VictimRef::LocalEnd { var: scratch },
        },
    }
}

fn gen_shared_oob_write(rng: &mut StdRng, name: String) -> Specimen {
    let (grid, block) = pick(rng, &[(1u32, 32u32), (2, 32)]);
    let threads = u64::from(grid) * u64::from(block);
    let n = pick(rng, &[128u64, 256, 512]);
    let mut b = KernelBuilder::new(name.clone());
    let out = dsl::planned_buffer(&mut b, "out", threads * 4, false).expect("output buffer");
    b.shared_mem(n);
    filler(&mut b, rng);
    let tid = b.global_thread_id();
    // Every lane stores one slot past the scratch window at a disjoint
    // per-thread offset (so the race pass has nothing to flag). The model
    // wraps the index back into the window: nothing outside the
    // workgroup's on-chip scratch is reachable.
    let t4 = dsl::byte_off4(&mut b, tid);
    let off = b.add(t4, Operand::Imm(n as i64));
    b.st(MemSpace::Shared, MemWidth::W4, b.flat(off), tid);
    let off_g = dsl::byte_off4(&mut b, tid);
    dsl::g_st(&mut b, AddrStyle::BaseOffset, out, off_g, tid);
    b.ret();
    Specimen {
        name,
        seed: 0,
        kernel: Arc::new(b.finish().expect("generated kernel validates")),
        buffers: vec![threads * 4],
        grid,
        block,
        heap_limit: 0,
        probe: None,
        bug: PlantedBug {
            class: BugClass::SharedOobWrite,
            mem_ordinal: Some(0),
            style: None,
            is_store: true,
            magnitude: Some(Magnitude::OffByOne),
            victim: VictimRef::SharedWindow,
        },
    }
}

fn gen_benign(rng: &mut StdRng, name: String) -> Specimen {
    let style = pick(rng, &STYLES);
    let (grid, block) = pick(rng, &LAUNCH_COMBOS);
    let threads = u64::from(grid) * u64::from(block);
    let bytes = threads * 4;
    let mut b = KernelBuilder::new(name.clone());
    let a = dsl::planned_buffer(&mut b, "a", bytes, true).expect("input buffer");
    let out = dsl::planned_buffer(&mut b, "out", bytes, false).expect("output buffer");
    filler(&mut b, rng);
    let tid = b.global_thread_id();
    let off = dsl::byte_off4(&mut b, tid);
    let v = dsl::g_ld(&mut b, style, a, off);
    let w = b.add(v, tid);
    dsl::g_st(&mut b, AddrStyle::BaseOffset, out, off, w);
    b.ret();
    Specimen {
        name,
        seed: 0,
        kernel: Arc::new(b.finish().expect("generated kernel validates")),
        buffers: vec![bytes, bytes],
        grid,
        block,
        heap_limit: 0,
        probe: None,
        bug: PlantedBug {
            class: BugClass::Benign,
            mem_ordinal: None,
            style: Some(style),
            is_store: false,
            magnitude: None,
            victim: VictimRef::None,
        },
    }
}

/// Generates `per_class` specimens for every taxonomy class, in class
/// order then index order — a pure function of `(corpus_seed,
/// per_class)`. Each class draws from its own labelled stream and each
/// specimen from a labelled split of that, so corpora are stable under
/// extension.
pub fn corpus(corpus_seed: u64, per_class: usize) -> Vec<Specimen> {
    let mut out = Vec::with_capacity(BugClass::ALL.len() * per_class);
    for class in BugClass::ALL {
        let mut class_rng = StdRng::stream(corpus_seed, &format!("fuzz/{}", class.slug()));
        for index in 0..per_class {
            let mut srng = class_rng.split(&format!("specimen/{index}"));
            let name = specimen_name(class, index);
            let mut s = match class {
                BugClass::StaticOobWrite => gen_static_oob_write(&mut srng, name),
                BugClass::DynOobRead => gen_dyn_oob_read(&mut srng, name),
                BugClass::HeapOobWrite => gen_heap_oob_write(&mut srng, name),
                BugClass::IntraRegionOverflow => gen_intra_region_overflow(&mut srng, name),
                BugClass::UseAfterFree => gen_use_after_free(&mut srng, name),
                BugClass::PartialWidthStraddle => gen_partial_width_straddle(&mut srng, name),
                BugClass::LocalOobWrite => gen_local_oob_write(&mut srng, name),
                BugClass::SharedOobWrite => gen_shared_oob_write(&mut srng, name),
                BugClass::Benign => gen_benign(&mut srng, name),
            };
            s.seed = gpushield_runtime::rng::derive_seed(
                corpus_seed,
                &format!("fuzz/{}/specimen/{index}", class.slug()),
            );
            out.push(s);
        }
    }
    out
}

/// The committed scoreboard's corpus: seed shared with every exhibit,
/// 25 specimens per class (225 total).
pub const CORPUS_SEED: u64 = 0x6057_5E1D;
/// Specimens per class in the default corpus.
pub const PER_CLASS: usize = 25;

/// The corpus the `fuzz_scoreboard` exhibit and `BENCH_detection.json`
/// are built from.
pub fn default_corpus() -> Vec<Specimen> {
    corpus(CORPUS_SEED, PER_CLASS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn fingerprint(specs: &[Specimen]) -> String {
        specs
            .iter()
            .map(|s| format!("{s:#?}\n"))
            .collect::<String>()
    }

    #[test]
    fn corpus_is_a_pure_function_of_the_seed() {
        let a = corpus(7, 3);
        let b = corpus(7, 3);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = corpus(8, 3);
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn every_specimen_validates_and_is_wellformed() {
        for s in corpus(11, 4) {
            // finish() already validated; re-validate the finished kernel
            // and sanity-check the plan.
            gpushield_isa::validate(&s.kernel).expect("specimen kernel validates");
            assert!(s.grid >= 1 && s.block >= 1, "{}: degenerate launch", s.name);
            assert!(
                s.buffers.iter().all(|&b| b > 0),
                "{}: zero-width buffer plan",
                s.name
            );
            if s.bug.class != BugClass::Benign {
                assert!(
                    s.bug.mem_ordinal.is_some(),
                    "{}: oracle missing site",
                    s.name
                );
            }
        }
    }

    #[test]
    fn corpus_spans_the_taxonomy_and_check_types() {
        let specs = default_corpus();
        assert!(specs.len() >= 200, "corpus has {} specimens", specs.len());
        let classes: HashSet<_> = specs.iter().map(|s| s.bug.class).collect();
        assert_eq!(classes.len(), BugClass::ALL.len());
        let families: HashSet<_> = specs.iter().map(|s| s.bug.class.check_family()).collect();
        for fam in ["type1", "type2", "type3"] {
            assert!(families.contains(fam), "missing {fam} coverage");
        }
        let styles: HashSet<_> = specs.iter().filter_map(|s| s.bug.style).collect();
        assert_eq!(styles.len(), 3, "all Fig. 2 styles exercised: {styles:?}");
        let magnitudes: HashSet<_> = specs
            .iter()
            .filter_map(|s| s.bug.magnitude.map(|m| format!("{m:?}")))
            .collect();
        assert_eq!(magnitudes.len(), 2, "off-by-one and far strides present");
    }

    #[test]
    fn planted_site_ordinal_points_at_a_memory_instruction() {
        use gpushield_isa::Instr;
        for s in corpus(3, 2) {
            let Some(ord) = s.bug.mem_ordinal else {
                continue;
            };
            let mems: Vec<_> = s
                .kernel
                .iter_instrs()
                .filter(|(_, _, i)| {
                    matches!(
                        i,
                        Instr::Ld { .. } | Instr::St { .. } | Instr::AtomAdd { .. }
                    )
                })
                .collect();
            assert!(
                ord < mems.len(),
                "{}: ordinal {ord} out of range ({} mem ops)",
                s.name,
                mems.len()
            );
            let (_, _, instr) = mems[ord];
            let is_store = matches!(instr, Instr::St { .. } | Instr::AtomAdd { .. });
            assert_eq!(is_store, s.bug.is_store, "{}: store-ness mismatch", s.name);
        }
    }
}
