//! The tenant table: isolation domains layered on region IDs.
//!
//! Each tenant is a principal with its own disjoint slice of the 14-bit
//! region-ID space (see [`RegionIdAllocator`]), its own accounting, and an
//! attribution map from driver-assigned kernel IDs back to the tenant that
//! launched them — which is how a violation logged by the BCU (keyed by
//! kernel ID) is charged to the right principal.

use crate::driver::DriverError;
use crate::tenant::audit::{AuditKind, AuditLog};
use crate::tenant::ids::RegionIdAllocator;
use gpushield_telemetry::Registry;
use std::collections::HashMap;

/// Identifies one tenant (an isolation domain) within a [`TenantTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u16);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Per-tenant accounting the serving loop and exhibits read back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Launches admitted into preparation.
    pub launches_admitted: u64,
    /// Launches that ran to completion (with or without violations).
    pub launches_completed: u64,
    /// Launches refused at preparation (e.g. region-ID exhaustion).
    pub launches_rejected: u64,
    /// Violations the BCU attributed to this tenant's kernels.
    pub violations_attributed: u64,
    /// Simulated cycles consumed by this tenant's launches.
    pub cycles_consumed: u64,
    /// Total simulated cycles this tenant's jobs waited before admission.
    pub queue_wait_cycles: u64,
}

struct Tenant {
    allocator: RegionIdAllocator,
    weight: u64,
    stats: TenantStats,
    /// Allocator churn `(acquired, recycled)` already written to the
    /// audit log; the delta since this snapshot is appended at the next
    /// admission.
    audited_churn: (u64, u64),
}

/// Partitions the region-ID space into per-tenant isolation domains and
/// tracks kernel-ID → tenant attribution.
///
/// # Example
///
/// ```
/// use gpushield_driver::{TenantId, TenantTable};
///
/// let mut t = TenantTable::new(4);
/// // Slices are disjoint: tenant 0 and tenant 1 can never mint the same ID.
/// let a = t.allocator_mut(TenantId(0))?.acquire(2)?;
/// let b = t.allocator_mut(TenantId(1))?.acquire(2)?;
/// assert!(a.iter().all(|id| !b.contains(id)));
/// # Ok::<(), gpushield_driver::DriverError>(())
/// ```
pub struct TenantTable {
    tenants: Vec<Tenant>,
    /// Kernel-ID → tenant index, recorded at launch. Kernel IDs are 12-bit
    /// and wrap, so latest-launch-wins — matching the BCU, which also keeps
    /// one registration per kernel ID.
    kernel_owner: HashMap<u16, u16>,
    /// Append-only security audit trail across all tenants.
    audit: AuditLog,
}

impl TenantTable {
    /// Creates `n` tenants with equal weights, splitting `1..2^14` into `n`
    /// equal disjoint slices.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or exceeds the ID space.
    pub fn new(n: usize) -> Self {
        let space = (1 << 14) - 1;
        assert!(n > 0, "at least one tenant");
        assert!(n <= space, "more tenants than region IDs");
        let per = (space / n) as u16;
        Self::with_slices((0..n).map(|i| {
            let lo = 1 + i as u16 * per;
            (lo, lo + per, 1)
        }))
    }

    /// Creates tenants from explicit `(lo, hi, weight)` slices — for
    /// unequal shares or deliberately tiny slices that force recycling and
    /// exhaustion under churn.
    ///
    /// # Panics
    ///
    /// Panics when slices overlap, escape `1..2^14`, or a weight is zero
    /// (delegating slice validation to [`RegionIdAllocator::new`]).
    pub fn with_slices(slices: impl IntoIterator<Item = (u16, u16, u64)>) -> Self {
        let mut tenants = Vec::new();
        let mut claimed: Vec<(u16, u16)> = Vec::new();
        for (lo, hi, weight) in slices {
            assert!(weight > 0, "zero-weight tenant");
            assert!(
                claimed.iter().all(|(l, h)| hi <= *l || lo >= *h),
                "tenant slices overlap"
            );
            claimed.push((lo, hi));
            tenants.push(Tenant {
                allocator: RegionIdAllocator::new(lo, hi),
                weight,
                stats: TenantStats::default(),
                audited_churn: (0, 0),
            });
        }
        assert!(!tenants.is_empty(), "at least one tenant");
        TenantTable {
            tenants,
            kernel_owner: HashMap::new(),
            audit: AuditLog::new(),
        }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Always false: construction requires at least one tenant.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    fn tenant(&self, t: TenantId) -> Result<&Tenant, DriverError> {
        self.tenants
            .get(usize::from(t.0))
            .ok_or(DriverError::UnknownTenant { id: t.0 })
    }

    fn tenant_mut(&mut self, t: TenantId) -> Result<&mut Tenant, DriverError> {
        self.tenants
            .get_mut(usize::from(t.0))
            .ok_or(DriverError::UnknownTenant { id: t.0 })
    }

    /// The tenant's region-ID allocator.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTenant`] for an out-of-range ID.
    pub fn allocator_mut(&mut self, t: TenantId) -> Result<&mut RegionIdAllocator, DriverError> {
        Ok(&mut self.tenant_mut(t)?.allocator)
    }

    /// The tenant's fair-share weight.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTenant`] for an out-of-range ID.
    pub fn weight(&self, t: TenantId) -> Result<u64, DriverError> {
        Ok(self.tenant(t)?.weight)
    }

    /// Read-only per-tenant accounting.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTenant`] for an out-of-range ID.
    pub fn stats(&self, t: TenantId) -> Result<TenantStats, DriverError> {
        Ok(self.tenant(t)?.stats)
    }

    /// Mutable per-tenant accounting (the serving loop charges queue waits
    /// and consumed cycles here).
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTenant`] for an out-of-range ID.
    pub fn stats_mut(&mut self, t: TenantId) -> Result<&mut TenantStats, DriverError> {
        Ok(&mut self.tenant_mut(t)?.stats)
    }

    /// Records that `kernel_id` belongs to tenant `t` (call when the launch
    /// is admitted) and bumps its admission counter.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTenant`] for an out-of-range ID.
    pub fn record_launch(&mut self, t: TenantId, kernel_id: u16) -> Result<(), DriverError> {
        let tenant = self.tenant_mut(t)?;
        tenant.stats.launches_admitted += 1;
        // Audit the ID churn the just-finished acquisition produced: the
        // delta between the allocator's cumulative counters and the last
        // audited snapshot.
        let a = tenant.allocator.stats();
        let (acq, rec) = (
            a.acquired - tenant.audited_churn.0,
            a.recycled - tenant.audited_churn.1,
        );
        tenant.audited_churn = (a.acquired, a.recycled);
        self.kernel_owner.insert(kernel_id, t.0);
        self.audit.append(t.0, AuditKind::Admitted { kernel_id });
        if acq > 0 {
            self.audit
                .append(t.0, AuditKind::IdsAcquired { count: acq as u16 });
        }
        if rec > 0 {
            self.audit
                .append(t.0, AuditKind::IdsRecycled { count: rec as u16 });
        }
        Ok(())
    }

    /// Records a launch refused at preparation.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTenant`] for an out-of-range ID.
    pub fn record_rejection(&mut self, t: TenantId) -> Result<(), DriverError> {
        self.tenant_mut(t)?.stats.launches_rejected += 1;
        self.audit.append(t.0, AuditKind::Rejected);
        Ok(())
    }

    /// The tenant that launched `kernel_id`, if any — the attribution a
    /// BCU violation record resolves through.
    pub fn owner_of_kernel(&self, kernel_id: u16) -> Option<TenantId> {
        self.kernel_owner.get(&kernel_id).map(|t| TenantId(*t))
    }

    /// Charges one attributed violation to tenant `t`.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTenant`] for an out-of-range ID.
    pub fn note_violation(&mut self, t: TenantId) -> Result<(), DriverError> {
        self.tenant_mut(t)?.stats.violations_attributed += 1;
        self.audit.append(t.0, AuditKind::ViolationAttributed);
        Ok(())
    }

    /// Records the verdict of a cross-tenant probe launched *against*
    /// tenant `t`'s isolation boundary: `blocked` is true when the
    /// boundary held. The serving loop's active isolation checks land
    /// here.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTenant`] for an out-of-range ID.
    pub fn note_probe(&mut self, t: TenantId, blocked: bool) -> Result<(), DriverError> {
        self.tenant(t)?;
        self.audit.append(t.0, AuditKind::ProbeVerdict { blocked });
        Ok(())
    }

    /// The append-only security audit trail.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Retires a completed launch: releases its region IDs back to the
    /// tenant's allocator and bumps the completion counter.
    ///
    /// # Errors
    ///
    /// [`DriverError::UnknownTenant`] for an out-of-range ID;
    /// [`DriverError::RegionIdNotLive`] when a released ID was not live
    /// (double completion or cross-tenant confusion).
    pub fn complete_launch(&mut self, t: TenantId, region_ids: &[u16]) -> Result<(), DriverError> {
        let tenant = self.tenant_mut(t)?;
        tenant.allocator.release(region_ids)?;
        tenant.stats.launches_completed += 1;
        self.audit.append(
            t.0,
            AuditKind::Completed {
                ids_released: region_ids.len() as u16,
            },
        );
        Ok(())
    }

    /// Publishes the aggregate `driver.tenant.*` gauges — the fixed,
    /// schema-pinned surface (totals only; the per-tenant breakdown goes
    /// through [`TenantTable::per_tenant_metrics`] into exhibit JSON so
    /// the schema stays independent of tenant count).
    pub fn publish_telemetry(&self, reg: &mut Registry) {
        if !reg.enabled() {
            return;
        }
        self.audit.publish(reg);
        let mut admitted = 0;
        let mut completed = 0;
        let mut rejected = 0;
        let mut violations = 0;
        let mut acquired = 0;
        let mut recycled = 0;
        let mut live = 0u64;
        let mut capacity = 0u64;
        for t in &self.tenants {
            admitted += t.stats.launches_admitted;
            completed += t.stats.launches_completed;
            rejected += t.stats.launches_rejected;
            violations += t.stats.violations_attributed;
            let a = t.allocator.stats();
            acquired += a.acquired;
            recycled += a.recycled;
            live += t.allocator.live_count() as u64;
            capacity += t.allocator.capacity() as u64;
        }
        let fields: [(&str, u64); 9] = [
            ("tenants", self.tenants.len() as u64),
            ("launches_admitted", admitted),
            ("launches_completed", completed),
            ("launches_rejected", rejected),
            ("violations_attributed", violations),
            ("ids_acquired", acquired),
            ("ids_recycled", recycled),
            ("ids_live", live),
            ("id_capacity", capacity),
        ];
        for (name, v) in fields {
            // Lazy label: a disabled registry formats no strings (pinned
            // by tests/alloc_profile.rs).
            reg.set_named_with(|| format!("driver.tenant.{name}"), v);
        }
    }

    /// The per-tenant metric breakdown as `driver.tenant.<i>.*` pairs —
    /// free-form (tenant count varies per exhibit), so it rides in exhibit
    /// result JSON rather than the pinned schema.
    pub fn per_tenant_metrics(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (i, t) in self.tenants.iter().enumerate() {
            let a = t.allocator.stats();
            let fields: [(&str, u64); 8] = [
                ("launches_admitted", t.stats.launches_admitted),
                ("launches_completed", t.stats.launches_completed),
                ("launches_rejected", t.stats.launches_rejected),
                ("violations_attributed", t.stats.violations_attributed),
                ("cycles_consumed", t.stats.cycles_consumed),
                ("queue_wait_cycles", t.stats.queue_wait_cycles),
                ("ids_acquired", a.acquired),
                ("ids_recycled", a.recycled),
            ];
            for (name, v) in fields {
                out.push((format!("driver.tenant.{i}.{name}"), v));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_partition_is_disjoint_and_covers_no_zero() {
        let mut t = TenantTable::new(8);
        let mut seen: Vec<u16> = Vec::new();
        for i in 0..8 {
            let (lo, hi) = match t.allocator_mut(TenantId(i)) {
                Ok(a) => a.slice(),
                Err(e) => panic!("tenant {i}: {e}"),
            };
            assert!(lo >= 1 && hi <= 1 << 14);
            assert!(seen.iter().all(|s| *s < lo || *s >= hi), "slices overlap");
            seen.extend([lo, hi - 1]);
        }
    }

    #[test]
    fn unknown_tenant_is_a_typed_error() {
        let mut t = TenantTable::new(2);
        assert!(matches!(
            t.allocator_mut(TenantId(7)),
            Err(DriverError::UnknownTenant { id: 7 })
        ));
        assert!(matches!(
            t.record_launch(TenantId(9), 1),
            Err(DriverError::UnknownTenant { id: 9 })
        ));
    }

    #[test]
    fn kernel_attribution_resolves_latest_launch() {
        let mut t = TenantTable::new(3);
        assert_eq!(t.record_launch(TenantId(1), 7), Ok(()));
        assert_eq!(t.owner_of_kernel(7), Some(TenantId(1)));
        // 12-bit kernel IDs wrap: the newest owner wins.
        assert_eq!(t.record_launch(TenantId(2), 7), Ok(()));
        assert_eq!(t.owner_of_kernel(7), Some(TenantId(2)));
        assert_eq!(t.owner_of_kernel(8), None);
    }

    #[test]
    fn complete_launch_releases_ids_and_counts() {
        let mut t = TenantTable::new(2);
        let ids = match t.allocator_mut(TenantId(0)) {
            Ok(a) => a.acquire(2).unwrap_or_default(),
            Err(e) => panic!("{e}"),
        };
        assert_eq!(t.complete_launch(TenantId(0), &ids), Ok(()));
        assert_eq!(
            t.complete_launch(TenantId(0), &ids),
            Err(DriverError::RegionIdNotLive { id: ids[0] })
        );
        assert_eq!(t.stats(TenantId(0)).map(|s| s.launches_completed), Ok(1));
    }

    #[test]
    fn aggregate_telemetry_has_the_pinned_key_set() {
        let mut t = TenantTable::new(2);
        let _ = t.record_launch(TenantId(0), 1);
        let mut reg = Registry::new();
        t.publish_telemetry(&mut reg);
        let names: Vec<&str> = reg.names();
        for key in [
            "driver.tenant.tenants",
            "driver.tenant.launches_admitted",
            "driver.tenant.launches_completed",
            "driver.tenant.launches_rejected",
            "driver.tenant.violations_attributed",
            "driver.tenant.ids_acquired",
            "driver.tenant.ids_recycled",
            "driver.tenant.ids_live",
            "driver.tenant.id_capacity",
            "driver.audit.entries",
            "driver.audit.admitted",
            "driver.audit.ids_acquired",
        ] {
            assert!(names.contains(&key), "{key} missing");
        }
        assert_eq!(
            names.len(),
            17,
            "aggregate surface is 9 tenant keys + 8 audit keys"
        );
        assert_eq!(reg.value("driver.tenant.tenants"), Some(2));
        assert_eq!(reg.value("driver.tenant.launches_admitted"), Some(1));
        assert_eq!(reg.value("driver.audit.admitted"), Some(1));
    }

    #[test]
    fn per_tenant_metrics_break_down_by_index() {
        let mut t = TenantTable::new(2);
        let _ = t.record_launch(TenantId(1), 3);
        let _ = t.note_violation(TenantId(1));
        let m = t.per_tenant_metrics();
        assert_eq!(m.len(), 16);
        let get = |k: &str| m.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("driver.tenant.1.launches_admitted"), Some(1));
        assert_eq!(get("driver.tenant.1.violations_attributed"), Some(1));
        assert_eq!(get("driver.tenant.0.launches_admitted"), Some(0));
    }

    #[test]
    fn disabled_registry_publishes_nothing() {
        let t = TenantTable::new(1);
        let mut reg = Registry::disabled();
        t.publish_telemetry(&mut reg);
        assert!(reg.is_empty());
    }
}
