//! The per-tenant security audit log: an append-only, sequence-numbered
//! record of every security-relevant serving decision.
//!
//! The tenant table's counters say *how many* admissions and violations
//! each tenant accumulated; the audit log says *in what order* — the
//! evidence trail a multi-tenant operator replays when attributing an
//! incident. Entries are never mutated or removed; the sequence number is
//! the global order of decisions across all tenants.
//!
//! Three event families land here (the tentpole's audit surface):
//! admissions (admitted / rejected / completed / violation-attributed),
//! region-ID churn (IDs acquired and recycled per launch, the §5.2.4
//! reuse signal), and cross-tenant probe verdicts (the serving loop's
//! active isolation checks).

use gpushield_telemetry::Registry;

/// What one audit entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    /// A launch was admitted and attributed to `kernel_id`.
    Admitted {
        /// Driver-assigned kernel ID of the admitted launch.
        kernel_id: u16,
    },
    /// A launch was refused at preparation.
    Rejected,
    /// A launch retired, releasing its region IDs.
    Completed {
        /// Region IDs released back to the tenant's allocator.
        ids_released: u16,
    },
    /// The BCU attributed a violation to this tenant.
    ViolationAttributed,
    /// Fresh region IDs drawn from the tenant's slice.
    IdsAcquired {
        /// Number of IDs acquired.
        count: u16,
    },
    /// Previously-released region IDs re-minted to a new launch.
    IdsRecycled {
        /// Number of IDs recycled.
        count: u16,
    },
    /// A cross-tenant probe ran: `blocked` is true when the isolation
    /// boundary held (the probe's access was denied).
    ProbeVerdict {
        /// Whether the probe was blocked.
        blocked: bool,
    },
}

impl AuditKind {
    /// Short stable label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            AuditKind::Admitted { .. } => "admitted",
            AuditKind::Rejected => "rejected",
            AuditKind::Completed { .. } => "completed",
            AuditKind::ViolationAttributed => "violation_attributed",
            AuditKind::IdsAcquired { .. } => "ids_acquired",
            AuditKind::IdsRecycled { .. } => "ids_recycled",
            AuditKind::ProbeVerdict { .. } => "probe_verdict",
        }
    }
}

/// One append-only audit entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditEntry {
    /// Global decision order across all tenants (0-based, gapless).
    pub seq: u64,
    /// The tenant the decision concerns.
    pub tenant: u16,
    /// The decision.
    pub kind: AuditKind,
}

/// The append-only audit log plus its fixed counter surface.
#[derive(Debug, Default)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
    admitted: u64,
    rejected: u64,
    completed: u64,
    violations_attributed: u64,
    ids_acquired: u64,
    ids_recycled: u64,
    probes_blocked: u64,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Appends one entry, assigning the next sequence number, and
    /// returns it.
    pub fn append(&mut self, tenant: u16, kind: AuditKind) -> u64 {
        let seq = self.entries.len() as u64;
        match kind {
            AuditKind::Admitted { .. } => self.admitted += 1,
            AuditKind::Rejected => self.rejected += 1,
            AuditKind::Completed { .. } => self.completed += 1,
            AuditKind::ViolationAttributed => self.violations_attributed += 1,
            AuditKind::IdsAcquired { count } => self.ids_acquired += u64::from(count),
            AuditKind::IdsRecycled { count } => self.ids_recycled += u64::from(count),
            AuditKind::ProbeVerdict { blocked } => {
                if blocked {
                    self.probes_blocked += 1;
                }
            }
        }
        self.entries.push(AuditEntry { seq, tenant, kind });
        seq
    }

    /// Every entry, in decision order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries concerning one tenant, in decision order.
    pub fn for_tenant(&self, tenant: u16) -> impl Iterator<Item = &AuditEntry> {
        self.entries.iter().filter(move |e| e.tenant == tenant)
    }

    /// Renders the log as stable one-line records (for exhibits and
    /// byte-diff tests).
    pub fn render_lines(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| {
                let detail = match e.kind {
                    AuditKind::Admitted { kernel_id } => format!(" kernel={kernel_id}"),
                    AuditKind::Completed { ids_released } => {
                        format!(" ids_released={ids_released}")
                    }
                    AuditKind::IdsAcquired { count } | AuditKind::IdsRecycled { count } => {
                        format!(" count={count}")
                    }
                    AuditKind::ProbeVerdict { blocked } => format!(" blocked={blocked}"),
                    AuditKind::Rejected | AuditKind::ViolationAttributed => String::new(),
                };
                format!(
                    "seq={} tenant={} {}{}",
                    e.seq,
                    e.tenant,
                    e.kind.label(),
                    detail
                )
            })
            .collect()
    }

    /// Publishes the fixed `driver.audit.*` gauge surface. Labels are
    /// built lazily: a disabled registry formats nothing.
    pub fn publish(&self, reg: &mut Registry) {
        let fields: [(&str, u64); 8] = [
            ("entries", self.entries.len() as u64),
            ("admitted", self.admitted),
            ("rejected", self.rejected),
            ("completed", self.completed),
            ("violations_attributed", self.violations_attributed),
            ("ids_acquired", self.ids_acquired),
            ("ids_recycled", self.ids_recycled),
            ("probes_blocked", self.probes_blocked),
        ];
        for (name, v) in fields {
            reg.set_named_with(|| format!("driver.audit.{name}"), v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_gapless_and_global() {
        let mut log = AuditLog::new();
        assert_eq!(log.append(0, AuditKind::Admitted { kernel_id: 5 }), 0);
        assert_eq!(log.append(1, AuditKind::Rejected), 1);
        assert_eq!(log.append(0, AuditKind::Completed { ids_released: 2 }), 2);
        assert_eq!(log.len(), 3);
        let seqs: Vec<u64> = log.entries().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(log.for_tenant(0).count(), 2);
    }

    #[test]
    fn counters_track_each_family() {
        let mut log = AuditLog::new();
        log.append(0, AuditKind::Admitted { kernel_id: 1 });
        log.append(0, AuditKind::IdsAcquired { count: 3 });
        log.append(0, AuditKind::IdsRecycled { count: 2 });
        log.append(0, AuditKind::ViolationAttributed);
        log.append(1, AuditKind::ProbeVerdict { blocked: true });
        log.append(1, AuditKind::ProbeVerdict { blocked: false });
        let mut reg = Registry::new();
        log.publish(&mut reg);
        assert_eq!(reg.value("driver.audit.entries"), Some(6));
        assert_eq!(reg.value("driver.audit.admitted"), Some(1));
        assert_eq!(reg.value("driver.audit.ids_acquired"), Some(3));
        assert_eq!(reg.value("driver.audit.ids_recycled"), Some(2));
        assert_eq!(reg.value("driver.audit.violations_attributed"), Some(1));
        assert_eq!(reg.value("driver.audit.probes_blocked"), Some(1));
        assert_eq!(reg.names().len(), 8, "fixed 8-key surface");
    }

    #[test]
    fn disabled_registry_gets_nothing() {
        let mut log = AuditLog::new();
        log.append(0, AuditKind::Rejected);
        let mut reg = Registry::disabled();
        log.publish(&mut reg);
        assert!(reg.is_empty());
    }

    #[test]
    fn render_lines_are_stable_records() {
        let mut log = AuditLog::new();
        log.append(2, AuditKind::Admitted { kernel_id: 9 });
        log.append(2, AuditKind::ProbeVerdict { blocked: true });
        let lines = log.render_lines();
        assert_eq!(lines[0], "seq=0 tenant=2 admitted kernel=9");
        assert_eq!(lines[1], "seq=1 tenant=2 probe_verdict blocked=true");
    }
}
