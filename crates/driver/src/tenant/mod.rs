//! Multi-tenant isolation domains layered on region IDs.
//!
//! The base driver treats every launch as one trust domain and draws region
//! IDs at random from the whole 14-bit space. This module adds the notion
//! of a *principal*: each tenant owns a disjoint slice of the ID space
//! ([`ids::RegionIdAllocator`]), so no two tenants can ever hold the same
//! region ID, and per-kernel attribution ([`table::TenantTable`]) maps BCU
//! violation records back to the tenant whose kernel raised them.

pub mod audit;
pub mod ids;
pub mod table;

pub use audit::{AuditEntry, AuditKind, AuditLog};
pub use ids::{AllocatorStats, RegionIdAllocator};
pub use table::{TenantId, TenantStats, TenantTable};
