//! Per-tenant region-ID allocation over a disjoint slice of the 14-bit ID
//! space.
//!
//! The global driver draws random IDs from the whole `1..2^14` range
//! (§5.2.4); under multi-tenant serving each tenant instead owns a
//! contiguous, mutually disjoint slice and recycles IDs as launches retire.
//! The allocator never hands out an ID that is still bound to an in-flight
//! launch — reuse-after-free of a live region would let a stale pointer in
//! one launch alias a fresh RBT entry of the next — and it recycles retired
//! IDs least-recently-released first, so a dangling reference has the
//! longest possible window in which it still names an invalid entry.

use crate::driver::DriverError;
use std::collections::{HashSet, VecDeque};

/// Cumulative counters over one allocator's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocatorStats {
    /// IDs handed out (fresh and recycled).
    pub acquired: u64,
    /// IDs handed out that had been used and released before (the LRU
    /// recycling path).
    pub recycled: u64,
    /// IDs returned by completed launches.
    pub released: u64,
    /// Acquisitions refused because demand exceeded the non-live supply.
    pub exhausted_rejections: u64,
    /// Peak number of simultaneously live IDs.
    pub live_peak: u64,
}

/// Allocates region IDs from the half-open slice `[lo, hi)`.
///
/// IDs cycle through three states: *fresh* (never used, handed out in
/// ascending order for determinism), *live* (bound to an in-flight
/// launch), and *retired* (released, waiting in LRU order to be recycled).
///
/// # Example
///
/// ```
/// use gpushield_driver::RegionIdAllocator;
///
/// let mut a = RegionIdAllocator::new(100, 104);
/// let ids = a.acquire(2)?;
/// assert_eq!(ids, vec![100, 101]);
/// a.release(&ids)?;
/// // Fresh IDs are preferred; recycling starts once the slice is used up.
/// assert_eq!(a.acquire(4)?, vec![102, 103, 100, 101]);
/// # Ok::<(), gpushield_driver::DriverError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegionIdAllocator {
    lo: u16,
    hi: u16,
    /// Next never-used ID; fresh supply is `next_fresh..hi`.
    next_fresh: u16,
    /// Released IDs in least-recently-released-first order.
    retired: VecDeque<u16>,
    /// IDs bound to in-flight launches.
    live: HashSet<u16>,
    stats: AllocatorStats,
}

impl RegionIdAllocator {
    /// Creates an allocator over the slice `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the slice is empty or escapes the valid region-ID range
    /// `1..2^14` (ID 0 is reserved: an untagged pointer decodes to it).
    pub fn new(lo: u16, hi: u16) -> Self {
        assert!(lo >= 1, "region ID 0 is reserved");
        assert!(hi <= 1 << 14, "slice escapes the 14-bit ID space");
        assert!(lo < hi, "empty region-ID slice");
        RegionIdAllocator {
            lo,
            hi,
            next_fresh: lo,
            retired: VecDeque::new(),
            live: HashSet::new(),
            stats: AllocatorStats::default(),
        }
    }

    /// The slice bounds `(lo, hi)` this allocator draws from.
    pub fn slice(&self) -> (u16, u16) {
        (self.lo, self.hi)
    }

    /// Total IDs in the slice.
    pub fn capacity(&self) -> usize {
        usize::from(self.hi - self.lo)
    }

    /// IDs currently bound to in-flight launches.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// IDs available to the next acquisition (fresh plus retired).
    pub fn available(&self) -> usize {
        usize::from(self.hi - self.next_fresh) + self.retired.len()
    }

    /// True when `id` is currently bound to an in-flight launch.
    pub fn is_live(&self, id: u16) -> bool {
        self.live.contains(&id)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> AllocatorStats {
        self.stats
    }

    /// Acquires `n` distinct IDs, preferring never-used IDs and then
    /// recycling retired ones least-recently-released first. Live IDs are
    /// never handed out.
    ///
    /// # Errors
    ///
    /// [`DriverError::RegionIdsExhausted`] when `n` exceeds the non-live
    /// supply; the allocator is left unchanged (all-or-nothing).
    pub fn acquire(&mut self, n: usize) -> Result<Vec<u16>, DriverError> {
        if n > self.available() {
            self.stats.exhausted_rejections += 1;
            return Err(DriverError::RegionIdsExhausted { needed: n });
        }
        let mut out = Vec::with_capacity(n);
        while out.len() < n && self.next_fresh < self.hi {
            out.push(self.next_fresh);
            self.next_fresh += 1;
        }
        while out.len() < n {
            let id = self
                .retired
                .pop_front()
                .ok_or(DriverError::RegionIdsExhausted { needed: n })?;
            self.stats.recycled += 1;
            out.push(id);
        }
        for id in &out {
            self.live.insert(*id);
        }
        self.stats.acquired += n as u64;
        self.stats.live_peak = self.stats.live_peak.max(self.live.len() as u64);
        Ok(out)
    }

    /// Returns IDs from a retired launch to the recycling pool.
    ///
    /// # Errors
    ///
    /// [`DriverError::RegionIdNotLive`] when any ID is not currently live —
    /// a double release or a release of an ID this allocator never handed
    /// out. IDs preceding the offender are still released.
    pub fn release(&mut self, ids: &[u16]) -> Result<(), DriverError> {
        for id in ids {
            if !self.live.remove(id) {
                return Err(DriverError::RegionIdNotLive { id: *id });
            }
            self.retired.push_back(*id);
            self.stats.released += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_sequential_and_slice_bounded() {
        let mut a = RegionIdAllocator::new(10, 14);
        assert_eq!(a.acquire(3), Ok(vec![10, 11, 12]));
        assert_eq!(a.capacity(), 4);
        assert_eq!(a.live_count(), 3);
        assert_eq!(a.available(), 1);
    }

    #[test]
    fn exhaustion_is_a_typed_error_and_all_or_nothing() {
        let mut a = RegionIdAllocator::new(1, 4);
        assert_eq!(a.acquire(2), Ok(vec![1, 2]));
        assert_eq!(
            a.acquire(2),
            Err(DriverError::RegionIdsExhausted { needed: 2 })
        );
        // The failed acquisition consumed nothing: the last fresh ID is
        // still available.
        assert_eq!(a.acquire(1), Ok(vec![3]));
        assert_eq!(a.stats().exhausted_rejections, 1);
    }

    #[test]
    fn recycling_is_least_recently_released_first() {
        let mut a = RegionIdAllocator::new(1, 4);
        let ids = a.acquire(3).ok().filter(|v| v == &[1, 2, 3]);
        assert!(ids.is_some());
        assert_eq!(a.release(&[2]), Ok(()));
        assert_eq!(a.release(&[1, 3]), Ok(()));
        // 2 was released first, so it recycles first; then 1, then 3.
        assert_eq!(a.acquire(3), Ok(vec![2, 1, 3]));
        assert_eq!(a.stats().recycled, 3);
    }

    #[test]
    fn live_id_is_never_reissued_under_churn() {
        let mut a = RegionIdAllocator::new(1, 9);
        let pinned = a.acquire(2).unwrap_or_default();
        // Churn through many acquire/release cycles; the pinned (live) IDs
        // must never reappear.
        let mut batch = Vec::new();
        for _ in 0..50 {
            if let Ok(ids) = a.acquire(3) {
                assert!(
                    ids.iter().all(|id| !pinned.contains(id)),
                    "live ID reissued: {ids:?} overlaps pinned {pinned:?}"
                );
                batch = ids;
            }
            assert_eq!(a.release(&batch), Ok(()));
        }
        assert!(a.stats().recycled > 0, "churn exercised recycling");
    }

    #[test]
    fn double_release_and_foreign_release_are_rejected() {
        let mut a = RegionIdAllocator::new(5, 10);
        let ids = a.acquire(1).unwrap_or_default();
        assert_eq!(a.release(&ids), Ok(()));
        assert_eq!(
            a.release(&ids),
            Err(DriverError::RegionIdNotLive { id: ids[0] })
        );
        // An ID from outside the live set (never acquired) is also refused.
        assert_eq!(a.release(&[9]), Err(DriverError::RegionIdNotLive { id: 9 }));
    }

    #[test]
    fn stats_track_peak_and_totals() {
        let mut a = RegionIdAllocator::new(1, 20);
        let ids = a.acquire(5).unwrap_or_default();
        assert_eq!(a.release(&ids[..2]), Ok(()));
        let _ = a.acquire(1);
        let s = a.stats();
        assert_eq!(s.acquired, 6);
        assert_eq!(s.released, 2);
        assert_eq!(s.live_peak, 5);
    }
}
