//! Region Bounds Table layout (paper §5.2.3, Fig. 6).
//!
//! The RBT is a 16384-entry direct-mapped table in GPU global memory,
//! indexed by the (decrypted) 14-bit buffer ID. Each 16-byte entry packs:
//!
//! ```text
//! word0: [63] valid  [62] readonly  [59:48] kernel id  [47:0] base VA
//! word1: [31:0] size in bytes
//! ```
//!
//! The driver writes entries through the translation-bypass path and then
//! makes the pages inaccessible to normal kernel loads/stores (§5.4), so
//! only the BCU hardware can read them.

use gpushield_mem::{MemFault, VirtualMemorySpace};

/// Number of RBT entries (14-bit ID space).
pub const RBT_ENTRIES: u64 = 1 << 14;
/// Bytes per RBT entry.
pub const RBT_ENTRY_BYTES: u64 = 16;
/// Total RBT footprint in device memory.
pub const RBT_BYTES: u64 = RBT_ENTRIES * RBT_ENTRY_BYTES;

const VA_MASK: u64 = (1 << 48) - 1;

/// One decoded bounds record (the paper's `struct Bounds`, Fig. 6).
///
/// # Example
///
/// ```
/// use gpushield_driver::BoundsEntry;
///
/// let e = BoundsEntry { valid: true, readonly: false, kernel_id: 5, base: 0x1000, size: 64 };
/// assert!(e.in_bounds(0x1000, 0x1040));
/// assert!(!e.in_bounds(0x1000, 0x1041));
/// assert_eq!(BoundsEntry::decode(e.encode()), e);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BoundsEntry {
    /// Entry is populated for the current kernel.
    pub valid: bool,
    /// Writes through this region's pointers are violations.
    pub readonly: bool,
    /// Driver-assigned kernel ID (12 bits) that owns this entry.
    pub kernel_id: u16,
    /// 48-bit base virtual address.
    pub base: u64,
    /// Region size in bytes.
    pub size: u32,
}

impl BoundsEntry {
    /// Packs into the two 64-bit words stored in device memory.
    pub fn encode(&self) -> [u64; 2] {
        let w0 = (u64::from(self.valid) << 63)
            | (u64::from(self.readonly) << 62)
            | ((u64::from(self.kernel_id) & 0xFFF) << 48)
            | (self.base & VA_MASK);
        [w0, u64::from(self.size)]
    }

    /// Unpacks from the stored words.
    pub fn decode(words: [u64; 2]) -> Self {
        BoundsEntry {
            valid: words[0] >> 63 != 0,
            readonly: (words[0] >> 62) & 1 != 0,
            kernel_id: ((words[0] >> 48) & 0xFFF) as u16,
            base: words[0] & VA_MASK,
            size: words[1] as u32,
        }
    }

    /// True when `[lo, hi)` falls inside the region.
    pub fn in_bounds(&self, lo: u64, hi: u64) -> bool {
        lo >= self.base && hi <= self.base + u64::from(self.size)
    }
}

/// Writes `entry` at index `id` of the RBT at `rbt_base`, via the
/// translation-bypass path (driver privilege).
///
/// # Errors
///
/// Propagates a [`MemFault`] only if `rbt_base` itself is unmapped.
///
/// # Panics
///
/// Panics if `id` is outside the 14-bit ID space.
pub fn write_entry(
    vm: &mut VirtualMemorySpace,
    rbt_base: u64,
    id: u16,
    entry: &BoundsEntry,
) -> Result<(), MemFault> {
    assert!(u64::from(id) < RBT_ENTRIES, "RBT index out of range");
    let words = entry.encode();
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&words[0].to_le_bytes());
    bytes[8..].copy_from_slice(&words[1].to_le_bytes());
    vm.write_bypass(rbt_base + u64::from(id) * RBT_ENTRY_BYTES, &bytes)
}

/// Reads the entry at index `id` — the hardware path the BCU uses on an
/// L2 RCache miss (§5.5: serviced "using the physical address of RBT
/// stored in the GPU core and a buffer ID as an offset").
///
/// # Errors
///
/// Propagates a [`MemFault`] only if `rbt_base` itself is unmapped.
///
/// # Panics
///
/// Panics if `id` is outside the 14-bit ID space.
pub fn read_entry(
    vm: &VirtualMemorySpace,
    rbt_base: u64,
    id: u16,
) -> Result<BoundsEntry, MemFault> {
    assert!(u64::from(id) < RBT_ENTRIES, "RBT index out of range");
    let mut bytes = [0u8; 16];
    vm.read_bypass(rbt_base + u64::from(id) * RBT_ENTRY_BYTES, &mut bytes)?;
    let w0 = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
    let w1 = u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes"));
    Ok(BoundsEntry::decode([w0, w1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_mem::AllocPolicy;

    #[test]
    fn encode_decode_roundtrip() {
        let e = BoundsEntry {
            valid: true,
            readonly: true,
            kernel_id: 0xABC,
            base: 0x2512_5460_0000,
            size: 16 * 1024,
        };
        assert_eq!(BoundsEntry::decode(e.encode()), e);
    }

    #[test]
    fn in_bounds_is_half_open() {
        let e = BoundsEntry {
            valid: true,
            readonly: false,
            kernel_id: 1,
            base: 1000,
            size: 100,
        };
        assert!(e.in_bounds(1000, 1100));
        assert!(!e.in_bounds(999, 1001));
        assert!(!e.in_bounds(1050, 1101));
    }

    #[test]
    fn device_memory_roundtrip_with_protection() {
        let mut vm = VirtualMemorySpace::new();
        let rbt = vm.alloc(RBT_BYTES, AllocPolicy::Isolated).unwrap();
        let e = BoundsEntry {
            valid: true,
            readonly: false,
            kernel_id: 7,
            base: 0x4000,
            size: 64,
        };
        write_entry(&mut vm, rbt.va, 0x1234, &e).unwrap();
        // Protect the pages as the driver does; the BCU path still reads.
        vm.protect(rbt.va, RBT_BYTES);
        assert_eq!(read_entry(&vm, rbt.va, 0x1234).unwrap(), e);
        // A kernel-visible read faults.
        assert!(vm.read_uint(rbt.va + 0x1234 * 16, 8).is_err());
        // Unwritten entries decode as invalid.
        assert!(!read_entry(&vm, rbt.va, 0x0).unwrap().valid);
    }
}
