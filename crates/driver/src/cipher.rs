//! 14-bit buffer-ID encryption (paper §5.2.4).
//!
//! The driver assigns each buffer a random-but-unique 14-bit ID and embeds
//! it *encrypted* in the pointer's upper bits, so an attacker who observes
//! pointers across runs cannot infer or forge IDs. A fresh key is drawn per
//! kernel launch. We use a 4-round balanced Feistel network over 7+7 bits,
//! which is a bijection on the 14-bit space — exactly the property the RBT
//! indexing needs (distinct IDs stay distinct after encryption).

/// Number of Feistel rounds.
const ROUNDS: u32 = 4;
const HALF_BITS: u32 = 7;
const HALF_MASK: u16 = (1 << HALF_BITS) - 1;

fn round_fn(x: u16, round_key: u64) -> u16 {
    let v = (u64::from(x) ^ round_key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((v >> 23) as u16) & HALF_MASK
}

fn round_key(key: u64, round: u32) -> u64 {
    key.rotate_left(round * 17) ^ u64::from(round).wrapping_mul(0xA5A5_A5A5_A5A5_A5A5)
}

/// Encrypts a 14-bit buffer ID under `key`.
///
/// # Panics
///
/// Panics if `id` exceeds 14 bits.
///
/// # Example
///
/// ```
/// use gpushield_driver::{decrypt_id, encrypt_id};
///
/// let key = 0x0123_4567_89AB_CDEF;
/// let ct = encrypt_id(0x1ABC, key);
/// assert_eq!(decrypt_id(ct, key), 0x1ABC);
/// // A different key decrypts to garbage, not the original ID.
/// assert_ne!(decrypt_id(ct, key ^ 1), 0x1ABC);
/// ```
pub fn encrypt_id(id: u16, key: u64) -> u16 {
    assert!(id < (1 << 14), "buffer ID exceeds 14 bits");
    let (mut l, mut r) = (id >> HALF_BITS, id & HALF_MASK);
    for round in 0..ROUNDS {
        let nl = r;
        let nr = l ^ round_fn(r, round_key(key, round));
        l = nl;
        r = nr;
    }
    (l << HALF_BITS) | r
}

/// Decrypts a 14-bit encrypted ID under `key`.
///
/// # Panics
///
/// Panics if `ct` exceeds 14 bits.
pub fn decrypt_id(ct: u16, key: u64) -> u16 {
    assert!(ct < (1 << 14), "ciphertext exceeds 14 bits");
    let (mut l, mut r) = (ct >> HALF_BITS, ct & HALF_MASK);
    for round in (0..ROUNDS).rev() {
        let nr = l;
        let nl = r ^ round_fn(l, round_key(key, round));
        l = nl;
        r = nr;
    }
    (l << HALF_BITS) | r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bijective_over_whole_domain() {
        let key = 0xDEAD_BEEF_CAFE_F00D;
        let mut seen = vec![false; 1 << 14];
        for id in 0..(1u16 << 14) {
            let ct = encrypt_id(id, key);
            assert!(ct < (1 << 14));
            assert!(!seen[usize::from(ct)], "collision at {id}");
            seen[usize::from(ct)] = true;
            assert_eq!(decrypt_id(ct, key), id);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts_mostly() {
        let mut diff = 0;
        for id in 0..(1u16 << 14) {
            if encrypt_id(id, 1) != encrypt_id(id, 2) {
                diff += 1;
            }
        }
        // A good small cipher should differ almost everywhere.
        assert!(diff > (1 << 14) * 9 / 10, "only {diff} differ");
    }

    #[test]
    fn not_identity() {
        let mut moved = 0;
        for id in 0..(1u16 << 14) {
            if encrypt_id(id, 0x1234_5678) != id {
                moved += 1;
            }
        }
        assert!(moved > (1 << 14) * 9 / 10);
    }

    #[test]
    #[should_panic(expected = "exceeds 14 bits")]
    fn oversized_id_panics() {
        let _ = encrypt_id(1 << 14, 0);
    }
}
