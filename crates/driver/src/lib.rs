//! GPU driver model for GPUShield (paper §5.4).
//!
//! The driver owns the device virtual address space, allocates buffers with
//! the alignment policy the protection mode requires, and — on each kernel
//! launch — runs the static bounds analysis, assigns random-but-unique
//! 14-bit buffer IDs, encrypts them under a per-kernel key, materialises
//! the Region Bounds Table in protected device memory, and binds tagged
//! pointers to the kernel's arguments and local variables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cipher;
mod driver;
mod rbt;
pub mod tenant;

pub use cipher::{decrypt_id, encrypt_id};
pub use driver::{
    Arg, BufferHandle, Driver, DriverConfig, DriverError, DriverStats, PreparedLaunch, ShieldSetup,
    SiteClaim, CANARY_BYTE,
};
pub use rbt::{read_entry, write_entry, BoundsEntry, RBT_BYTES, RBT_ENTRIES, RBT_ENTRY_BYTES};
pub use tenant::{
    AllocatorStats, AuditEntry, AuditKind, AuditLog, RegionIdAllocator, TenantId, TenantStats,
    TenantTable,
};
