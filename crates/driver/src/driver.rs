//! The GPU driver model: allocation, per-kernel RBT setup, buffer-ID
//! assignment/encryption, and pointer tagging (paper §5.4, Figs. 9–10).

use crate::cipher::encrypt_id;
use crate::rbt::{write_entry, BoundsEntry, RBT_BYTES};
use crate::tenant::RegionIdAllocator;
use gpushield_compiler::{
    analyze, discharge, prove_sites, AnalysisConfig, ArgInfo, BoundsAnalysis, LaunchKnowledge,
    Origin,
};
use gpushield_isa::{
    CheckPlan, Instr, Kernel, ParamKind, PtrClass, SiteCert, SiteCheck, TaggedPtr,
};
use gpushield_mem::{AllocPolicy, Allocation, MemFault, VirtualMemorySpace};
use gpushield_runtime::rng::StdRng;
use gpushield_sim::{HeapDesc, KernelLaunch, LaunchConfig};
use gpushield_telemetry::Registry;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Canary byte written into Type 3 power-of-two padding (§5.3.3).
pub const CANARY_BYTE: u8 = 0xC3;

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Master switch: tag pointers, build RBTs, attach check plans.
    pub enable_shield: bool,
    /// Run the compiler's static bounds analysis (Fig. 17's `+static`).
    pub enable_static_analysis: bool,
    /// Allow Type 3 size-embedded pointers (requires power-of-two
    /// allocation padding).
    pub enable_type3: bool,
    /// Redundant-check elision: upgrade Type 2 sites that are covered by an
    /// identical dominating check (see
    /// [`gpushield_compiler::AnalysisConfig::enable_elision`]). Sound only
    /// under precise faulting, so off by default.
    pub enable_elision: bool,
    /// Maximum region IDs one launch may consume. When a kernel needs
    /// more, the driver merges VA-adjacent buffers into shared IDs with
    /// merged bounds metadata — the paper's §6.3 contingency for future
    /// programming models (coarser protection inside a merged group).
    pub max_region_ids: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            enable_shield: true,
            enable_static_analysis: true,
            enable_type3: false,
            enable_elision: false,
            max_region_ids: 1 << 14,
        }
    }
}

/// Handle to a driver-managed device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferHandle(usize);

/// A kernel argument at launch.
#[derive(Debug, Clone, Copy)]
pub enum Arg {
    /// A device buffer.
    Buffer(BufferHandle),
    /// A scalar value.
    Scalar(u64),
}

/// Per-kernel hardware registration the BCU needs (§5.4: the RBT address
/// and decryption key are stored in the GPU cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShieldSetup {
    /// Driver-assigned 12-bit kernel ID.
    pub kernel_id: u16,
    /// Device address of this kernel's RBT.
    pub rbt_base: u64,
    /// Per-kernel ID-encryption key.
    pub key: u64,
}

/// The virtual-address window a non-Runtime check decision guarantees for
/// one memory-instruction site: every address the site accesses during the
/// launch must fall in `[lo, hi)`. The sim-side access recorder replays
/// observed per-site address ranges against these claims — the BAT
/// soundness audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteClaim {
    /// Instruction site `(block, index)`.
    pub site: (gpushield_isa::BlockId, usize),
    /// The decision being audited ([`gpushield_isa::SiteCheck::Static`] or
    /// [`gpushield_isa::SiteCheck::SizeEmbedded`]).
    pub check: gpushield_isa::SiteCheck,
    /// Inclusive lower bound of the declared window.
    pub lo: u64,
    /// Exclusive upper bound of the declared window.
    pub hi: u64,
}

/// Everything `prepare_launch` produces.
#[derive(Debug, Clone)]
pub struct PreparedLaunch {
    /// The launch descriptor for the simulator.
    pub launch: KernelLaunch,
    /// BCU registration (present when the shield is enabled).
    pub shield: Option<ShieldSetup>,
    /// The compiler's Bounds-Analysis Table (when analysis ran).
    pub bat: Option<BoundsAnalysis>,
    /// Every region ID given an RBT entry for this launch (params, locals,
    /// heap) — the addressable metadata surface, e.g. for fault injection.
    pub region_ids: Vec<u16>,
    /// Declared per-site address windows for every auditable non-Runtime
    /// decision (sorted by site). Empty when the shield or analysis is off.
    pub site_claims: Vec<SiteClaim>,
}

/// Driver-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DriverError {
    /// Argument list does not match the kernel's parameters.
    ArgMismatch {
        /// Kernel name.
        kernel: String,
        /// Explanation.
        detail: String,
    },
    /// A buffer exceeds the 32-bit size field of an RBT entry.
    BufferTooLarge {
        /// Requested size.
        size: u64,
    },
    /// Kernel allocates from the heap but `set_heap_limit` was never called.
    NoHeapConfigured {
        /// Kernel name.
        kernel: String,
    },
    /// A launch with a zero grid or block dimension.
    DegenerateLaunch {
        /// Requested grid dimension.
        grid: u32,
        /// Requested block dimension.
        block: u32,
    },
    /// A launch asked for more distinct region IDs than the 14-bit ID
    /// space holds.
    RegionIdsExhausted {
        /// IDs the launch needed.
        needed: usize,
    },
    /// The device address space could not satisfy an allocation.
    AllocationFailed {
        /// What was being allocated ("buffer", "heap", "local memory", "RBT").
        what: &'static str,
        /// The underlying memory fault.
        fault: MemFault,
    },
    /// Writing bounds metadata into the RBT failed.
    MetadataWrite {
        /// The underlying memory fault.
        fault: MemFault,
    },
    /// A region ID was released that is not currently bound to an
    /// in-flight launch (double release, or a cross-tenant confusion).
    RegionIdNotLive {
        /// The offending ID.
        id: u16,
    },
    /// A tenant ID that no tenant table row corresponds to.
    UnknownTenant {
        /// The offending tenant ID.
        id: u16,
    },
    /// An internal launch-preparation invariant did not hold — reserved
    /// metadata (region IDs, group assignments, heap descriptors) went
    /// missing mid-preparation. Indicates a driver bug, reported as an
    /// error instead of a panic so a serving loop degrades gracefully.
    LaunchInvariant {
        /// Which invariant broke.
        what: &'static str,
    },
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::ArgMismatch { kernel, detail } => {
                write!(f, "argument mismatch launching {kernel}: {detail}")
            }
            DriverError::BufferTooLarge { size } => {
                write!(f, "buffer of {size} bytes exceeds the 32-bit bounds field")
            }
            DriverError::NoHeapConfigured { kernel } => {
                write!(f, "kernel {kernel} uses malloc but no heap limit was set")
            }
            DriverError::DegenerateLaunch { grid, block } => {
                write!(f, "degenerate launch geometry {grid}x{block}")
            }
            DriverError::RegionIdsExhausted { needed } => {
                write!(
                    f,
                    "launch needs {needed} region IDs, exceeding the 14-bit ID space"
                )
            }
            DriverError::AllocationFailed { what, fault } => {
                write!(f, "failed to allocate {what}: {fault}")
            }
            DriverError::MetadataWrite { fault } => {
                write!(f, "failed to write RBT metadata: {fault}")
            }
            DriverError::RegionIdNotLive { id } => {
                write!(f, "region ID {id} released while not live")
            }
            DriverError::UnknownTenant { id } => {
                write!(f, "unknown tenant {id}")
            }
            DriverError::LaunchInvariant { what } => {
                write!(f, "launch preparation invariant broken: {what}")
            }
        }
    }
}

impl Error for DriverError {}

#[derive(Debug, Clone, Copy)]
struct BufferRecord {
    alloc: Allocation,
    canary_written: bool,
}

/// Cumulative counters over the driver's metadata paths: how much RBT
/// materialisation, region-ID assignment and BAT-attachment work launch
/// preparation performed. Published into a telemetry [`Registry`] via
/// [`Driver::publish_telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Launches successfully prepared (shielded or not).
    pub launches_prepared: u64,
    /// Per-launch RBTs allocated in device memory.
    pub rbt_allocs: u64,
    /// RBT entries written (one per region-ID group, local, and heap).
    pub rbt_entries_written: u64,
    /// Region IDs drawn from the per-launch ID space.
    pub region_ids_assigned: u64,
    /// §6.3 group merges performed because region IDs ran low.
    pub groups_merged: u64,
    /// Static bounds analyses run (BAT generation + attach).
    pub bat_analyses: u64,
    /// Type 3 canary paddings written.
    pub canaries_written: u64,
    /// Site proofs emitted by the relational prover (certificates).
    pub certs_emitted: u64,
    /// Certificates discharged against launch arguments: their sites'
    /// runtime checks were elided with a proven VA window attached.
    pub certs_discharged: u64,
    /// Certificates that did not discharge for this launch (window not
    /// contained in the region, or a referenced argument unknown).
    pub certs_rejected: u64,
    /// Certificates for sites the interval analysis had already proven
    /// (no elision needed).
    pub certs_redundant: u64,
}

/// The GPU driver: owns the device address space and sets up kernels.
///
/// # Example
///
/// ```
/// use gpushield_driver::{Arg, Driver, DriverConfig};
/// use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};
/// use std::sync::Arc;
///
/// let mut b = KernelBuilder::new("fill");
/// let out = b.param_buffer("out", false);
/// let tid = b.global_thread_id();
/// let off = b.shl(tid, Operand::Imm(2));
/// b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
/// b.ret();
/// let kernel = Arc::new(b.finish()?);
///
/// let mut driver = Driver::new(DriverConfig::default(), 42);
/// let buf = driver.malloc(1024 * 4)?;
/// let prepared = driver.prepare_launch(kernel, 4, 256, &[Arg::Buffer(buf)])?;
/// assert!(prepared.shield.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Driver {
    cfg: DriverConfig,
    rng: StdRng,
    vm: VirtualMemorySpace,
    buffers: Vec<BufferRecord>,
    heap: Option<Allocation>,
    kernel_seq: u16,
    stats: DriverStats,
}

impl Driver {
    /// Creates a driver with a deterministic RNG seed (IDs and keys are
    /// random per §5.2.4 but reproducible for experiments).
    pub fn new(cfg: DriverConfig, seed: u64) -> Self {
        Driver {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            vm: VirtualMemorySpace::new(),
            buffers: Vec::new(),
            heap: None,
            kernel_seq: 0,
            stats: DriverStats::default(),
        }
    }

    /// The driver configuration.
    pub fn config(&self) -> DriverConfig {
        self.cfg
    }

    /// Cumulative metadata-path counters since construction.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Publishes the metadata-path counters as `driver.*` gauges (the
    /// counters are already cumulative, so last-write-wins is exact).
    pub fn publish_telemetry(&self, reg: &mut Registry) {
        let s = &self.stats;
        let fields: [(&str, u64); 11] = [
            ("launches_prepared", s.launches_prepared),
            ("rbt_allocs", s.rbt_allocs),
            ("rbt_entries_written", s.rbt_entries_written),
            ("region_ids_assigned", s.region_ids_assigned),
            ("groups_merged", s.groups_merged),
            ("bat_analyses", s.bat_analyses),
            ("canaries_written", s.canaries_written),
            ("certs_emitted", s.certs_emitted),
            ("certs_discharged", s.certs_discharged),
            ("certs_rejected", s.certs_rejected),
            ("certs_redundant", s.certs_redundant),
        ];
        for (name, v) in fields {
            // Lazy label: a disabled registry formats no strings (pinned
            // by tests/alloc_profile.rs).
            reg.set_named_with(|| format!("driver.{name}"), v);
        }
    }

    /// Allocates a device buffer. Uses Nvidia-style 512 B packing, or
    /// power-of-two padding when Type 3 pointers are enabled.
    ///
    /// # Errors
    ///
    /// [`DriverError::BufferTooLarge`] when `size` exceeds the RBT's
    /// 32-bit size field.
    pub fn malloc(&mut self, size: u64) -> Result<BufferHandle, DriverError> {
        if size > u32::MAX as u64 {
            return Err(DriverError::BufferTooLarge { size });
        }
        let policy = if self.cfg.enable_type3 {
            AllocPolicy::PowerOfTwo
        } else {
            AllocPolicy::Device512
        };
        let alloc = self
            .vm
            .alloc(size, policy)
            .map_err(|fault| DriverError::AllocationFailed {
                what: "buffer",
                fault,
            })?;
        self.buffers.push(BufferRecord {
            alloc,
            canary_written: false,
        });
        Ok(BufferHandle(self.buffers.len() - 1))
    }

    /// Reserves the device heap (`cudaDeviceSetLimit(cudaLimitMallocHeapSize)`).
    ///
    /// # Errors
    ///
    /// [`DriverError::AllocationFailed`] when the device address space
    /// cannot hold the heap.
    pub fn set_heap_limit(&mut self, size: u64) -> Result<(), DriverError> {
        let alloc = self
            .vm
            .alloc(size, AllocPolicy::Isolated)
            .map_err(|fault| DriverError::AllocationFailed {
                what: "heap",
                fault,
            })?;
        self.heap = Some(alloc);
        Ok(())
    }

    /// Base virtual address of a buffer.
    pub fn buffer_va(&self, h: BufferHandle) -> u64 {
        self.buffers[h.0].alloc.va
    }

    /// Requested size of a buffer.
    pub fn buffer_size(&self, h: BufferHandle) -> u64 {
        self.buffers[h.0].alloc.size
    }

    /// Reserved (padded) size of a buffer — exceeds the requested size
    /// under the power-of-two policy Type 3 pointers require (§5.3.3's
    /// fragmentation cost).
    pub fn buffer_reserved(&self, h: BufferHandle) -> u64 {
        self.buffers[h.0].alloc.reserved
    }

    /// Device-heap window `(va, size)` reserved by [`set_heap_limit`],
    /// or `None` when no heap is configured. Oracles (e.g. the fuzzer
    /// scoreboard) use this to map heap-relative victim ranges to
    /// virtual addresses.
    ///
    /// [`set_heap_limit`]: Driver::set_heap_limit
    pub fn heap_window(&self) -> Option<(u64, u64)> {
        self.heap.map(|h| (h.va, h.size))
    }

    /// Host-side write into a buffer (SVM-style access).
    ///
    /// # Panics
    ///
    /// Panics when the write overruns the buffer — the *host* is trusted
    /// and typo'd offsets are bugs, not attacks.
    pub fn write_buffer(&mut self, h: BufferHandle, offset: u64, bytes: &[u8]) {
        let rec = self.buffers[h.0];
        assert!(
            offset + bytes.len() as u64 <= rec.alloc.size,
            "host write overruns buffer"
        );
        self.vm
            .write(rec.alloc.va + offset, bytes)
            .expect("buffer memory is mapped");
    }

    /// Host-side typed write of little-endian `u64`s.
    pub fn write_buffer_u64s(&mut self, h: BufferHandle, offset: u64, values: &[u64]) {
        for (i, v) in values.iter().enumerate() {
            let rec = self.buffers[h.0];
            assert!(offset + (i as u64 + 1) * 8 <= rec.alloc.size);
            self.vm
                .write(rec.alloc.va + offset + i as u64 * 8, &v.to_le_bytes())
                .expect("mapped");
        }
    }

    /// Host-side read from a buffer.
    ///
    /// # Panics
    ///
    /// Panics when the read overruns the buffer.
    pub fn read_buffer(&self, h: BufferHandle, offset: u64, out: &mut [u8]) {
        let rec = self.buffers[h.0];
        assert!(
            offset + out.len() as u64 <= rec.alloc.size,
            "host read overruns buffer"
        );
        self.vm
            .read(rec.alloc.va + offset, out)
            .expect("buffer memory is mapped");
    }

    /// Host-side read of one little-endian unsigned value of `width` bytes.
    pub fn read_buffer_uint(&self, h: BufferHandle, offset: u64, width: u64) -> u64 {
        let rec = self.buffers[h.0];
        assert!(
            offset + width <= rec.alloc.size,
            "host read overruns buffer"
        );
        self.vm
            .read_uint(rec.alloc.va + offset, width)
            .expect("mapped")
    }

    /// The device address space (the simulator needs it mutably).
    pub fn vm_mut(&mut self) -> &mut VirtualMemorySpace {
        &mut self.vm
    }

    /// Read-only view of the device address space.
    pub fn vm(&self) -> &VirtualMemorySpace {
        &self.vm
    }

    fn fresh_ids(&mut self, n: usize) -> Result<Vec<u16>, DriverError> {
        // IDs are drawn from 1..2^14; asking for more distinct values than
        // that space holds would otherwise loop forever.
        if n >= (1 << 14) {
            return Err(DriverError::RegionIdsExhausted { needed: n });
        }
        let mut used = HashSet::new();
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let id: u16 = self.rng.gen_range(1..(1 << 14));
            if used.insert(id) {
                out.push(id);
            }
        }
        Ok(out)
    }

    /// Sets up one kernel launch: runs static analysis, assigns random
    /// unique buffer IDs, builds and protects the per-kernel RBT, and tags
    /// every pointer argument (Fig. 9 steps ①–④).
    ///
    /// # Errors
    ///
    /// See [`DriverError`].
    pub fn prepare_launch(
        &mut self,
        kernel: Arc<Kernel>,
        grid: u32,
        block: u32,
        args: &[Arg],
    ) -> Result<PreparedLaunch, DriverError> {
        self.prepare_launch_scoped(kernel, grid, block, args, None)
    }

    /// Like [`Driver::prepare_launch`], but draws region IDs from a
    /// caller-provided per-tenant allocator instead of the driver's global
    /// random pool, confining the launch to that tenant's disjoint slice
    /// of the ID space. The caller owns the IDs' lifecycle: release them
    /// back to the allocator (via the tenant table) when the launch
    /// retires.
    ///
    /// # Errors
    ///
    /// See [`DriverError`]; notably [`DriverError::RegionIdsExhausted`]
    /// when the tenant's slice cannot cover the launch's demand.
    pub fn prepare_launch_scoped(
        &mut self,
        kernel: Arc<Kernel>,
        grid: u32,
        block: u32,
        args: &[Arg],
        scope: Option<&mut RegionIdAllocator>,
    ) -> Result<PreparedLaunch, DriverError> {
        if grid == 0 || block == 0 {
            return Err(DriverError::DegenerateLaunch { grid, block });
        }
        if args.len() != kernel.params().len() {
            return Err(DriverError::ArgMismatch {
                kernel: kernel.name().to_string(),
                detail: format!(
                    "expected {} arguments, got {}",
                    kernel.params().len(),
                    args.len()
                ),
            });
        }
        for (i, (a, p)) in args.iter().zip(kernel.params()).enumerate() {
            let ok = matches!(
                (a, p.kind()),
                (Arg::Buffer(_), ParamKind::Buffer { .. }) | (Arg::Scalar(_), ParamKind::Scalar)
            );
            if !ok {
                return Err(DriverError::ArgMismatch {
                    kernel: kernel.name().to_string(),
                    detail: format!("argument {i} kind does not match parameter {}", p.name()),
                });
            }
        }
        let uses_heap = kernel
            .iter_instrs()
            .any(|(_, _, i)| matches!(i, Instr::Malloc { .. } | Instr::Free { .. }));
        if uses_heap && self.heap.is_none() {
            return Err(DriverError::NoHeapConfigured {
                kernel: kernel.name().to_string(),
            });
        }
        let total_threads = u64::from(grid) * u64::from(block);

        // Allocate local-memory regions for this launch (each local
        // variable is interleaved across all threads, §3.1).
        let mut local_allocs: Vec<Allocation> = Vec::with_capacity(kernel.locals().len());
        for l in kernel.locals() {
            let total = l.bytes_per_thread() * total_threads;
            let policy = if self.cfg.enable_type3 {
                AllocPolicy::PowerOfTwo
            } else {
                AllocPolicy::Device512
            };
            let alloc =
                self.vm
                    .alloc(total, policy)
                    .map_err(|fault| DriverError::AllocationFailed {
                        what: "local memory",
                        fault,
                    })?;
            local_allocs.push(alloc);
        }

        let launch_cfg = LaunchConfig::new(grid, block);
        if !self.cfg.enable_shield {
            // Unprotected GPU: raw pointers, no RBT, no plan.
            let mut launch = KernelLaunch::new(kernel, launch_cfg);
            for a in args {
                launch.args.push(match a {
                    Arg::Buffer(h) => TaggedPtr::unprotected(self.buffer_va(*h)).raw(),
                    Arg::Scalar(v) => *v,
                });
            }
            launch.local_bases = local_allocs
                .iter()
                .map(|a| TaggedPtr::unprotected(a.va).raw())
                .collect();
            if let Some(h) = self.heap.filter(|_| uses_heap) {
                launch = launch.heap(HeapDesc {
                    tagged_base: TaggedPtr::unprotected(h.va),
                    size: h.size,
                });
            }
            self.stats.launches_prepared += 1;
            return Ok(PreparedLaunch {
                launch,
                shield: None,
                bat: None,
                region_ids: Vec::new(),
                site_claims: Vec::new(),
            });
        }

        // --- Static analysis (BAT generation, Fig. 9 steps ①–③) ----------
        let knowledge = LaunchKnowledge {
            args: args
                .iter()
                .map(|a| match a {
                    Arg::Buffer(h) => ArgInfo::Buffer {
                        size: self.buffer_size(*h),
                    },
                    Arg::Scalar(v) => ArgInfo::Scalar { value: Some(*v) },
                })
                .collect(),
            local_sizes: local_allocs.iter().map(|a| a.size).collect(),
            block,
            grid,
            heap_size: self.heap.map(|h| h.size),
        };
        let mut bat = if self.cfg.enable_static_analysis {
            self.stats.bat_analyses += 1;
            let mut b = analyze(
                &kernel,
                &knowledge,
                AnalysisConfig {
                    enable_type3: self.cfg.enable_type3,
                    enable_elision: self.cfg.enable_elision,
                },
            );
            // Type 3 needs power-of-two padded allocations; if any chosen
            // buffer is not compatible, fall back to RBT checking.
            if self.cfg.enable_type3 {
                let compatible = b.param_class.iter().enumerate().all(|(p, c)| {
                    *c != PtrClass::SizeEmbedded
                        || match args[p] {
                            Arg::Buffer(h) => {
                                let a = self.buffers[h.0].alloc;
                                a.reserved.is_power_of_two() && a.va.is_multiple_of(a.reserved)
                            }
                            Arg::Scalar(_) => false,
                        }
                });
                if !compatible {
                    b = analyze(
                        &kernel,
                        &knowledge,
                        AnalysisConfig {
                            enable_type3: false,
                            enable_elision: self.cfg.enable_elision,
                        },
                    );
                }
            }
            b
        } else {
            // No analysis: every site checks at runtime, every buffer is a
            // Type 2 region.
            BoundsAnalysis {
                plan: CheckPlan::all_runtime(),
                param_class: kernel
                    .params()
                    .iter()
                    .map(|p| {
                        if p.is_buffer() {
                            PtrClass::Region
                        } else {
                            PtrClass::Unprotected
                        }
                    })
                    .collect(),
                local_class: vec![PtrClass::Region; kernel.locals().len()],
                violations: Vec::new(),
                sites_static: 0,
                sites_runtime: kernel.iter_instrs().filter(|(_, _, i)| i.is_mem()).count(),
                sites_type3: 0,
                sites_total: kernel.iter_instrs().filter(|(_, _, i)| i.is_mem()).count(),
                site_origins: std::collections::HashMap::new(),
                elided_sites: Vec::new(),
                fixpoint_iterations: 0,
            }
        };

        // --- Proof-carrying check elision --------------------------------
        // The relational prover runs under the *value-less* view of this
        // launch (scalar values blanked), so its certificates hold for any
        // argument valuation; each one is then discharged against the
        // actual values and region sizes. Only sites still planned as
        // Runtime are eligible — a discharged certificate elides the
        // site's check and attaches the proven VA window for the hardware
        // accounting and the soundness auditor.
        let mut cert_windows: std::collections::HashMap<
            (gpushield_isa::BlockId, usize),
            (u64, u64),
        > = std::collections::HashMap::new();
        if self.cfg.enable_elision {
            let compile_view = knowledge.value_less();
            for proof in prove_sites(&kernel, &compile_view) {
                self.stats.certs_emitted += 1;
                if bat.plan.get(proof.site) != SiteCheck::Runtime {
                    self.stats.certs_redundant += 1;
                    continue;
                }
                let Some((off_lo, off_hi)) = discharge(&proof, &kernel, &knowledge) else {
                    self.stats.certs_rejected += 1;
                    continue;
                };
                let base = match proof.origin {
                    Origin::Param(p) => match args.get(usize::from(p)) {
                        Some(Arg::Buffer(h)) => {
                            self.buffers.get(h.0).map(|rec| rec.alloc.va).ok_or(
                                DriverError::LaunchInvariant {
                                    what: "certificate origin names a live buffer",
                                },
                            )?
                        }
                        _ => {
                            self.stats.certs_rejected += 1;
                            continue;
                        }
                    },
                    Origin::Local(v) => match local_allocs.get(usize::from(v)) {
                        Some(a) => a.va,
                        None => {
                            self.stats.certs_rejected += 1;
                            continue;
                        }
                    },
                    Origin::Heap => {
                        self.stats.certs_rejected += 1;
                        continue;
                    }
                };
                let (Some(lo), Some(hi)) = (base.checked_add(off_lo), base.checked_add(off_hi))
                else {
                    self.stats.certs_rejected += 1;
                    continue;
                };
                bat.plan.set(proof.site, SiteCheck::Static);
                bat.plan.set_cert(proof.site, SiteCert { lo, hi });
                bat.sites_static += 1;
                bat.sites_runtime = bat.sites_runtime.saturating_sub(1);
                cert_windows.insert(proof.site, (lo, hi));
                self.stats.certs_discharged += 1;
            }
        }

        // --- Kernel identity and RBT (Fig. 9 step ④) ----------------------
        self.kernel_seq = (self.kernel_seq + 1) & 0xFFF;
        let kernel_id = self.kernel_seq;
        let key: u64 = self.rng.gen();
        let rbt = self
            .vm
            .alloc(RBT_BYTES, AllocPolicy::Isolated)
            .map_err(|fault| DriverError::AllocationFailed { what: "RBT", fault })?;
        self.stats.rbt_allocs += 1;

        // Count the RBT entries needed: Region-classed params/locals + heap.
        let region_params: Vec<u8> = (0..args.len() as u8)
            .filter(|p| bat.param_class[usize::from(*p)] == PtrClass::Region)
            .collect();
        let region_locals: Vec<u8> = (0..kernel.locals().len() as u8)
            .filter(|v| bat.local_class[usize::from(*v)] == PtrClass::Region)
            .collect();

        // §6.3: when IDs run low, merge VA-adjacent buffers into shared
        // entries. Groups start as singletons and the closest-together
        // pair merges until the budget holds.
        let mut groups: Vec<Vec<u8>> = region_params.iter().map(|p| vec![*p]).collect();
        let fixed = region_locals.len() + usize::from(uses_heap);
        let budget = self.cfg.max_region_ids.saturating_sub(fixed).max(1);
        let group_span = |g: &[u8], bufs: &[BufferRecord], args: &[Arg]| -> (u64, u64) {
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for p in g {
                if let Arg::Buffer(h) = args[usize::from(*p)] {
                    let a = bufs[h.0].alloc;
                    lo = lo.min(a.va);
                    hi = hi.max(a.end());
                }
            }
            (lo, hi)
        };
        while groups.len() > budget && groups.len() > 1 {
            groups.sort_by_key(|g| group_span(g, &self.buffers, args).0);
            // Merge the adjacent pair with the smallest gap between spans.
            let mut best = 0;
            let mut best_gap = u64::MAX;
            for i in 0..groups.len() - 1 {
                let (_, hi) = group_span(&groups[i], &self.buffers, args);
                let (lo, _) = group_span(&groups[i + 1], &self.buffers, args);
                let gap = lo.saturating_sub(hi);
                if gap < best_gap {
                    best_gap = gap;
                    best = i;
                }
            }
            let tail = groups.remove(best + 1);
            groups[best].extend(tail);
            self.stats.groups_merged += 1;
        }
        let n_ids = groups.len() + fixed;
        let ids = match scope {
            Some(alloc) => alloc.acquire(n_ids)?,
            None => self.fresh_ids(n_ids)?,
        };
        self.stats.region_ids_assigned += n_ids as u64;
        let region_ids = ids.clone();
        let mut id_iter = ids.into_iter();

        // Pre-assign one ID and merged bounds per group.
        let mut param_ids: std::collections::HashMap<u8, (u16, u64, u64)> =
            std::collections::HashMap::new();
        for g in &groups {
            let id = id_iter.next().ok_or(DriverError::LaunchInvariant {
                what: "region ID reserved for every group",
            })?;
            let (lo, hi) = group_span(g, &self.buffers, args);
            for p in g {
                param_ids.insert(*p, (id, lo, hi));
            }
        }

        let mut launch = KernelLaunch::new(kernel.clone(), launch_cfg)
            .kernel_id(kernel_id)
            .plan(bat.plan.clone());

        // Tag arguments.
        for (p, a) in args.iter().enumerate() {
            let raw = match a {
                Arg::Scalar(v) => *v,
                Arg::Buffer(h) => {
                    let rec = self.buffers[h.0];
                    match bat.param_class[p] {
                        PtrClass::Unprotected => TaggedPtr::unprotected(rec.alloc.va).raw(),
                        PtrClass::Region => {
                            let (id, lo, hi) =
                                *param_ids
                                    .get(&(p as u8))
                                    .ok_or(DriverError::LaunchInvariant {
                                        what: "region param assigned to a group",
                                    })?;
                            // A merged entry is only read-only when every
                            // member is (otherwise legitimate writes to a
                            // writable member would fault).
                            let readonly = groups
                                .iter()
                                .find(|g| g.contains(&(p as u8)))
                                .ok_or(DriverError::LaunchInvariant {
                                    what: "region param present in a merge group",
                                })?
                                .iter()
                                .all(|q| {
                                    matches!(
                                        kernel.params()[usize::from(*q)].kind(),
                                        ParamKind::Buffer { readonly: true, .. }
                                    )
                                });
                            write_entry(
                                &mut self.vm,
                                rbt.va,
                                id,
                                &BoundsEntry {
                                    valid: true,
                                    readonly,
                                    kernel_id,
                                    base: lo,
                                    size: (hi - lo) as u32,
                                },
                            )
                            .map_err(|fault| DriverError::MetadataWrite { fault })?;
                            self.stats.rbt_entries_written += 1;
                            TaggedPtr::with_region_id(rec.alloc.va, encrypt_id(id, key)).raw()
                        }
                        PtrClass::SizeEmbedded => {
                            self.write_canary(h.0);
                            let log2 = rec.alloc.reserved.trailing_zeros() as u8;
                            TaggedPtr::with_log2_size(rec.alloc.va, log2).raw()
                        }
                    }
                }
            };
            launch.args.push(raw);
        }

        // Tag local variables.
        for (v, alloc) in local_allocs.iter().enumerate() {
            let raw = match bat.local_class[v] {
                PtrClass::Unprotected => TaggedPtr::unprotected(alloc.va).raw(),
                PtrClass::Region => {
                    let id = id_iter.next().ok_or(DriverError::LaunchInvariant {
                        what: "region ID reserved for every local",
                    })?;
                    write_entry(
                        &mut self.vm,
                        rbt.va,
                        id,
                        &BoundsEntry {
                            valid: true,
                            readonly: false,
                            kernel_id,
                            base: alloc.va,
                            size: alloc.size as u32,
                        },
                    )
                    .map_err(|fault| DriverError::MetadataWrite { fault })?;
                    self.stats.rbt_entries_written += 1;
                    TaggedPtr::with_region_id(alloc.va, encrypt_id(id, key)).raw()
                }
                PtrClass::SizeEmbedded => {
                    let log2 = alloc.reserved.trailing_zeros() as u8;
                    TaggedPtr::with_log2_size(alloc.va, log2).raw()
                }
            };
            launch.local_bases.push(raw);
        }

        // Heap: one coarse entry for the whole chunk (§5.2.1).
        if uses_heap {
            let h = self.heap.ok_or(DriverError::LaunchInvariant {
                what: "heap configured for a heap-using kernel",
            })?;
            let id = id_iter.next().ok_or(DriverError::LaunchInvariant {
                what: "region ID reserved for the heap",
            })?;
            write_entry(
                &mut self.vm,
                rbt.va,
                id,
                &BoundsEntry {
                    valid: true,
                    readonly: false,
                    kernel_id,
                    base: h.va,
                    size: h.size as u32,
                },
            )
            .map_err(|fault| DriverError::MetadataWrite { fault })?;
            self.stats.rbt_entries_written += 1;
            launch = launch.heap(HeapDesc {
                tagged_base: TaggedPtr::with_region_id(h.va, encrypt_id(id, key)),
                size: h.size,
            });
        }

        // Make the RBT pages inaccessible to normal kernel accesses (§5.4);
        // the BCU reads them via the bypass path.
        self.vm.protect(rbt.va, RBT_BYTES);

        // --- Auditable claims: the VA window each non-Runtime decision
        // guarantees. A Static site proven by intervals claims its origin's
        // logical extent; an elided Static site claims the RBT entry window
        // of the covering runtime check (the merged group for params); a
        // Type 3 site claims its power-of-two reservation.
        let mut site_claims = Vec::new();
        let elided: HashSet<(gpushield_isa::BlockId, usize)> =
            bat.elided_sites.iter().copied().collect();
        for (site, check) in bat.plan.iter() {
            if check == SiteCheck::Runtime {
                continue;
            }
            // A certificate-elided site claims exactly its discharged proof
            // window — tighter than the origin's extent, and available even
            // when no interval analysis ran (so the auditor can still
            // falsify a bad certificate).
            if let Some((lo, hi)) = cert_windows.get(&site) {
                site_claims.push(SiteClaim {
                    site,
                    check,
                    lo: *lo,
                    hi: *hi,
                });
                continue;
            }
            let Some(origin) = bat.site_origins.get(&site).copied() else {
                // Unresolved origin (e.g. an elided site whose base came
                // from a loaded pointer): dynamically covered, but there is
                // no static window to audit against.
                continue;
            };
            let window = match (check, origin) {
                (SiteCheck::Static, Origin::Param(p)) if elided.contains(&site) => {
                    param_ids.get(&p).map(|(_, lo, hi)| (*lo, *hi))
                }
                (SiteCheck::Static, Origin::Param(p)) => match args[usize::from(p)] {
                    Arg::Buffer(h) => {
                        let a = self.buffers[h.0].alloc;
                        Some((a.va, a.va + a.size))
                    }
                    Arg::Scalar(_) => None,
                },
                (SiteCheck::Static, Origin::Local(v)) => local_allocs
                    .get(usize::from(v))
                    .map(|a| (a.va, a.va + a.size)),
                (SiteCheck::Static, Origin::Heap) => self.heap.map(|h| (h.va, h.va + h.size)),
                (SiteCheck::SizeEmbedded, Origin::Param(p)) => match args[usize::from(p)] {
                    Arg::Buffer(h) => {
                        let a = self.buffers[h.0].alloc;
                        Some((a.va, a.va + a.reserved))
                    }
                    Arg::Scalar(_) => None,
                },
                (SiteCheck::SizeEmbedded, Origin::Local(v)) => local_allocs
                    .get(usize::from(v))
                    .map(|a| (a.va, a.va + a.reserved)),
                _ => None,
            };
            if let Some((lo, hi)) = window {
                site_claims.push(SiteClaim {
                    site,
                    check,
                    lo,
                    hi,
                });
            }
        }
        site_claims.sort_unstable_by_key(|c| c.site);
        self.stats.launches_prepared += 1;

        Ok(PreparedLaunch {
            launch,
            shield: Some(ShieldSetup {
                kernel_id,
                rbt_base: rbt.va,
                key,
            }),
            bat: Some(bat),
            region_ids,
            site_claims,
        })
    }

    fn write_canary(&mut self, idx: usize) {
        let rec = &mut self.buffers[idx];
        if rec.canary_written || rec.alloc.reserved == rec.alloc.size {
            rec.canary_written = true;
            return;
        }
        let pad = vec![CANARY_BYTE; (rec.alloc.reserved - rec.alloc.size) as usize];
        let va = rec.alloc.va + rec.alloc.size;
        rec.canary_written = true;
        self.stats.canaries_written += 1;
        self.vm.write(va, &pad).expect("padding is mapped");
    }

    /// Post-kernel canary scan for a Type 3 buffer's padding (§5.3.3):
    /// returns `true` when the canary is intact (no overflow into padding).
    pub fn canary_intact(&self, h: BufferHandle) -> bool {
        let rec = self.buffers[h.0];
        if !rec.canary_written {
            return true;
        }
        let len = (rec.alloc.reserved - rec.alloc.size) as usize;
        let mut buf = vec![0u8; len];
        self.vm
            .read(rec.alloc.va + rec.alloc.size, &mut buf)
            .expect("padding is mapped");
        buf.iter().all(|b| *b == CANARY_BYTE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand, PtrClass};

    fn iota_kernel() -> Arc<Kernel> {
        let mut b = KernelBuilder::new("iota");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn safe_kernel_gets_unprotected_pointer() {
        let mut d = Driver::new(DriverConfig::default(), 1);
        let buf = d.malloc(1024 * 4).unwrap();
        let p = d
            .prepare_launch(iota_kernel(), 4, 256, &[Arg::Buffer(buf)])
            .unwrap();
        let ptr = TaggedPtr::from_raw(p.launch.args[0]);
        assert_eq!(ptr.class(), PtrClass::Unprotected);
        assert_eq!(p.bat.as_ref().unwrap().sites_static, 1);
    }

    #[test]
    fn unsafe_kernel_gets_encrypted_region_pointer() {
        let mut d = Driver::new(DriverConfig::default(), 1);
        let buf = d.malloc(128).unwrap(); // too small for 1024 threads
        let p = d
            .prepare_launch(iota_kernel(), 4, 256, &[Arg::Buffer(buf)])
            .unwrap();
        let ptr = TaggedPtr::from_raw(p.launch.args[0]);
        assert_eq!(ptr.class(), PtrClass::Region);
        let setup = p.shield.unwrap();
        // The embedded ID is encrypted: decrypting recovers a valid entry.
        let id = crate::cipher::decrypt_id(ptr.info(), setup.key);
        let e = crate::rbt::read_entry(d.vm(), setup.rbt_base, id).unwrap();
        assert!(e.valid);
        assert_eq!(e.base, d.buffer_va(buf));
        assert_eq!(e.size, 128);
        assert_eq!(e.kernel_id, setup.kernel_id);
    }

    #[test]
    fn shield_disabled_gives_raw_pointers_and_no_rbt() {
        let cfg = DriverConfig {
            enable_shield: false,
            ..DriverConfig::default()
        };
        let mut d = Driver::new(cfg, 1);
        let buf = d.malloc(64).unwrap();
        let p = d
            .prepare_launch(iota_kernel(), 1, 32, &[Arg::Buffer(buf)])
            .unwrap();
        assert!(p.shield.is_none());
        assert!(p.bat.is_none());
        assert_eq!(
            TaggedPtr::from_raw(p.launch.args[0]).class(),
            PtrClass::Unprotected
        );
    }

    #[test]
    fn without_static_analysis_everything_is_region() {
        let cfg = DriverConfig {
            enable_static_analysis: false,
            ..DriverConfig::default()
        };
        let mut d = Driver::new(cfg, 1);
        let buf = d.malloc(1024 * 4).unwrap();
        let p = d
            .prepare_launch(iota_kernel(), 4, 256, &[Arg::Buffer(buf)])
            .unwrap();
        assert_eq!(
            TaggedPtr::from_raw(p.launch.args[0]).class(),
            PtrClass::Region
        );
        assert_eq!(p.bat.unwrap().sites_static, 0);
    }

    #[test]
    fn type3_pads_and_writes_canary() {
        // Kernel with an unprovable Method C offset → Type 3 candidate.
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let n = b.param_scalar("n");
        let off = b.shl(n, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), n);
        b.ret();
        let k = Arc::new(b.finish().unwrap());

        let cfg = DriverConfig {
            enable_type3: true,
            ..DriverConfig::default()
        };
        let mut d = Driver::new(cfg, 1);
        let buf = d.malloc(100).unwrap(); // padded to 512
                                          // Pass an unknowable scalar by pretending it's a runtime value: the
                                          // driver knows it, so use a kernel where it still can't prove
                                          // bounds: n is known (5) here, so offset 20 is provably fine —
                                          // choose a huge n instead to stay unprovable but in-range at run.
        let p = d
            .prepare_launch(k, 1, 32, &[Arg::Buffer(buf), Arg::Scalar(3)])
            .unwrap();
        // With a known scalar the site may be proven static; accept either
        // Static or a Type 3 pointer, but the buffer must stay consistent.
        let ptr = TaggedPtr::from_raw(p.launch.args[0]);
        if ptr.class() == PtrClass::SizeEmbedded {
            assert_eq!(ptr.info(), 9); // log2(512)
            assert!(d.canary_intact(buf));
        }
    }

    #[test]
    fn arg_mismatch_is_reported() {
        let mut d = Driver::new(DriverConfig::default(), 1);
        let e = d.prepare_launch(iota_kernel(), 1, 32, &[]).unwrap_err();
        assert!(matches!(e, DriverError::ArgMismatch { .. }));
        let e2 = d
            .prepare_launch(iota_kernel(), 1, 32, &[Arg::Scalar(1)])
            .unwrap_err();
        assert!(matches!(e2, DriverError::ArgMismatch { .. }));
    }

    #[test]
    fn heap_kernel_requires_heap_limit() {
        let mut b = KernelBuilder::new("heapy");
        let _p = b.malloc(Operand::Imm(64));
        b.ret();
        let k = Arc::new(b.finish().unwrap());
        let mut d = Driver::new(DriverConfig::default(), 1);
        assert!(matches!(
            d.prepare_launch(k.clone(), 1, 32, &[]),
            Err(DriverError::NoHeapConfigured { .. })
        ));
        d.set_heap_limit(1 << 20).unwrap();
        let p = d.prepare_launch(k, 1, 32, &[]).unwrap();
        let heap = p.launch.heap.unwrap();
        assert_eq!(heap.tagged_base.class(), PtrClass::Region);
        assert_eq!(heap.size, 1 << 20);
    }

    #[test]
    fn local_vars_get_tagged_bases() {
        let mut b = KernelBuilder::new("loc");
        let v = b.local_var("scratch", 64);
        let tid = b.global_thread_id();
        // Unprovable dynamic index via a loaded value would be Runtime;
        // here use an affine store (provable → local base may stay
        // unprotected) plus an unbounded one to force Region.
        let unknown = b.mul(tid, tid);
        let addr = b.local_base(v);
        b.st(
            MemSpace::Local,
            MemWidth::W4,
            b.base_offset(addr, unknown),
            tid,
        );
        b.ret();
        let k = Arc::new(b.finish().unwrap());
        let mut d = Driver::new(DriverConfig::default(), 1);
        // 4 × 32 threads: tid*tid reaches 127² = 16129, past the 8 KB
        // local region, so the access is unprovable → Region tagging.
        let p = d.prepare_launch(k, 4, 32, &[]).unwrap();
        assert_eq!(p.launch.local_bases.len(), 1);
        let ptr = TaggedPtr::from_raw(p.launch.local_bases[0]);
        assert_eq!(ptr.class(), PtrClass::Region);
    }

    #[test]
    fn ids_are_unique_per_launch() {
        let mut d = Driver::new(DriverConfig::default(), 9);
        let ids = d.fresh_ids(1000).unwrap();
        let set: HashSet<u16> = ids.iter().copied().collect();
        assert_eq!(set.len(), 1000);
        assert!(ids.iter().all(|i| *i > 0 && *i < (1 << 14)));
    }

    #[test]
    fn fresh_ids_refuses_more_than_the_id_space() {
        let mut d = Driver::new(DriverConfig::default(), 9);
        let e = d.fresh_ids(1 << 14).unwrap_err();
        assert_eq!(e, DriverError::RegionIdsExhausted { needed: 1 << 14 });
    }

    #[test]
    fn zero_geometry_is_rejected_not_a_panic() {
        let mut d = Driver::new(DriverConfig::default(), 1);
        let buf = d.malloc(64).unwrap();
        let e = d
            .prepare_launch(iota_kernel(), 0, 32, &[Arg::Buffer(buf)])
            .unwrap_err();
        assert_eq!(e, DriverError::DegenerateLaunch { grid: 0, block: 32 });
        let e = d
            .prepare_launch(iota_kernel(), 4, 0, &[Arg::Buffer(buf)])
            .unwrap_err();
        assert_eq!(e, DriverError::DegenerateLaunch { grid: 4, block: 0 });
    }

    #[test]
    fn prepared_launch_exposes_its_region_ids() {
        let mut d = Driver::new(
            DriverConfig {
                enable_static_analysis: false,
                ..DriverConfig::default()
            },
            3,
        );
        let buf = d.malloc(1024 * 4).unwrap();
        let p = d
            .prepare_launch(iota_kernel(), 4, 256, &[Arg::Buffer(buf)])
            .unwrap();
        // Without static analysis the buffer param is Region-classed, so
        // exactly one RBT entry was assigned.
        assert_eq!(p.region_ids.len(), 1);
        assert!(p.region_ids[0] > 0 && p.region_ids[0] < (1 << 14));
    }

    #[test]
    fn unprotected_launch_has_no_region_ids() {
        let mut d = Driver::new(
            DriverConfig {
                enable_shield: false,
                ..DriverConfig::default()
            },
            3,
        );
        let buf = d.malloc(1024 * 4).unwrap();
        let p = d
            .prepare_launch(iota_kernel(), 4, 256, &[Arg::Buffer(buf)])
            .unwrap();
        assert!(p.region_ids.is_empty());
    }

    #[test]
    fn error_displays_cover_the_untriggerable_variants() {
        let a = DriverError::AllocationFailed {
            what: "heap",
            fault: MemFault::Unmapped { va: 0x40 },
        };
        assert_eq!(
            a.to_string(),
            "failed to allocate heap: illegal memory access at 0x40"
        );
        let m = DriverError::MetadataWrite {
            fault: MemFault::Protected { va: 0x80 },
        };
        assert_eq!(
            m.to_string(),
            "failed to write RBT metadata: access to protected page at 0x80"
        );
        let r = DriverError::RegionIdsExhausted { needed: 99999 };
        assert_eq!(
            r.to_string(),
            "launch needs 99999 region IDs, exceeding the 14-bit ID space"
        );
        let g = DriverError::DegenerateLaunch { grid: 0, block: 64 };
        assert_eq!(g.to_string(), "degenerate launch geometry 0x64");
    }

    #[test]
    fn host_buffer_io_roundtrip() {
        let mut d = Driver::new(DriverConfig::default(), 1);
        let buf = d.malloc(64).unwrap();
        d.write_buffer(buf, 8, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        d.read_buffer(buf, 8, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        assert_eq!(d.read_buffer_uint(buf, 8, 4), 0x0403_0201);
    }
}
