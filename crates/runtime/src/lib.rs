//! Dependency-free runtime services for the GPUShield reproduction.
//!
//! The build environment has no registry access, so everything the
//! workspace previously pulled from external crates lives here instead:
//!
//! - [`rng`] — a seeded SplitMix64 + xoshiro256\*\* PRNG exposing the small
//!   API surface the repo used from `rand` ([`rng::StdRng::seed_from_u64`],
//!   [`rng::StdRng::gen_range`], [`rng::StdRng::fill`],
//!   [`rng::StdRng::shuffle`]). Fixing the algorithm in-tree preserves the
//!   determinism contract of DESIGN.md §4.3: every stream is a pure
//!   function of its seed, forever.
//! - [`pool`] — a scoped-thread job executor that fans independent
//!   simulations out across cores, returns results in deterministic
//!   submission order, isolates per-job panics, and records per-job wall
//!   time.
//! - [`report`] — a minimal hand-rolled JSON value type (emit + parse, no
//!   serde) plus a text-table scraper, so experiments can write
//!   machine-readable `results/<id>.json` next to their `.txt` exhibits.

#![forbid(unsafe_code)]

pub mod pool;
pub mod report;
pub mod rng;

pub use pool::{available_parallelism, with_crew, CrewCtl, JobPanic, JobResult, SpinBarrier};
pub use report::Json;
pub use rng::StdRng;
