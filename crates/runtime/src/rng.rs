//! Seeded pseudo-random number generation (SplitMix64 + xoshiro256\*\*).
//!
//! A drop-in replacement for the slice of `rand` this repository used:
//! [`StdRng::seed_from_u64`], [`StdRng::gen`], [`StdRng::gen_range`],
//! [`StdRng::fill`], and [`StdRng::shuffle`]. The generator is
//! xoshiro256\*\* (Blackman & Vigna), whose 256-bit state is expanded from
//! the `u64` seed with SplitMix64 — the same construction `rand`'s
//! `SeedableRng::seed_from_u64` uses for the xoshiro family, and the one
//! the reference C implementation recommends.
//!
//! Determinism (DESIGN.md §4.3) is the point of keeping the algorithm
//! in-tree: the stream for a given seed is fixed by this file alone and
//! can never shift underneath us through a dependency upgrade. The
//! golden-value tests at the bottom pin it.
//!
//! Not cryptographic. Buffer-ID unpredictability in the *model* stands in
//! for a hardware TRNG (the paper's driver would use one); statistical
//! quality is all the simulation needs.

/// One SplitMix64 step: advances `state` and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256\*\* generator.
///
/// Named `StdRng` so the call sites that previously used
/// `rand::rngs::StdRng` read unchanged. Streams are *not* compatible with
/// `rand`'s ChaCha-based `StdRng` — the repo's contract is per-seed
/// determinism of this tree, not cross-crate stream equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Builds a generator whose whole stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniform bits (the high half, which xoshiro mixes best).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value of any [`FromRng`] type (`rng.gen::<u64>()` …).
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// A uniform value in `lo..hi` or `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, mirroring `rand`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Fills `dest` with uniform bytes.
    pub fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&b[..rest.len()]);
        }
    }

    /// Uniform Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Unbiased uniform value in `0..n` (Lemire's multiply-shift with
    /// rejection of the short interval).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Derives a child seed from a parent `seed` and a stream `label`.
///
/// The label bytes fold into the parent seed with FNV-1a and the result
/// is tempered through one SplitMix64 step, so labels differing in a
/// single byte land in unrelated streams. Used by [`StdRng::stream`] and
/// [`StdRng::split`]; exposed so call sites that only need a derived
/// `u64` seed (e.g. to hand to another seeded subsystem) can use the
/// same construction instead of ad-hoc multiply-add mixing.
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    splitmix64(&mut h)
}

impl StdRng {
    /// The labelled child stream of `seed`: a generator whose stream is a
    /// pure function of `(seed, label)`.
    ///
    /// Distinct labels give streams as independent as distinct seeds, so
    /// subsystems that share one experiment seed (fuzzer corpus, fault
    /// plans, admission loops) can each take a labelled stream without
    /// any risk of drawing from — or colliding with — each other's.
    pub fn stream(seed: u64, label: &str) -> StdRng {
        StdRng::seed_from_u64(derive_seed(seed, label))
    }

    /// Splits a labelled child generator off a running parent.
    ///
    /// Consumes one draw from the parent (so successive splits with the
    /// same label differ) and keys the child with `label` on top of it.
    /// The parent's subsequent stream is unrelated to any child's.
    pub fn split(&mut self, label: &str) -> StdRng {
        StdRng::stream(self.next_u64(), label)
    }
}

/// Types [`StdRng::gen`] can produce.
pub trait FromRng {
    /// Draws one uniform value.
    fn from_rng(rng: &mut StdRng) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng(rng: &mut StdRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    /// The xoshiro256** stream for the SplitMix64-expanded zero seed,
    /// per the reference C implementations of both algorithms.
    #[test]
    fn golden_stream_seed_zero() {
        let mut r = StdRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 11091344671253066420);
        assert_eq!(r.next_u64(), 13793997310169335082);
    }

    #[test]
    fn seed_stability_golden_values() {
        // Pins the in-tree algorithm: if any of these move, every
        // experiment's synthetic inputs and buffer IDs move with them.
        let mut r = StdRng::seed_from_u64(0x6057_5E1D);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(got, golden_seed_values());
    }

    fn golden_seed_values() -> Vec<u64> {
        vec![
            145813668566889326,
            4414131702211506063,
            8863662239418254242,
            16025981734460988120,
        ]
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = r.gen_range(0u16..(1 << 14));
            assert!(z < (1 << 14));
        }
    }

    #[test]
    fn gen_range_mean_is_central() {
        // Mean of 100k draws from 0..1000 concentrates hard around 499.5
        // (σ of the mean ≈ 0.91; ±5 is a >5σ window).
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.gen_range(0u64..1000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 499.5).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn gen_range_chi_squared_uniform() {
        // χ² over 64 buckets, 64k draws: expected 1024 per bucket, 63
        // degrees of freedom. 140 is far beyond the 99.9th percentile
        // (~104) yet catches any real bucket skew.
        let mut r = StdRng::seed_from_u64(3);
        let buckets = 64usize;
        let per = 1024u64;
        let mut counts = vec![0u64; buckets];
        for _ in 0..(buckets as u64 * per) {
            counts[r.gen_range(0usize..buckets)] += 1;
        }
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - per as f64;
                d * d / per as f64
            })
            .sum();
        assert!(chi2 < 140.0, "chi² {chi2}: {counts:?}");
    }

    #[test]
    fn fill_is_deterministic_and_covers_tail() {
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        StdRng::seed_from_u64(9).fill(&mut a);
        StdRng::seed_from_u64(9).fill(&mut b);
        assert_eq!(a, b);
        // 13 bytes from two u64 draws: tail differs from a fresh prefix.
        assert!(
            a.iter().any(|&x| x != 0),
            "all-zero fill is astronomically unlikely"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "identity shuffle of 100 elements");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).gen_range(5u32..5);
    }

    #[test]
    fn labelled_streams_are_stable_and_distinct() {
        // Pure function of (seed, label).
        let a = StdRng::stream(42, "fuzz/corpus").next_u64();
        let b = StdRng::stream(42, "fuzz/corpus").next_u64();
        assert_eq!(a, b);
        // Distinct labels and distinct seeds both move the stream.
        assert_ne!(a, StdRng::stream(42, "fault-plan").next_u64());
        assert_ne!(a, StdRng::stream(43, "fuzz/corpus").next_u64());
        // A labelled child is not a prefix or replay of the parent.
        let mut parent = StdRng::seed_from_u64(42);
        assert_ne!(a, parent.next_u64());
    }

    #[test]
    fn derive_seed_golden_values() {
        // Pins the label-fold construction the same way the seed tests pin
        // the raw stream: if these move, every labelled substream moves.
        assert_eq!(derive_seed(0, ""), 14087677454934409008);
        assert_eq!(derive_seed(0x6057_5E1D, "fuzz/corpus"), 960143859375979650);
    }

    #[test]
    fn split_advances_parent_and_differs_per_call() {
        let mut parent = StdRng::seed_from_u64(7);
        let mut twin = parent.clone();
        let c1 = parent.split("w").next_u64();
        let c2 = parent.split("w").next_u64();
        assert_ne!(c1, c2, "same label, successive splits: fresh streams");
        // Split consumed exactly one parent draw each time.
        twin.next_u64();
        twin.next_u64();
        assert_eq!(parent.next_u64(), twin.next_u64());
    }
}
