//! A scoped-thread job pool for embarrassingly parallel simulation sweeps.
//!
//! Every GPUShield simulation is deterministic and single-threaded
//! (DESIGN.md §4.3), so a `(workload × config × protection)` sweep is pure
//! fan-out. [`run`] executes a batch of closures on `workers` OS threads
//! that self-schedule from a shared queue (each idle worker steals the
//! next unclaimed job), and returns results **in submission order** — so
//! any output assembled from the results is bit-for-bit identical
//! whatever the worker count.
//!
//! Each job runs under `catch_unwind`: one diverging simulation reports as
//! a failed [`JobResult`] instead of killing the whole sweep. Per-job wall
//! time is captured for the machine-readable reports.
//!
//! With `workers <= 1` the batch runs inline on the calling thread, in
//! order — exactly the pre-pool sequential behaviour.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A job that panicked; carries the stringified panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic message (or a placeholder for non-string payloads).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// The outcome of one job.
#[derive(Debug)]
pub struct JobResult<T> {
    /// Submission index (results come back sorted by this).
    pub index: usize,
    /// Wall-clock time the job spent executing.
    pub wall: Duration,
    /// The job's return value, or the panic that ended it.
    pub result: Result<T, JobPanic>,
}

/// Number of hardware threads, with a serial fallback.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_one<T>(index: usize, job: impl FnOnce() -> T) -> JobResult<T> {
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(job)).map_err(|p| JobPanic {
        message: panic_message(p.as_ref()),
    });
    JobResult {
        index,
        wall: t0.elapsed(),
        result,
    }
}

/// Runs `jobs` on up to `workers` threads; results in submission order.
///
/// Panicking jobs are isolated (their [`JobResult::result`] is an `Err`);
/// the pool itself never panics on job failure.
pub fn run<T, F>(jobs: Vec<F>, workers: usize) -> Vec<JobResult<T>>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| run_one(i, job))
            .collect();
    }

    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let done: Vec<Mutex<Option<JobResult<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot lock")
                    .take()
                    .expect("each index is claimed exactly once");
                let result = run_one(i, job);
                *done[i].lock().expect("result slot lock") = Some(result);
            });
        }
    });

    done.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot lock")
                .expect("every job ran to completion")
        })
        .collect()
}

/// [`run`], unwrapping every result and re-raising the first panic.
///
/// For callers that treat any job failure as their own failure (e.g. an
/// experiment whose inner sweep diverged) but still want the fan-out and
/// ordering guarantees.
///
/// # Panics
///
/// Panics with the original message if any job panicked.
pub fn run_all<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    run(jobs, workers)
        .into_iter()
        .map(|r| match r.result {
            Ok(v) => v,
            Err(p) => panic!("job {} failed: {}", r.index, p.message),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order_any_width() {
        let jobs = |n: usize| {
            (0..n)
                .map(|i| {
                    move || {
                        // Uneven work so completion order differs from
                        // submission order under parallel execution.
                        let spin = (n - i) * 1000;
                        let mut acc = i as u64;
                        for k in 0..spin {
                            acc = acc.wrapping_mul(31).wrapping_add(k as u64);
                        }
                        (i, acc)
                    }
                })
                .collect::<Vec<_>>()
        };
        let serial: Vec<_> = run(jobs(64), 1)
            .into_iter()
            .map(|r| r.result.unwrap())
            .collect();
        let wide: Vec<_> = run(jobs(64), 8)
            .into_iter()
            .map(|r| r.result.unwrap())
            .collect();
        assert_eq!(serial, wide);
        for (i, (idx, _)) in serial.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("diverging simulation")),
            Box::new(|| 3),
        ];
        let results = run(jobs, 4);
        assert_eq!(results[0].result, Ok(1));
        assert_eq!(
            results[1].result.as_ref().unwrap_err().message,
            "diverging simulation"
        );
        assert_eq!(results[2].result, Ok(3));
    }

    #[test]
    fn wall_time_is_captured() {
        let results = run(vec![|| std::thread::sleep(Duration::from_millis(5))], 2);
        assert!(results[0].wall >= Duration::from_millis(5));
    }

    #[test]
    fn empty_batch_is_fine() {
        let results: Vec<JobResult<u8>> = run(Vec::<fn() -> u8>::new(), 8);
        assert!(results.is_empty());
    }

    #[test]
    #[should_panic(expected = "job 1 failed: boom")]
    fn run_all_propagates_job_panics() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom"))];
        let _ = run_all(jobs, 2);
    }
}
