//! A scoped-thread job pool for embarrassingly parallel simulation sweeps.
//!
//! Every GPUShield simulation is deterministic and single-threaded
//! (DESIGN.md §4.3), so a `(workload × config × protection)` sweep is pure
//! fan-out. [`run`] executes a batch of closures on `workers` OS threads
//! that self-schedule from a shared queue (each idle worker steals the
//! next unclaimed job), and returns results **in submission order** — so
//! any output assembled from the results is bit-for-bit identical
//! whatever the worker count.
//!
//! Each job runs under `catch_unwind`: one diverging simulation reports as
//! a failed [`JobResult`] instead of killing the whole sweep. Per-job wall
//! time is captured for the machine-readable reports.
//!
//! With `workers <= 1` the batch runs inline on the calling thread, in
//! order — exactly the pre-pool sequential behaviour.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A job that panicked; carries the stringified panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic message (or a placeholder for non-string payloads).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// The outcome of one job.
#[derive(Debug)]
pub struct JobResult<T> {
    /// Submission index (results come back sorted by this).
    pub index: usize,
    /// Wall-clock time the job spent executing.
    pub wall: Duration,
    /// The job's return value, or the panic that ended it.
    pub result: Result<T, JobPanic>,
}

/// Number of hardware threads, with a serial fallback.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_one<T>(index: usize, job: impl FnOnce() -> T) -> JobResult<T> {
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(job)).map_err(|p| JobPanic {
        message: panic_message(p.as_ref()),
    });
    JobResult {
        index,
        wall: t0.elapsed(),
        result,
    }
}

/// Runs `jobs` on up to `workers` threads; results in submission order.
///
/// Panicking jobs are isolated (their [`JobResult::result`] is an `Err`);
/// the pool itself never panics on job failure.
pub fn run<T, F>(jobs: Vec<F>, workers: usize) -> Vec<JobResult<T>>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| run_one(i, job))
            .collect();
    }

    // Workers claim job indices through one atomic counter (no shared
    // queue lock); each job slot's mutex is locked exactly once, by its
    // unique claimant. Results accumulate in per-worker local vectors —
    // no shared result slots to contend on — and are merged + sorted back
    // into submission order at the end.
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);

    let mut results: Vec<JobResult<T>> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let job = slots[i]
                            .lock()
                            .expect("job slot lock")
                            .take()
                            .expect("each index is claimed exactly once");
                        local.push(run_one(i, job));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("pool worker thread"));
        }
    });
    results.sort_unstable_by_key(|r| r.index);
    results
}

/// A sense-reversing spin barrier for tightly-coupled phase/drain loops.
///
/// All `n` participants block in [`SpinBarrier::wait`] until the last one
/// arrives; the barrier is immediately reusable for the next round. Each
/// participant keeps its own *sense* flag (passed in by `&mut`), flipped
/// every round, so consecutive rounds cannot be confused. Waiting spins
/// briefly (quantum rounds are microseconds apart) and then yields to the
/// scheduler so oversubscribed hosts still make progress.
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    /// A barrier for `n` participants (`n >= 1`).
    pub fn new(n: usize) -> Self {
        SpinBarrier {
            n: n.max(1),
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Blocks until all participants of this round have arrived.
    pub fn wait(&self, local_sense: &mut bool) {
        let target = !*local_sense;
        *local_sense = target;
        if self.count.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(target, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != target {
                spins = spins.wrapping_add(1);
                if spins < 1 << 14 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Driver-side handle for a [`with_crew`] session.
///
/// The driver thread owns the round structure: every [`CrewCtl::round`]
/// releases the parked workers, runs the work function inline as worker 0,
/// and returns once every worker has finished the round.
pub struct CrewCtl<'a> {
    barrier: &'a SpinBarrier,
    sense: Cell<bool>,
    work: &'a (dyn Fn(usize) + Sync),
}

impl CrewCtl<'_> {
    /// Runs one round: all workers (the driver included, as worker 0)
    /// execute the work function once, then rendezvous.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the driver's own work-function call after
    /// completing the rendezvous (so spawned workers are never left
    /// stranded at the barrier).
    pub fn round(&self) {
        let mut s = self.sense.get();
        self.barrier.wait(&mut s); // release the crew into the round
        let r = catch_unwind(AssertUnwindSafe(|| (self.work)(0)));
        self.barrier.wait(&mut s); // join: everyone finished the round
        self.sense.set(s);
        if let Err(p) = r {
            resume_unwind(p);
        }
    }
}

/// Runs `driver` with a persistent crew of `workers` threads executing
/// `work` once per [`CrewCtl::round`] — the fan-out primitive for
/// quantum-stepped simulation, where re-spawning threads every few dozen
/// simulated cycles would dwarf the work itself.
///
/// The crew is spawned once (scoped, borrowing the caller's state), parks
/// on a [`SpinBarrier`] between rounds, and is shut down when `driver`
/// returns. Worker index 0 is the driver thread itself, so `workers == 1`
/// spawns nothing and runs every round inline. A panic inside `work` on
/// any thread is caught, the round completes, and the panic is re-raised
/// on the driver thread.
pub fn with_crew<R>(
    workers: usize,
    work: impl Fn(usize) + Sync,
    driver: impl FnOnce(&CrewCtl) -> R,
) -> R {
    let workers = workers.max(1);
    let barrier = SpinBarrier::new(workers);
    let stop = AtomicBool::new(false);
    let crew_panic: Mutex<Option<String>> = Mutex::new(None);
    let r = std::thread::scope(|scope| {
        for w in 1..workers {
            let barrier = &barrier;
            let stop = &stop;
            let work = &work;
            let crew_panic = &crew_panic;
            scope.spawn(move || {
                let mut sense = false;
                loop {
                    barrier.wait(&mut sense); // wait for a round (or stop)
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Err(p) = catch_unwind(AssertUnwindSafe(|| work(w))) {
                        let mut slot = crew_panic.lock().expect("crew panic slot");
                        slot.get_or_insert_with(|| panic_message(p.as_ref()));
                    }
                    barrier.wait(&mut sense); // join the round
                }
            });
        }
        let ctl = CrewCtl {
            barrier: &barrier,
            sense: Cell::new(false),
            work: &work,
        };
        let r = catch_unwind(AssertUnwindSafe(|| driver(&ctl)));
        // Shut the crew down even when the driver unwound: workers are
        // parked at the release barrier and must observe `stop`.
        stop.store(true, Ordering::Release);
        if workers > 1 {
            let mut s = ctl.sense.get();
            barrier.wait(&mut s);
        }
        r
    });
    if let Some(msg) = crew_panic.into_inner().expect("crew panic slot") {
        panic!("crew worker panicked: {msg}");
    }
    match r {
        Ok(v) => v,
        Err(p) => resume_unwind(p),
    }
}

/// [`run`], unwrapping every result and re-raising the first panic.
///
/// For callers that treat any job failure as their own failure (e.g. an
/// experiment whose inner sweep diverged) but still want the fan-out and
/// ordering guarantees.
///
/// # Panics
///
/// Panics with the original message if any job panicked.
pub fn run_all<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    run(jobs, workers)
        .into_iter()
        .map(|r| match r.result {
            Ok(v) => v,
            Err(p) => panic!("job {} failed: {}", r.index, p.message),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order_any_width() {
        let jobs = |n: usize| {
            (0..n)
                .map(|i| {
                    move || {
                        // Uneven work so completion order differs from
                        // submission order under parallel execution.
                        let spin = (n - i) * 1000;
                        let mut acc = i as u64;
                        for k in 0..spin {
                            acc = acc.wrapping_mul(31).wrapping_add(k as u64);
                        }
                        (i, acc)
                    }
                })
                .collect::<Vec<_>>()
        };
        let serial: Vec<_> = run(jobs(64), 1)
            .into_iter()
            .map(|r| r.result.unwrap())
            .collect();
        let wide: Vec<_> = run(jobs(64), 8)
            .into_iter()
            .map(|r| r.result.unwrap())
            .collect();
        assert_eq!(serial, wide);
        for (i, (idx, _)) in serial.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("diverging simulation")),
            Box::new(|| 3),
        ];
        let results = run(jobs, 4);
        assert_eq!(results[0].result, Ok(1));
        assert_eq!(
            results[1].result.as_ref().unwrap_err().message,
            "diverging simulation"
        );
        assert_eq!(results[2].result, Ok(3));
    }

    #[test]
    fn wall_time_is_captured() {
        let results = run(vec![|| std::thread::sleep(Duration::from_millis(5))], 2);
        assert!(results[0].wall >= Duration::from_millis(5));
    }

    #[test]
    fn empty_batch_is_fine() {
        let results: Vec<JobResult<u8>> = run(Vec::<fn() -> u8>::new(), 8);
        assert!(results.is_empty());
    }

    #[test]
    #[should_panic(expected = "job 1 failed: boom")]
    fn run_all_propagates_job_panics() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom"))];
        let _ = run_all(jobs, 2);
    }

    #[test]
    fn crew_runs_every_worker_every_round() {
        for workers in [1usize, 2, 4, 7] {
            let hits: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
            let rounds = 50;
            with_crew(
                workers,
                |w| {
                    hits[w].fetch_add(1, Ordering::Relaxed);
                },
                |ctl| {
                    for _ in 0..rounds {
                        ctl.round();
                    }
                },
            );
            for (w, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    rounds,
                    "worker {w} of {workers} must run every round"
                );
            }
        }
    }

    #[test]
    fn crew_driver_return_value_passes_through() {
        let v = with_crew(
            3,
            |_| {},
            |ctl| {
                ctl.round();
                42u64
            },
        );
        assert_eq!(v, 42);
    }

    #[test]
    #[should_panic(expected = "crew worker panicked: round bomb")]
    fn crew_worker_panic_is_reraised_on_driver() {
        with_crew(
            4,
            |w| {
                if w == 3 {
                    panic!("round bomb");
                }
            },
            |ctl| ctl.round(),
        );
    }

    #[test]
    fn spin_barrier_round_trips() {
        let b = SpinBarrier::new(3);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut sense = false;
                    for _ in 0..100 {
                        total.fetch_add(1, Ordering::Relaxed);
                        b.wait(&mut sense);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }
}
