//! Minimal hand-rolled JSON (emit **and** parse, no serde) plus a
//! text-table scraper, for machine-readable experiment results.
//!
//! The emitter covers exactly what `results/<id>.json` needs: objects with
//! ordered keys, arrays, strings with correct escaping, integers, and
//! finite floats (non-finite floats serialize as `null` — JSON has no
//! spelling for them). The parser exists so tests and tooling can read the
//! files back without any dependency; it accepts the subset the emitter
//! produces plus ordinary whitespace.

use std::fmt::Write as _;

/// A JSON value.
///
/// Equality is JSON-semantic: JSON has a single number type, so
/// `Int(2) == UInt(2) == Float(2.0)` — which is what lets an emitted
/// document compare equal after a parse round trip.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer (emitted without a decimal point).
    UInt(u64),
    /// A float; non-finite values emit as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` (objects only; no-op otherwise by design —
    /// callers always hold a `Json::Obj`).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        if let Json::Obj(entries) = self {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, unified to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{f:?}` keeps a `.0` on integral floats, so the
                    // value re-parses as a float.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the emitter's subset plus whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        use Json::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Arr(a), Arr(b)) => a == b,
            (Obj(a), Obj(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Int(a), UInt(b)) | (UInt(b), Int(a)) => i128::from(*a) == i128::from(*b),
            (Float(a), Float(b)) => a == b,
            (Float(f), Int(i)) | (Int(i), Float(f)) => *f == *i as f64,
            (Float(f), UInt(u)) | (UInt(u), Float(f)) => *f == *u as f64,
            _ => false,
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, "\"")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("bad number `{text}`"))
}

/// One labelled numeric row scraped from a rendered text table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The leading non-numeric tokens, joined by single spaces.
    pub label: String,
    /// The trailing run of numeric columns.
    pub values: Vec<f64>,
}

/// Extracts `label … numeric-columns` rows from a rendered exhibit.
///
/// Every experiment renders fixed-width tables (`writeln!` columns); this
/// scrapes them generically: a line contributes a [`Row`] when it ends in
/// one or more tokens that parse as `f64`, with everything before that
/// numeric tail as the label. Header, prose, and blank lines simply have
/// no numeric tail and drop out. This is the single extraction point that
/// makes all 18 exhibits machine-readable without duplicating their
/// formatting logic.
pub fn numeric_rows(text: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 2 {
            continue;
        }
        let mut tail = Vec::new();
        let mut split = tokens.len();
        for (i, t) in tokens.iter().enumerate().rev() {
            match t.parse::<f64>() {
                Ok(v) if v.is_finite() => {
                    tail.push(v);
                    split = i;
                }
                _ => break,
            }
        }
        if tail.is_empty() || split == 0 {
            continue;
        }
        tail.reverse();
        rows.push(Row {
            label: tokens[..split].join(" "),
            values: tail,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let mut doc = Json::obj();
        doc.set("id", Json::Str("fig14".into()));
        doc.set("ok", Json::Bool(true));
        doc.set("wall_seconds", Json::Float(12.5));
        doc.set("cycles", Json::UInt(123_456_789));
        doc.set("delta", Json::Int(-3));
        doc.set("nothing", Json::Null);
        doc.set(
            "rows",
            Json::Arr(vec![Json::Float(1.0), Json::Float(0.25), Json::Int(7)]),
        );
        let text = doc.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn escaping_roundtrips() {
        let original = Json::Str("quote \" slash \\ newline \n tab \t bell \u{7}".into());
        let back = Json::parse(&original.render()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render().trim(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render().trim(), "null");
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = Json::Float(2.0).render();
        assert_eq!(text.trim(), "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(2.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn numeric_rows_scrape_tables() {
        let text = "Fig. X — a header line\n\n\
                    benchmark        def.   slowed\n\
                    vectoradd       1.000    1.002\n\
                    streamcluster   1.001    1.044\n\
                    geomean         1.000    1.012\n\n\
                    (prose footnote, no numbers at the end)\n";
        let rows = numeric_rows(text);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "vectoradd");
        assert_eq!(rows[0].values, vec![1.0, 1.002]);
        assert_eq!(rows[2].label, "geomean");
    }

    #[test]
    fn numeric_rows_require_a_label() {
        // A line that is all numbers has no label and is skipped.
        assert!(numeric_rows("1 2 3\n").is_empty());
        assert_eq!(numeric_rows("total 3\n").len(), 1);
    }
}
