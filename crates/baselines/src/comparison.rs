//! The mechanism-comparison matrix of paper Table 2.

use std::fmt;

/// Where a mechanism runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// CPU-side hardware proposal.
    Cpu,
    /// GPU-side mechanism.
    Gpu,
}

/// Protection approach (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Secret bytes around objects.
    Canary,
    /// Pointer/memory tag matching.
    Tag,
    /// Explicit bounds comparison.
    BoundsChecking,
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Approach::Canary => "Canary",
            Approach::Tag => "Tag",
            Approach::BoundsChecking => "Bounds checking",
        };
        f.write_str(s)
    }
}

/// Qualitative magnitude used by Table 2's bandwidth/perf columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Magnitude {
    /// Negligible ("-" in the paper).
    None,
    /// Low.
    Low,
    /// Moderate.
    Moderate,
    /// High.
    High,
}

impl fmt::Display for Magnitude {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Magnitude::None => "-",
            Magnitude::Low => "Low",
            Magnitude::Moderate => "Moderate",
            Magnitude::High => "High",
        };
        f.write_str(s)
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct Mechanism {
    /// Mechanism name.
    pub name: &'static str,
    /// CPU or GPU.
    pub platform: Platform,
    /// Protection approach.
    pub approach: Approach,
    /// Avoids register-file extensions.
    pub no_register_extension: bool,
    /// Avoids duplicated (shadow) memory.
    pub no_duplicated_memory: bool,
    /// Avoids extra checking operations in the instruction stream.
    pub no_extra_check_ops: bool,
    /// Memory-bandwidth increase.
    pub bandwidth_increase: Magnitude,
    /// Performance overhead.
    pub perf_overhead: Magnitude,
}

/// The rows of paper Table 2, in order.
pub fn table2() -> Vec<Mechanism> {
    use Approach::*;
    use Magnitude::*;
    use Platform::*;
    vec![
        Mechanism {
            name: "REST",
            platform: Cpu,
            approach: Canary,
            no_register_extension: true,
            no_duplicated_memory: true,
            no_extra_check_ops: false,
            bandwidth_increase: None,
            perf_overhead: Low,
        },
        Mechanism {
            name: "Califorms",
            platform: Cpu,
            approach: Canary,
            no_register_extension: true,
            no_duplicated_memory: true,
            no_extra_check_ops: true,
            bandwidth_increase: None,
            perf_overhead: Low,
        },
        Mechanism {
            name: "ARM MTE / SPARC ADI",
            platform: Cpu,
            approach: Tag,
            no_register_extension: true,
            no_duplicated_memory: true,
            no_extra_check_ops: true,
            bandwidth_increase: None,
            perf_overhead: Low,
        },
        Mechanism {
            name: "Intel MPX",
            platform: Cpu,
            approach: BoundsChecking,
            no_register_extension: true,
            no_duplicated_memory: false,
            no_extra_check_ops: false,
            bandwidth_increase: High,
            perf_overhead: High,
        },
        Mechanism {
            name: "HardBound / Watchdog",
            platform: Cpu,
            approach: BoundsChecking,
            no_register_extension: false,
            no_duplicated_memory: false,
            no_extra_check_ops: false,
            bandwidth_increase: High,
            perf_overhead: Moderate,
        },
        Mechanism {
            name: "CHERI",
            platform: Cpu,
            approach: BoundsChecking,
            no_register_extension: false,
            no_duplicated_memory: true,
            no_extra_check_ops: true,
            bandwidth_increase: High,
            perf_overhead: Moderate,
        },
        Mechanism {
            name: "In-Fat Pointer",
            platform: Cpu,
            approach: BoundsChecking,
            no_register_extension: true,
            no_duplicated_memory: true,
            no_extra_check_ops: false,
            bandwidth_increase: High,
            perf_overhead: Moderate,
        },
        Mechanism {
            name: "AOS",
            platform: Cpu,
            approach: BoundsChecking,
            no_register_extension: true,
            no_duplicated_memory: true,
            no_extra_check_ops: true,
            bandwidth_increase: High,
            perf_overhead: Moderate,
        },
        Mechanism {
            name: "No-FAT",
            platform: Cpu,
            approach: BoundsChecking,
            no_register_extension: true,
            no_duplicated_memory: true,
            no_extra_check_ops: true,
            bandwidth_increase: None,
            perf_overhead: Low,
        },
        Mechanism {
            name: "C3",
            platform: Cpu,
            approach: BoundsChecking,
            no_register_extension: true,
            no_duplicated_memory: true,
            no_extra_check_ops: true,
            bandwidth_increase: None,
            perf_overhead: Low,
        },
        Mechanism {
            name: "clArmor / GMOD",
            platform: Gpu,
            approach: Canary,
            no_register_extension: true,
            no_duplicated_memory: true,
            no_extra_check_ops: true,
            bandwidth_increase: None,
            perf_overhead: High,
        },
        Mechanism {
            name: "CUDA-MEMCHECK",
            platform: Gpu,
            approach: BoundsChecking,
            no_register_extension: true,
            no_duplicated_memory: true,
            no_extra_check_ops: false,
            bandwidth_increase: High,
            perf_overhead: High,
        },
        Mechanism {
            name: "GPUShield",
            platform: Gpu,
            approach: BoundsChecking,
            no_register_extension: true,
            no_duplicated_memory: true,
            no_extra_check_ops: true,
            bandwidth_increase: Low,
            perf_overhead: Low,
        },
    ]
}

/// Renders the matrix as the paper's check-mark table.
pub fn render_table2() -> String {
    let mut out = String::new();
    out.push_str(
        "Mechanism                 | Unit | Protection      | NoRegExt | NoDupMem | NoChkOps | BW   | Perf\n",
    );
    out.push_str(
        "--------------------------+------+-----------------+----------+----------+----------+------+------\n",
    );
    for m in table2() {
        let check = |b: bool| if b { "v" } else { " " };
        out.push_str(&format!(
            "{:<26}| {:<5}| {:<16}| {:^9}| {:^9}| {:^9}| {:<5}| {}\n",
            m.name,
            match m.platform {
                Platform::Cpu => "CPU",
                Platform::Gpu => "GPU",
            },
            m.approach.to_string(),
            check(m.no_register_extension),
            check(m.no_duplicated_memory),
            check(m.no_extra_check_ops),
            m.bandwidth_increase.to_string(),
            m.perf_overhead,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpushield_row_matches_paper_claims() {
        let rows = table2();
        let gs = rows.last().unwrap();
        assert_eq!(gs.name, "GPUShield");
        assert!(gs.no_register_extension);
        assert!(gs.no_duplicated_memory);
        assert!(gs.no_extra_check_ops);
        assert_eq!(gs.bandwidth_increase, Magnitude::Low);
        assert_eq!(gs.perf_overhead, Magnitude::Low);
    }

    #[test]
    fn thirteen_rows_rendered() {
        assert_eq!(table2().len(), 13);
        let s = render_table2();
        assert!(s.contains("GPUShield"));
        assert!(s.contains("CUDA-MEMCHECK"));
        assert_eq!(s.lines().count(), 15); // header + rule + 13 rows
    }
}
