//! Software memory-safety baselines the paper compares against (§8.5):
//! CUDA-MEMCHECK-style binary instrumentation, clArmor-style canaries, and
//! GMOD-style guard threads — plus the Table 2 mechanism-comparison matrix.
//!
//! The real tools are closed-source or CUDA-bound, so each is modelled by
//! the *mechanism* that produces its cost:
//!
//! * [`MemcheckGuard`] charges a serialized software check routine on the
//!   access path of every memory instruction (JIT-instrumented code +
//!   metadata loads), which is why its overhead scales with load/store
//!   density — the paper's streamcluster observation.
//! * [`ClArmor`] costs nothing on the access path but launches a
//!   canary-scan pass after every kernel, so launch-frequent applications
//!   pay the most.
//! * [`Gmod`] runs concurrent guard threads (a small throughput tax) plus a
//!   constructor/destructor round-trip per kernel launch.
//!
//! Calibration targets are the paper's Fig. 19 multipliers (72.3×, 3.1×,
//! 1.5× average on Rodinia); see `gpushield-bench` for the experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;

use gpushield_mem::VirtualMemorySpace;
use gpushield_sim::{CheckPath, GuardCheck, GuardVerdict, MemAccess, MemGuard};

/// CUDA-MEMCHECK cost model: every warp memory instruction traps into an
/// instrumented software checking routine.
///
/// The routine is serialized with the access (JIT-inserted instructions
/// plus bounds-metadata loads), so its cycles occupy the LSU and are *not*
/// hidden by multi-transaction overlap the way GPUShield's BCU pipeline is.
#[derive(Debug)]
pub struct MemcheckGuard {
    /// Cycles of instrumented checking per warp memory instruction.
    pub per_access_cycles: u64,
    checks: u64,
}

impl MemcheckGuard {
    /// Default calibration (reproduces the Fig. 19 order of magnitude on
    /// the Rodinia-model workloads).
    pub fn new() -> Self {
        MemcheckGuard {
            per_access_cycles: 500,
            checks: 0,
        }
    }

    /// Number of instrumented accesses observed.
    pub fn checks(&self) -> u64 {
        self.checks
    }
}

impl Default for MemcheckGuard {
    fn default() -> Self {
        MemcheckGuard::new()
    }
}

impl MemGuard for MemcheckGuard {
    fn check(&mut self, _access: &MemAccess, _vm: &VirtualMemorySpace) -> GuardCheck {
        self.checks += 1;
        GuardCheck {
            verdict: GuardVerdict::Allow,
            stall_cycles: self.per_access_cycles,
            path: CheckPath::Software,
        }
    }

    fn on_kernel_end(&mut self, _kernel_id: u16) {}

    fn name(&self) -> &str {
        "cuda-memcheck"
    }
}

/// In-kernel software bounds checking (§6.4): the `if (tid < n)` guards
/// programmers write by hand. Costs extra issued instructions and
/// divergence, which the simulator measures directly when the workload
/// provides a guarded kernel variant — this type only documents the
/// mechanism's fixed parameters for the §6.4 study.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwBoundsCheck;

/// A host-side overhead model applied on top of a measured kernel runtime.
pub trait OverheadModel {
    /// Mechanism name.
    fn name(&self) -> &'static str;

    /// Extra cycles charged for one kernel launch of `kernel_cycles`
    /// touching `buffers` buffers totalling `buffer_bytes`.
    fn launch_overhead(&self, kernel_cycles: u64, buffers: u64, buffer_bytes: u64) -> u64;

    /// Total protected runtime for a host program that performed `launches`
    /// launches totalling `kernel_cycles` over `buffers`/`buffer_bytes`.
    fn total_cycles(
        &self,
        kernel_cycles: u64,
        launches: u64,
        buffers: u64,
        buffer_bytes: u64,
    ) -> u64 {
        let per_launch = kernel_cycles.checked_div(launches).unwrap_or(0);
        kernel_cycles + launches * self.launch_overhead(per_launch, buffers, buffer_bytes)
    }
}

/// clArmor: canaries around every buffer, verified by a checker pass after
/// each kernel completes.
#[derive(Debug, Clone, Copy)]
pub struct ClArmor {
    /// Fixed cost of dispatching the checker after a kernel (host
    /// round-trip + checker launch).
    pub launch_cost: u64,
    /// Canary bytes scanned per cycle by the checker kernel.
    pub scan_bytes_per_cycle: u64,
    /// Canary bytes per buffer (the tool pads each allocation).
    pub canary_bytes: u64,
}

impl Default for ClArmor {
    fn default() -> Self {
        ClArmor {
            launch_cost: 7_200,
            scan_bytes_per_cycle: 8,
            canary_bytes: 2_048,
        }
    }
}

impl OverheadModel for ClArmor {
    fn name(&self) -> &'static str {
        "clArmor"
    }

    fn launch_overhead(&self, _kernel_cycles: u64, buffers: u64, _buffer_bytes: u64) -> u64 {
        self.launch_cost + buffers * self.canary_bytes / self.scan_bytes_per_cycle
    }
}

/// GMOD: concurrent guard threads polling canaries, plus a software
/// constructor/destructor pair wrapped around every kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct Gmod {
    /// Constructor + destructor cost per launch.
    pub ctor_dtor_cost: u64,
    /// Throughput tax of the resident guard threads, in percent.
    pub guard_tax_pct: u64,
}

impl Default for Gmod {
    fn default() -> Self {
        Gmod {
            ctor_dtor_cost: 1_450,
            guard_tax_pct: 1,
        }
    }
}

impl OverheadModel for Gmod {
    fn name(&self) -> &'static str {
        "GMOD"
    }

    fn launch_overhead(&self, kernel_cycles: u64, _buffers: u64, _buffer_bytes: u64) -> u64 {
        self.ctor_dtor_cost + kernel_cycles * self.guard_tax_pct / 100
    }
}

/// CUDA-MEMCHECK's host-side share: JIT binary instrumentation at launch.
/// (The dominant per-access cost is [`MemcheckGuard`].)
#[derive(Debug, Clone, Copy)]
pub struct MemcheckHost {
    /// JIT instrumentation cost charged per launch.
    pub jit_cost: u64,
}

impl Default for MemcheckHost {
    fn default() -> Self {
        MemcheckHost { jit_cost: 60_000 }
    }
}

impl OverheadModel for MemcheckHost {
    fn name(&self) -> &'static str {
        "CUDA-MEMCHECK(host)"
    }

    fn launch_overhead(&self, _kernel_cycles: u64, _buffers: u64, _buffer_bytes: u64) -> u64 {
        self.jit_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_isa::{BlockId, MemSpace, SiteCheck, TaggedPtr};

    fn dummy_access() -> MemAccess {
        MemAccess {
            core: 0,
            kernel_id: 1,
            is_store: false,
            space: MemSpace::Global,
            pointer: TaggedPtr::unprotected(0x1000),
            site: (BlockId(0), 0),
            range: (0x1000, 0x1004),
            site_check: SiteCheck::Runtime,
            transactions: 1,
            active_lanes: 32,
            l1d_all_hit: true,
        }
    }

    #[test]
    fn memcheck_charges_every_access() {
        let mut g = MemcheckGuard::new();
        let vm = VirtualMemorySpace::new();
        let c = g.check(&dummy_access(), &vm);
        assert_eq!(c.verdict, GuardVerdict::Allow);
        assert_eq!(c.stall_cycles, g.per_access_cycles);
        assert_eq!(g.checks(), 1);
    }

    #[test]
    fn clarmor_cost_scales_with_buffers_not_kernel_length() {
        let m = ClArmor::default();
        let few = m.launch_overhead(1_000_000, 2, 1 << 20);
        let many = m.launch_overhead(1_000_000, 20, 1 << 20);
        assert!(many > few);
        assert_eq!(
            m.launch_overhead(10, 2, 1 << 20),
            m.launch_overhead(1_000_000, 2, 1 << 20),
            "kernel length does not change the scan cost"
        );
    }

    #[test]
    fn gmod_punishes_launch_frequency() {
        let m = Gmod::default();
        // Same total kernel work, 1 vs 1000 launches: the per-launch
        // ctor/dtor makes the frequent-launch program pay far more.
        let single = m.total_cycles(1_000_000, 1, 4, 1 << 20);
        let many = m.total_cycles(1_000_000, 1000, 4, 1 << 20);
        assert!(
            (many - 1_000_000) > 100 * (single - 1_000_000),
            "per-launch overhead must dominate: {many} vs {single}"
        );
    }

    #[test]
    fn overhead_model_total_includes_base() {
        let m = Gmod::default();
        assert!(m.total_cycles(100, 1, 1, 64) > 100);
        assert_eq!(m.total_cycles(0, 0, 1, 64), 0);
    }
}
