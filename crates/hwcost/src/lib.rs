//! Analytic area/power model for GPUShield's hardware (paper Table 3).
//!
//! The paper synthesised the comparators (Verilog + Synopsys DC) and the
//! RCache SRAMs (OpenRAM) in FreePDK 45 nm at 1 GHz. Neither toolchain is
//! available here, so this module is a linear per-byte model *calibrated to
//! the published Table 3 values* — it reproduces the table exactly for the
//! default configuration and extrapolates to other RCache geometries (used
//! by the Fig. 15 sensitivity sweep's cost column).
//!
//! Entry geometry (§5.5): an L1 RCache entry holds 14 b ID + 48 b base +
//! 32 b size + 1 b read-only + 12 b kernel ID = 107 bits; the L2 splits
//! into a 14 b tag array and a 93 b data array.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Bits per L1 RCache entry (tag + data, looked up in parallel).
pub const L1_ENTRY_BITS: u64 = 14 + 48 + 32 + 1 + 12;
/// Bits per L2 RCache tag entry.
pub const L2_TAG_BITS: u64 = 14;
/// Bits per L2 RCache data entry.
pub const L2_DATA_BITS: u64 = 48 + 32 + 1 + 12;

/// Cost of one synthesized structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureCost {
    /// Structure name.
    pub name: &'static str,
    /// Number of entries ("-" for logic).
    pub entries: Option<u64>,
    /// SRAM bytes ("-" for logic).
    pub sram_bytes: f64,
    /// Area in mm².
    pub area_mm2: f64,
    /// Leakage power in µW.
    pub leakage_uw: f64,
    /// Dynamic power in mW.
    pub dynamic_mw: f64,
}

/// Full per-core BCU cost breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct BcuCost {
    /// Component rows (comparators, L1 RCache, L2 tag, L2 data).
    pub rows: Vec<StructureCost>,
}

impl BcuCost {
    /// Total SRAM bytes per core.
    pub fn total_bytes(&self) -> f64 {
        self.rows.iter().map(|r| r.sram_bytes).sum()
    }

    /// Total area per core in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.rows.iter().map(|r| r.area_mm2).sum()
    }

    /// Total leakage per core in µW.
    pub fn total_leakage_uw(&self) -> f64 {
        self.rows.iter().map(|r| r.leakage_uw).sum()
    }

    /// Total dynamic power per core in mW.
    pub fn total_dynamic_mw(&self) -> f64 {
        self.rows.iter().map(|r| r.dynamic_mw).sum()
    }

    /// Whole-GPU SRAM overhead in KB for `cores` cores (the paper reports
    /// 14.2 KB for the 16-core Nvidia and 21.3 KB for the 24-core Intel
    /// configuration).
    pub fn gpu_total_kb(&self, cores: usize) -> f64 {
        self.total_bytes() * cores as f64 / 1024.0
    }
}

impl fmt::Display for BcuCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>8} {:>10} {:>10} {:>12} {:>12}",
            "Structure", "#Entry", "SRAM(B)", "Area(mm2)", "Leakage(uW)", "Dynamic(mW)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>8} {:>10.1} {:>10.4} {:>12.2} {:>12.2}",
                r.name,
                r.entries.map(|e| e.to_string()).unwrap_or("-".into()),
                r.sram_bytes,
                r.area_mm2,
                r.leakage_uw,
                r.dynamic_mw
            )?;
        }
        writeln!(
            f,
            "{:<14} {:>8} {:>10.1} {:>10.4} {:>12.2} {:>12.2}",
            "Total",
            "-",
            self.total_bytes(),
            self.total_area_mm2(),
            self.total_leakage_uw(),
            self.total_dynamic_mw()
        )
    }
}

// Calibration anchors: the published Table 3 rows for the default
// configuration (4-entry L1, 64-entry L2).
const T3_COMPARATOR: (f64, f64, f64) = (0.0064, 17.51, 20.41);
const T3_L1: (f64, f64, f64, f64) = (53.5, 0.0060, 26.40, 22.93);
const T3_L2_TAG: (f64, f64, f64, f64) = (112.0, 0.0166, 256.71, 55.39);
const T3_L2_DATA: (f64, f64, f64, f64) = (744.0, 0.0568, 499.13, 104.63);

fn scaled(
    name: &'static str,
    entries: u64,
    bits_per_entry: u64,
    anchor: (f64, f64, f64, f64),
    anchor_entries: u64,
) -> StructureCost {
    let bytes = entries as f64 * bits_per_entry as f64 / 8.0;
    let ratio = entries as f64 / anchor_entries as f64;
    StructureCost {
        name,
        entries: Some(entries),
        sram_bytes: bytes,
        area_mm2: anchor.1 * ratio,
        leakage_uw: anchor.2 * ratio,
        dynamic_mw: anchor.3 * ratio,
    }
}

/// Estimates the per-core BCU cost for an RCache geometry.
///
/// # Example
///
/// ```
/// let table3 = gpushield_hwcost::bcu_cost(4, 64);
/// assert!((table3.total_bytes() - 909.5).abs() < 0.1);
/// assert!((table3.gpu_total_kb(16) - 14.2).abs() < 0.1);
/// assert!((table3.gpu_total_kb(24) - 21.3).abs() < 0.1);
/// ```
pub fn bcu_cost(l1_entries: u64, l2_entries: u64) -> BcuCost {
    BcuCost {
        rows: vec![
            StructureCost {
                name: "Comparators",
                entries: None,
                sram_bytes: 0.0,
                area_mm2: T3_COMPARATOR.0,
                leakage_uw: T3_COMPARATOR.1,
                dynamic_mw: T3_COMPARATOR.2,
            },
            scaled("L1 RCache", l1_entries, L1_ENTRY_BITS, T3_L1, 4),
            scaled("L2 RCache tag", l2_entries, L2_TAG_BITS, T3_L2_TAG, 64),
            scaled("L2 RCache data", l2_entries, L2_DATA_BITS, T3_L2_DATA, 64),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_reproduces_table3() {
        let c = bcu_cost(4, 64);
        assert!((c.rows[1].sram_bytes - 53.5).abs() < 1e-9);
        assert!((c.rows[2].sram_bytes - 112.0).abs() < 1e-9);
        assert!((c.rows[3].sram_bytes - 744.0).abs() < 1e-9);
        assert!((c.total_bytes() - 909.5).abs() < 1e-9);
        assert!((c.total_area_mm2() - 0.0858).abs() < 1e-4);
        assert!((c.total_leakage_uw() - 799.75).abs() < 0.01);
        assert!((c.total_dynamic_mw() - 203.36).abs() < 0.01);
    }

    #[test]
    fn gpu_totals_match_section_5_6() {
        let c = bcu_cost(4, 64);
        assert!((c.gpu_total_kb(16) - 14.2).abs() < 0.1, "Nvidia total");
        assert!((c.gpu_total_kb(24) - 21.3).abs() < 0.1, "Intel total");
    }

    #[test]
    fn scaling_is_linear_in_entries() {
        let small = bcu_cost(4, 64);
        let big = bcu_cost(8, 128);
        assert!((big.rows[1].sram_bytes / small.rows[1].sram_bytes - 2.0).abs() < 1e-9);
        assert!((big.rows[2].area_mm2 / small.rows[2].area_mm2 - 2.0).abs() < 1e-9);
        // Comparator logic does not scale.
        assert_eq!(big.rows[0], small.rows[0]);
    }

    #[test]
    fn display_renders_all_rows() {
        let s = bcu_cost(4, 64).to_string();
        assert!(s.contains("Comparators"));
        assert!(s.contains("L2 RCache data"));
        assert!(s.contains("Total"));
    }

    #[test]
    fn entry_bit_widths_match_section_5_5() {
        assert_eq!(L1_ENTRY_BITS, 107);
        assert_eq!(L2_TAG_BITS + L2_DATA_BITS, 107);
    }
}
