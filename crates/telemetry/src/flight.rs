//! Flight recorder: a fixed-capacity, allocation-free ring buffer of
//! structured events.
//!
//! The registry answers *how much* (counters, histograms); the flight
//! recorder answers *what happened just before things went wrong*. Every
//! layer of the stack — driver metadata paths, the BCU's check verdicts,
//! fault injection, the serving loop's admission decisions — records
//! [`FlightEvent`]s into one ring. When a violation or `RunError` fires,
//! the forensics pass (in the `gpushield` crate) walks the ring backwards
//! and reconstructs the causal chain.
//!
//! # Bounded and allocation-free
//!
//! The ring allocates exactly once, at construction. [`FlightRecorder::record`]
//! is O(1): it either appends (while filling) or overwrites the oldest
//! record, bumping the `dropped` counter. A capacity-0 recorder is the
//! *counters-only* mode: sequence numbers and drop counts advance but
//! nothing is stored, so the overhead floor is a branch and two
//! increments.
//!
//! # Determinism under parallelism
//!
//! Events carry the *simulated* timestamp at which they occurred plus a
//! monotone sequence number assigned at insertion. The parallel engine
//! routes in-kernel events through its per-core outboxes and replays
//! them in canonical `(cycle, core, seq)` order during the drain, so the
//! ring's contents are byte-identical at any `--sim-threads`. Events
//! recorded outside a run (driver-side) are timestamped against a
//! monotone epoch that advances by each run's cycle count, giving one
//! global causal timeline across launches.

use crate::Registry;

/// Default ring capacity for the full recorder mode.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// One structured event. Plain-integer payloads only: the recorder is
/// shared across crates, so symbolic types (check paths, abort reasons,
/// fault kinds) are carried as small integer codes the owning crate maps
/// in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEvent {
    /// A kernel was submitted to the GPU with `regions` protected
    /// regions installed.
    KernelLaunch { kernel_id: u16, regions: u16 },
    /// A kernel ran all workgroups to completion.
    KernelComplete { kernel_id: u16 },
    /// A kernel (or one launch of it) was aborted; `reason` is an
    /// `AbortReason` code from the sim crate.
    KernelAbort {
        kernel_id: u16,
        wg: u32,
        warp: u16,
        reason: u8,
    },
    /// The host allocated a device buffer (protected or not).
    BufferAlloc { index: u32, base: u64, size: u64 },
    /// The driver assigned a region ID and wrote its RBT entry.
    RegionAlloc { id: u16, base: u64, size: u64 },
    /// A region ID was released back to the allocator.
    RegionFree { id: u16 },
    /// A previously-released region ID was recycled to a new owner.
    RegionRecycle { id: u16 },
    /// The driver installed a kernel's bounds-analysis table.
    BatInstall {
        kernel_id: u16,
        sites_static: u16,
        sites_runtime: u16,
    },
    /// A check site was elided by a discharged certificate.
    CheckElide { block: u32, idx: u32 },
    /// The BCU checked one memory access. `path` is a `CheckPath` code,
    /// `verdict` a `GuardVerdict` code (sim crate mappings); `lo..hi` is
    /// the accessed byte range.
    CheckVerdict {
        kernel_id: u16,
        wg: u32,
        warp: u16,
        block: u32,
        idx: u32,
        path: u8,
        verdict: u8,
        is_store: bool,
        lo: u64,
        hi: u64,
    },
    /// A fault-injection session fired; `kind` is a `FaultKind` code.
    FaultInjected { kind: u8 },
    /// The run hit its cycle budget and the watchdog tripped.
    WatchdogTrip { budget: u64 },
    /// The serving loop admitted a tenant's launch.
    TenantAdmit { tenant: u16, kernel_id: u16 },
    /// The serving loop rejected a tenant's launch (e.g. region IDs
    /// exhausted).
    TenantReject { tenant: u16 },
}

impl FlightEvent {
    /// Short stable label for rendering and tests.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FlightEvent::KernelLaunch { .. } => "kernel_launch",
            FlightEvent::KernelComplete { .. } => "kernel_complete",
            FlightEvent::KernelAbort { .. } => "kernel_abort",
            FlightEvent::BufferAlloc { .. } => "buffer_alloc",
            FlightEvent::RegionAlloc { .. } => "region_alloc",
            FlightEvent::RegionFree { .. } => "region_free",
            FlightEvent::RegionRecycle { .. } => "region_recycle",
            FlightEvent::BatInstall { .. } => "bat_install",
            FlightEvent::CheckElide { .. } => "check_elide",
            FlightEvent::CheckVerdict { .. } => "check_verdict",
            FlightEvent::FaultInjected { .. } => "fault_injected",
            FlightEvent::WatchdogTrip { .. } => "watchdog_trip",
            FlightEvent::TenantAdmit { .. } => "tenant_admit",
            FlightEvent::TenantReject { .. } => "tenant_reject",
        }
    }
}

/// One ring slot: the event plus its global timestamp and insertion
/// sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Monotone insertion sequence number (never wraps with the ring).
    pub seq: u64,
    /// Global timestamp: the recorder epoch plus the in-run cycle.
    pub t: u64,
    /// The event payload.
    pub ev: FlightEvent,
}

/// The ring buffer. See the module docs for the contract.
#[derive(Debug)]
pub struct FlightRecorder {
    buf: Vec<FlightRecord>,
    capacity: usize,
    head: usize,
    seq: u64,
    dropped: u64,
    epoch: u64,
}

impl FlightRecorder {
    /// A recorder storing at most `capacity` events. The single
    /// allocation happens here.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            seq: 0,
            dropped: 0,
            epoch: 0,
        }
    }

    /// Counters-only mode: sequence/drop counters advance, nothing is
    /// stored.
    pub fn counters_only() -> Self {
        FlightRecorder::new(0)
    }

    /// Full mode at the default ring capacity.
    pub fn full() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently resident in the ring.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded (including dropped ones).
    pub fn events_recorded(&self) -> u64 {
        self.seq
    }

    /// Events evicted by wrap-around or discarded by a capacity-0 ring.
    pub fn events_dropped(&self) -> u64 {
        self.dropped
    }

    /// The current epoch (global cycle offset applied to new events).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the epoch after a run consumed `cycles`, so events from
    /// successive launches land on one monotone timeline.
    pub fn advance_epoch(&mut self, cycles: u64) {
        self.epoch = self.epoch.saturating_add(cycles);
    }

    /// Records `ev` at in-run cycle `t` (global time `epoch + t`). O(1),
    /// allocation-free.
    pub fn record(&mut self, t: u64, ev: FlightEvent) {
        let rec = FlightRecord {
            seq: self.seq,
            t: self.epoch.saturating_add(t),
            ev,
        };
        self.seq += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records an out-of-run event at the current epoch.
    pub fn note(&mut self, ev: FlightEvent) {
        self.record(0, ev);
    }

    /// Resident records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FlightRecord> {
        let n = self.buf.len();
        let head = self.head;
        (0..n).map(move |i| &self.buf[(head + i) % n.max(1)])
    }

    /// Resident records, newest first — the forensics walk order.
    pub fn iter_rev(&self) -> impl Iterator<Item = &FlightRecord> {
        let n = self.buf.len();
        let head = self.head;
        (0..n).rev().map(move |i| &self.buf[(head + i) % n.max(1)])
    }

    /// Drops all resident records but keeps counters and epoch.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// Publishes the `sim.flight.*` counter surface into `reg`.
    pub fn publish(&self, reg: &mut Registry) {
        if !reg.enabled() {
            return;
        }
        reg.set_named("sim.flight.capacity", self.capacity as u64);
        reg.set_named("sim.flight.events_recorded", self.seq);
        reg.set_named("sim.flight.events_dropped", self.dropped);
        reg.set_named("sim.flight.resident", self.buf.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_fills_then_overwrites_oldest() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u16 {
            fr.record(u64::from(i), FlightEvent::RegionFree { id: i });
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.events_recorded(), 5);
        assert_eq!(fr.events_dropped(), 2);
        let ids: Vec<u64> = fr.iter().map(|r| r.seq).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest two evicted");
        let rev: Vec<u64> = fr.iter_rev().map(|r| r.seq).collect();
        assert_eq!(rev, vec![4, 3, 2]);
    }

    #[test]
    fn counters_only_mode_stores_nothing_but_counts() {
        let mut fr = FlightRecorder::counters_only();
        fr.note(FlightEvent::TenantReject { tenant: 1 });
        fr.record(9, FlightEvent::WatchdogTrip { budget: 100 });
        assert!(fr.is_empty());
        assert_eq!(fr.events_recorded(), 2);
        assert_eq!(fr.events_dropped(), 2);
        assert_eq!(fr.iter().count(), 0);
    }

    #[test]
    fn epoch_offsets_successive_runs_onto_one_timeline() {
        let mut fr = FlightRecorder::new(8);
        fr.record(10, FlightEvent::KernelComplete { kernel_id: 1 });
        fr.advance_epoch(100);
        fr.record(10, FlightEvent::KernelComplete { kernel_id: 2 });
        let ts: Vec<u64> = fr.iter().map(|r| r.t).collect();
        assert_eq!(ts, vec![10, 110]);
    }

    #[test]
    fn record_never_allocates_after_construction() {
        let mut fr = FlightRecorder::new(4);
        let cap_before = fr.buf.capacity();
        for i in 0..100u32 {
            fr.record(u64::from(i), FlightEvent::CheckElide { block: i, idx: 0 });
        }
        assert_eq!(fr.buf.capacity(), cap_before);
    }

    #[test]
    fn publish_emits_the_flight_surface() {
        let mut fr = FlightRecorder::new(2);
        fr.note(FlightEvent::RegionFree { id: 7 });
        let mut reg = Registry::new();
        fr.publish(&mut reg);
        assert_eq!(reg.value("sim.flight.capacity"), Some(2));
        assert_eq!(reg.value("sim.flight.events_recorded"), Some(1));
        assert_eq!(reg.value("sim.flight.events_dropped"), Some(0));
        assert_eq!(reg.value("sim.flight.resident"), Some(1));
        let mut off = Registry::disabled();
        fr.publish(&mut off);
        assert!(off.is_empty());
    }
}
