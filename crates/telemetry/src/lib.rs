//! Unified metrics registry for GPUShield, dependency-free and
//! **zero-overhead when disabled**.
//!
//! The paper's evaluation (Fig. 13/14) is an *attribution* argument —
//! overhead is explained by which microarchitectural path each bounds
//! check took, not by end-to-end totals alone. This crate is the
//! substrate every layer reports through: the simulator's scheduler,
//! LSU and BCU, the memory hierarchy, the driver's metadata paths and
//! the compiler's verify passes all publish into one [`Registry`].
//!
//! Four metric kinds cover the needs of a timing simulator:
//!
//! * **Counters** — monotonic `u64` event counts (instructions issued,
//!   RBT fetches, …).
//! * **Gauges** — last-write-wins values (end-of-run profile numbers,
//!   configuration echoes).
//! * **Histograms** — log2-bucketed distributions (visible stall cycles
//!   per access, DRAM channel busy cycles). Bucket 0 holds exact zeros;
//!   bucket `1 + floor(log2 v)` holds `v ≥ 1`.
//! * **Time series** — cycle-sampled values with a **fixed sampling
//!   stride**: at most one point per stride bucket, keyed to simulated
//!   cycles. Because simulated cycles are deterministic, series output
//!   is byte-identical across `--jobs` and host machines.
//!
//! # Determinism
//!
//! Everything the registry records is a function of simulated state, and
//! [`Registry::render_json`] emits metrics sorted by name, so rendered
//! output is reproducible. Wall-clock values (e.g. compiler pass timing)
//! may be stored too — callers must keep those out of byte-compared
//! artefacts; the JSON *key set* stays deterministic either way, which
//! is what the CI schema fixture checks.
//!
//! # Zero overhead when disabled
//!
//! A [`Registry::disabled`] registry never allocates: registration
//! returns the sentinel [`MetricId::NONE`] without interning the name,
//! and every recording operation early-returns. The hot-path contract is
//! a single well-predicted branch, verified by the allocation-counting
//! test in `tests/alloc_profile.rs` at the workspace root.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod flight;

use std::collections::BTreeMap;

/// Default sampling stride for time series, in simulated cycles.
pub const DEFAULT_STRIDE: u64 = 1024;

/// Default bound on stored points per time series.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// Number of log2 histogram buckets: bucket 0 for exact zeros, then one
/// bucket per power of two up to `2^63`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Handle to a registered metric. Obtained once (outside the hot loop)
/// and used for O(1) recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

impl MetricId {
    /// The no-op handle handed out by a disabled registry. All recording
    /// operations on it return immediately.
    pub const NONE: MetricId = MetricId(usize::MAX);

    /// True when this handle records nowhere.
    pub fn is_none(&self) -> bool {
        self.0 == usize::MAX
    }
}

/// A log2-bucketed distribution with exact count and sum.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// `buckets[0]` counts zeros; `buckets[1 + floor(log2 v)]` counts
    /// `v ≥ 1`.
    pub buckets: Vec<u64>,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            1 + (63 - value.leading_zeros() as usize)
        }
    }

    fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Inclusive upper bound of bucket `b`: 0 for the zero bucket, else
    /// `2^b - 1` (bucket `b` holds `v` with `floor(log2 v) == b - 1`).
    pub fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// The `p`-th percentile (0 < p <= 100) as the upper bound of the
    /// log2 bucket containing that rank — a conservative estimate with
    /// at most 2x quantisation error, which is what a log2 sketch can
    /// promise. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Self::bucket_upper(b);
            }
        }
        Self::bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

/// A stride-sampled time series over simulated cycles.
///
/// At most one point is stored per stride bucket (`cycle / stride`), so
/// re-sampling within a bucket is a no-op and event-skip cycle jumps in
/// the simulator simply land in a later bucket. Storage is bounded by a
/// fixed capacity; once full the series stops recording and sets
/// `truncated`.
#[derive(Debug, Clone)]
pub struct Series {
    /// Sampling stride in cycles.
    pub stride: u64,
    /// `(cycle, value)` points in sampling order.
    pub points: Vec<(u64, u64)>,
    /// True when the capacity bound dropped at least one sample.
    pub truncated: bool,
    capacity: usize,
    last_bucket: Option<u64>,
}

impl Series {
    fn new(stride: u64, capacity: usize) -> Self {
        Series {
            stride: stride.max(1),
            points: Vec::new(),
            truncated: false,
            capacity,
            last_bucket: None,
        }
    }

    fn sample(&mut self, cycle: u64, value: u64) {
        let bucket = cycle / self.stride;
        if self.last_bucket == Some(bucket) {
            return;
        }
        self.last_bucket = Some(bucket);
        if self.points.len() < self.capacity {
            self.points.push((cycle, value));
        } else {
            self.truncated = true;
        }
    }
}

/// The value slot of one registered metric.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Last-write-wins value.
    Gauge(u64),
    /// Log2-bucketed distribution.
    Histogram(Histogram),
    /// Stride-sampled time series.
    Series(Series),
}

struct Metric {
    name: String,
    value: MetricValue,
}

/// The metrics registry. See the crate docs for the design contract.
pub struct Registry {
    enabled: bool,
    stride: u64,
    series_capacity: usize,
    metrics: Vec<Metric>,
    index: BTreeMap<String, usize>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An enabled registry with the default series stride.
    pub fn new() -> Self {
        Registry::with_stride(DEFAULT_STRIDE)
    }

    /// An enabled registry sampling time series every `stride` cycles.
    pub fn with_stride(stride: u64) -> Self {
        Registry {
            enabled: true,
            stride: stride.max(1),
            series_capacity: DEFAULT_SERIES_CAPACITY,
            metrics: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// A disabled registry: never allocates, every operation is a no-op.
    pub fn disabled() -> Self {
        Registry {
            enabled: false,
            stride: DEFAULT_STRIDE,
            series_capacity: DEFAULT_SERIES_CAPACITY,
            metrics: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The time-series sampling stride in cycles.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    fn register(&mut self, name: &str, make: impl FnOnce(&Self) -> MetricValue) -> MetricId {
        if !self.enabled {
            return MetricId::NONE;
        }
        if let Some(&i) = self.index.get(name) {
            return MetricId(i);
        }
        let value = make(self);
        let i = self.metrics.len();
        self.metrics.push(Metric {
            name: name.to_string(),
            value,
        });
        self.index.insert(name.to_string(), i);
        MetricId(i)
    }

    /// Registers (or looks up) a monotonic counter.
    pub fn counter(&mut self, name: &str) -> MetricId {
        self.register(name, |_| MetricValue::Counter(0))
    }

    /// Registers (or looks up) a gauge.
    pub fn gauge(&mut self, name: &str) -> MetricId {
        self.register(name, |_| MetricValue::Gauge(0))
    }

    /// Registers (or looks up) a log2 histogram.
    pub fn histogram(&mut self, name: &str) -> MetricId {
        self.register(name, |_| MetricValue::Histogram(Histogram::new()))
    }

    /// Registers (or looks up) a stride-sampled time series.
    pub fn series(&mut self, name: &str) -> MetricId {
        self.register(name, |r| {
            MetricValue::Series(Series::new(r.stride, r.series_capacity))
        })
    }

    /// Adds `delta` to a counter. No-op for [`MetricId::NONE`] or a
    /// non-counter metric.
    pub fn add(&mut self, id: MetricId, delta: u64) {
        if id.is_none() {
            return;
        }
        if let Some(MetricValue::Counter(c)) = self.metrics.get_mut(id.0).map(|m| &mut m.value) {
            *c += delta;
        }
    }

    /// Sets a gauge to `value`. No-op for [`MetricId::NONE`] or a
    /// non-gauge metric.
    pub fn set(&mut self, id: MetricId, value: u64) {
        if id.is_none() {
            return;
        }
        if let Some(MetricValue::Gauge(g)) = self.metrics.get_mut(id.0).map(|m| &mut m.value) {
            *g = value;
        }
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: MetricId, value: u64) {
        if id.is_none() {
            return;
        }
        if let Some(MetricValue::Histogram(h)) = self.metrics.get_mut(id.0).map(|m| &mut m.value) {
            h.observe(value);
        }
    }

    /// Samples a time-series point at `cycle`. At most one point per
    /// stride bucket is kept.
    pub fn sample(&mut self, id: MetricId, cycle: u64, value: u64) {
        if id.is_none() {
            return;
        }
        if let Some(MetricValue::Series(s)) = self.metrics.get_mut(id.0).map(|m| &mut m.value) {
            s.sample(cycle, value);
        }
    }

    /// Convenience for cold paths: register-or-lookup then add.
    pub fn add_named(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        let id = self.counter(name);
        self.add(id, delta);
    }

    /// Convenience for cold paths: register-or-lookup then set.
    pub fn set_named(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let id = self.gauge(name);
        self.set(id, value);
    }

    /// Convenience for cold paths: register-or-lookup then observe.
    pub fn observe_named(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let id = self.histogram(name);
        self.observe(id, value);
    }

    /// Like [`Registry::add_named`], but the label is built lazily: the
    /// closure runs only when the registry is enabled, so a disabled
    /// registry never pays for `format!`-style label construction. This
    /// is the API publish paths with dynamic labels must use — the
    /// allocation-counting test at the workspace root pins it.
    pub fn add_named_with(&mut self, name: impl FnOnce() -> String, delta: u64) {
        if !self.enabled {
            return;
        }
        let name = name();
        let id = self.counter(&name);
        self.add(id, delta);
    }

    /// Lazy-label variant of [`Registry::set_named`]; see
    /// [`Registry::add_named_with`].
    pub fn set_named_with(&mut self, name: impl FnOnce() -> String, value: u64) {
        if !self.enabled {
            return;
        }
        let name = name();
        let id = self.gauge(&name);
        self.set(id, value);
    }

    /// Lazy-label variant of [`Registry::observe_named`]; see
    /// [`Registry::add_named_with`].
    pub fn observe_named_with(&mut self, name: impl FnOnce() -> String, value: u64) {
        if !self.enabled {
            return;
        }
        let name = name();
        let id = self.histogram(&name);
        self.observe(id, value);
    }

    /// The current value of a counter or gauge, if registered.
    pub fn value(&self, name: &str) -> Option<u64> {
        match self.lookup(name)? {
            MetricValue::Counter(c) => Some(*c),
            MetricValue::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// The full value slot of a metric, if registered.
    pub fn lookup(&self, name: &str) -> Option<&MetricValue> {
        let &i = self.index.get(name)?;
        Some(&self.metrics[i].value)
    }

    /// Registered metric names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.index.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders every metric as a JSON object, keys sorted by metric name.
    ///
    /// Output shape per kind:
    /// `{"type": "counter", "value": N}`,
    /// `{"type": "gauge", "value": N}`,
    /// `{"type": "histogram", "count": N, "sum": N, "buckets": [[i, n], ...]}`
    /// (non-empty buckets only),
    /// `{"type": "series", "stride": N, "truncated": B, "points": [[c, v], ...]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for &i in self.index.values() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let m = &self.metrics[i];
            out.push_str("  ");
            push_json_string(&mut out, &m.name);
            out.push_str(": ");
            render_value(&mut out, &m.value);
        }
        out.push_str("\n}\n");
        out
    }

    /// Renders the registry in an OpenMetrics-style text exposition, so
    /// the same surface a deployment would scrape can be produced from
    /// the simulator. Metric names are sanitised to `[a-zA-Z0-9_:]`
    /// (dots become underscores). Counters expose `<name>_total`,
    /// gauges expose `<name>`, histograms expose cumulative
    /// `<name>_bucket{le="..."}` samples (non-empty buckets plus
    /// `+Inf`) with `_sum`/`_count`, and series expose a
    /// `<name>_samples` gauge carrying the stored point count. Output
    /// is sorted by metric name and ends with `# EOF`.
    pub fn render_openmetrics(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &i in self.index.values() {
            let m = &self.metrics[i];
            let name = openmetrics_name(&m.name);
            match &m.value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name}_total {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {g}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cum = 0u64;
                    for (b, &n) in h.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cum += n;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {cum}",
                            Histogram::bucket_upper(b)
                        );
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                    let _ = writeln!(out, "{name}_sum {}", h.sum);
                    let _ = writeln!(out, "{name}_count {}", h.count);
                }
                MetricValue::Series(s) => {
                    let _ = writeln!(out, "# TYPE {name}_samples gauge");
                    let _ = writeln!(out, "{name}_samples {}", s.points.len());
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

/// Sanitises a metric name for the OpenMetrics exposition: every
/// character outside `[a-zA-Z0-9_:]` becomes an underscore.
fn openmetrics_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn render_value(out: &mut String, v: &MetricValue) {
    use std::fmt::Write as _;
    match v {
        MetricValue::Counter(c) => {
            let _ = write!(out, "{{\"type\": \"counter\", \"value\": {c}}}");
        }
        MetricValue::Gauge(g) => {
            let _ = write!(out, "{{\"type\": \"gauge\", \"value\": {g}}}");
        }
        MetricValue::Histogram(h) => {
            let _ = write!(
                out,
                "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.sum
            );
            let mut first = true;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "[{i}, {n}]");
            }
            out.push_str("]}");
        }
        MetricValue::Series(s) => {
            let _ = write!(
                out,
                "{{\"type\": \"series\", \"stride\": {}, \"truncated\": {}, \"points\": [",
                s.stride, s.truncated
            );
            let mut first = true;
            for &(c, v) in &s.points {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "[{c}, {v}]");
            }
            out.push_str("]}");
        }
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let mut r = Registry::new();
        let c = r.counter("sim.instructions");
        r.add(c, 5);
        r.add(c, 7);
        let g = r.gauge("sim.cores");
        r.set(g, 3);
        r.set(g, 4);
        assert_eq!(r.value("sim.instructions"), Some(12));
        assert_eq!(r.value("sim.cores"), Some(4));
    }

    #[test]
    fn registration_is_idempotent() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let mut r = Registry::new();
        let h = r.histogram("stalls");
        for v in [0, 1, 2, 3, 4, 1000] {
            r.observe(h, v);
        }
        match r.lookup("stalls") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 6);
                assert_eq!(h.sum, 1010);
                assert_eq!(h.buckets[0], 1);
                assert_eq!(h.buckets[2], 2);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn series_keeps_one_point_per_stride_bucket_and_bounds_storage() {
        let mut r = Registry::with_stride(10);
        let s = r.series("warps");
        r.sample(s, 0, 1);
        r.sample(s, 3, 2); // same bucket: dropped
        r.sample(s, 10, 3);
        r.sample(s, 95, 4); // jump over buckets is fine
        match r.lookup("warps") {
            Some(MetricValue::Series(s)) => {
                assert_eq!(s.points, vec![(0, 1), (10, 3), (95, 4)]);
                assert!(!s.truncated);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn series_truncates_at_capacity() {
        let mut r = Registry::with_stride(1);
        r.series_capacity = 4;
        let s = r.series("v");
        for c in 0..10 {
            r.sample(s, c, c);
        }
        match r.lookup("v") {
            Some(MetricValue::Series(s)) => {
                assert_eq!(s.points.len(), 4);
                assert!(s.truncated);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn disabled_registry_is_inert_and_allocation_free() {
        let mut r = Registry::disabled();
        let c = r.counter("x");
        assert!(c.is_none());
        r.add(c, 1);
        r.add_named("y", 1);
        r.set_named("z", 1);
        r.observe_named("w", 1);
        r.sample(MetricId::NONE, 0, 0);
        assert!(r.is_empty());
        assert_eq!(r.value("x"), None);
        assert_eq!(r.render_json(), "{\n\n}\n");
    }

    #[test]
    fn render_json_is_sorted_and_stable() {
        let mut r = Registry::new();
        r.add_named("b.count", 2);
        r.add_named("a.count", 1);
        r.set_named("c.gauge", 3);
        let j = r.render_json();
        let a = j.find("a.count").unwrap();
        let b = j.find("b.count").unwrap();
        let c = j.find("c.gauge").unwrap();
        assert!(a < b && b < c, "keys not sorted: {j}");
        assert_eq!(j, r.render_json());
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn percentiles_walk_cumulative_buckets() {
        let mut h = Histogram::new();
        // 90 zeros, 9 values of 5 (bucket 3, upper 7), 1 value of 1000
        // (bucket 10, upper 1023).
        for _ in 0..90 {
            h.observe(0);
        }
        for _ in 0..9 {
            h.observe(5);
        }
        h.observe(1000);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(95.0), 7);
        assert_eq!(h.percentile(99.0), 7);
        assert_eq!(h.percentile(100.0), 1023);
        assert_eq!(Histogram::new().percentile(99.0), 0);
    }

    #[test]
    fn percentile_upper_bounds_are_log2_edges() {
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(10), 1023);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn lazy_labels_never_run_when_disabled() {
        let mut r = Registry::disabled();
        r.add_named_with(|| unreachable!("label built on disabled path"), 1);
        r.set_named_with(|| unreachable!("label built on disabled path"), 1);
        r.observe_named_with(|| unreachable!("label built on disabled path"), 1);
        assert!(r.is_empty());

        let mut on = Registry::new();
        on.add_named_with(|| format!("t.{}.count", 3), 2);
        on.set_named_with(|| format!("t.{}.gauge", 3), 4);
        on.observe_named_with(|| format!("t.{}.hist", 3), 8);
        assert_eq!(on.value("t.3.count"), Some(2));
        assert_eq!(on.value("t.3.gauge"), Some(4));
        assert!(matches!(
            on.lookup("t.3.hist"),
            Some(MetricValue::Histogram(h)) if h.count == 1
        ));
    }

    #[test]
    fn openmetrics_exposition_golden_output() {
        let mut r = Registry::with_stride(10);
        r.add_named("sim.run.instructions", 42);
        r.set_named("sim.cores", 4);
        let h = r.histogram("sim.hist.stall");
        r.observe(h, 0);
        r.observe(h, 5);
        r.observe(h, 5);
        let s = r.series("sim.series.warps");
        r.sample(s, 0, 1);
        r.sample(s, 10, 2);
        let expected = "\
# TYPE sim_cores gauge
sim_cores 4
# TYPE sim_hist_stall histogram
sim_hist_stall_bucket{le=\"0\"} 1
sim_hist_stall_bucket{le=\"7\"} 3
sim_hist_stall_bucket{le=\"+Inf\"} 3
sim_hist_stall_sum 10
sim_hist_stall_count 3
# TYPE sim_run_instructions counter
sim_run_instructions_total 42
# TYPE sim_series_warps_samples gauge
sim_series_warps_samples 2
# EOF
";
        assert_eq!(r.render_openmetrics(), expected);
        assert_eq!(Registry::disabled().render_openmetrics(), "# EOF\n");
    }
}
