//! Chrome Trace Event Format writer.
//!
//! Emits the JSON object format understood by `chrome://tracing` and
//! Perfetto (<https://ui.perfetto.dev>): a top-level `traceEvents` array
//! whose elements each carry the required keys `ph`, `ts`, `pid`, `tid`
//! and `name`. Simulated cycles are written as microseconds, so one
//! trace-viewer microsecond equals one GPU cycle.
//!
//! The writer is deliberately small: duration (`X`), begin/end (`B`/`E`)
//! and instant (`i`) phases cover everything the simulator records. The
//! simulator-side converter (`gpushield_sim::Trace::to_chrome`) maps
//! cores to `pid` and warps to `tid`, so the viewer groups lanes the way
//! the paper discusses them (per-SM, per-warp).

use crate::push_json_string;
use std::fmt::Write as _;

/// One trace event. Fields map 1:1 to the Trace Event Format keys.
#[derive(Debug, Clone)]
pub struct ChromeEvent {
    /// Event name (shown on the slice).
    pub name: String,
    /// Comma-separated categories.
    pub cat: String,
    /// Phase: `X` (complete), `B`/`E` (span begin/end), `i` (instant).
    pub ph: char,
    /// Timestamp in microseconds (we use simulated cycles).
    pub ts: u64,
    /// Duration in microseconds, for `X` events.
    pub dur: Option<u64>,
    /// Process id (we use the GPU core / SM index).
    pub pid: u32,
    /// Thread id (we use a warp identifier within the core).
    pub tid: u32,
    /// Extra key/value pairs rendered into `args`.
    pub args: Vec<(String, String)>,
}

/// An in-memory trace, rendered with [`ChromeTrace::render`].
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    /// Events in insertion order (viewers sort by `ts` themselves).
    pub events: Vec<ChromeEvent>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    fn event(name: &str, cat: &str, ph: char, ts: u64, pid: u32, tid: u32) -> ChromeEvent {
        ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph,
            ts,
            dur: None,
            pid,
            tid,
            args: Vec::new(),
        }
    }

    /// Adds a complete (`X`) event spanning `[ts, ts + dur]`.
    pub fn push_complete(&mut self, name: &str, cat: &str, ts: u64, dur: u64, pid: u32, tid: u32) {
        let mut e = Self::event(name, cat, 'X', ts, pid, tid);
        e.dur = Some(dur.max(1));
        self.events.push(e);
    }

    /// Adds an instant (`i`) event.
    pub fn push_instant(&mut self, name: &str, cat: &str, ts: u64, pid: u32, tid: u32) {
        self.events.push(Self::event(name, cat, 'i', ts, pid, tid));
    }

    /// Adds a begin/end (`B` + `E`) span pair.
    pub fn push_span(&mut self, name: &str, cat: &str, begin: u64, end: u64, pid: u32, tid: u32) {
        self.events
            .push(Self::event(name, cat, 'B', begin, pid, tid));
        self.events
            .push(Self::event(name, cat, 'E', end.max(begin), pid, tid));
    }

    /// Attaches an `args` key/value pair to the most recently pushed
    /// event. No-op on an empty trace.
    pub fn arg(&mut self, key: &str, value: &str) {
        if let Some(e) = self.events.last_mut() {
            e.args.push((key.to_string(), value.to_string()));
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were pushed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the JSON object format: `{"traceEvents": [...],
    /// "displayTimeUnit": "ms"}`. Every event carries `ph`, `ts`, `pid`,
    /// `tid` and `name`.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"traceEvents\": [\n");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("    {\"name\": ");
            push_json_string(&mut out, &e.name);
            out.push_str(", \"cat\": ");
            push_json_string(&mut out, &e.cat);
            let _ = write!(
                out,
                ", \"ph\": \"{}\", \"ts\": {}, \"pid\": {}, \"tid\": {}",
                e.ph, e.ts, e.pid, e.tid
            );
            if let Some(d) = e.dur {
                let _ = write!(out, ", \"dur\": {d}");
            }
            if !e.args.is_empty() {
                out.push_str(", \"args\": {");
                let mut afirst = true;
                for (k, v) in &e.args {
                    if !afirst {
                        out.push_str(", ");
                    }
                    afirst = false;
                    push_json_string(&mut out, k);
                    out.push_str(": ");
                    push_json_string(&mut out, v);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_carries_the_required_keys() {
        let mut t = ChromeTrace::new();
        t.push_complete("ld global", "mem", 10, 4, 0, 3);
        t.push_instant("retire", "sched", 40, 1, 7);
        t.push_span("kernel", "launch", 0, 100, 0, 0);
        let json = t.render();
        // One rendered object per event, each with the Trace Event
        // Format's required keys.
        assert_eq!(json.matches("\"ph\": ").count(), t.len());
        for key in ["\"name\": ", "\"ts\": ", "\"pid\": ", "\"tid\": "] {
            assert_eq!(json.matches(key).count(), t.len(), "missing {key}");
        }
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn complete_events_have_nonzero_duration() {
        let mut t = ChromeTrace::new();
        t.push_complete("x", "c", 5, 0, 0, 0);
        assert_eq!(t.events[0].dur, Some(1));
    }

    #[test]
    fn span_end_never_precedes_begin() {
        let mut t = ChromeTrace::new();
        t.push_span("k", "c", 10, 5, 0, 0);
        assert_eq!(t.events[0].ts, 10);
        assert_eq!(t.events[1].ts, 10);
    }

    #[test]
    fn args_attach_to_last_event() {
        let mut t = ChromeTrace::new();
        t.push_instant("abort", "sim", 1, 0, 0);
        t.arg("reason", "oob \"store\"");
        let json = t.render();
        assert!(json.contains("\"args\": {\"reason\": \"oob \\\"store\\\"\"}"));
    }

    #[test]
    fn empty_trace_renders_a_valid_skeleton() {
        let t = ChromeTrace::new();
        assert!(t.is_empty());
        let json = t.render();
        assert_eq!(
            json,
            "{\n  \"traceEvents\": [\n\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n"
        );
        // arg() on an empty trace must be a no-op, not a panic.
        let mut t = ChromeTrace::new();
        t.arg("k", "v");
        assert!(t.is_empty());
    }

    #[test]
    fn zero_duration_spans_clamp_but_keep_both_phases() {
        let mut t = ChromeTrace::new();
        // A complete event with dur 0 is clamped to 1 so viewers draw a
        // visible slice.
        t.push_complete("x", "c", 5, 0, 0, 0);
        // A span whose end equals its begin keeps both B and E at the
        // same timestamp, in insertion order.
        t.push_span("k", "c", 7, 7, 1, 2);
        assert_eq!(t.events[0].dur, Some(1));
        assert_eq!((t.events[1].ph, t.events[1].ts), ('B', 7));
        assert_eq!((t.events[2].ph, t.events[2].ts), ('E', 7));
        let json = t.render();
        let b = json.find("\"ph\": \"B\"").unwrap();
        let e = json.find("\"ph\": \"E\"").unwrap();
        assert!(b < e, "begin must render before end at equal ts: {json}");
    }

    #[test]
    fn cross_thread_events_keep_insertion_order() {
        // Events from different cores/warps interleave in time; the
        // writer must preserve insertion order byte-for-byte (viewers
        // sort by ts themselves), so a parallel-engine drain that emits
        // canonical order produces a canonical file.
        let mut t = ChromeTrace::new();
        t.push_complete("a", "c", 100, 5, 0, 1);
        t.push_complete("b", "c", 50, 5, 1, 2);
        t.push_instant("c", "c", 75, 0, 3);
        let json = t.render();
        let pa = json.find("\"name\": \"a\"").unwrap();
        let pb = json.find("\"name\": \"b\"").unwrap();
        let pc = json.find("\"name\": \"c\"").unwrap();
        assert!(pa < pb && pb < pc, "insertion order not preserved: {json}");
        // Distinct (pid, tid) lanes survive the round trip.
        for lane in [
            "\"pid\": 0, \"tid\": 1",
            "\"pid\": 1, \"tid\": 2",
            "\"pid\": 0, \"tid\": 3",
        ] {
            assert!(json.contains(lane), "missing lane {lane}");
        }
        // Renders are deterministic.
        assert_eq!(json, t.render());
    }
}
