//! GPUShield — a hardware/software cooperative region-based bounds-checking
//! system for GPUs (reproduction of Lee et al., ISCA 2022).
//!
//! This facade crate wires the whole stack together behind one [`System`]
//! type: the [driver](gpushield_driver) that allocates device memory,
//! assigns encrypted buffer IDs, and builds the per-kernel Region Bounds
//! Table; the [compiler](gpushield_compiler) that statically elides checks;
//! the [BCU](gpushield_core) that checks every warp-level access against
//! the RBT through its RCache hierarchy; and the cycle-level
//! [simulator](gpushield_sim) the evaluation runs on.
//!
//! # Quickstart
//!
//! ```
//! use gpushield::{Arg, System, SystemConfig};
//! use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};
//! use std::sync::Arc;
//!
//! // A kernel with an out-of-bounds write at thread 100 of a 64-element
//! // buffer.
//! let mut b = KernelBuilder::new("oob");
//! let out = b.param_buffer("out", false);
//! let tid = b.global_thread_id();
//! let off = b.shl(tid, Operand::Imm(2));
//! b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
//! b.ret();
//! let kernel = Arc::new(b.finish()?);
//!
//! // Protected system: the launch is aborted with a bounds violation.
//! // The abort lands at the cycle of the canonically-first violation;
//! // cores still in flight inside the same scheduling quantum may log
//! // further (deterministic) records for the same doomed launch.
//! let mut sys = System::new(SystemConfig::nvidia_protected());
//! let buf = sys.alloc(64 * 4)?;
//! let report = sys.launch(kernel, 4, 32, &[Arg::Buffer(buf)])?;
//! assert!(!report.completed());
//! assert!(!sys.violations().is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forensics;

pub use forensics::PostMortem;
pub use gpushield_core::{Bcu, BcuConfig, BcuStats, ViolationKind, ViolationRecord};
pub use gpushield_driver::{
    Arg, BufferHandle, Driver, DriverConfig, DriverError, DriverStats, RegionIdAllocator,
    ShieldSetup, SiteClaim, TenantId, TenantStats, TenantTable,
};
pub use gpushield_sim::{
    CheckPath, FaultKind, FaultPlan, FaultSession, FaultSpec, FaultTargets, Gpu, GpuConfig,
    InjectionRecord, KernelLaunch, LaunchReport, MemGuard, MultiKernelMode, ObservedRange,
    RunError, RunReport, StallAttribution, Trace, TraceEvent, TraceKind,
};
pub use gpushield_telemetry::flight::{FlightEvent, FlightRecord, FlightRecorder};
pub use gpushield_telemetry::{chrome::ChromeTrace, MetricId, Registry};

use gpushield_compiler::BoundsAnalysis;
use gpushield_driver::{read_entry, PreparedLaunch, RBT_ENTRY_BYTES};
use gpushield_isa::Kernel;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// How much the always-on flight recorder retains (see
/// [`System::enable_observation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObserveMode {
    /// No recorder attached; the observation paths cost nothing.
    #[default]
    Disabled,
    /// Counters-only: a capacity-0 ring. Sequence and drop counters
    /// advance (so `sim.flight.*` telemetry stays meaningful) but no
    /// events are stored and no forensics are possible.
    Counters,
    /// Full recorder at [`gpushield_telemetry::flight::DEFAULT_FLIGHT_CAPACITY`].
    Full,
}

/// Top-level configuration: GPU hardware, driver policy, BCU hardware.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Simulated GPU (Table 5 presets available).
    pub gpu: GpuConfig,
    /// Driver policy (shield / static analysis / Type 3).
    pub driver: DriverConfig,
    /// BCU hardware (RCache sizes and latencies).
    pub bcu: BcuConfig,
    /// RNG seed for buffer IDs and keys.
    pub seed: u64,
}

impl SystemConfig {
    /// Nvidia-like GPU with GPUShield enabled (the paper's default
    /// configuration: 4-entry 1-cycle L1 RCache, 64-entry 3-cycle L2).
    pub fn nvidia_protected() -> Self {
        SystemConfig {
            gpu: GpuConfig::nvidia(),
            driver: DriverConfig::default(),
            bcu: BcuConfig::default(),
            seed: 0x6057_5E1D,
        }
    }

    /// Nvidia-like GPU with no bounds checking (the evaluation baseline).
    pub fn nvidia_baseline() -> Self {
        SystemConfig {
            gpu: GpuConfig::nvidia(),
            driver: DriverConfig {
                enable_shield: false,
                ..DriverConfig::default()
            },
            bcu: BcuConfig::default(),
            seed: 0x6057_5E1D,
        }
    }

    /// Intel-like GPU with GPUShield enabled.
    pub fn intel_protected() -> Self {
        SystemConfig {
            gpu: GpuConfig::intel(),
            driver: DriverConfig::default(),
            bcu: BcuConfig::default(),
            seed: 0x6057_5E1D,
        }
    }

    /// Intel-like GPU with no bounds checking.
    pub fn intel_baseline() -> Self {
        SystemConfig {
            gpu: GpuConfig::intel(),
            driver: DriverConfig {
                enable_shield: false,
                ..DriverConfig::default()
            },
            bcu: BcuConfig::default(),
            seed: 0x6057_5E1D,
        }
    }

    /// True when GPUShield is active in this configuration.
    pub fn shield_enabled(&self) -> bool {
        self.driver.enable_shield
    }
}

/// Errors surfaced by [`System`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// Driver-level failure (allocation, argument binding).
    Driver(DriverError),
    /// Simulator-level failure (deadlock, unfittable workgroup).
    Run(RunError),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Driver(e) => write!(f, "driver error: {e}"),
            SystemError::Run(e) => write!(f, "run error: {e}"),
        }
    }
}

impl Error for SystemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SystemError::Driver(e) => Some(e),
            SystemError::Run(e) => Some(e),
        }
    }
}

impl From<DriverError> for SystemError {
    fn from(e: DriverError) -> Self {
        SystemError::Driver(e)
    }
}

impl From<RunError> for SystemError {
    fn from(e: RunError) -> Self {
        SystemError::Run(e)
    }
}

/// A description of one kernel in a concurrent multi-kernel launch.
pub struct ConcurrentKernel {
    /// The kernel.
    pub kernel: Arc<Kernel>,
    /// Workgroups.
    pub grid: u32,
    /// Workitems per workgroup.
    pub block: u32,
    /// Arguments.
    pub args: Vec<Arg>,
}

/// The assembled GPUShield system: driver + compiler + BCU + GPU.
pub struct System {
    cfg: SystemConfig,
    driver: Driver,
    gpu: Gpu,
    bcu: Option<Bcu>,
    last_bat: Option<BoundsAnalysis>,
    flight: Option<FlightRecorder>,
    /// Region IDs ever installed through this system; a re-install of a
    /// seen ID is recorded as a recycle (ID churn is a forensics signal).
    seen_region_ids: HashSet<u16>,
    /// Monotone buffer counter for `BufferAlloc` events.
    buffer_seq: u32,
}

impl System {
    /// Builds a system from `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        let bcu = cfg
            .shield_enabled()
            .then(|| Bcu::new(cfg.bcu, cfg.gpu.num_cores));
        System {
            driver: Driver::new(cfg.driver, cfg.seed),
            gpu: Gpu::new(cfg.gpu.clone()),
            bcu,
            last_bat: None,
            flight: None,
            seen_region_ids: HashSet::new(),
            buffer_seq: 0,
            cfg,
        }
    }

    /// Attaches (or detaches) the flight recorder. The recorder is
    /// bounded and allocation-free after this call: [`ObserveMode::Full`]
    /// allocates the ring once, [`ObserveMode::Counters`] stores nothing,
    /// and [`ObserveMode::Disabled`] removes the recorder entirely.
    /// Switching modes discards any previously recorded events.
    pub fn enable_observation(&mut self, mode: ObserveMode) {
        self.flight = match mode {
            ObserveMode::Disabled => None,
            ObserveMode::Counters => Some(FlightRecorder::counters_only()),
            ObserveMode::Full => Some(FlightRecorder::full()),
        };
    }

    /// The attached flight recorder, if observation is enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Mutable access to the attached flight recorder (e.g. for the
    /// serving loop to stamp tenant admission events).
    pub fn flight_mut(&mut self) -> Option<&mut FlightRecorder> {
        self.flight.as_mut()
    }

    /// Builds a post-mortem from the recorder's resident events, or
    /// `None` when observation is off, the ring is empty, or no anomaly
    /// (violation, abort, watchdog trip) is resident.
    pub fn post_mortem(&self) -> Option<PostMortem> {
        self.flight.as_ref().and_then(PostMortem::from_recorder)
    }

    /// Records the launch-preparation metadata a [`PreparedLaunch`]
    /// installed: the launch itself, each region's RBT window (recycled
    /// IDs flagged), the BAT attach, and every certificate-elided site.
    fn note_prepared(&mut self, prepared: &PreparedLaunch) {
        if self.flight.is_none() {
            return;
        }
        // Resolve region windows (RBT reads borrow the driver) before
        // borrowing the recorder mutably.
        let mut regions: Vec<(u16, u64, u64, bool)> = Vec::new();
        if let Some(setup) = prepared.shield {
            for &id in &prepared.region_ids {
                let recycled = !self.seen_region_ids.insert(id);
                let (base, size) = read_entry(self.driver.vm(), setup.rbt_base, id)
                    .map(|e| (e.base, u64::from(e.size)))
                    .unwrap_or((0, 0));
                regions.push((id, base, size, recycled));
            }
        }
        let Some(f) = self.flight.as_mut() else {
            return;
        };
        f.note(FlightEvent::KernelLaunch {
            kernel_id: prepared.launch.kernel_id,
            regions: prepared.region_ids.len() as u16,
        });
        for (id, base, size, recycled) in regions {
            if recycled {
                f.note(FlightEvent::RegionRecycle { id });
            }
            f.note(FlightEvent::RegionAlloc { id, base, size });
        }
        if let Some(bat) = &prepared.bat {
            f.note(FlightEvent::BatInstall {
                kernel_id: prepared.launch.kernel_id,
                sites_static: bat.sites_static as u16,
                sites_runtime: bat.sites_runtime as u16,
            });
            for site in &bat.elided_sites {
                f.note(FlightEvent::CheckElide {
                    block: site.0 .0,
                    idx: site.1 as u32,
                });
            }
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Allocates a device buffer.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError::BufferTooLarge`].
    pub fn alloc(&mut self, bytes: u64) -> Result<BufferHandle, SystemError> {
        let h = self.driver.malloc(bytes)?;
        let index = self.buffer_seq;
        self.buffer_seq += 1;
        if let Some(f) = self.flight.as_mut() {
            f.note(FlightEvent::BufferAlloc {
                index,
                base: self.driver.buffer_va(h),
                size: self.driver.buffer_size(h),
            });
        }
        Ok(h)
    }

    /// Allocates and initialises a buffer of little-endian `u32`s.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError::BufferTooLarge`].
    pub fn alloc_u32s(&mut self, data: &[u32]) -> Result<BufferHandle, SystemError> {
        let h = self.alloc(data.len() as u64 * 4)?;
        for (i, v) in data.iter().enumerate() {
            self.driver.write_buffer(h, i as u64 * 4, &v.to_le_bytes());
        }
        Ok(h)
    }

    /// Reserves the device heap.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError::AllocationFailed`].
    pub fn set_heap_limit(&mut self, bytes: u64) -> Result<(), SystemError> {
        self.driver.set_heap_limit(bytes)?;
        Ok(())
    }

    /// Host write into a buffer.
    pub fn write_buffer(&mut self, h: BufferHandle, offset: u64, bytes: &[u8]) {
        self.driver.write_buffer(h, offset, bytes);
    }

    /// Host read from a buffer.
    pub fn read_buffer(&self, h: BufferHandle, offset: u64, out: &mut [u8]) {
        self.driver.read_buffer(h, offset, out);
    }

    /// Host read of one little-endian unsigned value.
    pub fn read_uint(&self, h: BufferHandle, offset: u64, width: u64) -> u64 {
        self.driver.read_buffer_uint(h, offset, width)
    }

    /// Registers a prepared launch's shield setup with the BCU and, when
    /// proof-carrying elision is on, primes every core's L2 RCache with
    /// the launch's freshly written RBT entries (§5.4: the driver sets up
    /// launch metadata anyway; leaving it cache-resident keeps certified
    /// elision from deferring a region's first checked access past the
    /// cold-start phase, where the RBT fetch would no longer overlap a
    /// cold data miss).
    fn attach_shield(&mut self, shield: Option<ShieldSetup>, region_ids: &[u16]) {
        let Some(bcu) = self.bcu.as_mut() else { return };
        let Some(setup) = shield else { return };
        bcu.register_kernel(setup);
        if self.driver.config().enable_elision {
            for &id in region_ids {
                bcu.prime_region(setup.kernel_id, id, self.driver.vm());
            }
        }
    }

    /// Launches one kernel and runs it to completion.
    ///
    /// # Errors
    ///
    /// Host-level failures only; an in-kernel bounds violation or memory
    /// fault aborts the launch and is reported in the [`RunReport`].
    pub fn launch(
        &mut self,
        kernel: Arc<Kernel>,
        grid: u32,
        block: u32,
        args: &[Arg],
    ) -> Result<RunReport, SystemError> {
        let prepared = self.driver.prepare_launch(kernel, grid, block, args)?;
        self.attach_shield(prepared.shield, &prepared.region_ids);
        self.note_prepared(&prepared);
        self.last_bat = prepared.bat;
        let guard = self.bcu.as_mut().map(|b| b as &mut dyn MemGuard);
        let report = match self.flight.as_mut() {
            Some(f) => self
                .gpu
                .run_observed(self.driver.vm_mut(), &[prepared.launch], guard, f)?,
            None => self
                .gpu
                .run(self.driver.vm_mut(), &[prepared.launch], guard)?,
        };
        if let Some(f) = self.flight.as_mut() {
            f.advance_epoch(report.cycles);
        }
        Ok(report)
    }

    /// Launches one kernel on behalf of tenant `t`: region IDs come from
    /// the tenant's disjoint allocator slice (not the global random pool),
    /// the launch's kernel ID is recorded for attribution, and any
    /// violations the run logs are charged to the owning tenant before the
    /// IDs are released back for recycling. Returns the run report plus
    /// the violations raised by *this* launch (the BCU's log is
    /// cumulative; the slice here is per-launch).
    ///
    /// # Errors
    ///
    /// As [`System::launch`], plus [`DriverError::RegionIdsExhausted`]
    /// when the tenant's slice cannot cover the launch (counted against
    /// the tenant as a rejection) and [`DriverError::UnknownTenant`] for
    /// an ID outside the table.
    pub fn launch_tenant(
        &mut self,
        tenants: &mut TenantTable,
        t: TenantId,
        kernel: Arc<Kernel>,
        grid: u32,
        block: u32,
        args: &[Arg],
    ) -> Result<(RunReport, Vec<ViolationRecord>), SystemError> {
        let scope = tenants.allocator_mut(t)?;
        let prepared =
            match self
                .driver
                .prepare_launch_scoped(kernel, grid, block, args, Some(scope))
            {
                Ok(p) => p,
                Err(e) => {
                    tenants.record_rejection(t)?;
                    if let Some(f) = self.flight.as_mut() {
                        f.note(FlightEvent::TenantReject { tenant: t.0 });
                    }
                    return Err(e.into());
                }
            };
        tenants.record_launch(t, prepared.launch.kernel_id)?;
        self.attach_shield(prepared.shield, &prepared.region_ids);
        if let Some(f) = self.flight.as_mut() {
            f.note(FlightEvent::TenantAdmit {
                tenant: t.0,
                kernel_id: prepared.launch.kernel_id,
            });
        }
        self.note_prepared(&prepared);
        self.last_bat = prepared.bat;
        let logged_before = self.bcu.as_ref().map(|b| b.violations().len());
        let guard = self.bcu.as_mut().map(|b| b as &mut dyn MemGuard);
        let report = match self.flight.as_mut() {
            Some(f) => self
                .gpu
                .run_observed(self.driver.vm_mut(), &[prepared.launch], guard, f)?,
            None => self
                .gpu
                .run(self.driver.vm_mut(), &[prepared.launch], guard)?,
        };
        let new_violations: Vec<ViolationRecord> = match (self.bcu.as_ref(), logged_before) {
            (Some(b), Some(n)) => b.violations()[n..].to_vec(),
            _ => Vec::new(),
        };
        for v in &new_violations {
            if let Some(owner) = tenants.owner_of_kernel(v.kernel_id) {
                tenants.note_violation(owner)?;
            }
        }
        tenants.stats_mut(t)?.cycles_consumed += report.cycles;
        tenants.complete_launch(t, &prepared.region_ids)?;
        if let Some(f) = self.flight.as_mut() {
            f.advance_epoch(report.cycles);
            for &id in &prepared.region_ids {
                f.note(FlightEvent::RegionFree { id });
            }
        }
        Ok((report, new_violations))
    }

    /// Launches several kernels concurrently on behalf of their tenants
    /// (§6.2 co-location under isolation domains): each kernel's region
    /// IDs come from its own tenant's slice, kernel IDs are recorded for
    /// attribution, and the co-resident kernels contend for the per-core
    /// RCaches under their distinct kernel-ID tags (see
    /// [`BcuStats::cross_kernel_evictions`]). The whole run's cycles are
    /// charged to every participating tenant (they co-occupied the GPU).
    ///
    /// # Errors
    ///
    /// As [`System::launch_tenant`]; on a mid-batch preparation failure
    /// the IDs of already-prepared kernels are returned to their
    /// allocators before the error propagates.
    pub fn launch_tenant_concurrent(
        &mut self,
        tenants: &mut TenantTable,
        kernels: Vec<(TenantId, ConcurrentKernel)>,
        mode: MultiKernelMode,
    ) -> Result<(RunReport, Vec<ViolationRecord>), SystemError> {
        let mut launches = Vec::with_capacity(kernels.len());
        let mut owners: Vec<(TenantId, Vec<u16>)> = Vec::with_capacity(kernels.len());
        for (t, k) in kernels {
            let scope = tenants.allocator_mut(t)?;
            let prepared = match self.driver.prepare_launch_scoped(
                k.kernel,
                k.grid,
                k.block,
                &k.args,
                Some(scope),
            ) {
                Ok(p) => p,
                Err(e) => {
                    tenants.record_rejection(t)?;
                    if let Some(f) = self.flight.as_mut() {
                        f.note(FlightEvent::TenantReject { tenant: t.0 });
                    }
                    for (pt, ids) in &owners {
                        tenants.allocator_mut(*pt)?.release(ids)?;
                    }
                    return Err(e.into());
                }
            };
            tenants.record_launch(t, prepared.launch.kernel_id)?;
            self.attach_shield(prepared.shield, &prepared.region_ids);
            if let Some(f) = self.flight.as_mut() {
                f.note(FlightEvent::TenantAdmit {
                    tenant: t.0,
                    kernel_id: prepared.launch.kernel_id,
                });
            }
            self.note_prepared(&prepared);
            owners.push((t, prepared.region_ids.clone()));
            launches.push(prepared.launch);
        }
        let logged_before = self.bcu.as_ref().map(|b| b.violations().len());
        let guard = self.bcu.as_mut().map(|b| b as &mut dyn MemGuard);
        // The observed engine path runs the default fine-grained sharing
        // mode; an explicit InterCore request keeps the unobserved path
        // (launch-prep and admission events are still recorded).
        let report = match self.flight.as_mut() {
            Some(f) if mode == MultiKernelMode::IntraCore => {
                self.gpu
                    .run_observed(self.driver.vm_mut(), &launches, guard, f)?
            }
            _ => self
                .gpu
                .run_multi(self.driver.vm_mut(), &launches, mode, guard)?,
        };
        let new_violations: Vec<ViolationRecord> = match (self.bcu.as_ref(), logged_before) {
            (Some(b), Some(n)) => b.violations()[n..].to_vec(),
            _ => Vec::new(),
        };
        for v in &new_violations {
            if let Some(owner) = tenants.owner_of_kernel(v.kernel_id) {
                tenants.note_violation(owner)?;
            }
        }
        for (t, ids) in &owners {
            tenants.stats_mut(*t)?.cycles_consumed += report.cycles;
            tenants.complete_launch(*t, ids)?;
        }
        if let Some(f) = self.flight.as_mut() {
            f.advance_epoch(report.cycles);
            for (_, ids) in &owners {
                for &id in ids {
                    f.note(FlightEvent::RegionFree { id });
                }
            }
        }
        Ok((report, new_violations))
    }

    /// Launches one kernel under a deterministic fault-injection plan
    /// corrupting the protection substrate mid-run (see
    /// [`FaultPlan`]). The injectable RBT-entry addresses are derived from
    /// the launch's own region IDs, so the plan attacks exactly the
    /// metadata protecting this kernel. Returns the run report plus the
    /// record of every fault that came due.
    ///
    /// # Errors
    ///
    /// As [`System::launch`] — including [`RunError::CycleBudgetExceeded`]
    /// when an injected fault hangs the kernel past the configured
    /// watchdog budget.
    pub fn launch_with_faults(
        &mut self,
        kernel: Arc<Kernel>,
        grid: u32,
        block: u32,
        args: &[Arg],
        plan: FaultPlan,
    ) -> Result<(RunReport, Vec<InjectionRecord>), SystemError> {
        let prepared = self.driver.prepare_launch(kernel, grid, block, args)?;
        let mut targets = FaultTargets::default();
        if let Some(setup) = prepared.shield {
            targets.rbt_entries = prepared
                .region_ids
                .iter()
                .map(|id| {
                    (
                        setup.rbt_base + u64::from(*id) * RBT_ENTRY_BYTES,
                        RBT_ENTRY_BYTES,
                    )
                })
                .collect();
        }
        self.attach_shield(prepared.shield, &prepared.region_ids);
        self.note_prepared(&prepared);
        self.last_bat = prepared.bat;
        let mut session = FaultSession::new(plan, targets);
        let guard = self.bcu.as_mut().map(|b| b as &mut dyn MemGuard);
        let report = self.gpu.run_faulted(
            self.driver.vm_mut(),
            &[prepared.launch],
            guard,
            &mut session,
            self.flight.as_mut(),
        )?;
        if let Some(f) = self.flight.as_mut() {
            f.advance_epoch(report.cycles);
        }
        Ok((report, session.injected().to_vec()))
    }

    /// Launches one kernel with soundness-audit recording: runs under
    /// [`Gpu::run_recorded`] and returns, alongside the run report, the
    /// driver's static [`SiteClaim`]s for this launch. The caller can then
    /// compare each claim's declared window against the matching
    /// [`ObservedRange`] in the report — any statically elided (Type 1) or
    /// size-embedded (Type 3) site whose observed addresses escape the
    /// declared window is a soundness violation of the BAT.
    ///
    /// # Errors
    ///
    /// As [`System::launch`].
    pub fn launch_audited(
        &mut self,
        kernel: Arc<Kernel>,
        grid: u32,
        block: u32,
        args: &[Arg],
    ) -> Result<(RunReport, Vec<SiteClaim>), SystemError> {
        let prepared = self.driver.prepare_launch(kernel, grid, block, args)?;
        self.attach_shield(prepared.shield, &prepared.region_ids);
        self.note_prepared(&prepared);
        self.last_bat = prepared.bat;
        let guard = self.bcu.as_mut().map(|b| b as &mut dyn MemGuard);
        let report = self
            .gpu
            .run_recorded(self.driver.vm_mut(), &[prepared.launch], guard)?;
        if let Some(f) = self.flight.as_mut() {
            f.advance_epoch(report.cycles);
        }
        Ok((report, prepared.site_claims))
    }

    /// Launches one kernel with execution tracing (see [`Trace`]).
    ///
    /// # Errors
    ///
    /// As [`System::launch`].
    pub fn launch_traced(
        &mut self,
        kernel: Arc<Kernel>,
        grid: u32,
        block: u32,
        args: &[Arg],
        trace: &mut Trace,
    ) -> Result<RunReport, SystemError> {
        let prepared = self.driver.prepare_launch(kernel, grid, block, args)?;
        self.attach_shield(prepared.shield, &prepared.region_ids);
        self.note_prepared(&prepared);
        self.last_bat = prepared.bat;
        let guard = self.bcu.as_mut().map(|b| b as &mut dyn MemGuard);
        let report = self
            .gpu
            .run_traced(self.driver.vm_mut(), &[prepared.launch], guard, trace)?;
        if let Some(f) = self.flight.as_mut() {
            f.advance_epoch(report.cycles);
        }
        Ok(report)
    }

    /// Launches one kernel with full telemetry: scheduler occupancy series,
    /// stall-attribution counters, cache/TLB/DRAM statistics and driver
    /// metadata-cost gauges are published into `registry`, and the
    /// execution is optionally recorded into `trace` for Chrome export.
    /// With a [`Registry::disabled`] registry the run behaves exactly like
    /// [`System::launch`] apart from one branch per scheduler slot.
    ///
    /// # Errors
    ///
    /// As [`System::launch`].
    pub fn launch_instrumented(
        &mut self,
        kernel: Arc<Kernel>,
        grid: u32,
        block: u32,
        args: &[Arg],
        registry: &mut Registry,
        trace: Option<&mut Trace>,
    ) -> Result<RunReport, SystemError> {
        let prepared = self.driver.prepare_launch(kernel, grid, block, args)?;
        self.attach_shield(prepared.shield, &prepared.region_ids);
        self.note_prepared(&prepared);
        self.last_bat = prepared.bat;
        let guard = self.bcu.as_mut().map(|b| b as &mut dyn MemGuard);
        let report = self.gpu.run_instrumented(
            self.driver.vm_mut(),
            &[prepared.launch],
            guard,
            registry,
            trace,
        )?;
        self.driver.publish_telemetry(registry);
        if let Some(f) = self.flight.as_mut() {
            f.advance_epoch(report.cycles);
            f.publish(registry);
        }
        Ok(report)
    }

    /// Launches several kernels concurrently (§6.2) under `mode`.
    ///
    /// # Errors
    ///
    /// As [`System::launch`].
    pub fn launch_concurrent(
        &mut self,
        kernels: Vec<ConcurrentKernel>,
        mode: MultiKernelMode,
    ) -> Result<RunReport, SystemError> {
        let mut launches = Vec::with_capacity(kernels.len());
        for k in kernels {
            let prepared = self
                .driver
                .prepare_launch(k.kernel, k.grid, k.block, &k.args)?;
            self.attach_shield(prepared.shield, &prepared.region_ids);
            self.note_prepared(&prepared);
            launches.push(prepared.launch);
        }
        let guard = self.bcu.as_mut().map(|b| b as &mut dyn MemGuard);
        let report = match self.flight.as_mut() {
            Some(f) if mode == MultiKernelMode::IntraCore => {
                self.gpu
                    .run_observed(self.driver.vm_mut(), &launches, guard, f)?
            }
            _ => self
                .gpu
                .run_multi(self.driver.vm_mut(), &launches, mode, guard)?,
        };
        if let Some(f) = self.flight.as_mut() {
            f.advance_epoch(report.cycles);
        }
        Ok(report)
    }

    /// Launches one kernel under an external guard (used by the
    /// software-baseline cost models instead of the BCU).
    ///
    /// # Errors
    ///
    /// As [`System::launch`].
    pub fn launch_with_guard(
        &mut self,
        kernel: Arc<Kernel>,
        grid: u32,
        block: u32,
        args: &[Arg],
        guard: &mut dyn MemGuard,
    ) -> Result<RunReport, SystemError> {
        let prepared = self.driver.prepare_launch(kernel, grid, block, args)?;
        self.note_prepared(&prepared);
        self.last_bat = prepared.bat;
        let report = match self.flight.as_mut() {
            Some(f) => {
                self.gpu
                    .run_observed(self.driver.vm_mut(), &[prepared.launch], Some(guard), f)?
            }
            None => self
                .gpu
                .run(self.driver.vm_mut(), &[prepared.launch], Some(guard))?,
        };
        if let Some(f) = self.flight.as_mut() {
            f.advance_epoch(report.cycles);
        }
        Ok(report)
    }

    /// BCU statistics (zeroed when the shield is off).
    pub fn bcu_stats(&self) -> BcuStats {
        self.bcu.as_ref().map(|b| b.stats()).unwrap_or_default()
    }

    /// Clears BCU statistics and the violation log.
    pub fn reset_bcu_stats(&mut self) {
        if let Some(b) = self.bcu.as_mut() {
            b.reset_stats();
        }
    }

    /// Logged violations (empty when the shield is off).
    pub fn violations(&self) -> &[ViolationRecord] {
        self.bcu.as_ref().map(|b| b.violations()).unwrap_or(&[])
    }

    /// The end-of-kernel error report of §5.5.2: what the driver prints
    /// (or streams to the host through a shared SVM buffer) after a launch.
    pub fn error_report(&self) -> String {
        let vs = self.violations();
        if vs.is_empty() {
            return "no memory-safety violations detected".to_string();
        }
        let mut out = format!(
            "{} memory-safety violation(s) detected:
",
            vs.len()
        );
        for v in vs {
            out.push_str(&format!(
                "  kernel {} at {}:{} — {} ({}) addresses 0x{:x}..0x{:x}
",
                v.kernel_id,
                v.site.0,
                v.site.1,
                v.kind,
                if v.is_store { "store" } else { "load" },
                v.range.0,
                v.range.1
            ));
        }
        out
    }

    /// Flushes the BCU's RCaches as a context switch would (§6.2).
    pub fn context_switch(&mut self) {
        if let Some(b) = self.bcu.as_mut() {
            b.on_context_switch();
        }
    }

    /// The Bounds-Analysis Table of the most recent launch.
    pub fn last_bat(&self) -> Option<&BoundsAnalysis> {
        self.last_bat.as_ref()
    }

    /// Immutable driver access.
    pub fn driver(&self) -> &Driver {
        &self.driver
    }

    /// Device-heap window `(va, size)`, if a heap limit was set.
    pub fn heap_window(&self) -> Option<(u64, u64)> {
        self.driver.heap_window()
    }

    /// Mutable driver access (host-side memory manipulation).
    pub fn driver_mut(&mut self) -> &mut Driver {
        &mut self.driver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};

    fn iota() -> Arc<Kernel> {
        let mut b = KernelBuilder::new("iota");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn protected_run_produces_same_result_as_baseline() {
        for cfg in [
            SystemConfig::nvidia_baseline(),
            SystemConfig::nvidia_protected(),
        ] {
            let mut sys = System::new(cfg);
            let buf = sys.alloc(256 * 4).unwrap();
            let r = sys.launch(iota(), 8, 32, &[Arg::Buffer(buf)]).unwrap();
            assert!(r.completed());
            for i in 0..256 {
                assert_eq!(sys.read_uint(buf, i * 4, 4), i);
            }
        }
    }

    #[test]
    fn static_analysis_elides_all_checks_for_safe_kernel() {
        let mut sys = System::new(SystemConfig::nvidia_protected());
        let buf = sys.alloc(256 * 4).unwrap();
        let r = sys.launch(iota(), 8, 32, &[Arg::Buffer(buf)]).unwrap();
        assert!(r.completed());
        // Everything proven statically: no runtime checks at all.
        assert_eq!(sys.bcu_stats().checks, 0);
        assert_eq!(r.launches[0].checks_performed, 0);
    }

    #[test]
    fn oob_kernel_is_aborted_by_shield_but_not_baseline() {
        // 8×32 threads into a 128-element buffer: threads ≥ 128 overflow —
        // silently, on an unprotected GPU, because the next buffer is
        // adjacent in the same 2MB region.
        let mut base = System::new(SystemConfig::nvidia_baseline());
        let a = base.alloc(128 * 4).unwrap();
        let victim = base.alloc(512).unwrap();
        let r = base.launch(iota(), 8, 32, &[Arg::Buffer(a)]).unwrap();
        assert!(r.completed(), "unprotected GPU lets the overflow through");
        assert_ne!(base.read_uint(victim, 0, 4), 0, "victim corrupted");

        let mut shielded = System::new(SystemConfig::nvidia_protected());
        let a = shielded.alloc(128 * 4).unwrap();
        let victim = shielded.alloc(512).unwrap();
        let r = shielded.launch(iota(), 8, 32, &[Arg::Buffer(a)]).unwrap();
        assert!(!r.completed());
        assert_eq!(shielded.read_uint(victim, 0, 4), 0, "victim intact");
        assert_eq!(shielded.violations()[0].kind, ViolationKind::OutOfBounds);
    }

    #[test]
    fn audited_launch_observes_addresses_within_static_claims() {
        let mut sys = System::new(SystemConfig::nvidia_protected());
        let buf = sys.alloc(256 * 4).unwrap();
        let (r, claims) = sys
            .launch_audited(iota(), 8, 32, &[Arg::Buffer(buf)])
            .unwrap();
        assert!(r.completed());
        // iota's store is fully proven static, so a claim exists for it
        // and every observed address falls inside the claimed window.
        assert!(!claims.is_empty());
        let obs = &r.launches[0].observed_ranges;
        assert!(!obs.is_empty());
        for o in obs {
            let claim = claims.iter().find(|c| c.site == o.site).unwrap();
            assert!(claim.lo <= o.lo && o.hi <= claim.hi);
        }
    }

    #[test]
    fn audited_launch_sees_oob_attempt_outside_runtime_claims() {
        // The shield aborts the overflowing launch, but the recorder must
        // still have captured the attempted out-of-bounds extreme.
        let mut sys = System::new(SystemConfig::nvidia_protected());
        let a = sys.alloc(128 * 4).unwrap();
        let (r, _claims) = sys
            .launch_audited(iota(), 8, 32, &[Arg::Buffer(a)])
            .unwrap();
        assert!(!r.completed());
        let obs = &r.launches[0].observed_ranges;
        assert!(!obs.is_empty());
        let max_hi = obs.iter().map(|o| o.hi).max().unwrap();
        let min_lo = obs.iter().map(|o| o.lo).min().unwrap();
        assert!(max_hi - min_lo > 128 * 4, "overflow attempt was recorded");
    }

    #[test]
    fn observed_oob_launch_yields_a_post_mortem() {
        let mut sys = System::new(SystemConfig::nvidia_protected());
        sys.enable_observation(ObserveMode::Full);
        let a = sys.alloc(128 * 4).unwrap();
        let r = sys.launch(iota(), 8, 32, &[Arg::Buffer(a)]).unwrap();
        assert!(!r.completed());
        let pm = sys
            .post_mortem()
            .expect("violation is resident in the ring");
        assert_eq!(pm.trigger, "kernel_abort");
        assert_eq!(pm.abort_reason, Some(0), "bounds violation");
        let v = pm.violation.expect("the violating access is resident");
        assert!(v.is_store);
        // iota has exactly one memory instruction, so the oracle
        // coordinate is ordinal 0.
        assert_eq!(pm.guilty_mem_ordinal(&iota()), Some(0));
        assert!(pm.victim.is_some(), "overflowed region identified");
        let launch = pm.launch.expect("launch prep was recorded");
        assert_eq!(launch.regions, 1);
    }

    #[test]
    fn counters_mode_counts_but_stores_nothing() {
        let mut sys = System::new(SystemConfig::nvidia_protected());
        sys.enable_observation(ObserveMode::Counters);
        let a = sys.alloc(128 * 4).unwrap();
        let r = sys.launch(iota(), 8, 32, &[Arg::Buffer(a)]).unwrap();
        assert!(!r.completed());
        let f = sys.flight().unwrap();
        assert!(f.events_recorded() > 0);
        assert!(f.is_empty());
        assert!(sys.post_mortem().is_none(), "nothing resident to walk");
    }

    #[test]
    fn post_mortem_is_byte_identical_across_sim_threads() {
        let run = |threads: usize| {
            let mut cfg = SystemConfig::nvidia_protected();
            cfg.gpu.sim_threads = threads;
            let mut sys = System::new(cfg);
            sys.enable_observation(ObserveMode::Full);
            let a = sys.alloc(128 * 4).unwrap();
            let r = sys.launch(iota(), 8, 32, &[Arg::Buffer(a)]).unwrap();
            assert!(!r.completed());
            sys.post_mortem().expect("violation resident").render_json()
        };
        let st1 = run(1);
        assert_eq!(st1, run(4));
        assert_eq!(st1, run(7));
    }

    #[test]
    fn observation_does_not_change_simulated_timing() {
        let cycles = |mode: ObserveMode| {
            let mut sys = System::new(SystemConfig::nvidia_protected());
            sys.enable_observation(mode);
            let buf = sys.alloc(256 * 4).unwrap();
            let r = sys.launch(iota(), 8, 32, &[Arg::Buffer(buf)]).unwrap();
            assert!(r.completed());
            r.cycles
        };
        let base = cycles(ObserveMode::Disabled);
        assert_eq!(base, cycles(ObserveMode::Counters));
        assert_eq!(base, cycles(ObserveMode::Full));
    }

    #[test]
    fn concurrent_kernels_both_complete() {
        let mut sys = System::new(SystemConfig::intel_protected());
        let b1 = sys.alloc(256 * 4).unwrap();
        let b2 = sys.alloc(256 * 4).unwrap();
        let report = sys
            .launch_concurrent(
                vec![
                    ConcurrentKernel {
                        kernel: iota(),
                        grid: 8,
                        block: 32,
                        args: vec![Arg::Buffer(b1)],
                    },
                    ConcurrentKernel {
                        kernel: iota(),
                        grid: 8,
                        block: 32,
                        args: vec![Arg::Buffer(b2)],
                    },
                ],
                MultiKernelMode::IntraCore,
            )
            .unwrap();
        assert!(report.completed());
        assert_eq!(report.launches.len(), 2);
        assert_eq!(sys.read_uint(b1, 255 * 4, 4), 255);
        assert_eq!(sys.read_uint(b2, 255 * 4, 4), 255);
    }
}
