//! Violation forensics: post-mortem reconstruction from the flight
//! recorder's ring.
//!
//! When a run ends in a bounds violation, an abort, or a watchdog trip,
//! the causal chain that led there is already resident in the
//! [`FlightRecorder`]: the guilty warp's recent check verdicts, the
//! victim region's metadata lifecycle, the launch's BAT snapshot, the
//! owning tenant's admission. [`PostMortem::from_recorder`] walks the
//! ring backwards, anchors on the newest anomaly, and reassembles those
//! threads into one causally-ordered report — renderable as prose
//! ([`PostMortem::render_text`]) or machine-readable JSON
//! ([`PostMortem::render_json`]).
//!
//! The walk is pure: it reads the ring, allocates only for the report,
//! and is deterministic given the ring contents — which the recorder
//! guarantees are byte-identical at any `--sim-threads` setting.

use gpushield_isa::Kernel;
use gpushield_sim::{AbortReason, CheckPath, FaultKind, GuardVerdict};
use gpushield_telemetry::flight::{FlightEvent, FlightRecorder};

/// One memory instruction of the guilty warp, as the BCU saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemInstrRecord {
    /// Global timestamp (recorder epoch + in-run cycle).
    pub t: u64,
    /// Instruction site (basic block, index within block).
    pub site: (u32, u32),
    /// True for stores.
    pub is_store: bool,
    /// Accessed byte range `[lo, hi)`.
    pub range: (u64, u64),
    /// `CheckPath` code (see [`CheckPath::from_code`]).
    pub path: u8,
    /// `GuardVerdict` code (see [`GuardVerdict::from_code`]).
    pub verdict: u8,
}

impl MemInstrRecord {
    /// The check-path label for this record (`"unknown"` for a
    /// non-decodable code).
    pub fn path_label(&self) -> &'static str {
        CheckPath::from_code(self.path).map_or("unknown", |p| p.label())
    }

    /// The verdict label for this record.
    pub fn verdict_label(&self) -> &'static str {
        match GuardVerdict::from_code(self.verdict) {
            Some(GuardVerdict::Allow) => "allow",
            Some(GuardVerdict::Fault) => "fault",
            Some(GuardVerdict::Squash) => "squash",
            None => "unknown",
        }
    }
}

/// One step in a region's metadata lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionEvent {
    /// Global timestamp.
    pub t: u64,
    /// Event kind name (`region_alloc`, `region_free`, `region_recycle`).
    pub what: &'static str,
    /// Region window at allocation (zero for free/recycle markers).
    pub window: (u64, u64),
}

/// The region a violating access landed in, with its resident lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VictimRegion {
    /// Region ID.
    pub id: u16,
    /// Region base address.
    pub base: u64,
    /// Region size in bytes.
    pub size: u64,
    /// Every resident event touching this ID, oldest first.
    pub lifecycle: Vec<RegionEvent>,
}

/// What the driver knew about the guilty launch when it was prepared.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LaunchSnapshot {
    /// Protected regions installed for the launch.
    pub regions: u16,
    /// Sites the BAT proved statically.
    pub sites_static: u16,
    /// Sites left to runtime checking.
    pub sites_runtime: u16,
    /// Certificate-elided sites recorded during this launch's prep.
    pub elided_sites: Vec<(u32, u32)>,
}

/// A causally-ordered post-mortem assembled from the flight ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostMortem {
    /// Kind name of the anchoring anomaly (`kernel_abort`,
    /// `check_verdict`, `watchdog_trip`).
    pub trigger: &'static str,
    /// Global timestamp of the anchor.
    pub trigger_t: u64,
    /// Guilty kernel ID.
    pub kernel_id: u16,
    /// Guilty workgroup.
    pub wg: u32,
    /// Guilty warp within the workgroup.
    pub warp: u16,
    /// Abort reason code, when the anchor is an abort.
    pub abort_reason: Option<u8>,
    /// The violating access itself (newest non-allow verdict of the
    /// guilty warp), when resident.
    pub violation: Option<MemInstrRecord>,
    /// The guilty warp's recent memory instructions, oldest first
    /// (bounded window; the violating access is the last entry when
    /// resident).
    pub recent_mem: Vec<MemInstrRecord>,
    /// The region the violating range landed in, when identifiable.
    pub victim: Option<VictimRegion>,
    /// Owning tenant, when the launch was admitted through the serving
    /// path.
    pub tenant: Option<u16>,
    /// Launch-preparation snapshot for the guilty kernel.
    pub launch: Option<LaunchSnapshot>,
    /// Metadata faults injected before the anomaly, oldest first
    /// (`FaultKind` codes).
    pub faults_injected: Vec<(u64, u8)>,
    /// Watchdog trip `(t, budget)`, when one is resident.
    pub watchdog: Option<(u64, u64)>,
}

/// How many of the guilty warp's memory instructions the post-mortem
/// retains.
pub const RECENT_MEM_WINDOW: usize = 8;

impl PostMortem {
    /// Walks the ring backwards from the newest anomaly and reassembles
    /// the causal chain. Returns `None` when no anomaly (non-allow
    /// verdict, abort, or watchdog trip) is resident.
    pub fn from_recorder(fr: &FlightRecorder) -> Option<PostMortem> {
        // Newest terminal event (abort / watchdog trip) and newest
        // violating verdict. Cores still in flight inside the aborting
        // quantum log further (deterministic) verdicts for the doomed
        // launch, so a same-kernel verdict never outranks its abort.
        let mut term = None;
        let mut viol = None;
        for rec in fr.iter_rev() {
            match rec.ev {
                FlightEvent::KernelAbort { .. } | FlightEvent::WatchdogTrip { .. }
                    if term.is_none() =>
                {
                    term = Some(*rec)
                }
                FlightEvent::CheckVerdict { verdict, .. } if verdict != 0 && viol.is_none() => {
                    viol = Some(*rec)
                }
                _ => {}
            }
            if term.is_some() && viol.is_some() {
                break;
            }
        }
        let anchor = match (term, viol) {
            (Some(t), Some(v)) => {
                let same_kernel = match (t.ev, v.ev) {
                    (
                        FlightEvent::KernelAbort { kernel_id: ka, .. },
                        FlightEvent::CheckVerdict { kernel_id: kv, .. },
                    ) => ka == kv,
                    _ => false,
                };
                if same_kernel || t.seq > v.seq {
                    t
                } else {
                    v
                }
            }
            (Some(t), None) => t,
            (None, Some(v)) => v,
            (None, None) => return None,
        };

        // Resolve the guilty identity from the anchor.
        let (kernel_id, wg, warp, abort_reason) = match anchor.ev {
            FlightEvent::KernelAbort {
                kernel_id,
                wg,
                warp,
                reason,
            } => (kernel_id, wg, warp, Some(reason)),
            FlightEvent::CheckVerdict {
                kernel_id,
                wg,
                warp,
                ..
            } => (kernel_id, wg, warp, None),
            FlightEvent::WatchdogTrip { .. } => {
                // No warp identity on a hang: adopt the newest checked
                // access, else the newest launch.
                let mut id = None;
                for rec in fr.iter_rev() {
                    match rec.ev {
                        FlightEvent::CheckVerdict {
                            kernel_id,
                            wg,
                            warp,
                            ..
                        } => {
                            id = Some((kernel_id, wg, warp));
                            break;
                        }
                        FlightEvent::KernelLaunch { kernel_id, .. } if id.is_none() => {
                            id = Some((kernel_id, 0, 0));
                            break;
                        }
                        _ => {}
                    }
                }
                let (k, w, wa) = id.unwrap_or((0, 0, 0));
                (k, w, wa, None)
            }
            _ => return None,
        };

        // The guilty warp's recent memory instructions, and the
        // violating access among them.
        let mut recent_rev: Vec<MemInstrRecord> = Vec::new();
        let mut violation = None;
        for rec in fr.iter_rev() {
            if let FlightEvent::CheckVerdict {
                kernel_id: k,
                wg: w,
                warp: wa,
                block,
                idx,
                path,
                verdict,
                is_store,
                lo,
                hi,
            } = rec.ev
            {
                if (k, w, wa) != (kernel_id, wg, warp) {
                    continue;
                }
                let mi = MemInstrRecord {
                    t: rec.t,
                    site: (block, idx),
                    is_store,
                    range: (lo, hi),
                    path,
                    verdict,
                };
                if verdict != 0 && violation.is_none() {
                    violation = Some(mi);
                }
                if recent_rev.len() < RECENT_MEM_WINDOW {
                    recent_rev.push(mi);
                }
            }
        }
        recent_rev.reverse();

        // Victim region: newest resident window containing the far end
        // of the violating range (an overflow crosses *into* the
        // victim); fall back to the window containing the low end.
        let victim = violation.and_then(|v| {
            let find = |addr: u64| {
                fr.iter_rev().find_map(|rec| match rec.ev {
                    FlightEvent::RegionAlloc { id, base, size }
                        if size > 0 && base <= addr && addr < base + size =>
                    {
                        Some((id, base, size))
                    }
                    _ => None,
                })
            };
            // When the range lands in no region at all (overflow into
            // unregioned memory), attribute the nearest region — the one
            // whose bounds the access escaped.
            let nearest = || {
                let (lo, hi) = v.range;
                let mut best: Option<(u64, (u16, u64, u64))> = None;
                for rec in fr.iter_rev() {
                    if let FlightEvent::RegionAlloc { id, base, size } = rec.ev {
                        if size == 0 {
                            continue;
                        }
                        let dist = base.saturating_sub(hi).max(lo.saturating_sub(base + size));
                        if best.is_none_or(|(d, _)| dist < d) {
                            best = Some((dist, (id, base, size)));
                        }
                    }
                }
                best.map(|(_, r)| r)
            };
            let (lo, hi) = v.range;
            find(hi.saturating_sub(1))
                .or_else(|| find(lo))
                .or_else(nearest)
                .map(|(id, base, size)| VictimRegion {
                    id,
                    base,
                    size,
                    lifecycle: fr
                        .iter()
                        .filter_map(|rec| {
                            let (what, window) = match rec.ev {
                                FlightEvent::RegionAlloc { id: i, base, size } if i == id => {
                                    ("region_alloc", (base, base + size))
                                }
                                FlightEvent::RegionFree { id: i } if i == id => {
                                    ("region_free", (0, 0))
                                }
                                FlightEvent::RegionRecycle { id: i } if i == id => {
                                    ("region_recycle", (0, 0))
                                }
                                _ => return None,
                            };
                            Some(RegionEvent {
                                t: rec.t,
                                what,
                                window,
                            })
                        })
                        .collect(),
                })
        });

        // Tenant attribution: the admission that carried this kernel.
        let tenant = fr.iter_rev().find_map(|rec| match rec.ev {
            FlightEvent::TenantAdmit {
                tenant,
                kernel_id: k,
            } if k == kernel_id => Some(tenant),
            _ => None,
        });

        // Launch snapshot: the newest prep window for the guilty kernel.
        // Prep events are contiguous (KernelLaunch, regions, BatInstall,
        // elisions), so collect between the matching launch event and
        // the next launch.
        let mut launch: Option<LaunchSnapshot> = None;
        let mut open: Option<LaunchSnapshot> = None;
        for rec in fr.iter() {
            match rec.ev {
                FlightEvent::KernelLaunch {
                    kernel_id: k,
                    regions,
                } => {
                    if let Some(s) = open.take() {
                        launch = Some(s);
                    }
                    if k == kernel_id {
                        open = Some(LaunchSnapshot {
                            regions,
                            ..LaunchSnapshot::default()
                        });
                    }
                }
                FlightEvent::BatInstall {
                    kernel_id: k,
                    sites_static,
                    sites_runtime,
                } if k == kernel_id => {
                    if let Some(s) = open.as_mut() {
                        s.sites_static = sites_static;
                        s.sites_runtime = sites_runtime;
                    }
                }
                FlightEvent::CheckElide { block, idx } => {
                    if let Some(s) = open.as_mut() {
                        s.elided_sites.push((block, idx));
                    }
                }
                _ => {}
            }
        }
        if let Some(s) = open {
            launch = Some(s);
        }

        let faults_injected = fr
            .iter()
            .filter_map(|rec| match rec.ev {
                FlightEvent::FaultInjected { kind } => Some((rec.t, kind)),
                _ => None,
            })
            .collect();
        let watchdog = fr.iter_rev().find_map(|rec| match rec.ev {
            FlightEvent::WatchdogTrip { budget } => Some((rec.t, budget)),
            _ => None,
        });

        Some(PostMortem {
            trigger: anchor.ev.kind_name(),
            trigger_t: anchor.t,
            kernel_id,
            wg,
            warp,
            abort_reason,
            violation,
            recent_mem: recent_rev,
            victim,
            tenant,
            launch,
            faults_injected,
            watchdog,
        })
    }

    /// Ordinal of the violating instruction among `kernel`'s static
    /// memory instructions (program order) — the coordinate the fuzzer
    /// oracle plants violations by. `None` when no violating access is
    /// resident or the site is not a memory instruction of `kernel`.
    pub fn guilty_mem_ordinal(&self, kernel: &Kernel) -> Option<usize> {
        let (block, idx) = self.violation?.site;
        kernel
            .iter_instrs()
            .filter(|(_, _, i)| i.is_mem())
            .position(|(b, j, _)| b.0 == block && j == idx as usize)
    }

    /// Human-readable rendering, causally ordered (context first, the
    /// anomaly last).
    pub fn render_text(&self) -> String {
        let mut out = String::from("=== GPUShield post-mortem ===\n");
        out.push_str(&format!(
            "guilty: kernel {} wg {} warp {}",
            self.kernel_id, self.wg, self.warp
        ));
        match self.tenant {
            Some(t) => out.push_str(&format!(" (tenant {t})\n")),
            None => out.push('\n'),
        }
        if let Some(l) = &self.launch {
            out.push_str(&format!(
                "launch: {} region(s), BAT {} static / {} runtime, {} elided site(s)\n",
                l.regions,
                l.sites_static,
                l.sites_runtime,
                l.elided_sites.len()
            ));
        }
        if let Some(v) = &self.victim {
            out.push_str(&format!(
                "victim region: id {} window 0x{:x}..0x{:x}\n",
                v.id,
                v.base,
                v.base + v.size
            ));
            for e in &v.lifecycle {
                out.push_str(&format!("  t={} {}\n", e.t, e.what));
            }
        }
        for (t, kind) in &self.faults_injected {
            let name = FaultKind::from_code(*kind).map_or("unknown", |k| k.name());
            out.push_str(&format!("fault injected: t={t} {name}\n"));
        }
        out.push_str("recent memory instructions (oldest first):\n");
        for m in &self.recent_mem {
            out.push_str(&format!(
                "  t={} ({},{}) {} 0x{:x}..0x{:x} path={} verdict={}\n",
                m.t,
                m.site.0,
                m.site.1,
                if m.is_store { "st" } else { "ld" },
                m.range.0,
                m.range.1,
                m.path_label(),
                m.verdict_label()
            ));
        }
        if let Some((t, budget)) = self.watchdog {
            out.push_str(&format!("watchdog: tripped at t={t} budget={budget}\n"));
        }
        out.push_str(&format!(
            "trigger: {} at t={}",
            self.trigger, self.trigger_t
        ));
        match self.abort_reason {
            Some(r) => out.push_str(&format!(" ({})\n", AbortReason::code_name(r))),
            None => out.push('\n'),
        }
        out
    }

    /// Machine-readable JSON rendering (stable key order, no external
    /// dependencies).
    pub fn render_json(&self) -> String {
        let mem = |m: &MemInstrRecord| {
            format!(
                "{{\"t\":{},\"block\":{},\"idx\":{},\"is_store\":{},\"lo\":{},\"hi\":{},\"path\":\"{}\",\"verdict\":\"{}\"}}",
                m.t, m.site.0, m.site.1, m.is_store, m.range.0, m.range.1,
                m.path_label(), m.verdict_label()
            )
        };
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"trigger\":\"{}\",\"trigger_t\":{},\"kernel_id\":{},\"wg\":{},\"warp\":{}",
            self.trigger, self.trigger_t, self.kernel_id, self.wg, self.warp
        ));
        out.push_str(&format!(
            ",\"abort_reason\":{}",
            self.abort_reason.map_or("null".to_string(), |r| format!(
                "\"{}\"",
                AbortReason::code_name(r)
            ))
        ));
        out.push_str(&format!(
            ",\"violation\":{}",
            self.violation.as_ref().map_or("null".to_string(), mem)
        ));
        out.push_str(",\"recent_mem\":[");
        for (i, m) in self.recent_mem.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&mem(m));
        }
        out.push(']');
        match &self.victim {
            Some(v) => {
                out.push_str(&format!(
                    ",\"victim\":{{\"id\":{},\"base\":{},\"size\":{},\"lifecycle\":[",
                    v.id, v.base, v.size
                ));
                for (i, e) in v.lifecycle.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{{\"t\":{},\"what\":\"{}\"}}", e.t, e.what));
                }
                out.push_str("]}");
            }
            None => out.push_str(",\"victim\":null"),
        }
        out.push_str(&format!(
            ",\"tenant\":{}",
            self.tenant.map_or("null".to_string(), |t| t.to_string())
        ));
        match &self.launch {
            Some(l) => {
                out.push_str(&format!(
                    ",\"launch\":{{\"regions\":{},\"sites_static\":{},\"sites_runtime\":{},\"elided_sites\":[",
                    l.regions, l.sites_static, l.sites_runtime
                ));
                for (i, (b, idx)) in l.elided_sites.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{b},{idx}]"));
                }
                out.push_str("]}");
            }
            None => out.push_str(",\"launch\":null"),
        }
        out.push_str(",\"faults_injected\":[");
        for (i, (t, kind)) in self.faults_injected.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = FaultKind::from_code(*kind).map_or("unknown", |k| k.name());
            out.push_str(&format!("{{\"t\":{t},\"kind\":\"{name}\"}}"));
        }
        out.push(']');
        out.push_str(&format!(
            ",\"watchdog\":{}",
            self.watchdog.map_or("null".to_string(), |(t, b)| format!(
                "{{\"t\":{t},\"budget\":{b}}}"
            ))
        ));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdictev(
        kernel_id: u16,
        wg: u32,
        warp: u16,
        site: (u32, u32),
        verdict: u8,
        range: (u64, u64),
    ) -> FlightEvent {
        FlightEvent::CheckVerdict {
            kernel_id,
            wg,
            warp,
            block: site.0,
            idx: site.1,
            path: 3,
            verdict,
            is_store: true,
            lo: range.0,
            hi: range.1,
        }
    }

    fn seeded_ring() -> FlightRecorder {
        let mut fr = FlightRecorder::new(64);
        fr.note(FlightEvent::TenantAdmit {
            tenant: 5,
            kernel_id: 9,
        });
        fr.note(FlightEvent::KernelLaunch {
            kernel_id: 9,
            regions: 2,
        });
        fr.note(FlightEvent::RegionAlloc {
            id: 11,
            base: 0x1000,
            size: 0x100,
        });
        fr.note(FlightEvent::RegionAlloc {
            id: 12,
            base: 0x2000,
            size: 0x200,
        });
        fr.note(FlightEvent::BatInstall {
            kernel_id: 9,
            sites_static: 3,
            sites_runtime: 2,
        });
        fr.note(FlightEvent::CheckElide { block: 1, idx: 0 });
        fr.record(10, verdictev(9, 4, 1, (2, 0), 0, (0x1000, 0x1040)));
        fr.record(20, verdictev(9, 4, 1, (2, 1), 1, (0x10f0, 0x2010)));
        fr.record(
            20,
            FlightEvent::KernelAbort {
                kernel_id: 9,
                wg: 4,
                warp: 1,
                reason: 0,
            },
        );
        fr
    }

    #[test]
    fn post_mortem_reconstructs_the_causal_chain() {
        let fr = seeded_ring();
        let pm = PostMortem::from_recorder(&fr).expect("anomaly resident");
        assert_eq!(pm.trigger, "kernel_abort");
        assert_eq!((pm.kernel_id, pm.wg, pm.warp), (9, 4, 1));
        assert_eq!(pm.abort_reason, Some(0));
        let v = pm.violation.expect("violating access resident");
        assert_eq!(v.site, (2, 1));
        assert_eq!(v.range, (0x10f0, 0x2010));
        // Overflow crossed into region 12 (contains hi-1 = 0x200f).
        let victim = pm.victim.expect("victim identified");
        assert_eq!(victim.id, 12);
        assert_eq!(pm.tenant, Some(5));
        let l = pm.launch.expect("launch snapshot resident");
        assert_eq!(l.regions, 2);
        assert_eq!((l.sites_static, l.sites_runtime), (3, 2));
        assert_eq!(l.elided_sites, vec![(1, 0)]);
        // Recent window is chronological and ends at the violation.
        assert_eq!(pm.recent_mem.len(), 2);
        assert_eq!(pm.recent_mem[1].site, (2, 1));
        assert!(pm.recent_mem[0].t < pm.recent_mem[1].t);
    }

    #[test]
    fn quiet_ring_yields_no_post_mortem() {
        let mut fr = FlightRecorder::new(8);
        fr.note(FlightEvent::KernelLaunch {
            kernel_id: 1,
            regions: 0,
        });
        fr.record(5, verdictev(1, 0, 0, (0, 0), 0, (0, 16)));
        fr.record(9, FlightEvent::KernelComplete { kernel_id: 1 });
        assert!(PostMortem::from_recorder(&fr).is_none());
    }

    #[test]
    fn watchdog_trip_adopts_the_newest_checked_identity() {
        let mut fr = FlightRecorder::new(16);
        fr.record(10, verdictev(3, 7, 2, (1, 1), 0, (0x100, 0x140)));
        fr.record(99, FlightEvent::WatchdogTrip { budget: 99 });
        let pm = PostMortem::from_recorder(&fr).expect("trip is an anomaly");
        assert_eq!(pm.trigger, "watchdog_trip");
        assert_eq!((pm.kernel_id, pm.wg, pm.warp), (3, 7, 2));
        assert_eq!(pm.watchdog, Some((99, 99)));
        assert!(pm.violation.is_none());
    }

    #[test]
    fn renderings_are_deterministic_and_cover_the_chain() {
        let fr = seeded_ring();
        let pm = PostMortem::from_recorder(&fr).expect("anomaly resident");
        let text = pm.render_text();
        assert!(text.contains("guilty: kernel 9 wg 4 warp 1 (tenant 5)"));
        assert!(text.contains("victim region: id 12"));
        assert!(text.contains("trigger: kernel_abort at t=20 (bounds-violation)"));
        let json = pm.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"tenant\":5"));
        assert!(json.contains("\"victim\":{\"id\":12"));
        assert_eq!(json, pm.render_json(), "rendering is a pure function");
    }
}
