//! Deterministic multi-tenant serving loop.
//!
//! Models the ROADMAP's production-scale setting: N mutually-untrusting
//! tenants, each with a queue of kernel-launch requests, admitted one at a
//! time by a weighted-fair scheduler onto a single shielded GPU. Every
//! tenant owns a disjoint slice of the region-ID space (so IDs recycle
//! under churn without ever crossing an isolation boundary), every launch's
//! kernel ID is recorded for violation attribution, and each tenant has a
//! host-visible *secret* buffer no benign job ever touches — the corruption
//! detector that separates a Detected probe from a silently successful one.
//!
//! The loop is fully sequential and seeded, so a serving run's entire
//! classification record is byte-identical regardless of how the caller
//! fans scenarios out across worker threads.

use gpushield::{
    Arg, BcuConfig, BcuStats, BufferHandle, DriverConfig, DriverError, GpuConfig, Registry, System,
    SystemConfig, SystemError, TenantId, TenantStats, TenantTable,
};
use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth, Operand, TaggedPtr};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Words in each tenant's work buffer (the benign workload's output).
pub const WORK_WORDS: u64 = 32;
/// Words in each tenant's secret buffer (the corruption detector).
pub const SECRET_WORDS: u64 = 8;

/// One queued launch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// `work[tid] = tid` into the tenant's own buffer; output verified.
    Benign,
    /// A two-parameter copy needing two region IDs — a capacity-1 slice
    /// rejects it with `RegionIdsExhausted`.
    BenignWide,
    /// Dereference a raw (untagged) victim VA loaded from the attacker's
    /// own buffer.
    AttackRawVa {
        /// Tenant whose secret the probe targets.
        victim: usize,
    },
    /// The attacker's legitimate Region pointer plus a loaded offset that
    /// lands inside the victim's secret.
    AttackRegionOob {
        /// Tenant whose secret the probe targets.
        victim: usize,
    },
    /// A crafted Region-class pointer carrying a plaintext guess of the
    /// victim's region ID (the attacker does not know the kernel key).
    AttackForgedId {
        /// Tenant whose secret the probe targets.
        victim: usize,
    },
    /// A crafted Type 3 pointer claiming a huge power-of-two bound over
    /// the victim's memory.
    AttackForgedType3 {
        /// Tenant whose secret the probe targets.
        victim: usize,
    },
}

impl JobKind {
    /// True for the four cross-tenant probe vectors.
    pub fn is_attack(&self) -> bool {
        self.victim().is_some()
    }

    /// The probed tenant, when this is an attack.
    pub fn victim(&self) -> Option<usize> {
        match self {
            JobKind::Benign | JobKind::BenignWide => None,
            JobKind::AttackRawVa { victim }
            | JobKind::AttackRegionOob { victim }
            | JobKind::AttackForgedId { victim }
            | JobKind::AttackForgedType3 { victim } => Some(*victim),
        }
    }

    /// Short display name for exhibit tables.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Benign => "benign",
            JobKind::BenignWide => "benign_wide",
            JobKind::AttackRawVa { .. } => "raw_va",
            JobKind::AttackRegionOob { .. } => "region_oob",
            JobKind::AttackForgedId { .. } => "forged_id",
            JobKind::AttackForgedType3 { .. } => "forged_type3",
        }
    }
}

/// How one admitted (or refused) job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Benign job ran to completion with correct output.
    Completed,
    /// Benign job was aborted or produced wrong output — protection turned
    /// against a legitimate workload.
    FalseFault,
    /// Attack probe caught: aborted with a logged violation (or squashed
    /// with the log showing it) and the victim's secret intact.
    Detected,
    /// Attack probe completed with nothing logged — but the secret is
    /// intact, so the probe achieved nothing.
    Masked,
    /// Attack probe corrupted the victim's secret with nothing logged —
    /// the outcome the isolation domains must make impossible.
    SilentCorruption,
    /// Refused at admission (`RegionIdsExhausted` under a tiny slice).
    Rejected,
}

impl Outcome {
    /// Every classification, in tally order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Completed,
        Outcome::FalseFault,
        Outcome::Detected,
        Outcome::Masked,
        Outcome::SilentCorruption,
        Outcome::Rejected,
    ];

    /// Column label.
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::FalseFault => "false-fault",
            Outcome::Detected => "detected",
            Outcome::Masked => "masked",
            Outcome::SilentCorruption => "silent",
            Outcome::Rejected => "rejected",
        }
    }
}

/// One serving scenario: per-tenant ID slices, weights, and job queues.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Per-tenant `(lo, hi, weight)` region-ID slices (disjoint).
    pub slices: Vec<(u16, u16, u64)>,
    /// Per-tenant job queues, drained front-first under fair admission.
    pub queues: Vec<Vec<JobKind>>,
    /// The BCU's multi-tenant hardening switch (see
    /// [`BcuConfig::strict_runtime_tags`]).
    pub strict_runtime_tags: bool,
    /// Watchdog budget per launch.
    pub max_cycles: u64,
}

/// One job's classification record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// Submitting tenant.
    pub tenant: usize,
    /// What was asked.
    pub kind: JobKind,
    /// What happened.
    pub outcome: Outcome,
    /// Simulated cycles the job waited in queue before admission.
    pub queue_wait: u64,
}

/// Everything a serving run produced.
#[derive(Debug, Clone)]
pub struct ServingSummary {
    /// Every job in admission order.
    pub jobs: Vec<JobRecord>,
    /// Tally per [`Outcome::ALL`] slot.
    pub tallies: [u64; 6],
    /// Per-tenant accounting snapshots.
    pub per_tenant: Vec<TenantStats>,
    /// Aggregate BCU statistics over the whole run.
    pub bcu: BcuStats,
    /// All secrets held their sentinel pattern at the end of the run.
    pub secrets_intact: bool,
    /// Violations whose kernel ID resolved to a different tenant than the
    /// one that launched the probe (must be 0).
    pub misattributed: u64,
    /// `driver.tenant.*` and `driver.audit.*` aggregate gauges plus the
    /// `driver.tenant.<i>.*` per-tenant breakdown, ready for a results
    /// JSON.
    pub telemetry: Vec<(String, u64)>,
    /// The per-tenant security audit log, rendered as stable one-line
    /// records in global decision order (admissions, rejections,
    /// region-ID churn, violation attributions, probe verdicts).
    pub audit: Vec<String>,
}

/// `work[tid] = tid`: one buffer, one region ID, output diffable.
pub fn iota_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("serve_iota");
    let out = b.param_buffer("out", false);
    let tid = b.global_thread_id();
    let off = b.shl(tid, Operand::Imm(2));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// Identity copy with two buffer parameters: needs two region IDs.
fn copy_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("serve_copy");
    let src = b.param_buffer("in", true);
    let dst = b.param_buffer("out", false);
    let tid = b.global_thread_id();
    let off = b.shl(tid, Operand::Imm(2));
    let v = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(src, off));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(dst, off), v);
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// Loads a 64-bit value from its own buffer and stores through it as a
/// base pointer — whatever bits the host planted arrive at the BCU
/// verbatim (raw VA, forged Region class, forged Type 3).
fn deref_loaded_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("serve_deref_loaded");
    let a = b.param_buffer("A", false);
    let p = b.ld(
        MemSpace::Global,
        MemWidth::W8,
        b.base_offset(a, Operand::Imm(0)),
    );
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(p, Operand::Imm(0)),
        Operand::Imm(0xBAD),
    );
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// Stores through its own (legitimate) pointer at an offset loaded from
/// memory — the classic OOB reach into a neighbour.
fn indirect_offset_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("serve_indirect_offset");
    let a = b.param_buffer("A", false);
    let off = b.ld(
        MemSpace::Global,
        MemWidth::W8,
        b.base_offset(a, Operand::Imm(8)),
    );
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(a, off),
        Operand::Imm(0xBAD),
    );
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

fn secret_word(tenant: usize, i: u64) -> u32 {
    0xA5A5_0000 ^ ((tenant as u32) << 8) ^ (i as u32)
}

fn write_secret(sys: &mut System, buf: BufferHandle, tenant: usize) {
    for i in 0..SECRET_WORDS {
        sys.write_buffer(buf, i * 4, &secret_word(tenant, i).to_le_bytes());
    }
}

fn secret_intact(sys: &System, buf: BufferHandle, tenant: usize) -> bool {
    (0..SECRET_WORDS).all(|i| sys.read_uint(buf, i * 4, 4) == u64::from(secret_word(tenant, i)))
}

fn sys_config(cfg: &ServingConfig) -> SystemConfig {
    SystemConfig {
        gpu: GpuConfig {
            max_cycles: cfg.max_cycles,
            ..GpuConfig::nvidia()
        },
        // Analysis and Type 3 off: every site is runtime-checked and every
        // legitimate pointer is Region-class — the precondition that makes
        // strict tag checking sound.
        driver: DriverConfig {
            enable_static_analysis: false,
            enable_type3: false,
            ..DriverConfig::default()
        },
        bcu: BcuConfig {
            strict_runtime_tags: cfg.strict_runtime_tags,
            ..BcuConfig::default()
        },
        seed: 0x6057_5E1D,
    }
}

/// Weighted-fair pick: the non-empty queue minimizing
/// `cycles_consumed / weight` (cross-multiplied to stay in integers),
/// tie-broken toward the lowest tenant index. Deterministic.
fn pick_tenant(tenants: &TenantTable, queues: &[VecDeque<JobKind>]) -> Option<usize> {
    let mut best: Option<(usize, u64, u64)> = None;
    for (i, q) in queues.iter().enumerate() {
        if q.is_empty() {
            continue;
        }
        let t = TenantId(i as u16);
        let consumed = tenants.stats(t).map(|s| s.cycles_consumed).unwrap_or(0);
        let weight = tenants.weight(t).unwrap_or(1);
        let better = match best {
            None => true,
            Some((_, bc, bw)) => {
                u128::from(consumed) * u128::from(bw) < u128::from(bc) * u128::from(weight)
            }
        };
        if better {
            best = Some((i, consumed, weight));
        }
    }
    best.map(|(i, _, _)| i)
}

/// Runs one serving scenario to queue exhaustion and classifies every job.
///
/// # Panics
///
/// Panics when the configuration is malformed (mismatched slice/queue
/// counts, overlapping slices) or a host-side allocation fails — both are
/// harness bugs, not simulated outcomes.
pub fn run_serving(cfg: &ServingConfig) -> ServingSummary {
    assert_eq!(cfg.slices.len(), cfg.queues.len(), "one queue per tenant");
    let n = cfg.slices.len();
    let mut sys = System::new(sys_config(cfg));
    let mut tenants = TenantTable::with_slices(cfg.slices.iter().copied());

    let mut work = Vec::with_capacity(n);
    let mut secret = Vec::with_capacity(n);
    for t in 0..n {
        work.push(sys.alloc(WORK_WORDS * 4).expect("work buffer"));
        let s = sys.alloc(SECRET_WORDS * 4).expect("secret buffer");
        write_secret(&mut sys, s, t);
        secret.push(s);
    }

    let iota = iota_kernel();
    let copy = copy_kernel();
    let deref = deref_loaded_kernel();
    let indirect = indirect_offset_kernel();

    let mut queues: Vec<VecDeque<JobKind>> = cfg
        .queues
        .iter()
        .map(|q| q.iter().copied().collect())
        .collect();
    let mut now = 0u64;
    let mut jobs = Vec::new();
    let mut tallies = [0u64; 6];
    let mut misattributed = 0u64;

    while let Some(t) = pick_tenant(&tenants, &queues) {
        let Some(kind) = queues[t].pop_front() else {
            break;
        };
        let wait = now;
        // Host-side payload and kernel selection.
        let (kernel, args): (Arc<Kernel>, Vec<Arg>) = match kind {
            JobKind::Benign => (iota.clone(), vec![Arg::Buffer(work[t])]),
            JobKind::BenignWide => (
                copy.clone(),
                vec![Arg::Buffer(work[t]), Arg::Buffer(work[t])],
            ),
            JobKind::AttackRawVa { victim } => {
                let raw = sys.driver().buffer_va(secret[victim]);
                sys.write_buffer(work[t], 0, &raw.to_le_bytes());
                (deref.clone(), vec![Arg::Buffer(work[t])])
            }
            JobKind::AttackRegionOob { victim } => {
                let delta = sys
                    .driver()
                    .buffer_va(secret[victim])
                    .wrapping_sub(sys.driver().buffer_va(work[t]));
                sys.write_buffer(work[t], 8, &delta.to_le_bytes());
                (indirect.clone(), vec![Arg::Buffer(work[t])])
            }
            JobKind::AttackForgedId { victim } => {
                // Plausible plaintext guess: the first ID of the victim's
                // slice. Without the kernel key, decryption scrambles it.
                let guess = cfg.slices[victim].0;
                let raw =
                    TaggedPtr::with_region_id(sys.driver().buffer_va(secret[victim]), guess).raw();
                sys.write_buffer(work[t], 0, &raw.to_le_bytes());
                (deref.clone(), vec![Arg::Buffer(work[t])])
            }
            JobKind::AttackForgedType3 { victim } => {
                let raw =
                    TaggedPtr::with_log2_size(sys.driver().buffer_va(secret[victim]), 40).raw();
                sys.write_buffer(work[t], 0, &raw.to_le_bytes());
                (deref.clone(), vec![Arg::Buffer(work[t])])
            }
        };
        let block = if kind.is_attack() {
            1
        } else {
            WORK_WORDS as u32
        };
        let outcome =
            match sys.launch_tenant(&mut tenants, TenantId(t as u16), kernel, 1, block, &args) {
                Err(SystemError::Driver(DriverError::RegionIdsExhausted { .. })) => {
                    Outcome::Rejected
                }
                Err(_) => Outcome::FalseFault,
                Ok((report, violations)) => {
                    now += report.cycles;
                    for v in &violations {
                        if tenants.owner_of_kernel(v.kernel_id) != Some(TenantId(t as u16)) {
                            misattributed += 1;
                        }
                    }
                    if let Some(victim) = kind.victim() {
                        let intact = secret_intact(&sys, secret[victim], victim);
                        if !intact {
                            // Restore the sentinel so later probes classify
                            // against a clean detector.
                            write_secret(&mut sys, secret[victim], victim);
                            Outcome::SilentCorruption
                        } else if !report.completed() || !violations.is_empty() {
                            Outcome::Detected
                        } else {
                            Outcome::Masked
                        }
                    } else if report.completed() && violations.is_empty() {
                        match kind {
                            JobKind::Benign
                                if (0..WORK_WORDS)
                                    .any(|i| sys.read_uint(work[t], i * 4, 4) != i) =>
                            {
                                Outcome::FalseFault
                            }
                            _ => Outcome::Completed,
                        }
                    } else {
                        Outcome::FalseFault
                    }
                }
            };
        if kind.is_attack() {
            // Audit the probe verdict: the boundary held iff the probe was
            // detected (aborted/squashed with the secret intact).
            let _ = tenants.note_probe(TenantId(t as u16), outcome == Outcome::Detected);
        }
        if let Ok(s) = tenants.stats_mut(TenantId(t as u16)) {
            s.queue_wait_cycles += wait;
        }
        let slot = Outcome::ALL
            .iter()
            .position(|o| *o == outcome)
            .expect("outcome indexed");
        tallies[slot] += 1;
        jobs.push(JobRecord {
            tenant: t,
            kind,
            outcome,
            queue_wait: wait,
        });
    }

    let mut reg = Registry::new();
    tenants.publish_telemetry(&mut reg);
    let mut telemetry: Vec<(String, u64)> = reg
        .names()
        .iter()
        .map(|name| ((*name).to_string(), reg.value(name).unwrap_or(0)))
        .collect();
    telemetry.extend(tenants.per_tenant_metrics());

    let secrets_intact = (0..n).all(|t| secret_intact(&sys, secret[t], t));
    let per_tenant = (0..n)
        .map(|t| tenants.stats(TenantId(t as u16)).unwrap_or_default())
        .collect();
    ServingSummary {
        jobs,
        tallies,
        per_tenant,
        bcu: sys.bcu_stats(),
        secrets_intact,
        misattributed,
        telemetry,
        audit: tenants.audit().render_lines(),
    }
}

static STASH: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());

/// Stashes exhibit telemetry for the `experiments` binary to embed in the
/// exhibit's results JSON (replacing any previous stash).
pub fn stash_telemetry(pairs: &[(String, u64)]) {
    if let Ok(mut s) = STASH.lock() {
        *s = pairs.to_vec();
    }
}

/// Drains the stash (empty when the last exhibit stashed nothing).
pub fn take_stashed_telemetry() -> Vec<(String, u64)> {
    STASH
        .lock()
        .map(|mut s| std::mem::take(&mut *s))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_config(strict: bool) -> ServingConfig {
        let atk = |v: usize| {
            vec![
                JobKind::Benign,
                JobKind::AttackRawVa { victim: v },
                JobKind::AttackRegionOob { victim: v },
                JobKind::AttackForgedId { victim: v },
                JobKind::AttackForgedType3 { victim: v },
                JobKind::Benign,
            ]
        };
        ServingConfig {
            slices: vec![(1, 65, 1), (65, 129, 1)],
            queues: vec![atk(1), atk(0)],
            strict_runtime_tags: strict,
            max_cycles: 200_000,
        }
    }

    #[test]
    fn strict_serving_detects_every_probe_and_keeps_secrets() {
        let s = run_serving(&mini_config(true));
        assert_eq!(s.tallies[2], 8, "all 8 probes Detected: {:?}", s.tallies);
        assert_eq!(s.tallies[3] + s.tallies[4], 0, "no Masked/Silent");
        assert!(s.secrets_intact);
        assert_eq!(s.misattributed, 0);
        assert_eq!(s.tallies[0], 4, "benign jobs unharmed");
    }

    #[test]
    fn lax_serving_exhibits_the_silent_corruption_strict_mode_closes() {
        let s = run_serving(&mini_config(false));
        // raw_va and forged_type3 slip through unlogged and corrupt the
        // secret; region_oob and forged_id are still caught by the RBT.
        assert_eq!(s.tallies[4], 4, "4 silent corruptions: {:?}", s.tallies);
        assert_eq!(s.tallies[2], 4, "RBT-backed vectors still detected");
        assert!(s.secrets_intact, "harness restores secrets after probes");
    }

    #[test]
    fn capacity_one_slice_recycles_and_rejects_wide_jobs() {
        let cfg = ServingConfig {
            slices: vec![(1, 2, 1), (2, 66, 1)],
            queues: vec![
                vec![
                    JobKind::Benign,
                    JobKind::BenignWide,
                    JobKind::Benign,
                    JobKind::BenignWide,
                    JobKind::Benign,
                ],
                vec![JobKind::Benign],
            ],
            strict_runtime_tags: true,
            max_cycles: 200_000,
        };
        let s = run_serving(&cfg);
        assert_eq!(s.tallies[5], 2, "both wide jobs rejected: {:?}", s.tallies);
        assert_eq!(s.per_tenant[0].launches_rejected, 2);
        assert_eq!(s.per_tenant[0].launches_completed, 3);
        let recycled = s
            .telemetry
            .iter()
            .find(|(k, _)| k == "driver.tenant.0.ids_recycled")
            .map(|(_, v)| *v);
        assert_eq!(recycled, Some(2), "the single ID recycled per relaunch");
    }

    #[test]
    fn audit_log_records_admissions_churn_and_probe_verdicts() {
        let s = run_serving(&mini_config(true));
        assert!(!s.audit.is_empty());
        // Gapless global sequence numbers in decision order.
        for (i, line) in s.audit.iter().enumerate() {
            assert!(line.starts_with(&format!("seq={i} ")), "gap at {i}: {line}");
        }
        let count = |label: &str| {
            s.audit
                .iter()
                .filter(|l| l.contains(&format!(" {label}")))
                .count()
        };
        assert_eq!(count("probe_verdict blocked=true"), 8, "all probes held");
        assert_eq!(count("admitted kernel="), 12, "one admission per job");
        assert!(count("ids_acquired count=") >= 1);
        let audited = s
            .telemetry
            .iter()
            .find(|(k, _)| k == "driver.audit.probes_blocked")
            .map(|(_, v)| *v);
        assert_eq!(audited, Some(8));
    }

    #[test]
    fn serving_is_deterministic() {
        let a = run_serving(&mini_config(true));
        let b = run_serving(&mini_config(true));
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.telemetry, b.telemetry);
        assert_eq!(a.bcu, b.bcu);
    }

    #[test]
    fn stash_roundtrip_replaces_and_drains() {
        stash_telemetry(&[("a".to_string(), 1)]);
        stash_telemetry(&[("b".to_string(), 2)]);
        assert_eq!(take_stashed_telemetry(), vec![("b".to_string(), 2)]);
        assert!(take_stashed_telemetry().is_empty());
    }
}
