//! The adversarial-fuzz exhibit: the per-bug-class detection scoreboard
//! over the default [`gpushield_fuzzgen`] corpus (see
//! [`crate::fuzzsweep`] for generation and classification semantics).

use crate::fuzzsweep::run_sweep;
use gpushield_fuzzgen::{CORPUS_SEED, PER_CLASS};

/// Runs the default corpus (225 specimens, 9 classes) over `jobs` workers
/// and renders the scoreboard.
pub fn fuzz_scoreboard(jobs: usize) -> String {
    let sb = run_sweep(CORPUS_SEED, PER_CLASS, jobs);
    let conforming: usize = sb.rows.iter().map(|r| r.conforming).sum();
    eprintln!(
        "  fuzz totals: {} specimens, {} conforming, {} hangs",
        sb.total(),
        conforming,
        sb.rows.iter().map(|r| r.tally[5]).sum::<usize>()
    );
    sb.render_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoreboard_covers_all_classes_and_has_no_hangs() {
        let text = fuzz_scoreboard(8);
        for class in gpushield_fuzzgen::BugClass::ALL {
            assert!(text.contains(class.slug()), "{} missing", class.slug());
        }
        let totals = text
            .lines()
            .find(|l| l.starts_with("TOTALS"))
            .expect("totals row");
        let cols: Vec<usize> = totals
            .split_whitespace()
            .skip(1)
            .map(|v| v.parse().expect("numeric"))
            .collect();
        // det false silent masked compl hang conform static
        assert_eq!(cols[5], 0, "hangs present: {totals}");
        let classified: usize = cols[..6].iter().sum();
        assert_eq!(
            classified,
            gpushield_fuzzgen::BugClass::ALL.len() * PER_CLASS
        );
    }
}
