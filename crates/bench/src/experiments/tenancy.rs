//! Multi-tenant serving exhibits: the `multi_tenant` isolation/churn
//! exhibit and the `qos_fairness` weighted-admission exhibit.
//!
//! Both drive the deterministic serving loop in [`crate::serving`] — N
//! tenants with disjoint region-ID slices, weighted-fair admission, and
//! cross-tenant probes that must always classify as Detected. Scenarios
//! are fanned over `--jobs` workers with submission-order results, so the
//! rendered output is byte-identical at any worker count.

use crate::runner::fan_out;
use crate::serving::{self, JobKind, Outcome, ServingConfig, ServingSummary};
use gpushield::{
    Arg, BcuConfig, ConcurrentKernel, DriverConfig, GpuConfig, MultiKernelMode, System,
    SystemConfig, TenantId, TenantTable,
};
use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use std::fmt::Write as _;
use std::sync::Arc;

/// Tenants in the main serving scenario.
const TENANTS: usize = 8;
/// Queued jobs per tenant (8 x 250 = 2000 admitted launches).
const JOBS_PER_TENANT: usize = 250;
/// Region-ID slice capacity per tenant — far below the job count, so the
/// run only completes if released IDs recycle correctly.
const SLICE_IDS: u16 = 16;
/// Watchdog budget per launch.
const MAX_CYCLES: u64 = 200_000;

/// The serving job mix: mostly benign traffic with all four cross-tenant
/// probe vectors interleaved, each tenant probing its right neighbour.
fn serving_queues(tenants: usize, per_tenant: usize) -> Vec<Vec<JobKind>> {
    (0..tenants)
        .map(|t| {
            let victim = (t + 1) % tenants;
            (0..per_tenant)
                .map(|i| match i % 25 {
                    5 => JobKind::AttackRawVa { victim },
                    11 => JobKind::AttackRegionOob { victim },
                    17 => JobKind::AttackForgedId { victim },
                    23 => JobKind::AttackForgedType3 { victim },
                    _ => JobKind::Benign,
                })
                .collect()
        })
        .collect()
}

fn serving_slices(
    tenants: usize,
    ids_per_tenant: u16,
    weight: impl Fn(usize) -> u64,
) -> Vec<(u16, u16, u64)> {
    (0..tenants)
        .map(|t| {
            let lo = 1 + t as u16 * ids_per_tenant;
            (lo, lo + ids_per_tenant, weight(t))
        })
        .collect()
}

fn tally_line(label: &str, s: &ServingSummary) -> String {
    let mut out = format!("{label:<22}");
    for (slot, o) in Outcome::ALL.iter().enumerate() {
        let _ = write!(out, " {:>6}={}", o.name(), s.tallies[slot]);
    }
    out
}

/// One fanned scenario's rendered section plus any telemetry to stash.
struct Section {
    text: String,
    telemetry: Option<Vec<(String, u64)>>,
}

/// Scenario A: the headline serving run — 8 tenants, 2000 queued launches,
/// every probe vector live, strict runtime tags on.
fn scenario_serving() -> Section {
    let cfg = ServingConfig {
        slices: serving_slices(TENANTS, SLICE_IDS, |_| 1),
        queues: serving_queues(TENANTS, JOBS_PER_TENANT),
        strict_runtime_tags: true,
        max_cycles: MAX_CYCLES,
    };
    let s = serving::run_serving(&cfg);
    let attacks: u64 = s.jobs.iter().filter(|j| j.kind.is_attack()).count() as u64;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "[A] serving: {} tenants x {} jobs, slice capacity {} IDs, strict tags ON",
        TENANTS, JOBS_PER_TENANT, SLICE_IDS
    );
    let _ = writeln!(text, "{}", tally_line("  outcomes", &s));
    let recycled: u64 = s
        .telemetry
        .iter()
        .find(|(k, _)| k == "driver.tenant.ids_recycled")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    let _ = writeln!(
        text,
        "  probes={} detected={} masked={} silent={} | ids_recycled={} misattributed={} secrets_intact={}",
        attacks,
        s.tallies[2],
        s.tallies[3],
        s.tallies[4],
        recycled,
        s.misattributed,
        s.secrets_intact
    );
    let _ = writeln!(
        text,
        "  {:<8} {:>6} {:>9} {:>9} {:>10} {:>12} {:>12}",
        "tenant", "weight", "admitted", "complete", "violations", "cycles", "wait_mean"
    );
    for (t, st) in s.per_tenant.iter().enumerate() {
        let done = st.launches_completed.max(1);
        let _ = writeln!(
            text,
            "  {:<8} {:>6} {:>9} {:>9} {:>10} {:>12} {:>12}",
            format!("tenant{t}"),
            1,
            st.launches_admitted,
            st.launches_completed,
            st.violations_attributed,
            st.cycles_consumed,
            st.queue_wait_cycles / done
        );
    }
    let _ = writeln!(
        text,
        "  audit log: {} entries (driver.audit.*); first and last decisions:",
        s.audit.len()
    );
    for line in s.audit.iter().take(3) {
        let _ = writeln!(text, "    {line}");
    }
    if s.audit.len() > 6 {
        let _ = writeln!(text, "    ...");
    }
    let tail = s.audit.len().saturating_sub(3).max(3);
    for line in s.audit.iter().skip(tail) {
        let _ = writeln!(text, "    {line}");
    }
    Section {
        text,
        telemetry: Some(s.telemetry),
    }
}

/// Scenario B: the same probe vectors with strict tags OFF — the exposure
/// the serving configuration exists to close.
fn scenario_lax() -> Section {
    let probes = |victim: usize| {
        vec![
            JobKind::AttackRawVa { victim },
            JobKind::AttackRegionOob { victim },
            JobKind::AttackForgedId { victim },
            JobKind::AttackForgedType3 { victim },
        ]
    };
    let cfg = ServingConfig {
        slices: serving_slices(2, 64, |_| 1),
        queues: vec![probes(1), probes(0)],
        strict_runtime_tags: false,
        max_cycles: MAX_CYCLES,
    };
    let s = serving::run_serving(&cfg);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "[B] exposure: same probe vectors, strict tags OFF (raw-VA and forged\n    Type 3 pointers bypass the RBT and corrupt the victim silently)"
    );
    let _ = writeln!(text, "{}", tally_line("  outcomes", &s));
    Section {
        text,
        telemetry: None,
    }
}

/// Scenario C: region-ID churn against a starved slice — wide jobs needing
/// two IDs are rejected with a typed error while single-ID traffic
/// recycles the lone ID indefinitely.
fn scenario_churn() -> Section {
    let mut q0 = Vec::new();
    for i in 0..40 {
        q0.push(if i % 4 == 3 {
            JobKind::BenignWide
        } else {
            JobKind::Benign
        });
    }
    let cfg = ServingConfig {
        slices: vec![(1, 2, 1), (2, 66, 1)],
        queues: vec![q0, vec![JobKind::Benign; 10]],
        strict_runtime_tags: true,
        max_cycles: MAX_CYCLES,
    };
    let s = serving::run_serving(&cfg);
    let find = |k: &str| {
        s.telemetry
            .iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let mut text = String::new();
    let _ = writeln!(
        text,
        "[C] churn: tenant0 owns a single region ID; two-buffer jobs exhaust\n    the slice (typed rejection), single-buffer jobs recycle it"
    );
    let _ = writeln!(text, "{}", tally_line("  outcomes", &s));
    let _ = writeln!(
        text,
        "  tenant0: rejected={} ids_acquired={} ids_recycled={} capacity=1",
        s.per_tenant[0].launches_rejected,
        find("driver.tenant.0.ids_acquired"),
        find("driver.tenant.0.ids_recycled"),
    );
    Section {
        text,
        telemetry: None,
    }
}

/// A kernel touching four distinct buffers — four region IDs of RCache
/// footprint per co-resident kernel.
fn multibuf_kernel(name: &str) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let bufs: Vec<_> = (0..4)
        .map(|i| b.param_buffer(&format!("b{i}"), false))
        .collect();
    let tid = b.global_thread_id();
    let off = b.shl(tid, Operand::Imm(2));
    for p in bufs {
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(p, off), tid);
    }
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// Scenario D: co-located kernels from two tenants share each core's
/// RCaches (intra-core slicing); kernel-ID tags keep their entries apart,
/// and the eviction counters expose the cross-tenant contention.
fn scenario_contention() -> Section {
    let mut sys = System::new(SystemConfig {
        gpu: GpuConfig {
            // A single core forces both tenants' warps to co-reside and
            // share one BCU's RCaches.
            num_cores: 1,
            max_cycles: MAX_CYCLES,
            ..GpuConfig::nvidia()
        },
        driver: DriverConfig {
            enable_static_analysis: false,
            enable_type3: false,
            ..DriverConfig::default()
        },
        bcu: BcuConfig {
            l1_entries: 2,
            l2_entries: 4,
            strict_runtime_tags: true,
            ..BcuConfig::default()
        },
        seed: 0x6057_5E1D,
    });
    let mut tenants = TenantTable::with_slices([(1u16, 65u16, 1u64), (65, 129, 1)]);
    let mut kernels = Vec::new();
    for (t, name) in [(0usize, "tenant0_quad"), (1, "tenant1_quad")] {
        // One word per global thread (grid x block) in each buffer.
        let args: Vec<Arg> = (0..4)
            .map(|_| Arg::Buffer(sys.alloc(2 * 32 * 4).expect("buffer")))
            .collect();
        kernels.push((
            TenantId(t as u16),
            ConcurrentKernel {
                kernel: multibuf_kernel(name),
                grid: 2,
                block: 32,
                args,
            },
        ));
    }
    let (report, violations) = sys
        .launch_tenant_concurrent(&mut tenants, kernels, MultiKernelMode::IntraCore)
        .expect("co-located launch");
    let bcu = sys.bcu_stats();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "[D] contention: 2 co-resident tenants x 4 regions on 2-entry L1 /\n    4-entry L2 RCaches (intra-core slicing)"
    );
    let _ = writeln!(
        text,
        "  completed={} violations={} rcache_evictions={} cross_kernel_evictions={}",
        report.completed(),
        violations.len(),
        bcu.rcache_evictions,
        bcu.cross_kernel_evictions
    );
    Section {
        text,
        telemetry: None,
    }
}

/// The `multi_tenant` exhibit: serving-scale isolation under churn, the
/// strict-off exposure, slice exhaustion, and co-located contention.
pub fn multi_tenant(jobs: usize) -> String {
    type Task = Box<dyn FnOnce() -> Section + Send>;
    let tasks: Vec<Task> = vec![
        Box::new(scenario_serving),
        Box::new(scenario_lax),
        Box::new(scenario_churn),
        Box::new(scenario_contention),
    ];
    let sections = fan_out(tasks, jobs);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Multi-tenant serving — isolation domains over region-ID slices\n \
         ({} tenants x {} queued jobs; every cross-tenant probe must classify\n \
         as detected, never masked or silent; watchdog {} cycles per launch)\n",
        TENANTS, JOBS_PER_TENANT, MAX_CYCLES
    );
    let mut telemetry = Vec::new();
    for s in sections {
        out.push_str(&s.text);
        out.push('\n');
        if let Some(t) = s.telemetry {
            telemetry = t;
        }
    }
    let detected = telemetry
        .iter()
        .find(|(k, _)| k == "driver.tenant.violations_attributed")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "(per-tenant accounting exported as driver.tenant.* telemetry;\n \
         {} violations attributed across the serving run — see DESIGN.md section 12)",
        detected
    );
    eprintln!(
        "  multi-tenant totals: {} launches, {} violations attributed",
        TENANTS * JOBS_PER_TENANT,
        detected
    );
    serving::stash_telemetry(&telemetry);
    out
}

/// One weight profile's fairness run.
fn qos_profile(label: &'static str, weights: [u64; 4]) -> String {
    const QOS_JOBS: usize = 100;
    let cfg = ServingConfig {
        slices: (0..4)
            .map(|t| {
                let lo = 1 + t as u16 * 16;
                (lo, lo + 16, weights[t])
            })
            .collect(),
        queues: vec![vec![JobKind::Benign; QOS_JOBS]; 4],
        strict_runtime_tags: true,
        max_cycles: MAX_CYCLES,
    };
    let s = serving::run_serving(&cfg);

    // Per-tenant queue-wait distribution.
    let mut waits: Vec<Vec<u64>> = vec![Vec::new(); 4];
    for j in &s.jobs {
        waits[j.tenant].push(j.queue_wait);
    }
    let pct = |v: &[u64], p: f64| -> u64 {
        if v.is_empty() {
            return 0;
        }
        let idx = ((v.len() - 1) as f64 * p).round() as usize;
        v[idx]
    };
    let means: Vec<f64> = waits
        .iter()
        .map(|v| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<u64>() as f64 / v.len() as f64
            }
        })
        .collect();
    // Jain fairness index over mean queue waits: 1.0 when every tenant
    // waits equally, lower as weighting skews service order.
    let sum: f64 = means.iter().sum();
    let sumsq: f64 = means.iter().map(|m| m * m).sum();
    let jain = if sumsq == 0.0 {
        1.0
    } else {
        (sum * sum) / (4.0 * sumsq)
    };

    let mut text = String::new();
    let _ = writeln!(
        text,
        "[{label}] weights {:?}, {QOS_JOBS} benign jobs per tenant",
        weights
    );
    let _ = writeln!(
        text,
        "  {:<8} {:>6} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "tenant", "weight", "complete", "cycles", "wait_mean", "wait_p50", "wait_p95"
    );
    for t in 0..4 {
        let mut w = waits[t].clone();
        w.sort_unstable();
        let _ = writeln!(
            text,
            "  {:<8} {:>6} {:>9} {:>12} {:>12} {:>12} {:>12}",
            format!("tenant{t}"),
            weights[t],
            s.per_tenant[t].launches_completed,
            s.per_tenant[t].cycles_consumed,
            means[t].round() as u64,
            pct(&w, 0.50),
            pct(&w, 0.95)
        );
    }
    let _ = writeln!(text, "  jain_index_over_mean_wait={jain:.4}");
    text
}

/// The `qos_fairness` exhibit: weighted-fair admission under equal demand.
pub fn qos_fairness(jobs: usize) -> String {
    type Task = Box<dyn FnOnce() -> String + Send>;
    let tasks: Vec<Task> = vec![
        Box::new(|| qos_profile("equal", [1, 1, 1, 1])),
        Box::new(|| qos_profile("skewed", [1, 2, 4, 8])),
    ];
    let sections = fan_out(tasks, jobs);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "QoS fairness — weighted-fair admission across 4 tenants\n \
         (deficit scheduler: pick the tenant minimizing cycles/weight; equal\n \
         weights wait equally, skewed weights drain high-weight queues first)\n"
    );
    for s in sections {
        out.push_str(&s);
        out.push('\n');
    }
    eprintln!("  qos fairness: 2 weight profiles x 400 launches");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_tenant_is_deterministic_across_job_counts() {
        let a = multi_tenant(1);
        let b = multi_tenant(4);
        assert_eq!(a, b, "rendered exhibit must not depend on worker count");
    }

    #[test]
    fn serving_run_meets_the_isolation_acceptance_bar() {
        let text = multi_tenant(2);
        // 2000 admitted launches, zero masked, zero silent.
        assert!(text.contains("8 tenants x 250 jobs"), "scale line missing");
        assert!(
            text.contains("masked=0 silent=0"),
            "cross-tenant probes leaked: {text}"
        );
        assert!(text.contains("misattributed=0 secrets_intact=true"));
        // The strict-off exposure section shows non-zero silent corruption
        // (raw-VA and forged-Type-3 from each of the two probing tenants).
        assert!(text.contains("silent=4"), "exposure demo missing: {text}");
        // Contention section observed cross-kernel RCache pressure.
        let d = text
            .lines()
            .find(|l| l.contains("cross_kernel_evictions="))
            .expect("contention line");
        assert!(
            !d.contains("cross_kernel_evictions=0"),
            "no cross-tenant contention observed: {d}"
        );
    }

    #[test]
    fn serving_stashes_tenant_telemetry() {
        let _ = multi_tenant(1);
        let t = serving::take_stashed_telemetry();
        assert!(
            t.iter()
                .any(|(k, _)| k == "driver.tenant.launches_admitted"),
            "aggregate gauges missing"
        );
        assert!(
            t.iter()
                .any(|(k, _)| k == "driver.tenant.7.cycles_consumed"),
            "per-tenant breakdown missing"
        );
    }

    #[test]
    fn qos_fairness_is_deterministic_and_weight_sensitive() {
        let a = qos_fairness(1);
        let b = qos_fairness(2);
        assert_eq!(a, b);
        // In the skewed profile the weight-8 tenant must wait less on
        // average than the weight-1 tenant.
        let skewed: Vec<&str> = a.lines().skip_while(|l| !l.contains("[skewed]")).collect();
        let mean_of = |tenant: &str| -> u64 {
            let line = skewed
                .iter()
                .find(|l| l.trim_start().starts_with(tenant))
                .unwrap_or_else(|| panic!("{tenant} row missing"));
            line.split_whitespace()
                .nth(4)
                .and_then(|v| v.parse().ok())
                .expect("wait_mean column")
        };
        assert!(
            mean_of("tenant3") < mean_of("tenant0"),
            "weight-8 tenant should wait less than weight-1"
        );
    }
}
