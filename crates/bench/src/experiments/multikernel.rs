//! Fig. 18: two-kernel co-execution, inter-core vs intra-core sharing.

use crate::adapter::SystemHost;
use crate::runner::{config, fan_out, geomean, Protection, Target};
use gpushield::{ConcurrentKernel, MultiKernelMode};
use gpushield_workloads::{fig18_names, representative};
use std::fmt::Write as _;

fn run_pair(a: &str, b: &str, mode: MultiKernelMode, shield: bool) -> u64 {
    let prot = if shield {
        Protection::shield_default()
    } else {
        Protection::baseline()
    };
    let mut host = SystemHost::new(config(Target::Intel, prot));
    let ra = representative(a).expect("fig18 rep");
    let rb = representative(b).expect("fig18 rep");
    let args_a = ra.bind(&mut host);
    let args_b = rb.bind(&mut host);
    let kernels = vec![
        ConcurrentKernel {
            kernel: ra.kernel.clone(),
            grid: ra.grid,
            block: ra.block,
            args: host.map_args(&args_a),
        },
        ConcurrentKernel {
            kernel: rb.kernel.clone(),
            grid: rb.grid,
            block: rb.block,
            args: host.map_args(&args_b),
        },
    ];
    let report = host
        .system_mut()
        .launch_concurrent(kernels, mode)
        .expect("pair launch");
    assert!(report.completed(), "pair {a}+{b} aborted");
    report.cycles
}

/// Fig. 18: all 21 pairs of the seven OpenCL benchmarks, normalized over
/// the same pairing without bounds checking. Each pair (four independent
/// co-execution simulations) is one pool job.
pub fn fig18_multikernel(jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 18 — multi-kernel execution on the Intel GPU (normalized over\n           no-bounds-check in the same sharing mode)\n"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>11} {:>11}",
        "pair", "inter-core", "intra-core"
    );
    let names = fig18_names();
    let mut pairs = Vec::new();
    for i in 0..names.len() {
        for j in (i + 1)..names.len() {
            pairs.push((names[i], names[j]));
        }
    }
    let runs: Vec<(&str, &str, f64, f64)> = fan_out(
        pairs
            .into_iter()
            .map(|(a, b)| {
                move || {
                    let inter = run_pair(a, b, MultiKernelMode::InterCore, true) as f64
                        / run_pair(a, b, MultiKernelMode::InterCore, false) as f64;
                    let intra = run_pair(a, b, MultiKernelMode::IntraCore, true) as f64
                        / run_pair(a, b, MultiKernelMode::IntraCore, false) as f64;
                    (a, b, inter, intra)
                }
            })
            .collect(),
        jobs,
    );
    let mut inter_all = Vec::new();
    let mut intra_all = Vec::new();
    for (a, b, inter, intra) in runs {
        inter_all.push(inter);
        intra_all.push(intra);
        let _ = writeln!(
            out,
            "{:<28} {:>11.3} {:>11.3}",
            format!("{a}_{b}"),
            inter,
            intra
        );
    }
    let _ = writeln!(
        out,
        "{:<28} {:>11.3} {:>11.3}",
        "geomean",
        geomean(&inter_all),
        geomean(&intra_all)
    );
    let _ = writeln!(
        out,
        "\n(paper: average overhead under 0.3% in both modes; kernel-ID-tagged\n RCache entries keep intra-core sharing safe, §6.2)"
    );
    out
}
