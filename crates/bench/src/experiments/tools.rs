//! Fig. 19: software buffer-overflow detection tools vs GPUShield.

use crate::adapter::SystemHost;
use crate::runner::{config, geomean, run_workload, Protection, Target};
use gpushield_baselines::{ClArmor, Gmod, MemcheckGuard, MemcheckHost, OverheadModel};
use gpushield_workloads::fig19_set;
use std::fmt::Write as _;

/// Fig. 19: CUDA-MEMCHECK / clArmor / GMOD / GPUShield slowdowns over the
/// unprotected baseline, plus the static check-reduction ratio.
pub fn fig19_tools(jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 19 — software tools vs GPUShield (Rodinia models, Nvidia config;\n           slowdown over no bounds check; paper averages: 72.3x / 3.1x /\n           1.5x / 1.008x)\n"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>9} {:>7} {:>10} {:>8}",
        "benchmark", "MEMCHECK", "clArmor", "GMOD", "GPUShield", "reduct%"
    );
    let runs: Vec<(String, [f64; 4], f64)> = crate::runner::fan_out(
        fig19_set()
            .into_iter()
            .map(|w| {
                move || {
                    let base = run_workload(&w, Target::Nvidia, Protection::baseline());

                    // CUDA-MEMCHECK: per-access instrumented checking
                    // (simulated) plus per-launch JIT instrumentation
                    // (host model).
                    let mut mc_host = SystemHost::with_guard(
                        config(Target::Nvidia, Protection::baseline()),
                        Box::new(MemcheckGuard::new()),
                    );
                    w.run(&mut mc_host);
                    let mc_cycles = MemcheckHost::default().total_cycles(
                        mc_host.total_cycles(),
                        mc_host.launches(),
                        mc_host.buffer_count(),
                        mc_host.buffer_bytes(),
                    );

                    // clArmor / GMOD: canary tools modelled on top of the
                    // baseline run.
                    let cl_cycles = ClArmor::default().total_cycles(
                        base.cycles,
                        base.launches,
                        base.buffers,
                        base.buffer_bytes,
                    );
                    let gm_cycles = Gmod::default().total_cycles(
                        base.cycles,
                        base.launches,
                        base.buffers,
                        base.buffer_bytes,
                    );

                    // GPUShield with static filtering (§8.5 discusses the
                    // reduction).
                    let gs = run_workload(
                        &w,
                        Target::Nvidia,
                        Protection::shield_default().with_static(),
                    );

                    let n = base.cycles as f64;
                    (
                        w.display_name().to_string(),
                        [
                            mc_cycles as f64 / n,
                            cl_cycles as f64 / n,
                            gm_cycles as f64 / n,
                            gs.cycles as f64 / n,
                        ],
                        gs.check_reduction * 100.0,
                    )
                }
            })
            .collect(),
        jobs,
    );
    let mut cols: [Vec<f64>; 4] = [vec![], vec![], vec![], vec![]];
    for (name, rs, red) in runs {
        for (c, r) in cols.iter_mut().zip(rs) {
            c.push(r);
        }
        let _ = writeln!(
            out,
            "{:<16} {:>10.1} {:>9.1} {:>7.1} {:>10.3} {:>8.1}",
            name, rs[0], rs[1], rs[2], rs[3], red
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>10.1} {:>9.1} {:>7.1} {:>10.3}",
        "geomean",
        geomean(&cols[0]),
        geomean(&cols[1]),
        geomean(&cols[2]),
        geomean(&cols[3])
    );
    let _ = writeln!(
        out,
        "\n(streamcluster pays the most under every software tool: dense\n loads/stores for MEMCHECK, 150 kernel invocations for the per-launch\n canary tools — the paper's §8.5 observation)"
    );
    out
}
