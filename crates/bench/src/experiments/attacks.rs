//! Security exhibits: the Fig. 4 overflow demonstration, Table 1's memory
//! types, and Table 4's coverage scenarios.

use gpushield::{Arg, System, SystemConfig, ViolationKind};
use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use std::fmt::Write as _;
use std::sync::Arc;

/// `A[offset_elems] = 0xBAD` from a single thread — the Fig. 4 kernel with
/// the offset as an argument.
fn overflow_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("kernel_overflow");
    let a = b.param_buffer("A", false);
    let off_elems = b.param_scalar("off");
    let off = b.shl(off_elems, Operand::Imm(2));
    b.st(
        MemSpace::Global,
        MemWidth::W4,
        b.base_offset(a, off),
        Operand::Imm(0xBAD),
    );
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

fn run_case(sys: &mut System, off_elems: u64) -> (bool, &'static str) {
    let a = sys.alloc(16 * 4).expect("A");
    let bb = sys.alloc(16 * 4).expect("B");
    let report = sys
        .launch(
            overflow_kernel(),
            1,
            1,
            &[Arg::Buffer(a), Arg::Scalar(off_elems)],
        )
        .expect("launch");
    if !report.completed() {
        return (false, "kernel aborted");
    }
    // Observable from the host (the CPU side of the SVM allocation).
    if off_elems == 0x80 && sys.read_uint(bb, 0, 4) == 0xBAD {
        (true, "silent overflow: B corrupted")
    } else {
        (true, "completed; no visible side effect (suppressed)")
    }
}

/// Fig. 4: the three out-of-bounds write cases, unprotected vs GPUShield.
pub fn fig4_overflow(_jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 4 — OOB writes on 512B-aligned SVM buffers (A, B adjacent)\n"
    );
    let cases = [
        (0x10u64, "case 1: within the 512B slot"),
        (0x80, "case 2: within the 2MB region (lands in B)"),
        (0x80000, "case 3: crossing the mapped 2MB region"),
    ];
    out.push_str("unprotected GPU:\n");
    for (off, desc) in cases {
        let mut sys = System::new(SystemConfig::nvidia_baseline());
        let (_completed, what) = run_case(&mut sys, off);
        let _ = writeln!(out, "  A[0x{off:x}]  {desc:<46} -> {what}");
    }
    out.push_str("\nGPUShield:\n");
    for (off, desc) in cases {
        let mut sys = System::new(SystemConfig::nvidia_protected());
        let (completed, _what) = run_case(&mut sys, off);
        let verdict = if !completed && !sys.violations().is_empty() {
            "bounds violation detected, kernel aborted"
        } else if !completed {
            "kernel aborted"
        } else {
            "MISSED (unexpected)"
        };
        let _ = writeln!(out, "  A[0x{off:x}]  {desc:<46} -> {verdict}");
    }
    out
}

/// Table 1: memory types, scope, location, and overflow possibility.
pub fn table1_memory_types(_jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 — GPU memory types and their vulnerabilities\n"
    );
    let _ = writeln!(
        out,
        "{:<16} {:<12} {:<9} {:<22} GPUShield coverage",
        "type", "scope", "location", "overflow possibility"
    );
    let rows = [
        ("Register", "Thread", "On-chip", "No", "-"),
        (
            "Local (stack)",
            "Thread",
            "Off-chip",
            "Yes",
            "per-variable bounds",
        ),
        (
            "Shared",
            "Workgroup",
            "On-chip",
            "Yes",
            "out of scope (on-chip)",
        ),
        (
            "Global",
            "Application",
            "Off-chip",
            "Yes",
            "per-buffer bounds",
        ),
        (
            "Heap",
            "Application",
            "Off-chip",
            "Yes",
            "whole-chunk bounds",
        ),
        (
            "Constant",
            "Application",
            "Off-chip",
            "No (read only)",
            "read-only enforced",
        ),
        (
            "Texture/Surface",
            "Application",
            "Off-chip",
            "No (read only)",
            "read-only enforced",
        ),
        ("SVM", "Application", "Off-chip", "Yes", "per-buffer bounds"),
    ];
    for (t, s, l, o, c) in rows {
        let _ = writeln!(out, "{t:<16} {s:<12} {l:<9} {o:<22} {c}");
    }
    let _ = writeln!(
        out,
        "\n(the Yes rows are demonstrated by tests/security.rs; Fig. 4 shows the\n global/SVM case end to end)"
    );
    out
}

/// Table 4: the three coverage rows, each demonstrated by an attack that
/// GPUShield stops.
pub fn table4_coverage(_jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4 — security coverage by GPUShield\n");

    // Row 1: host-allocated buffers — isolation per buffer.
    let blocked1 = {
        let mut sys = System::new(SystemConfig::nvidia_protected());
        let a = sys.alloc(64).expect("A");
        let _victim = sys.alloc(64).expect("victim");
        let r = sys
            .launch(
                overflow_kernel(),
                1,
                1,
                &[Arg::Buffer(a), Arg::Scalar(0x80)],
            )
            .expect("launch");
        !r.completed()
            && sys
                .violations()
                .iter()
                .any(|v| v.kind == ViolationKind::OutOfBounds)
    };

    // Row 2: local memory — a thread overflowing its local variable.
    let blocked2 = {
        let mut b = KernelBuilder::new("local_overflow");
        let v = b.local_var("arr", 16);
        let base = b.local_base(v);
        // Store far past the variable's interleaved region.
        b.st(
            MemSpace::Local,
            MemWidth::W4,
            b.base_offset(base, Operand::Imm(1 << 20)),
            Operand::Imm(0xBAD),
        );
        b.ret();
        let k = Arc::new(b.finish().expect("valid"));
        let mut sys = System::new(SystemConfig::nvidia_protected());
        let r = sys.launch(k, 1, 32, &[]).expect("launch");
        !r.completed()
    };

    // Row 3: heap — a kernel walking past its heap chunk.
    let blocked3 = {
        let mut b = KernelBuilder::new("heap_overflow");
        let p = b.malloc(Operand::Imm(16));
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(p, Operand::Imm(1 << 21)),
            Operand::Imm(0xBAD),
        );
        b.ret();
        let k = Arc::new(b.finish().expect("valid"));
        let mut sys = System::new(SystemConfig::nvidia_protected());
        sys.set_heap_limit(1 << 16).expect("heap limit");
        let r = sys.launch(k, 1, 1, &[]).expect("launch");
        !r.completed()
    };

    let row = |ok: bool| {
        if ok {
            "isolation enforced (attack aborted)"
        } else {
            "NOT BLOCKED"
        }
    };
    let _ = writeln!(out, "{:<24} {}", "Host-allocated buffers", row(blocked1));
    let _ = writeln!(out, "{:<24} {}", "Local memory", row(blocked2));
    let _ = writeln!(out, "{:<24} {}", "Heap memory", row(blocked3));
    let _ = writeln!(
        out,
        "\n(pointer forging and RBT-access attacks are covered by tests/security.rs)"
    );
    out
}
