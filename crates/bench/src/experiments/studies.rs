//! The two side studies: device-heap malloc overhead (§5.2.1 footnote 2)
//! and in-kernel software bounds checking (§6.4).

use crate::adapter::SystemHost;
use crate::runner::{config, Protection, Target};
use gpushield_workloads::kernels::{
    kmeans_swap_checked_per_access, kmeans_swap_kernel, malloc_kernel, streaming_kernel,
};
use gpushield_workloads::rodinia::{kmeans_assign_checked_kernel, kmeans_assign_kernel};
use gpushield_workloads::{AddrStyle, HostApi, WArg};
use std::fmt::Write as _;

/// §5.2.1 footnote 2: CUDA `malloc()` in-kernel is 4.9–63.7× slower than
/// writing to a pre-allocated buffer, and the gap grows with the number of
/// blocks because the device allocator serializes.
pub fn malloc_study(_jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 5.2.1 — device-heap malloc overhead (16B per-thread allocs;\n paper: 4.9x–63.7x slowdown, growing with blocks per grid)\n"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>14} {:>9}",
        "blocks(x128t)", "malloc(cyc)", "prealloc(cyc)", "slowdown"
    );
    for grid in [4u32, 16, 64] {
        let n = u64::from(grid) * 128;

        let mut with_malloc = SystemHost::new(config(Target::Nvidia, Protection::baseline()));
        with_malloc.set_heap(n * 64 + (1 << 16));
        let km = malloc_kernel("malloc_bench", 16);
        let out_buf = with_malloc.alloc(n * 8);
        with_malloc.launch(&km, grid, 128, &[WArg::Buf(out_buf)]);

        let mut pre = SystemHost::new(config(Target::Nvidia, Protection::baseline()));
        let kp = streaming_kernel("prealloc_bench", 0, 2, AddrStyle::BaseOffset);
        let pre_buf = pre.alloc(n * 4);
        pre.launch(&kp, grid, 128, &[WArg::Buf(pre_buf), WArg::Scalar(n)]);

        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>14} {:>8.1}x",
            grid,
            with_malloc.total_cycles(),
            pre.total_cycles(),
            with_malloc.total_cycles() as f64 / pre.total_cycles() as f64
        );
    }
    let _ = writeln!(
        out,
        "\n(this is why GPUShield protects the heap as one coarse region rather\n than per-allocation, §5.2.1)"
    );
    out
}

/// §6.4: the cost of in-kernel `if`-clause bounds checking vs letting
/// GPUShield check in hardware.
pub fn swcheck_study(_jobs: usize) -> String {
    const NPOINTS: u64 = 8192;
    const NFEAT: i64 = 8;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 6.4 — software bounds checking in the kmeans swap kernel\n (paper: up to 76% overhead from extra instructions and divergence)\n"
    );

    // Exact-fit launch: every thread is in bounds; the `if` is pure
    // instruction overhead.
    let run = |sw_check: bool, shield: bool, grid: u32| -> u64 {
        let prot = if shield {
            Protection::shield_default()
        } else {
            Protection::baseline()
        };
        let mut host = SystemHost::new(config(Target::Nvidia, prot));
        let k = kmeans_swap_kernel("swcheck_kmeans", sw_check, NFEAT);
        let feat = host.alloc(NPOINTS * NFEAT as u64 * 4);
        let swap = host.alloc(NPOINTS * NFEAT as u64 * 4);
        host.launch(
            &k,
            grid,
            256,
            &[WArg::Buf(feat), WArg::Buf(swap), WArg::Scalar(NPOINTS)],
        );
        host.total_cycles()
    };

    let grid_exact = (NPOINTS / 256) as u32;
    let hw = run(false, true, grid_exact);
    let sw = run(true, false, grid_exact);
    let none = run(false, false, grid_exact);
    let _ = writeln!(out, "exact-fit launch ({} threads):", NPOINTS);
    let _ = writeln!(out, "  no checking            {none:>8} cycles (unsafe)");
    let _ = writeln!(
        out,
        "  software if-clause     {sw:>8} cycles ({:+.1}% vs unsafe)",
        (sw as f64 / none as f64 - 1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "  GPUShield (hardware)   {hw:>8} cycles ({:+.1}% vs unsafe)",
        (hw as f64 / none as f64 - 1.0) * 100.0
    );

    // Per-access checking: every iteration validates both indices — the
    // heavy end of hand-written software checking.
    let per_access = {
        let mut host = SystemHost::new(config(Target::Nvidia, Protection::baseline()));
        let k = kmeans_swap_checked_per_access("swcheck_kmeans_pa", NFEAT);
        let feat = host.alloc(NPOINTS * NFEAT as u64 * 4);
        let swap = host.alloc(NPOINTS * NFEAT as u64 * 4);
        host.launch(
            &k,
            grid_exact,
            256,
            &[WArg::Buf(feat), WArg::Buf(swap), WArg::Scalar(NPOINTS)],
        );
        host.total_cycles()
    };
    let _ = writeln!(
        out,
        "  per-access if-clauses  {per_access:>8} cycles ({:+.1}% vs unsafe)",
        (per_access as f64 / none as f64 - 1.0) * 100.0
    );

    // Oversized launch: the hoisted `if` now also causes divergence (the
    // overflow-threat case the guard exists for).
    let grid_over = grid_exact * 2;
    let sw_over = run(true, false, grid_over);
    let _ = writeln!(
        out,
        "\noversized launch ({} threads for {} points):",
        u64::from(grid_over) * 256,
        NPOINTS
    );
    let _ = writeln!(
        out,
        "  software if-clause     {sw_over:>8} cycles ({:+.1}% vs useful work)",
        (sw_over as f64 / none as f64 - 1.0) * 100.0
    );
    // Issue-bound variant: a small working set keeps the data near the
    // core, so the guard's extra instructions are on the critical path —
    // the regime where the paper measures up to 76%.
    let small = |mode: u8| -> u64 {
        const SMALL_N: u64 = 1024;
        const SMALL_F: i64 = 4;
        let mut host = SystemHost::new(config(Target::Nvidia, Protection::baseline()));
        let k = match mode {
            0 => kmeans_swap_kernel("swcheck_small", false, SMALL_F),
            1 => kmeans_swap_kernel("swcheck_small_sw", true, SMALL_F),
            _ => kmeans_swap_checked_per_access("swcheck_small_pa", SMALL_F),
        };
        let feat = host.alloc(SMALL_N * SMALL_F as u64 * 4);
        let swap = host.alloc(SMALL_N * SMALL_F as u64 * 4);
        let args = [WArg::Buf(feat), WArg::Buf(swap), WArg::Scalar(SMALL_N)];
        for _ in 0..10 {
            host.launch(&k, (SMALL_N / 256) as u32, 256, &args);
        }
        host.total_cycles()
    };
    let s_none = small(0);
    let s_sw = small(1);
    let s_pa = small(2);
    let _ = writeln!(
        out,
        "\nissue-bound variant (small working set, 10 launches):"
    );
    let _ = writeln!(out, "  no checking            {s_none:>8} cycles");
    let _ = writeln!(
        out,
        "  software if-clause     {s_sw:>8} cycles ({:+.1}%)",
        (s_sw as f64 / s_none as f64 - 1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "  per-access if-clauses  {s_pa:>8} cycles ({:+.1}%)",
        (s_pa as f64 / s_none as f64 - 1.0) * 100.0
    );
    // Compute-bound case: per-access checks inside the kmeans assignment's
    // k × nfeat distance loop — the regime where the paper measures up to
    // 76% overhead.
    let assign = |checked: bool| -> u64 {
        const AN: u64 = 8192;
        const AK: i64 = 5;
        const AF: i64 = 8;
        let mut host = SystemHost::new(config(Target::Nvidia, Protection::baseline()));
        let k = if checked {
            kmeans_assign_checked_kernel("swcheck_assign_pa", AK, AF)
        } else {
            kmeans_assign_kernel("swcheck_assign", AK, AF)
        };
        let feat = host.alloc(AN * AF as u64 * 4);
        let centers = host.alloc((AK * AF) as u64 * 4);
        let membership = host.alloc(AN * 4);
        host.launch(
            &k,
            (AN / 256) as u32,
            256,
            &[
                WArg::Buf(feat),
                WArg::Buf(centers),
                WArg::Buf(membership),
                WArg::Scalar(AN),
            ],
        );
        host.total_cycles()
    };
    let a_none = assign(false);
    let a_checked = assign(true);
    let _ = writeln!(out, "\ncompute-bound kmeans assignment (k=5, nfeat=8):");
    let _ = writeln!(out, "  no checking            {a_none:>8} cycles");
    let _ = writeln!(
        out,
        "  per-access if-clauses  {a_checked:>8} cycles ({:+.1}%)",
        (a_checked as f64 / a_none as f64 - 1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "\n(GPUShield can subsume these guards in hardware — future work in the\n paper, §6.4)"
    );
    out
}
