//! The forensics exhibit: replay a violating slice of the adversarial
//! fuzz corpus and the fault-injection sweep with the flight recorder in
//! full mode, and pin each run's post-mortem — human-readable and
//! machine-readable JSON side by side.
//!
//! Every replayed fuzz specimen's post-mortem is cross-checked against
//! its [`PlantedBug`](gpushield_fuzzgen::PlantedBug) oracle: the guilty
//! memory-instruction ordinal recovered from the ring must equal the
//! ordinal the generator planted, and the logged violating range must
//! overlap the oracle's victim window where one resolves to virtual
//! addresses. The rendered output is byte-identical at any `--jobs` and
//! any `--sim-threads` value (per-core event outboxes drain in canonical
//! order; see DESIGN.md section 16).

use crate::fuzzsweep;
use crate::runner::{self, fan_out};
use gpushield::{Arg, BufferHandle, FaultKind, FaultPlan, ObserveMode, System};
use gpushield_fuzzgen::{Expected, Specimen};
use gpushield_runtime::rng::derive_seed;
use std::fmt::Write as _;

use super::resilience;

/// Fault count per replayed injection trial: enough pressure that every
/// kind deterministically perturbs the run.
const FAULT_COUNT: usize = 4;

/// Replays one specimen with full observation and renders its
/// post-mortem plus the oracle cross-check.
fn replay_specimen(s: &Specimen) -> String {
    let mut sys = System::new(fuzzsweep::sweep_config(true));
    sys.enable_observation(ObserveMode::Full);
    let bufs: Vec<BufferHandle> = s
        .buffers
        .iter()
        .map(|&b| sys.alloc(b).expect("specimen buffer"))
        .collect();
    if s.heap_limit > 0 {
        sys.set_heap_limit(s.heap_limit).expect("heap limit");
    }
    let args: Vec<Arg> = bufs.iter().map(|&h| Arg::Buffer(h)).collect();
    let _ = sys.launch(s.kernel.clone(), s.grid, s.block, &args);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== fuzz specimen {} (class {}) ==",
        s.name,
        s.bug.class.slug()
    );
    let Some(pm) = sys.post_mortem() else {
        let _ = writeln!(out, "  no anomaly resident - post-mortem unavailable");
        return out;
    };
    for line in pm.render_text().lines() {
        let _ = writeln!(out, "  {line}");
    }
    let recovered = pm.guilty_mem_ordinal(&s.kernel);
    let ordinal_ok = recovered.is_some() && recovered == s.bug.mem_ordinal;
    let window = fuzzsweep::victim_window(s, &sys, &bufs);
    let overlap = match (window, pm.violation.as_ref()) {
        (Some((lo, hi)), Some(v)) => {
            if v.range.0 < hi && v.range.1 > lo {
                "yes"
            } else {
                "NO"
            }
        }
        // No VA window (locals, controls): the site is the evidence.
        (None, _) => "n/a",
        (Some(_), None) => "NO",
    };
    let _ = writeln!(
        out,
        "  oracle: planted mem_ordinal={:?} recovered={:?} match={} | \
         victim_window_overlap={} victim_named={}",
        s.bug.mem_ordinal,
        recovered,
        if ordinal_ok { "yes" } else { "NO" },
        overlap,
        if pm.victim.is_some() { "yes" } else { "NO" }
    );
    let _ = writeln!(out, "  json: {}", pm.render_json());
    out
}

/// Replays one fault-injection trial (the resilience sweep's workloads)
/// with full observation and renders its post-mortem.
fn replay_fault(kind: FaultKind, spin: bool) -> String {
    let mut cfg = resilience::sys_config(true);
    cfg.gpu.sim_threads = runner::sim_threads();
    let mut sys = System::new(cfg);
    sys.enable_observation(ObserveMode::Full);
    let (kernel, grid, block, words, window) = if spin {
        (resilience::spin_kernel(), 1u32, 32u32, 8u64, 5u64)
    } else {
        (resilience::linear_kernel(), 4u32, 32u32, 128u64, 4u64)
    };
    let buf = sys.alloc(words * 4).expect("trial buffer");
    if spin {
        sys.write_buffer(buf, 0, &1u32.to_le_bytes());
    }
    let plan_seed = derive_seed(u64::from(spin), &format!("forensics-fault/{}", kind.name()));
    let plan = FaultPlan::generate(plan_seed, &[kind], FAULT_COUNT, window);
    let _ = sys.launch_with_faults(kernel, grid, block, &[Arg::Buffer(buf)], plan);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== fault trial {} ({} workload) ==",
        kind.name(),
        if spin { "spin" } else { "store" }
    );
    match sys.post_mortem() {
        Some(pm) => {
            for line in pm.render_text().lines() {
                let _ = writeln!(out, "  {line}");
            }
            let _ = writeln!(
                out,
                "  injections resident in ring: {}",
                pm.faults_injected.len()
            );
            let _ = writeln!(out, "  json: {}", pm.render_json());
        }
        None => {
            let _ = writeln!(
                out,
                "  no anomaly resident - corruption was masked or benignly absorbed"
            );
        }
    }
    out
}

/// One replay case, unified so the fan-out preserves submission order.
enum Case {
    Specimen(Specimen),
    Fault(FaultKind, bool),
}

/// The exhibit: one specimen per Detected-expected bug class, then every
/// fault kind against both resilience workloads.
pub fn forensics(jobs: usize) -> String {
    let corpus = gpushield_fuzzgen::corpus(gpushield_fuzzgen::CORPUS_SEED, 1);
    let mut cases: Vec<Case> = corpus
        .into_iter()
        .filter(|s| s.bug.class.expected() == Expected::Detected)
        .map(Case::Specimen)
        .collect();
    let specimens = cases.len();
    for kind in FaultKind::ALL {
        for spin in [false, true] {
            cases.push(Case::Fault(kind, spin));
        }
    }
    let faults = cases.len() - specimens;

    let tasks: Vec<_> = cases
        .into_iter()
        .map(|c| {
            move || match c {
                Case::Specimen(s) => replay_specimen(&s),
                Case::Fault(kind, spin) => replay_fault(kind, spin),
            }
        })
        .collect();
    let sections = fan_out(tasks, jobs);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Flight-recorder forensics — {specimens} fuzz specimens (one per Detected class,\n \
         corpus seed 0x{:X}) and {faults} fault-injection trials replayed under full\n \
         observation; each post-mortem walks the event ring backwards from the anomaly\n \
         and is cross-checked against the specimen's PlantedBug oracle\n",
        gpushield_fuzzgen::CORPUS_SEED
    );
    for s in &sections {
        out.push_str(s);
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "(post-mortems are byte-identical at any --jobs and --sim-threads value: per-core\n \
         outboxes replay into the ring in canonical (cycle, core, sequence) order — see\n \
         DESIGN.md section 16)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_fuzzgen::BugClass;

    #[test]
    fn exhibit_is_deterministic_across_job_counts() {
        let a = forensics(1);
        let b = forensics(4);
        assert_eq!(a, b, "rendered forensics must not depend on worker count");
    }

    #[test]
    fn every_detected_specimen_post_mortem_matches_its_oracle() {
        let text = forensics(2);
        let detected_classes = BugClass::ALL
            .iter()
            .filter(|c| c.expected() == Expected::Detected)
            .count();
        let matches = text.matches("match=yes").count();
        assert_eq!(
            matches, detected_classes,
            "every replayed specimen must recover the planted ordinal"
        );
        assert_eq!(text.matches("match=NO").count(), 0);
        assert_eq!(text.matches("victim_named=NO").count(), 0);
        assert_eq!(text.matches("window_overlap=NO").count(), 0);
    }

    #[test]
    fn fault_trials_record_their_injections() {
        let text = forensics(2);
        for kind in FaultKind::ALL {
            assert!(
                text.contains(&format!("== fault trial {}", kind.name())),
                "{} trial missing",
                kind.name()
            );
        }
        assert!(text.contains("injections resident in ring:"));
    }
}
