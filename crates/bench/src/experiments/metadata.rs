//! Metadata-driven exhibits: Figs. 1 and 11, Tables 2, 3, 5, and 6.

use gpushield::GpuConfig;
use gpushield_workloads::{all, fig11_set, Category, Suite};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fig. 1: distribution of the number of buffers per kernel across suites.
pub fn fig1_buffers(_jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 1 — buffers per kernel (paper: max 34, avg 6.5 over 145 benchmarks;"
    );
    let _ = writeln!(
        out,
        "         here: the workload-model registry, same bucket boundaries)\n"
    );
    let mut per_suite: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for w in all() {
        let p = w.probe();
        per_suite
            .entry(w.suite().to_string())
            .or_default()
            .push(p.max_buffers_per_kernel);
    }
    let _ = writeln!(
        out,
        "{:<16} {:>4} {:>4} {:>4} {:>5} {:>6}",
        "suite", "<5", "<10", "<20", ">=20", "total"
    );
    let mut all_counts: Vec<usize> = Vec::new();
    for (suite, counts) in &per_suite {
        let b = |lo: usize, hi: usize| counts.iter().filter(|c| **c >= lo && **c < hi).count();
        let _ = writeln!(
            out,
            "{:<16} {:>4} {:>4} {:>4} {:>5} {:>6}",
            suite,
            b(0, 5),
            b(5, 10),
            b(10, 20),
            counts.iter().filter(|c| **c >= 20).count(),
            counts.len()
        );
        all_counts.extend_from_slice(counts);
    }
    let avg = all_counts.iter().sum::<usize>() as f64 / all_counts.len() as f64;
    let max = all_counts.iter().max().copied().unwrap_or(0);
    let _ = writeln!(out, "\nmax: {max}, avg: {avg:.1}");
    out
}

/// Fig. 11: 4KB pages per buffer for the Rodinia-model workloads.
pub fn fig11_pages(_jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 11 — 4KB pages per buffer, Rodinia models (paper avg: 1425 pages"
    );
    let _ = writeln!(
        out,
        "          at full input scale; workloads here run scaled-down inputs,"
    );
    let _ = writeln!(
        out,
        "          preserving the pages-per-buffer >> 1 relation that makes"
    );
    let _ = writeln!(out, "          TLB misses dominate RCache misses)\n");
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>15}",
        "benchmark", "buffers", "pages/buffer"
    );
    let mut rates = Vec::new();
    for w in fig11_set() {
        let p = w.probe();
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>15.1}",
            w.display_name(),
            p.buffer_sizes.len(),
            p.avg_pages_per_buffer()
        );
        rates.push(p.avg_pages_per_buffer());
    }
    let avg = rates.iter().sum::<f64>() / rates.len() as f64;
    let _ = writeln!(
        out,
        "\naverage: {avg:.1} pages/buffer (>= 1 page per buffer everywhere)"
    );
    out
}

/// Table 2: the mechanism-comparison matrix.
pub fn table2_comparison(_jobs: usize) -> String {
    format!(
        "Table 2 — memory-safety mechanism comparison\n\n{}",
        gpushield_baselines::comparison::render_table2()
    )
}

/// Table 3: BCU area/power from the calibrated cost model.
pub fn table3_hwcost(_jobs: usize) -> String {
    let cost = gpushield_hwcost::bcu_cost(4, 64);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3 — area and power overhead (45nm model, per core)\n"
    );
    let _ = write!(out, "{cost}");
    let _ = writeln!(
        out,
        "\nwhole-GPU SRAM: Nvidia (16 cores) {:.1} KB, Intel (24 cores) {:.1} KB",
        cost.gpu_total_kb(16),
        cost.gpu_total_kb(24)
    );
    out
}

fn render_gpu(cfg: &GpuConfig) -> String {
    format!(
        "  {}: {} cores, {} threads/core, warp width {}, {} KB L1 ({}-way),\n    {} L1-TLB entries, {} MB shared L2, {} L2-TLB entries, {} DRAM channels",
        cfg.name,
        cfg.num_cores,
        cfg.threads_per_core,
        cfg.warp_width,
        cfg.l1_bytes / 1024,
        cfg.l1_ways,
        cfg.l1_tlb_entries,
        cfg.l2_bytes / 1024 / 1024,
        cfg.l2_tlb_entries,
        cfg.dram.channels
    )
}

/// Table 5: the simulated-system configurations.
pub fn table5_config(_jobs: usize) -> String {
    format!(
        "Table 5 — simulated system configurations\n\n{}\n{}\n",
        render_gpu(&GpuConfig::nvidia()),
        render_gpu(&GpuConfig::intel())
    )
}

/// Table 6: the benchmark list by domain.
pub fn table6_benchmarks(_jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6 — evaluated benchmarks (* = RCache-sensitive, Fig. 15)\n"
    );
    for cat in [
        Category::Ml,
        Category::La,
        Category::Gt,
        Category::Gi,
        Category::Ps,
        Category::Im,
        Category::Dm,
        Category::OpenCl,
    ] {
        let names: Vec<String> = all()
            .iter()
            .filter(|w| w.category() == cat)
            .map(|w| {
                if w.rcache_sensitive() {
                    format!("{}*", w.display_name())
                } else {
                    w.display_name().to_string()
                }
            })
            .collect();
        let _ = writeln!(out, "{:<8} {}", cat.to_string(), names.join(", "));
    }
    let cuda = all().iter().filter(|w| w.suite() != Suite::OpenCl).count();
    let ocl = all().iter().filter(|w| w.suite() == Suite::OpenCl).count();
    let _ = writeln!(out, "\n{cuda} CUDA-model + {ocl} OpenCL-model workloads");
    out
}
