//! One module per paper table/figure; each experiment runs fresh
//! simulations and renders a plain-text reproduction of the exhibit.

mod ablations;
mod attacks;
mod metadata;
mod multikernel;
mod perf;
mod studies;
mod tools;

/// A runnable experiment.
pub struct Experiment {
    /// Short id (`fig14`, `table3`, …).
    pub id: &'static str,
    /// What the paper exhibit shows.
    pub title: &'static str,
    /// Runs the experiment and renders its table.
    pub run: fn() -> String,
}

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            title: "Distribution of the number of buffers per GPU kernel",
            run: metadata::fig1_buffers,
        },
        Experiment {
            id: "fig4",
            title: "SVM buffer-overflow behaviour on an unprotected GPU vs GPUShield",
            run: attacks::fig4_overflow,
        },
        Experiment {
            id: "table1",
            title: "GPU memory types and their vulnerabilities",
            run: attacks::table1_memory_types,
        },
        Experiment {
            id: "table2",
            title: "Comparison with previous memory-safety mechanisms",
            run: metadata::table2_comparison,
        },
        Experiment {
            id: "table3",
            title: "Area and power overhead of the BCU",
            run: metadata::table3_hwcost,
        },
        Experiment {
            id: "table4",
            title: "Security coverage of GPUShield",
            run: attacks::table4_coverage,
        },
        Experiment {
            id: "table5",
            title: "Configuration of the simulated system",
            run: metadata::table5_config,
        },
        Experiment {
            id: "table6",
            title: "Evaluated benchmarks",
            run: metadata::table6_benchmarks,
        },
        Experiment {
            id: "fig11",
            title: "Number of 4KB pages per buffer (Rodinia)",
            run: metadata::fig11_pages,
        },
        Experiment {
            id: "fig14",
            title: "Performance per category under GPUShield (Nvidia)",
            run: perf::fig14_overhead,
        },
        Experiment {
            id: "fig15",
            title: "L1 RCache size sensitivity (Nvidia)",
            run: perf::fig15_l1_size,
        },
        Experiment {
            id: "fig16",
            title: "L1 RCache hit rate on the Intel GPU",
            run: perf::fig16_intel,
        },
        Experiment {
            id: "fig17",
            title: "Effect of static bounds-checking filtering",
            run: perf::fig17_static,
        },
        Experiment {
            id: "fig18",
            title: "Multi-kernel execution (inter-core vs intra-core)",
            run: multikernel::fig18_multikernel,
        },
        Experiment {
            id: "fig19",
            title: "Software bounds-checking tools vs GPUShield (Rodinia)",
            run: tools::fig19_tools,
        },
        Experiment {
            id: "malloc",
            title: "Device-heap malloc overhead study (Section 5.2.1)",
            run: studies::malloc_study,
        },
        Experiment {
            id: "swcheck",
            title: "In-kernel software bounds checking (Section 6.4)",
            run: studies::swcheck_study,
        },
        Experiment {
            id: "ablation",
            title: "Design ablations: warp-level checking and Type 3 pointers",
            run: ablations::ablations,
        },
    ]
}

/// Looks up an experiment by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}
