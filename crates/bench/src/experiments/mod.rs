//! One module per paper table/figure; each experiment runs fresh
//! simulations and renders a plain-text reproduction of the exhibit.

mod ablations;
mod attacks;
mod forensics;
mod fuzzing;
mod metadata;
mod multikernel;
mod perf;
pub mod precision;
mod profile;
pub mod resilience;
mod studies;
mod tenancy;
mod tools;
mod verifier;

/// A runnable experiment.
pub struct Experiment {
    /// Short id (`fig14`, `table3`, …).
    pub id: &'static str,
    /// What the paper exhibit shows.
    pub title: &'static str,
    /// Runs the experiment and renders its table. The argument is the
    /// worker count for the experiment's inner simulation sweep (`--jobs`);
    /// the rendered output is identical for every value.
    pub run: fn(usize) -> String,
}

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            title: "Distribution of the number of buffers per GPU kernel",
            run: metadata::fig1_buffers,
        },
        Experiment {
            id: "fig4",
            title: "SVM buffer-overflow behaviour on an unprotected GPU vs GPUShield",
            run: attacks::fig4_overflow,
        },
        Experiment {
            id: "table1",
            title: "GPU memory types and their vulnerabilities",
            run: attacks::table1_memory_types,
        },
        Experiment {
            id: "table2",
            title: "Comparison with previous memory-safety mechanisms",
            run: metadata::table2_comparison,
        },
        Experiment {
            id: "table3",
            title: "Area and power overhead of the BCU",
            run: metadata::table3_hwcost,
        },
        Experiment {
            id: "table4",
            title: "Security coverage of GPUShield",
            run: attacks::table4_coverage,
        },
        Experiment {
            id: "table5",
            title: "Configuration of the simulated system",
            run: metadata::table5_config,
        },
        Experiment {
            id: "table6",
            title: "Evaluated benchmarks",
            run: metadata::table6_benchmarks,
        },
        Experiment {
            id: "fig11",
            title: "Number of 4KB pages per buffer (Rodinia)",
            run: metadata::fig11_pages,
        },
        Experiment {
            id: "fig14",
            title: "Performance per category under GPUShield (Nvidia)",
            run: perf::fig14_overhead,
        },
        Experiment {
            id: "fig15",
            title: "L1 RCache size sensitivity (Nvidia)",
            run: perf::fig15_l1_size,
        },
        Experiment {
            id: "fig16",
            title: "L1 RCache hit rate on the Intel GPU",
            run: perf::fig16_intel,
        },
        Experiment {
            id: "fig17",
            title: "Effect of static bounds-checking filtering",
            run: perf::fig17_static,
        },
        Experiment {
            id: "fig18",
            title: "Multi-kernel execution (inter-core vs intra-core)",
            run: multikernel::fig18_multikernel,
        },
        Experiment {
            id: "fig19",
            title: "Software bounds-checking tools vs GPUShield (Rodinia)",
            run: tools::fig19_tools,
        },
        Experiment {
            id: "malloc",
            title: "Device-heap malloc overhead study (Section 5.2.1)",
            run: studies::malloc_study,
        },
        Experiment {
            id: "swcheck",
            title: "In-kernel software bounds checking (Section 6.4)",
            run: studies::swcheck_study,
        },
        Experiment {
            id: "ablation",
            title: "Design ablations: warp-level checking and Type 3 pointers",
            run: ablations::ablations,
        },
        Experiment {
            id: "fault_resilience",
            title: "Graceful degradation under injected protection-metadata faults",
            run: resilience::fault_resilience,
        },
        Experiment {
            id: "fuzz_scoreboard",
            title: "Adversarial fuzz corpus: per-bug-class detection scoreboard",
            run: fuzzing::fuzz_scoreboard,
        },
        Experiment {
            id: "static_analysis",
            title: "Registry-wide check-site taxonomy and verifier findings (Fig. 16)",
            run: verifier::static_analysis,
        },
        Experiment {
            id: "bat_soundness",
            title: "BAT soundness audit: observed addresses vs static claims",
            run: verifier::bat_soundness,
        },
        Experiment {
            id: "static_precision",
            title: "Relational certificates: Type 2 → Type 1 migration and stall delta",
            run: precision::static_precision,
        },
        Experiment {
            id: "profile",
            title: "Bounds-check stall attribution by metadata path (Fig. 13 analogue)",
            run: profile::profile,
        },
        Experiment {
            id: "forensics",
            title: "Flight-recorder forensics: replayed violations with pinned post-mortems",
            run: forensics::forensics,
        },
        Experiment {
            id: "multi_tenant",
            title: "Multi-tenant serving: isolation domains, ID churn, co-located contention",
            run: tenancy::multi_tenant,
        },
        Experiment {
            id: "qos_fairness",
            title: "Weighted-fair admission across tenants under equal demand",
            run: tenancy::qos_fairness,
        },
    ]
}

/// Looks up an experiment by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden ID list: additions are deliberate, renames are breaking
    /// (results/<id>.json consumers key on these).
    #[test]
    fn experiment_ids_are_the_published_set() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        assert_eq!(
            ids,
            [
                "fig1",
                "fig4",
                "table1",
                "table2",
                "table3",
                "table4",
                "table5",
                "table6",
                "fig11",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "fig18",
                "fig19",
                "malloc",
                "swcheck",
                "ablation",
                "fault_resilience",
                "fuzz_scoreboard",
                "static_analysis",
                "bat_soundness",
                "static_precision",
                "profile",
                "forensics",
                "multi_tenant",
                "qos_fairness",
            ]
        );
    }

    #[test]
    fn ids_are_unique_and_resolvable() {
        let exps = all();
        let mut seen = std::collections::HashSet::new();
        for e in &exps {
            assert!(seen.insert(e.id), "duplicate experiment id {}", e.id);
            assert!(!e.title.is_empty(), "{} has no title", e.id);
            let found = by_id(e.id).unwrap_or_else(|| panic!("by_id misses {}", e.id));
            assert_eq!(found.id, e.id);
            assert!(
                std::ptr::fn_addr_eq(found.run, e.run),
                "{} resolves to a different runner",
                e.id
            );
        }
        assert!(by_id("fig99").is_none());
        assert!(by_id("").is_none());
    }
}
