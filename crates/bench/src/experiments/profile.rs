//! Stall-attribution exhibit (Fig. 13 analogue): where every runtime
//! bounds check resolved — per-core L1 RCache, shared L2 RCache, or an
//! RBT fetch from device memory — and how many visible stall cycles each
//! path charged, per workload over the whole registry.

use crate::adapter::SystemHost;
use crate::runner::{config, fan_out, run_workload, Protection, Target, WorkloadRun};
use gpushield::Registry;
use gpushield_telemetry::{Histogram, MetricValue};
use gpushield_workloads::{all, by_name};
use std::fmt::Write as _;

/// Workloads whose visible-stall distributions the percentile section
/// summarises (one streaming, one irregular, one long-running).
const HIST_WORKLOADS: [&str; 3] = ["vectoradd", "bfs", "streamcluster"];

/// Runs one workload instrumented and extracts the visible-stall log2
/// histogram from its registry.
fn stall_histogram(name: &str) -> Option<Histogram> {
    let w = by_name(name)?;
    let mut host = SystemHost::new(config(Target::Nvidia, Protection::shield_default()));
    host.attach_registry(Registry::new());
    w.run(&mut host);
    let reg = host.take_registry()?;
    match reg.lookup("sim.hist.visible_stall_cycles") {
        Some(MetricValue::Histogram(h)) => Some(h.clone()),
        _ => None,
    }
}

/// The `profile` exhibit: per-workload bounds-check stall attribution
/// under default GPUShield (Nvidia). Deterministic and byte-identical
/// for every `jobs` width: the fan-out pool returns results in
/// submission order and every quantity is a simulated-cycle count.
pub fn profile(jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Stall attribution — where runtime bounds checks resolve (Fig. 13 analogue)"
    );
    let _ = writeln!(
        out,
        "Nvidia, default GPUShield (4-entry L1 RCache @1cy, L2 RCache @3cy)\n"
    );
    let runs: Vec<WorkloadRun> = fan_out(
        all()
            .into_iter()
            .map(|w| move || run_workload(&w, Target::Nvidia, Protection::shield_default()))
            .collect(),
        jobs,
    );
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "workload", "checks", "l1_hit", "l2_hit", "rbt", "type3", "stall_cyc", "cycles%"
    );
    let mut total = gpushield_sim::StallAttribution::default();
    let mut total_cycles = 0u64;
    let mut total_stalls = 0u64;
    for r in &runs {
        let a = &r.attribution;
        let checks = a.l1_hits + a.l2_hits + a.rbt_fetches + a.type3_checks;
        let stalls = a.stall_cycles();
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>7.2}%",
            r.name,
            checks,
            a.l1_hits,
            a.l2_hits,
            a.rbt_fetches,
            a.type3_checks,
            stalls,
            100.0 * stalls as f64 / r.cycles.max(1) as f64,
        );
        total.merge(a);
        total_cycles += r.cycles;
        total_stalls += stalls;
    }
    let total_checks = total.l1_hits + total.l2_hits + total.rbt_fetches + total.type3_checks;
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>7.2}%",
        "TOTAL",
        total_checks,
        total.l1_hits,
        total.l2_hits,
        total.rbt_fetches,
        total.type3_checks,
        total_stalls,
        100.0 * total_stalls as f64 / total_cycles.max(1) as f64,
    );
    let _ = writeln!(
        out,
        "\nstall cycles by path: l1 {} / l2 {} / rbt {} / type3 {}",
        total.l1_stall_cycles,
        total.l2_stall_cycles,
        total.rbt_stall_cycles,
        total.type3_stall_cycles,
    );
    if total_checks > 0 {
        let _ = writeln!(
            out,
            "L1 RCache hit rate: {:.1}% (paper: small working set of regions keeps most checks on-core)",
            100.0 * total.l1_hits as f64 / total_checks as f64
        );
    }

    let hists = fan_out(
        HIST_WORKLOADS
            .iter()
            .map(|name| move || stall_histogram(name))
            .collect(),
        jobs,
    );
    let _ = writeln!(
        out,
        "\nvisible-stall distribution (log2 sketch; percentiles are inclusive bucket\n \
         upper bounds, so at most 2x quantisation error):"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "workload", "samples", "mean", "p50", "p95", "p99"
    );
    for (name, h) in HIST_WORKLOADS.iter().zip(hists) {
        match h {
            Some(h) if h.count > 0 => {
                let _ = writeln!(
                    out,
                    "{:<16} {:>9} {:>7} {:>7} {:>7} {:>7}",
                    name,
                    h.count,
                    h.sum / h.count,
                    h.percentile(50.0),
                    h.percentile(95.0),
                    h.percentile(99.0)
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "{:<16} {:>9} {:>7} {:>7} {:>7} {:>7}",
                    name, 0, "-", "-", "-", "-"
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_exhibit_is_jobs_invariant() {
        // Two nontrivial worker counts must render byte-identically — the
        // CI telemetry gate re-checks this over the full binary path.
        let a = profile(1);
        let b = profile(3);
        assert_eq!(a, b);
        assert!(a.contains("TOTAL"));
    }

    #[test]
    fn percentile_section_reports_every_histogram_workload() {
        let text = profile(2);
        assert!(text.contains("visible-stall distribution"));
        let section = text
            .split("visible-stall distribution")
            .nth(1)
            .expect("section present");
        for name in HIST_WORKLOADS {
            assert!(section.contains(name), "{name} row missing");
        }
        // The long-running workload certainly stalls somewhere.
        let row = section
            .lines()
            .find(|l| l.starts_with("streamcluster"))
            .expect("streamcluster row");
        assert!(
            !row.contains('-'),
            "streamcluster must have a populated distribution: {row}"
        );
    }
}
