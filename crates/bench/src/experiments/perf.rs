//! Performance exhibits: Figs. 14–17.

use crate::runner::{geomean, run_workload, Protection, Target};
use gpushield_workloads::{cuda_set, opencl_set, rcache_sensitive_set, Category};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fig. 14: normalized execution time per category under GPUShield with
/// the default and slowed RCache latencies.
pub fn fig14_overhead() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 14 — normalized execution time over no-bounds-check (Nvidia)\n"
    );
    let mut per_cat: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    let order = [
        Category::Ml,
        Category::La,
        Category::Gt,
        Category::Gi,
        Category::Ps,
        Category::Im,
        Category::Dm,
    ];
    for cat in order {
        per_cat.insert(format!("{:02}{}", order.iter().position(|c| *c == cat).unwrap(), cat), (vec![], vec![]));
    }
    let mut all_default = Vec::new();
    let mut all_lat2 = Vec::new();
    for w in cuda_set() {
        let base = run_workload(&w, Target::Nvidia, Protection::baseline());
        let d = run_workload(&w, Target::Nvidia, Protection::shield_lat(1, 3));
        let s = run_workload(&w, Target::Nvidia, Protection::shield_lat(2, 5));
        let rd = d.cycles as f64 / base.cycles as f64;
        let rs = s.cycles as f64 / base.cycles as f64;
        let key = format!(
            "{:02}{}",
            order.iter().position(|c| *c == w.category()).unwrap_or(0),
            w.category()
        );
        if let Some((dv, sv)) = per_cat.get_mut(&key) {
            dv.push(rd);
            sv.push(rs);
        }
        all_default.push(rd);
        all_lat2.push(rs);
    }
    let _ = writeln!(out, "{:<10} {:>18} {:>18}", "category", "L1:1,L2:3 (def.)", "L1:2,L2:5");
    for (key, (dv, sv)) in &per_cat {
        let _ = writeln!(
            out,
            "{:<10} {:>18.3} {:>18.3}",
            &key[2..],
            geomean(dv),
            geomean(sv)
        );
    }
    let _ = writeln!(
        out,
        "{:<10} {:>18.3} {:>18.3}",
        "geomean",
        geomean(&all_default),
        geomean(&all_lat2)
    );
    let _ = writeln!(
        out,
        "\n(paper: no category degrades under the default; the slowed RCache\n exposes the L1D-hit-bound DM workloads most)"
    );
    out
}

fn hit_rate_sweep(target: Target, workloads: Vec<gpushield_workloads::Workload>, title: &str) -> String {
    let sizes = [1usize, 2, 4, 8, 16];
    let mut out = String::new();
    let _ = writeln!(out, "{title}\n");
    let _ = write!(out, "{:<16}", "benchmark");
    for s in sizes {
        let _ = write!(out, " {:>8}", format!("{s}-entry"));
    }
    let _ = writeln!(out);
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for w in workloads {
        let _ = write!(out, "{:<16}", w.display_name());
        for (i, s) in sizes.iter().enumerate() {
            let r = run_workload(
                &w,
                target,
                Protection::shield_default().with_l1_entries(*s),
            );
            let rate = r.bcu.l1_hit_rate() * 100.0;
            per_size[i].push(rate);
            let _ = write!(out, " {:>8.1}", rate);
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<16}", "mean");
    for col in &per_size {
        let mean = col.iter().sum::<f64>() / col.len().max(1) as f64;
        let _ = write!(out, " {:>8.1}", mean);
    }
    let _ = writeln!(out);
    out
}

/// Fig. 15: L1 RCache hit rate vs entry count, RCache-sensitive set.
pub fn fig15_l1_size() -> String {
    hit_rate_sweep(
        Target::Nvidia,
        rcache_sensitive_set(),
        "Fig. 15 — L1 RCache hit rate (%) vs entries, RCache-sensitive set (Nvidia)",
    )
}

/// Fig. 16: the same sweep for the OpenCL set on the Intel configuration.
pub fn fig16_intel() -> String {
    hit_rate_sweep(
        Target::Intel,
        opencl_set(),
        "Fig. 16 — L1 RCache hit rate (%) vs entries, OpenCL set (Intel)",
    )
}

/// Fig. 17: static filtering under lengthened RCache latencies.
pub fn fig17_static() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 17 — static-time bounds-check filtering (Nvidia, normalized time\n           over no-bounds-check; reduction = runtime checks removed)\n"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>11} {:>9} {:>11} {:>8}",
        "benchmark", "L1:1,L2:5", "+static", "L1:2,L2:5", "+static", "reduct%"
    );
    let mut cols: [Vec<f64>; 4] = [vec![], vec![], vec![], vec![]];
    let mut reds = Vec::new();
    for w in rcache_sensitive_set() {
        let base = run_workload(&w, Target::Nvidia, Protection::baseline());
        let a = run_workload(&w, Target::Nvidia, Protection::shield_lat(1, 5));
        let a_s = run_workload(&w, Target::Nvidia, Protection::shield_lat(1, 5).with_static());
        let b = run_workload(&w, Target::Nvidia, Protection::shield_lat(2, 5));
        let b_s = run_workload(&w, Target::Nvidia, Protection::shield_lat(2, 5).with_static());
        let n = base.cycles as f64;
        let rs = [
            a.cycles as f64 / n,
            a_s.cycles as f64 / n,
            b.cycles as f64 / n,
            b_s.cycles as f64 / n,
        ];
        for (c, r) in cols.iter_mut().zip(rs) {
            c.push(r);
        }
        reds.push(a_s.check_reduction * 100.0);
        let _ = writeln!(
            out,
            "{:<16} {:>9.3} {:>11.3} {:>9.3} {:>11.3} {:>8.1}",
            w.display_name(),
            rs[0],
            rs[1],
            rs[2],
            rs[3],
            a_s.check_reduction * 100.0
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>9.3} {:>11.3} {:>9.3} {:>11.3} {:>8.1}",
        "geomean",
        geomean(&cols[0]),
        geomean(&cols[1]),
        geomean(&cols[2]),
        geomean(&cols[3]),
        reds.iter().sum::<f64>() / reds.len().max(1) as f64
    );
    let _ = writeln!(
        out,
        "\n(graph benchmarks — bc, bfs-dtc, gc-dtc, sssp-dwc — keep low reduction:\n indirect accesses defeat static analysis, §8.3)"
    );
    out
}
