//! Performance exhibits: Figs. 14–17.
//!
//! Every per-workload measurement is an independent deterministic
//! simulation, so the inner loops fan out through the
//! [`crate::runner::fan_out`] job pool; results come back in submission
//! order, making the rendered tables identical for any `jobs` width.

use crate::runner::{fan_out, geomean, run_workload, Protection, Target};
use gpushield_workloads::{cuda_set, opencl_set, rcache_sensitive_set, Category};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fig. 14: normalized execution time per category under GPUShield with
/// the default and slowed RCache latencies.
pub fn fig14_overhead(jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 14 — normalized execution time over no-bounds-check (Nvidia)\n"
    );
    let order = [
        Category::Ml,
        Category::La,
        Category::Gt,
        Category::Gi,
        Category::Ps,
        Category::Im,
        Category::Dm,
    ];
    let runs: Vec<(Category, f64, f64)> = fan_out(
        cuda_set()
            .into_iter()
            .map(|w| {
                move || {
                    let base = run_workload(&w, Target::Nvidia, Protection::baseline());
                    let d = run_workload(&w, Target::Nvidia, Protection::shield_lat(1, 3));
                    let s = run_workload(&w, Target::Nvidia, Protection::shield_lat(2, 5));
                    (
                        w.category(),
                        d.cycles as f64 / base.cycles as f64,
                        s.cycles as f64 / base.cycles as f64,
                    )
                }
            })
            .collect(),
        jobs,
    );
    let mut per_cat: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for cat in order {
        per_cat.insert(
            format!(
                "{:02}{}",
                order.iter().position(|c| *c == cat).unwrap(),
                cat
            ),
            (vec![], vec![]),
        );
    }
    let mut all_default = Vec::new();
    let mut all_lat2 = Vec::new();
    for (cat, rd, rs) in runs {
        let key = format!(
            "{:02}{}",
            order.iter().position(|c| *c == cat).unwrap_or(0),
            cat
        );
        if let Some((dv, sv)) = per_cat.get_mut(&key) {
            dv.push(rd);
            sv.push(rs);
        }
        all_default.push(rd);
        all_lat2.push(rs);
    }
    let _ = writeln!(
        out,
        "{:<10} {:>18} {:>18}",
        "category", "L1:1,L2:3 (def.)", "L1:2,L2:5"
    );
    for (key, (dv, sv)) in &per_cat {
        let _ = writeln!(
            out,
            "{:<10} {:>18.3} {:>18.3}",
            &key[2..],
            geomean(dv),
            geomean(sv)
        );
    }
    let _ = writeln!(
        out,
        "{:<10} {:>18.3} {:>18.3}",
        "geomean",
        geomean(&all_default),
        geomean(&all_lat2)
    );
    let _ = writeln!(
        out,
        "\n(paper: no category degrades under the default; the slowed RCache\n exposes the L1D-hit-bound DM workloads most)"
    );
    out
}

pub(crate) fn hit_rate_sweep(
    target: Target,
    workloads: Vec<gpushield_workloads::Workload>,
    title: &str,
    jobs: usize,
) -> String {
    let sizes = [1usize, 2, 4, 8, 16];
    let mut out = String::new();
    let _ = writeln!(out, "{title}\n");
    let _ = write!(out, "{:<16}", "benchmark");
    for s in sizes {
        let _ = write!(out, " {:>8}", format!("{s}-entry"));
    }
    let _ = writeln!(out);
    let runs: Vec<(String, Vec<f64>)> = fan_out(
        workloads
            .into_iter()
            .map(|w| {
                move || {
                    let rates = sizes
                        .iter()
                        .map(|s| {
                            let r = run_workload(
                                &w,
                                target,
                                Protection::shield_default().with_l1_entries(*s),
                            );
                            r.bcu.l1_hit_rate() * 100.0
                        })
                        .collect();
                    (w.display_name().to_string(), rates)
                }
            })
            .collect(),
        jobs,
    );
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for (name, rates) in runs {
        let _ = write!(out, "{name:<16}");
        for (i, rate) in rates.iter().enumerate() {
            per_size[i].push(*rate);
            let _ = write!(out, " {rate:>8.1}");
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<16}", "mean");
    for col in &per_size {
        let mean = col.iter().sum::<f64>() / col.len().max(1) as f64;
        let _ = write!(out, " {mean:>8.1}");
    }
    let _ = writeln!(out);
    out
}

/// Fig. 15: L1 RCache hit rate vs entry count, RCache-sensitive set.
pub fn fig15_l1_size(jobs: usize) -> String {
    hit_rate_sweep(
        Target::Nvidia,
        rcache_sensitive_set(),
        "Fig. 15 — L1 RCache hit rate (%) vs entries, RCache-sensitive set (Nvidia)",
        jobs,
    )
}

/// Fig. 16: the same sweep for the OpenCL set on the Intel configuration.
pub fn fig16_intel(jobs: usize) -> String {
    hit_rate_sweep(
        Target::Intel,
        opencl_set(),
        "Fig. 16 — L1 RCache hit rate (%) vs entries, OpenCL set (Intel)",
        jobs,
    )
}

/// Fig. 17: static filtering under lengthened RCache latencies.
pub fn fig17_static(jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 17 — static-time bounds-check filtering (Nvidia, normalized time\n           over no-bounds-check; reduction = runtime checks removed)\n"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>11} {:>9} {:>11} {:>8}",
        "benchmark", "L1:1,L2:5", "+static", "L1:2,L2:5", "+static", "reduct%"
    );
    let runs: Vec<(String, [f64; 4], f64)> = fan_out(
        rcache_sensitive_set()
            .into_iter()
            .map(|w| {
                move || {
                    let base = run_workload(&w, Target::Nvidia, Protection::baseline());
                    let a = run_workload(&w, Target::Nvidia, Protection::shield_lat(1, 5));
                    let a_s = run_workload(
                        &w,
                        Target::Nvidia,
                        Protection::shield_lat(1, 5).with_static(),
                    );
                    let b = run_workload(&w, Target::Nvidia, Protection::shield_lat(2, 5));
                    let b_s = run_workload(
                        &w,
                        Target::Nvidia,
                        Protection::shield_lat(2, 5).with_static(),
                    );
                    let n = base.cycles as f64;
                    (
                        w.display_name().to_string(),
                        [
                            a.cycles as f64 / n,
                            a_s.cycles as f64 / n,
                            b.cycles as f64 / n,
                            b_s.cycles as f64 / n,
                        ],
                        a_s.check_reduction * 100.0,
                    )
                }
            })
            .collect(),
        jobs,
    );
    let mut cols: [Vec<f64>; 4] = [vec![], vec![], vec![], vec![]];
    let mut reds = Vec::new();
    for (name, rs, red) in runs {
        for (c, r) in cols.iter_mut().zip(rs) {
            c.push(r);
        }
        reds.push(red);
        let _ = writeln!(
            out,
            "{:<16} {:>9.3} {:>11.3} {:>9.3} {:>11.3} {:>8.1}",
            name, rs[0], rs[1], rs[2], rs[3], red
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>9.3} {:>11.3} {:>9.3} {:>11.3} {:>8.1}",
        "geomean",
        geomean(&cols[0]),
        geomean(&cols[1]),
        geomean(&cols[2]),
        geomean(&cols[3]),
        reds.iter().sum::<f64>() / reds.len().max(1) as f64
    );
    let _ = writeln!(
        out,
        "\n(graph benchmarks — bc, bfs-dtc, gc-dtc, sssp-dwc — keep low reduction:\n indirect accesses defeat static analysis, §8.3)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_workloads::by_name;

    /// The determinism contract behind `--jobs N`: a pooled sweep renders
    /// the same bytes at any worker count.
    #[test]
    fn sweep_output_identical_serial_vs_parallel() {
        let set = || {
            vec![
                by_name("vectoradd").unwrap(),
                by_name("Histogram").unwrap(),
                by_name("dct").unwrap(),
            ]
        };
        let serial = hit_rate_sweep(Target::Nvidia, set(), "sweep", 1);
        let parallel = hit_rate_sweep(Target::Nvidia, set(), "sweep", 8);
        assert_eq!(serial, parallel);
    }
}
