//! Ablations of the design choices §5 calls out: warp-level vs per-thread
//! checking (§5.5.1 technique 1) and Type 3 size-embedded pointers
//! (§5.3.3), including the power-of-two fragmentation cost.

use crate::adapter::SystemHost;
use crate::runner::{config, geomean, run_workload, Protection, Target};
use gpushield_workloads::by_name;
use std::fmt::Write as _;

/// Warp-level vs per-thread checking: the justification for the paper's
/// address-gathering stage.
pub fn warp_vs_thread() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation §5.5.1 — warp-level (gathered min/max) vs per-thread checks\n (normalized execution time over no bounds check)\n"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>11} {:>11}",
        "benchmark", "warp-level", "per-thread"
    );
    let mut warp_all = Vec::new();
    let mut thread_all = Vec::new();
    for name in [
        "vectoradd",
        "dct",
        "Histogram",
        "ConvSep",
        "streamcluster",
        "hotspot",
    ] {
        let w = by_name(name).expect("registry name");
        let base = run_workload(&w, Target::Nvidia, Protection::baseline());
        let warp = run_workload(&w, Target::Nvidia, Protection::shield_default());
        let thread = run_workload(
            &w,
            Target::Nvidia,
            Protection::shield_default().with_per_thread_checks(),
        );
        let rw = warp.cycles as f64 / base.cycles as f64;
        let rt = thread.cycles as f64 / base.cycles as f64;
        warp_all.push(rw);
        thread_all.push(rt);
        let _ = writeln!(out, "{:<16} {:>11.3} {:>11.3}", w.display_name(), rw, rt);
    }
    let _ = writeln!(
        out,
        "{:<16} {:>11.3} {:>11.3}",
        "geomean",
        geomean(&warp_all),
        geomean(&thread_all)
    );
    let _ = writeln!(
        out,
        "\n(per-thread checking serializes one comparison per active lane — the\n gathered-range design is what keeps GPUShield free)"
    );
    out
}

/// Type 3 pointers: checks without RBT accesses, at a fragmentation cost.
pub fn type3() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Ablation §5.3.3 — Type 3 (size-embedded) pointers\n");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "benchmark", "config", "RBT checks", "type3", "overhead", "frag%"
    );
    for name in ["Histogram", "tpacf", "spmv"] {
        let w = by_name(name).expect("registry name");
        let base = run_workload(&w, Target::Nvidia, Protection::baseline());
        for (label, prot) in [
            ("type2", Protection::shield_default().with_static()),
            (
                "type3",
                Protection::shield_default().with_static().with_type3(),
            ),
        ] {
            let mut host = SystemHost::new(config(Target::Nvidia, prot));
            w.run(&mut host);
            assert!(!host.any_abort(), "{name} aborted under {label}");
            let stats = host.system().bcu_stats();
            let region_checks = stats.l1_hits + stats.l2_hits + stats.rbt_fetches;
            // Fragmentation: padded bytes the power-of-two policy wastes.
            let requested = host.buffer_bytes();
            let reserved: u64 = (0..host.buffer_count())
                .map(|i| {
                    let d = host.system().driver();
                    // Buffer handles are allocation-ordered in the adapter.
                    d.buffer_reserved(host.handle(i as usize))
                })
                .sum();
            let frag = if reserved > 0 {
                (reserved - requested) as f64 / reserved as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>12} {:>12} {:>12.3} {:>9.1}%",
                w.display_name(),
                label,
                region_checks,
                stats.type3_checks,
                host.total_cycles() as f64 / base.cycles as f64,
                frag
            );
        }
    }
    let _ = writeln!(
        out,
        "\n(Type 3 replaces RBT-indexed checks with pointer-embedded size\n comparisons; the cost is power-of-two padding — §5.3.3's memory\n fragmentation — mitigated by the canary laid in the padding)"
    );
    out
}

/// Combined ablation report.
pub fn ablations(_jobs: usize) -> String {
    format!("{}\n{}", warp_vs_thread(), type3())
}
