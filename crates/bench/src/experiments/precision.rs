//! `static_precision` exhibit (Fig. 16 upgrade): how many Type 2
//! (runtime-checked) sites the relational certificate prover migrates to
//! Type 1 (statically proven, check elided) per workload, and what that
//! migration buys at runtime in elided checks and BCU stall cycles.
//!
//! Three sections:
//!
//! 1. **Classification** — per unique launch (deduplicated like the
//!    verifier sweep), the seed interval analysis runs under value-less
//!    launch knowledge, then every relational [`SiteProof`] over a
//!    Runtime-planned site is discharged against the *full* knowledge.
//!    Each successful discharge migrates one site Type 2 → Type 1.
//! 2. **Stall delta** — every workload simulated twice: default
//!    GPUShield (runtime checks everywhere) vs the certified
//!    configuration ([`Protection::shield_certified`]), where the only
//!    elision mechanism is a discharged certificate. The delta in checks
//!    performed and BCU stall cycles is therefore attributable to
//!    certificates alone.
//! 3. **Audit** — the BAT soundness auditor replays every workload with
//!    elision live and cross-checks observed per-site address ranges
//!    against every claim, certificate windows included.
//!
//! [`SiteProof`]: gpushield_compiler::SiteProof
//! [`Protection::shield_certified`]: crate::runner::Protection::shield_certified

use crate::adapter::SystemHost;
use crate::runner::{config, fan_out, Protection, Target};
use crate::verifysweep::{audit_workload, CaptureHost};
use gpushield_compiler::{analyze, discharge, prove_sites, AnalysisConfig};
use gpushield_isa::SiteCheck;
use gpushield_runtime::report::Json;
use gpushield_workloads::{all, Workload};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Per-workload site-classification outcome: the seed interval split and
/// the certificate-migrated split, over deduplicated launches.
#[derive(Debug, Clone)]
pub struct PrecisionRow {
    /// Workload name.
    pub name: &'static str,
    /// Access sites across unique launches.
    pub sites: usize,
    /// Sites the seed interval analysis proves under value-less knowledge.
    pub seed_t1: usize,
    /// Seed Type 1 plus certificate-discharged sites.
    pub cert_t1: usize,
    /// Sites migrated Type 2 → Type 1 by a discharged certificate.
    pub migrated: usize,
}

impl PrecisionRow {
    /// Seed Type 1 share of all sites.
    pub fn seed_share(&self) -> f64 {
        self.seed_t1 as f64 / self.sites.max(1) as f64
    }

    /// Certificate-augmented Type 1 share of all sites.
    pub fn cert_share(&self) -> f64 {
        self.cert_t1 as f64 / self.sites.max(1) as f64
    }
}

/// Classifies one workload's unique launches: seed interval split under
/// value-less knowledge, then relational proofs discharged with the full
/// launch knowledge. This is the compile-time view the driver's elision
/// pass realises at launch time.
pub fn classify_workload(w: &Workload) -> PrecisionRow {
    let mut cap = CaptureHost::new();
    w.run(&mut cap);
    let mut seen: Vec<String> = Vec::new();
    let mut row = PrecisionRow {
        name: w.name(),
        sites: 0,
        seed_t1: 0,
        cert_t1: 0,
        migrated: 0,
    };
    for l in &cap.launches {
        // Workloads re-launch the same kernel in loops; knowledge has no
        // Eq, so the Debug form is the dedup key.
        let key = format!("{} {:?}", l.kernel.name(), l.know);
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let compile_view = l.know.value_less();
        let seed = analyze(&l.kernel, &compile_view, AnalysisConfig::default());
        row.sites += seed.sites_total;
        row.seed_t1 += seed.sites_static;
        let mut certified = HashSet::new();
        for proof in prove_sites(&l.kernel, &compile_view) {
            if seed.plan.get(proof.site) != SiteCheck::Runtime {
                continue;
            }
            if discharge(&proof, &l.kernel, &l.know).is_some() {
                certified.insert(proof.site);
            }
        }
        row.migrated += certified.len();
    }
    row.cert_t1 = row.seed_t1 + row.migrated;
    row
}

/// Classification rows for the whole registry, in registry order.
pub fn classification(jobs: usize) -> Vec<PrecisionRow> {
    fan_out(
        all()
            .into_iter()
            .map(|w| move || classify_workload(&w))
            .collect(),
        jobs,
    )
}

/// One simulated run's check/stall quantities.
#[derive(Debug, Clone, Copy, Default)]
pub struct StallRun {
    /// Runtime checks the BCU performed (warp granularity).
    pub checks: u64,
    /// Checks skipped at issue because the plan marked the site Static.
    pub skipped: u64,
    /// Subset of `skipped` backed by a discharged certificate.
    pub certified: u64,
    /// Visible BCU stall cycles charged.
    pub stall_cycles: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Certificates the driver discharged across the run's launches.
    pub discharged: u64,
}

/// Runs one workload under one protection variant and collects the
/// check/stall quantities the stall-delta section compares.
fn measure(w: &Workload, prot: Protection) -> StallRun {
    let mut host = SystemHost::new(config(Target::Nvidia, prot));
    w.run(&mut host);
    assert!(
        !host.any_abort(),
        "false positive: {} aborted under {:?}",
        w.name(),
        prot
    );
    let launches = host.reports.iter().flat_map(|r| &r.launches);
    let mut run = StallRun {
        cycles: host.total_cycles(),
        ..StallRun::default()
    };
    for l in launches {
        run.skipped += l.checks_skipped;
        run.certified += l.checks_certified;
    }
    let bcu = host.system().bcu_stats();
    run.checks = bcu.checks;
    run.stall_cycles = bcu.stall_cycles;
    run.discharged = host.system().driver().stats().certs_discharged;
    run
}

/// The `static_precision` exhibit.
pub fn static_precision(jobs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Static precision — relational certificates migrating Type 2 sites to Type 1"
    );
    let _ = writeln!(
        out,
        "seed = interval analysis, value-less knowledge; cert = seed + discharged proofs\n"
    );

    // §1: compile-time classification.
    let rows = classification(jobs);
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "workload", "sites", "seed_t1", "cert_t1", "migrated", "seed%", "cert%"
    );
    let (mut t_sites, mut t_seed, mut t_cert) = (0usize, 0usize, 0usize);
    let mut improved = 0usize;
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>8} {:>8} {:>9} {:>7.1}% {:>7.1}%",
            r.name,
            r.sites,
            r.seed_t1,
            r.cert_t1,
            r.migrated,
            100.0 * r.seed_share(),
            100.0 * r.cert_share(),
        );
        t_sites += r.sites;
        t_seed += r.seed_t1;
        t_cert += r.cert_t1;
        if r.migrated > 0 {
            improved += 1;
        }
    }
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>8} {:>8} {:>9} {:>7.1}% {:>7.1}%",
        "TOTAL",
        t_sites,
        t_seed,
        t_cert,
        t_cert - t_seed,
        100.0 * t_seed as f64 / t_sites.max(1) as f64,
        100.0 * t_cert as f64 / t_sites.max(1) as f64,
    );
    let _ = writeln!(
        out,
        "\nworkloads with a strictly higher Type 1 share: {}/{}",
        improved,
        rows.len()
    );

    // §2: runtime stall-attribution delta, certificates alone.
    let _ = writeln!(
        out,
        "\nBCU stall delta (Nvidia): default GPUShield vs certificate-only elision"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>9} {:>8} {:>10} {:>10} {:>10} {:>6}",
        "workload", "checks", "checks'", "elided", "stall_cyc", "stall_cyc'", "certs", "Δ%"
    );
    let pairs: Vec<(StallRun, StallRun)> = fan_out(
        all()
            .into_iter()
            .map(|w| {
                move || {
                    (
                        measure(&w, Protection::shield_default()),
                        measure(&w, Protection::shield_certified()),
                    )
                }
            })
            .collect(),
        jobs,
    );
    let (mut tb, mut tc) = (StallRun::default(), StallRun::default());
    for (w, (base, cert)) in all().iter().zip(&pairs) {
        let delta = 100.0 * (base.stall_cycles.saturating_sub(cert.stall_cycles)) as f64
            / base.stall_cycles.max(1) as f64;
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>9} {:>8} {:>10} {:>10} {:>10} {:>5.1}%",
            w.name(),
            base.checks,
            cert.checks,
            cert.certified,
            base.stall_cycles,
            cert.stall_cycles,
            cert.discharged,
            delta,
        );
        for (t, r) in [(&mut tb, base), (&mut tc, cert)] {
            t.checks += r.checks;
            t.skipped += r.skipped;
            t.certified += r.certified;
            t.stall_cycles += r.stall_cycles;
            t.cycles += r.cycles;
            t.discharged += r.discharged;
        }
    }
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>9} {:>8} {:>10} {:>10} {:>10} {:>5.1}%",
        "TOTAL",
        tb.checks,
        tc.checks,
        tc.certified,
        tb.stall_cycles,
        tc.stall_cycles,
        tc.discharged,
        100.0 * (tb.stall_cycles.saturating_sub(tc.stall_cycles)) as f64
            / tb.stall_cycles.max(1) as f64,
    );
    let _ = writeln!(
        out,
        "checks elided by certificates: {} ({:.1}% of baseline checks)",
        tb.checks.saturating_sub(tc.checks),
        100.0 * tb.checks.saturating_sub(tc.checks) as f64 / tb.checks.max(1) as f64,
    );

    // §3: soundness — every certificate window audited against observed
    // per-site address ranges.
    let audits = fan_out(
        all()
            .into_iter()
            .map(|w| move || audit_workload(&w))
            .collect(),
        jobs,
    );
    let claims: u64 = audits.iter().map(|a| a.claims).sum();
    let audited: u64 = audits.iter().map(|a| a.audited).sum();
    let violations: usize = audits.iter().map(|a| a.violations.len()).sum();
    let _ = writeln!(
        out,
        "\naudit (elision live): {claims} claims, {audited} audited sites, {violations} violations"
    );
    for a in &audits {
        for v in &a.violations {
            let _ = writeln!(
                out,
                "  VIOLATION {} {} site {:?}: {}",
                a.workload, v.kernel, v.site, v.detail
            );
        }
    }
    out
}

/// Machine-readable summary for the committed `BENCH_static_precision.json`
/// baseline: per-workload classification rows plus the registry-wide
/// certificate-audit verdict. The `trend` gate fails when any workload's
/// certificate-augmented Type 1 count drops below the baseline, when the
/// improved-workload count shrinks, or when the auditor logs a violation.
pub fn precision_summary(jobs: usize) -> Json {
    let rows = classification(jobs);
    let audits = fan_out(
        all()
            .into_iter()
            .map(|w| move || audit_workload(&w))
            .collect(),
        jobs,
    );
    let mut doc = Json::obj();
    doc.set("bench", Json::Str("static-precision".to_string()));
    doc.set("schema", Json::Str("static-precision/v1".to_string()));
    doc.set("workloads", Json::UInt(rows.len() as u64));
    let (sites, seed_t1, cert_t1): (usize, usize, usize) =
        rows.iter().fold((0, 0, 0), |(s, a, c), r| {
            (s + r.sites, a + r.seed_t1, c + r.cert_t1)
        });
    doc.set("sites", Json::UInt(sites as u64));
    doc.set("seed_t1", Json::UInt(seed_t1 as u64));
    doc.set("cert_t1", Json::UInt(cert_t1 as u64));
    doc.set(
        "improved",
        Json::UInt(rows.iter().filter(|r| r.migrated > 0).count() as u64),
    );
    doc.set(
        "audit_claims",
        Json::UInt(audits.iter().map(|a| a.claims).sum()),
    );
    doc.set(
        "audit_violations",
        Json::UInt(audits.iter().map(|a| a.violations.len() as u64).sum()),
    );
    doc.set(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    let mut row = Json::obj();
                    row.set("workload", Json::Str(r.name.to_string()));
                    row.set("sites", Json::UInt(r.sites as u64));
                    row.set("seed_t1", Json::UInt(r.seed_t1 as u64));
                    row.set("cert_t1", Json::UInt(r.cert_t1 as u64));
                    row
                })
                .collect(),
        ),
    );
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_workloads::by_name;

    #[test]
    fn certificates_strictly_improve_the_type1_share() {
        let rows = classification(2);
        let improved = rows.iter().filter(|r| r.migrated > 0).count();
        assert!(
            improved * 2 >= rows.len(),
            "certificates should migrate sites on at least half the registry, got {improved}/{}",
            rows.len()
        );
        for r in &rows {
            assert!(
                r.cert_t1 >= r.seed_t1,
                "{}: migration cannot regress",
                r.name
            );
            assert!(r.cert_t1 <= r.sites, "{}: more Type 1 than sites", r.name);
        }
    }

    #[test]
    fn certified_run_skips_checks_without_new_stalls() {
        let w = by_name("vectoradd").unwrap();
        let base = measure(&w, Protection::shield_default());
        let cert = measure(&w, Protection::shield_certified());
        assert!(
            cert.discharged > 0,
            "vectoradd should discharge certificates"
        );
        assert!(cert.certified > 0, "certified skips should be counted");
        assert!(
            cert.checks < base.checks,
            "certificates should elide runtime checks ({} vs {})",
            cert.checks,
            base.checks
        );
        assert!(cert.stall_cycles <= base.stall_cycles);
        assert_eq!(base.certified, 0, "no certificates without elision");
    }

    #[test]
    fn static_precision_is_jobs_invariant() {
        assert_eq!(static_precision(1), static_precision(3));
    }
}
