//! The fault-resilience exhibit: inject deterministic corruptions into the
//! protection substrate (RBT entries, pointer tags, BAT records, RCache
//! entries) mid-run and verify GPUShield degrades gracefully — every trial
//! ends in a classified outcome, never a panic and never an unbounded hang
//! (the cycle-budget watchdog converts injected livelocks into
//! `RunError::CycleBudgetExceeded`).

use crate::runner::fan_out;
use gpushield::{
    Arg, BcuConfig, BufferHandle, DriverConfig, FaultKind, FaultPlan, GpuConfig, RunError, System,
    SystemConfig, SystemError, ViolationKind,
};
use gpushield_isa::{CmpOp, Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use gpushield_runtime::rng::derive_seed;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default watchdog budget for the sweep: generous for the tiny workloads
/// used here, tight enough that an injected livelock terminates in well
/// under a second.
const DEFAULT_MAX_CYCLES: u64 = 200_000;

static MAX_CYCLES: AtomicU64 = AtomicU64::new(DEFAULT_MAX_CYCLES);

/// Overrides the watchdog cycle budget the sweep runs under (the CLI's
/// `--max-cycles`). Zero restores the default.
pub fn set_max_cycles(budget: u64) {
    let v = if budget == 0 {
        DEFAULT_MAX_CYCLES
    } else {
        budget
    };
    MAX_CYCLES.store(v, Ordering::Relaxed);
}

fn max_cycles() -> u64 {
    MAX_CYCLES.load(Ordering::Relaxed)
}

/// What one injected-fault trial degraded into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// The corruption was caught: the kernel aborted with a metadata-level
    /// violation, or completed with correct output and the violation log
    /// shows the squashed accesses.
    Detected,
    /// A benign access was reported as a violation (the corruption turned
    /// protection against the workload) — safe but spurious.
    FalseFault,
    /// The kernel completed with wrong output and nothing in the log.
    SilentCorruption,
    /// The corruption livelocked the kernel; the watchdog terminated it.
    Hang,
    /// The fault landed somewhere inert; execution was unaffected.
    Masked,
}

impl Outcome {
    const ALL: [Outcome; 5] = [
        Outcome::Detected,
        Outcome::FalseFault,
        Outcome::SilentCorruption,
        Outcome::Hang,
        Outcome::Masked,
    ];
}

/// `out[tid] = tid`, every access runtime-checked: the benign store
/// workload whose output the harness can diff against a golden run.
pub(crate) fn linear_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("resilience_linear");
    let out = b.param_buffer("out", false);
    let tid = b.global_thread_id();
    let off = b.shl(tid, Operand::Imm(2));
    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// Warms the RCache with four loads, then spins while `flag[0] == 0`. The
/// flag is pre-set to 1, so an uninjected run exits immediately — but a
/// persistent corruption that squashes the flag load to zero spins forever,
/// exercising the watchdog.
pub(crate) fn spin_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("resilience_spin");
    let flag = b.param_buffer("flag", false);
    b.for_loop(Operand::Imm(0), Operand::Imm(4), 1, |b, i| {
        let off = b.shl(i, Operand::Imm(2));
        b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(flag, off));
    });
    b.while_loop(
        |b| {
            let v = b.ld(
                MemSpace::Global,
                MemWidth::W4,
                b.base_offset(flag, Operand::Imm(0)),
            );
            Operand::Reg(b.cmp(CmpOp::Eq, v, Operand::Imm(0)))
        },
        |_| {},
    );
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// Shielded Nvidia system with the watchdog armed and static analysis off
/// (so every site is runtime-checked and every buffer has a live RBT
/// entry — the largest injectable surface).
pub(crate) fn sys_config(precise_faults: bool) -> SystemConfig {
    SystemConfig {
        gpu: GpuConfig {
            max_cycles: max_cycles(),
            ..GpuConfig::nvidia()
        },
        driver: DriverConfig {
            enable_static_analysis: false,
            ..DriverConfig::default()
        },
        bcu: BcuConfig {
            precise_faults,
            ..BcuConfig::default()
        },
        seed: 0x6057_5E1D,
    }
}

fn read_words(sys: &System, buf: BufferHandle, words: u64) -> Vec<u64> {
    (0..words).map(|i| sys.read_uint(buf, i * 4, 4)).collect()
}

/// One trial of the sweep.
#[derive(Debug, Clone, Copy)]
struct Trial {
    kind: FaultKind,
    precise_faults: bool,
    count: usize,
    seed: u64,
}

/// Per-trial result: classification plus how many scheduled faults fired
/// and how many corrupted something.
struct TrialResult {
    outcome: Outcome,
    fired: usize,
    applied: usize,
}

fn classify_completed(sys: &System, output_matches: bool) -> Outcome {
    if !output_matches {
        Outcome::SilentCorruption
    } else if !sys.violations().is_empty() {
        Outcome::Detected
    } else {
        Outcome::Masked
    }
}

fn classify_aborted(sys: &System) -> Outcome {
    let metadata_level = sys.violations().iter().any(|v| {
        matches!(
            v.kind,
            ViolationKind::BadRegion | ViolationKind::UnknownKernel
        )
    });
    if metadata_level {
        Outcome::Detected
    } else {
        // The workload is benign, so an OutOfBounds/ReadOnly abort means a
        // legitimate access was misjudged against corrupted bounds.
        Outcome::FalseFault
    }
}

fn run_trial(t: Trial) -> TrialResult {
    // Seeds 0–2 run the diffable store workload; seed 3 runs the
    // watchdog-exercising spin workload. Each (scenario, count) cell draws
    // its fault plan from a labelled child stream of the scenario seed, so
    // plans can never collide with each other or with any other consumer
    // of the same experiment seed.
    let spin = t.seed == 3;
    let plan_seed = derive_seed(t.seed, &format!("fault-plan/{}", t.count));
    let (kernel, grid, block, words, window) = if spin {
        (spin_kernel(), 1u32, 32u32, 8u64, 5u64)
    } else {
        (linear_kernel(), 4u32, 32u32, 128u64, 4u64)
    };

    // Golden reference: same config, same workload, no injection.
    let golden = {
        let mut sys = System::new(sys_config(t.precise_faults));
        let buf = sys.alloc(words * 4).expect("alloc");
        if spin {
            sys.write_buffer(buf, 0, &1u32.to_le_bytes());
        }
        let r = sys
            .launch(kernel.clone(), grid, block, &[Arg::Buffer(buf)])
            .expect("golden launch");
        assert!(r.completed(), "golden run must complete");
        read_words(&sys, buf, words)
    };

    let mut sys = System::new(sys_config(t.precise_faults));
    let buf = sys.alloc(words * 4).expect("alloc");
    if spin {
        sys.write_buffer(buf, 0, &1u32.to_le_bytes());
    }
    let plan = FaultPlan::generate(plan_seed, &[t.kind], t.count, window);
    let scheduled = plan.len();
    match sys.launch_with_faults(kernel, grid, block, &[Arg::Buffer(buf)], plan) {
        Ok((report, injected)) => {
            let fired = injected.len();
            let applied = injected.iter().filter(|r| r.applied).count();
            let outcome = if report.completed() {
                classify_completed(&sys, read_words(&sys, buf, words) == golden)
            } else {
                classify_aborted(&sys)
            };
            TrialResult {
                outcome,
                fired,
                applied,
            }
        }
        Err(SystemError::Run(
            RunError::CycleBudgetExceeded { .. } | RunError::HeapDeadlock { .. },
        )) => TrialResult {
            outcome: Outcome::Hang,
            fired: scheduled,
            applied: scheduled,
        },
        // Any other host-level refusal still counts as a spurious rejection
        // of a benign workload.
        Err(_) => TrialResult {
            outcome: Outcome::FalseFault,
            fired: scheduled,
            applied: scheduled,
        },
    }
}

/// The sweep: fault kind × protection mode × fault count × seeded
/// scenario, fanned over `jobs` workers with submission-order results, so
/// the rendered matrix is byte-identical at any worker count.
pub fn fault_resilience(jobs: usize) -> String {
    const COUNTS: [usize; 2] = [1, 4];
    const SEEDS: [u64; 4] = [0, 1, 2, 3];
    let modes = [true, false]; // precise fault vs imprecise squash (§5.5.2)

    let mut trials = Vec::new();
    for kind in FaultKind::ALL {
        for &precise_faults in &modes {
            for &count in &COUNTS {
                for &seed in &SEEDS {
                    trials.push(Trial {
                        kind,
                        precise_faults,
                        count,
                        seed,
                    });
                }
            }
        }
    }
    let tasks: Vec<_> = trials
        .iter()
        .map(|t| {
            let t = *t;
            move || run_trial(t)
        })
        .collect();
    let results = fan_out(tasks, jobs);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fault resilience — deterministic corruption of the protection substrate\n \
         ({} fault kinds x {} protection modes x counts {:?} x {} seeded scenarios;\n \
         watchdog budget {} cycles; every trial classified, zero panics)\n",
        FaultKind::ALL.len(),
        modes.len(),
        COUNTS,
        SEEDS.len(),
        max_cycles()
    );
    let _ = writeln!(
        out,
        "{:<18} {:<7} {:>9} {:>11} {:>7} {:>6} {:>7} {:>7}",
        "kind", "mode", "detected", "false-fault", "silent", "hang", "masked", "trials"
    );

    let mut grand = [0usize; 5];
    let mut fired_total = 0usize;
    let mut applied_total = 0usize;
    for kind in FaultKind::ALL {
        for &precise_faults in &modes {
            let mut tally = [0usize; 5];
            for (t, r) in trials.iter().zip(&results) {
                if t.kind == kind && t.precise_faults == precise_faults {
                    let slot = Outcome::ALL
                        .iter()
                        .position(|o| *o == r.outcome)
                        .expect("outcome indexed");
                    tally[slot] += 1;
                    fired_total += r.fired;
                    applied_total += r.applied;
                }
            }
            let trials_row: usize = tally.iter().sum();
            for (g, t) in grand.iter_mut().zip(tally) {
                *g += t;
            }
            let _ = writeln!(
                out,
                "{:<18} {:<7} {:>9} {:>11} {:>7} {:>6} {:>7} {:>7}",
                kind.name(),
                if precise_faults { "fault" } else { "squash" },
                tally[0],
                tally[1],
                tally[2],
                tally[3],
                tally[4],
                trials_row
            );
        }
    }
    let total_trials: usize = grand.iter().sum();
    let _ = writeln!(
        out,
        "{:<18} {:<7} {:>9} {:>11} {:>7} {:>6} {:>7} {:>7}",
        "TOTALS", "", grand[0], grand[1], grand[2], grand[3], grand[4], total_trials
    );
    let _ = writeln!(
        out,
        "\n(faults fired {fired_total}, corrupted something {applied_total}; a hang is a\n \
         watchdog-terminated livelock, not a lockup — see DESIGN.md section 9)"
    );
    eprintln!(
        "  fault totals: {total_trials} trials, {fired_total} faults fired, {applied_total} applied — \
         {} detected, {} false-fault, {} silent, {} hang, {} masked",
        grand[0], grand[1], grand[2], grand[3], grand[4]
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_across_job_counts() {
        let a = fault_resilience(1);
        let b = fault_resilience(8);
        assert_eq!(a, b, "rendered matrix must not depend on worker count");
    }

    #[test]
    fn sweep_covers_all_kinds_and_both_modes() {
        let text = fault_resilience(4);
        for kind in FaultKind::ALL {
            assert!(text.contains(kind.name()), "{} missing", kind.name());
        }
        assert!(text.contains("fault"));
        assert!(text.contains("squash"));
        assert!(text.contains("TOTALS"));
    }

    #[test]
    fn every_trial_is_classified() {
        // The TOTALS row sums to kinds x modes x counts x seeds.
        let text = fault_resilience(4);
        let totals = text
            .lines()
            .find(|l| l.starts_with("TOTALS"))
            .expect("totals row");
        let cols: Vec<usize> = totals
            .split_whitespace()
            .skip(1)
            .map(|v| v.parse().expect("numeric"))
            .collect();
        let expected = FaultKind::ALL.len() * 2 * 2 * 4;
        assert_eq!(*cols.last().expect("trial count"), expected);
        assert_eq!(cols[..5].iter().sum::<usize>(), expected);
    }

    #[test]
    fn watchdog_override_is_respected_and_restored() {
        set_max_cycles(50_000);
        assert_eq!(max_cycles(), 50_000);
        set_max_cycles(0);
        assert_eq!(max_cycles(), DEFAULT_MAX_CYCLES);
    }
}
