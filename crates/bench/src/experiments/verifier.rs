//! Verifier exhibits: the registry-wide static-analysis breakdown
//! (paper Fig. 16's taxonomy) and the BAT soundness audit.

use crate::runner::fan_out;
use crate::verifysweep::{audit_workload, verify_workload, WorkloadAudit, WorkloadVerify};
use gpushield_compiler::Severity;
use gpushield_workloads::all;
use std::fmt::Write as _;

/// `static_analysis`: per-workload Type 1/2/3 check-site breakdown plus
/// verification findings across the whole registry.
pub fn static_analysis(jobs: usize) -> String {
    let sweeps: Vec<WorkloadVerify> = fan_out(
        all()
            .into_iter()
            .map(|w| move || verify_workload(&w))
            .collect(),
        jobs,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Static analysis — per-workload check-site taxonomy (Fig. 16) and"
    );
    let _ = writeln!(
        out,
        "verifier findings (def-use, barrier divergence, shared races)\n"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>7} {:>6} {:>6} {:>6} {:>8} {:>6} {:>6} {:>6}",
        "workload", "kernels", "type1", "type2", "type3", "elidable", "info", "warn", "error"
    );
    let mut tk = 0usize;
    let mut t = [0usize; 4];
    let mut sev = [0usize; 3];
    for v in &sweeps {
        let mut row = [0usize; 4];
        let mut rs = [0usize; 3];
        for r in &v.reports {
            row[0] += r.breakdown.type1;
            row[1] += r.breakdown.type2;
            row[2] += r.breakdown.type3;
            row[3] += r.breakdown.elidable;
            for d in &r.diagnostics {
                rs[match d.severity {
                    Severity::Info => 0,
                    Severity::Warning => 1,
                    Severity::Error => 2,
                }] += 1;
            }
        }
        let _ = writeln!(
            out,
            "{:<18} {:>7} {:>6} {:>6} {:>6} {:>8} {:>6} {:>6} {:>6}",
            v.workload,
            v.reports.len(),
            row[0],
            row[1],
            row[2],
            row[3],
            rs[0],
            rs[1],
            rs[2]
        );
        tk += v.reports.len();
        for i in 0..4 {
            t[i] += row[i];
        }
        for i in 0..3 {
            sev[i] += rs[i];
        }
    }
    let _ = writeln!(
        out,
        "{:<18} {:>7} {:>6} {:>6} {:>6} {:>8} {:>6} {:>6} {:>6}",
        "total", tk, t[0], t[1], t[2], t[3], sev[0], sev[1], sev[2]
    );
    let sites = (t[0] + t[1] + t[2]) as f64;
    let _ = writeln!(
        out,
        "\nstatic share: {:.1}% of sites proven Type 1 (paper: ~21% without",
        100.0 * t[0] as f64 / sites.max(1.0)
    );
    let _ = writeln!(
        out,
        "launch-time argument knowledge; the driver-side analysis here sees"
    );
    let _ = writeln!(out, "buffer sizes and constant scalars, so it proves more)");
    let _ = writeln!(
        out,
        "verifier: {} warnings, {} errors across {} kernel/launch pairs",
        sev[1], sev[2], tk
    );
    out
}

/// `bat_soundness`: replay every workload with per-site address recording
/// and audit the observed ranges against the driver's static claims.
pub fn bat_soundness(jobs: usize) -> String {
    let audits: Vec<WorkloadAudit> = fan_out(
        all()
            .into_iter()
            .map(|w| move || audit_workload(&w))
            .collect(),
        jobs,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "BAT soundness audit — observed per-site address ranges vs the"
    );
    let _ = writeln!(
        out,
        "driver's static claims (Type 1 regions, Type 3 reservations)\n"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>7} {:>8} {:>8} {:>7} {:>10}",
        "workload", "launches", "claims", "audited", "static", "type3", "violations"
    );
    let mut tot = [0u64; 6];
    let mut details: Vec<String> = Vec::new();
    for a in &audits {
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>7} {:>8} {:>8} {:>7} {:>10}",
            a.workload,
            a.launches,
            a.claims,
            a.audited,
            a.audited_static,
            a.audited_type3,
            a.violations.len()
        );
        tot[0] += a.launches;
        tot[1] += a.claims;
        tot[2] += a.audited;
        tot[3] += a.audited_static;
        tot[4] += a.audited_type3;
        tot[5] += a.violations.len() as u64;
        for v in &a.violations {
            details.push(format!(
                "  {}: {} {:?} site {}:{} — {}",
                a.workload, v.kernel, v.check, v.site.0, v.site.1, v.detail
            ));
        }
    }
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>7} {:>8} {:>8} {:>7} {:>10}",
        "total", tot[0], tot[1], tot[2], tot[3], tot[4], tot[5]
    );
    if details.is_empty() {
        let _ = writeln!(
            out,
            "\nno observed access escaped its claimed window: every Type 1"
        );
        let _ = writeln!(
            out,
            "elision and Type 3 reservation the analysis committed to held"
        );
        let _ = writeln!(out, "at runtime (violations: 0)");
    } else {
        let _ = writeln!(out, "\nSOUNDNESS VIOLATIONS:");
        for d in details {
            let _ = writeln!(out, "{d}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hard gate of the soundness auditor: across the entire registry,
    /// no observed address may escape a Static or SizeEmbedded claim.
    #[test]
    fn bat_soundness_reports_zero_violations_registry_wide() {
        for w in all() {
            let a = audit_workload(&w);
            assert!(
                a.violations.is_empty(),
                "{}: {} claim(s) disproved, e.g. {} {:?} — {}",
                a.workload,
                a.violations.len(),
                a.violations[0].kernel,
                a.violations[0].check,
                a.violations[0].detail
            );
        }
    }

    /// The sim-free exhibit must render identically for any worker count
    /// (the audit exhibit shares the same order-preserving `fan_out`, and
    /// is additionally diffed across `--jobs` when results are generated).
    #[test]
    fn static_analysis_is_jobs_invariant() {
        assert_eq!(static_analysis(1), static_analysis(4));
    }
}
