//! Development probe: per-workload runtime and overhead shape.
use gpushield_bench::{run_workload, Protection, Target};
use std::time::Instant;

fn main() {
    let only: Option<String> = std::env::args().nth(1);
    println!(
        "{:<18} {:>9} {:>9} {:>7} {:>7} {:>8} {:>7} {:>7}",
        "name", "base_cyc", "gs_cyc", "ratio", "lat2", "l1rc%", "red%", "secs"
    );
    for w in gpushield_workloads::cuda_set() {
        if let Some(f) = &only {
            if !w.name().contains(f.as_str()) {
                continue;
            }
        }
        let t0 = Instant::now();
        let base = run_workload(&w, Target::Nvidia, Protection::baseline());
        let gs = run_workload(&w, Target::Nvidia, Protection::shield_default());
        let lat2 = run_workload(&w, Target::Nvidia, Protection::shield_lat(2, 5));
        let st = run_workload(
            &w,
            Target::Nvidia,
            Protection::shield_default().with_static(),
        );
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{:<18} {:>9} {:>9} {:>7.3} {:>7.3} {:>8.1} {:>7.1} {:>7.2}",
            w.name(),
            base.cycles,
            gs.cycles,
            gs.cycles as f64 / base.cycles as f64,
            lat2.cycles as f64 / base.cycles as f64,
            gs.bcu.l1_hit_rate() * 100.0,
            st.check_reduction * 100.0,
            secs
        );
    }
}
