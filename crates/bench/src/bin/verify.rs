//! Registry-wide kernel verifier CLI — the CI gate for static analysis.
//!
//! ```text
//! verify            # sweep every registry workload, print findings
//! verify -v         # also print per-kernel Type 1/2/3 breakdowns
//! ```
//!
//! Runs the compiler's verification pass pipeline (def-before-use, barrier
//! divergence, shared-memory races, redundant checks) over every distinct
//! (kernel, launch) pair the registry's host programs produce. Every
//! `warning`- or `error`-severity finding must either be fixed or appear in
//! the justification table below with a reviewed explanation; an
//! unjustified finding fails the process (non-zero exit), which is how
//! `scripts/ci.sh` keeps the registry race- and divergence-clean.

use gpushield_bench::verifysweep::verify_workload;
use gpushield_compiler::Severity;
use gpushield_workloads::all;
use std::process::ExitCode;

/// Findings that are understood and deliberately kept, as
/// `(kernel, pass, reason)`. The reason is printed next to the finding so
/// the sweep output stays self-explanatory. Entries match by exact kernel
/// name and pass id; severity is not widened — an `error` needs its own
/// entry even if a `warning` on the same kernel/pass is justified.
const JUSTIFIED: &[(&str, &str, &str)] = &[];

fn justification(kernel: &str, pass: &str) -> Option<&'static str> {
    JUSTIFIED
        .iter()
        .find(|(k, p, _)| *k == kernel && *p == pass)
        .map(|(_, _, r)| *r)
}

fn main() -> ExitCode {
    let verbose = std::env::args().any(|a| a == "-v" || a == "--verbose");
    let mut kernels = 0usize;
    let mut findings = 0usize;
    let mut justified = 0usize;
    let mut unjustified = 0usize;
    for w in all() {
        let v = verify_workload(&w);
        for r in &v.reports {
            kernels += 1;
            if verbose {
                println!(
                    "{:<14} {:<22} T1 {:>2}  T2 {:>2}  T3 {:>2}  elidable {:>2}",
                    v.workload,
                    r.kernel,
                    r.breakdown.type1,
                    r.breakdown.type2,
                    r.breakdown.type3,
                    r.breakdown.elidable
                );
            }
            for d in &r.diagnostics {
                findings += 1;
                if d.severity < Severity::Warning {
                    if verbose {
                        println!("  {d}");
                    }
                    continue;
                }
                match justification(&d.kernel, d.pass) {
                    Some(reason) => {
                        justified += 1;
                        println!("  {d}\n    justified: {reason}");
                    }
                    None => {
                        unjustified += 1;
                        println!("  UNJUSTIFIED {d}");
                    }
                }
            }
        }
    }
    println!(
        "\nverified {kernels} kernel/launch pairs: {findings} findings, \
         {justified} justified, {unjustified} unjustified"
    );
    if unjustified > 0 {
        println!("FAIL: every warning/error must be fixed or justified");
        return ExitCode::FAILURE;
    }
    println!("OK");
    ExitCode::SUCCESS
}
