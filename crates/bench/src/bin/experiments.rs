//! CLI regenerating the paper's tables and figures.
//!
//! ```text
//! experiments                        # list available experiments
//! experiments fig14                  # run one
//! experiments all                    # run everything (a few minutes)
//! experiments all results/           # also write results/<id>.txt + <id>.json
//! experiments all results/ --jobs 8  # fan each experiment's sweep over 8 threads
//! ```
//!
//! `--jobs N` sets the worker count for each experiment's inner simulation
//! sweep (default: available parallelism; `--jobs 1` is fully sequential).
//! Rendered output is byte-identical for every value — jobs only change
//! wall time. Exit status is non-zero when any experiment panics or any
//! result file fails to write.

use gpushield_bench::runner::profile_totals;
use gpushield_bench::{config_fingerprint, experiments};
use gpushield_runtime::pool;
use gpushield_runtime::report::{numeric_rows, Json};
use gpushield_sim::SimProfile;
use std::path::Path;
use std::process::ExitCode;

/// Counter-wise difference of two [`profile_totals`] snapshots taken
/// around one experiment (experiments run sequentially, so the delta is
/// exactly that experiment's simulator activity).
fn profile_delta(before: &SimProfile, after: &SimProfile) -> SimProfile {
    SimProfile {
        alu_issues: after.alu_issues - before.alu_issues,
        mem_issues: after.mem_issues - before.mem_issues,
        shared_issues: after.shared_issues - before.shared_issues,
        barrier_issues: after.barrier_issues - before.barrier_issues,
        malloc_issues: after.malloc_issues - before.malloc_issues,
        lsu_transactions: after.lsu_transactions - before.lsu_transactions,
        bcu_checks: after.bcu_checks - before.bcu_checks,
        bcu_stall_cycles: after.bcu_stall_cycles - before.bcu_stall_cycles,
        dram_accesses: after.dram_accesses - before.dram_accesses,
        idle_skips: after.idle_skips - before.idle_skips,
    }
}

/// Builds the machine-readable `results/<id>.json` document for one
/// experiment outcome (`Err` = the experiment panicked).
fn build_json(
    id: &str,
    title: &str,
    outcome: &Result<String, String>,
    wall_seconds: f64,
    jobs: usize,
) -> Json {
    let mut doc = Json::obj();
    doc.set("id", Json::Str(id.to_string()));
    doc.set("title", Json::Str(title.to_string()));
    doc.set("ok", Json::Bool(outcome.is_ok()));
    doc.set("wall_seconds", Json::Float(wall_seconds));
    doc.set("jobs", Json::UInt(jobs as u64));
    doc.set("config_fingerprint", Json::Str(config_fingerprint()));
    match outcome {
        Ok(text) => {
            let rows = numeric_rows(text)
                .into_iter()
                .map(|r| {
                    let mut row = Json::obj();
                    row.set("label", Json::Str(r.label));
                    row.set(
                        "values",
                        Json::Arr(r.values.into_iter().map(Json::Float).collect()),
                    );
                    row
                })
                .collect();
            doc.set("rows", Json::Arr(rows));
        }
        Err(message) => {
            doc.set("error", Json::Str(message.clone()));
        }
    }
    doc
}

/// Prints one outcome and writes `<id>.txt` + `<id>.json` when an output
/// directory was given. Returns false on any write failure.
fn emit(
    id: &str,
    title: &str,
    outcome: &Result<String, String>,
    wall_seconds: f64,
    jobs: usize,
    out_dir: Option<&str>,
) -> bool {
    match outcome {
        Ok(text) => {
            println!("==== {id} — {title} ====\n");
            println!("{text}");
        }
        Err(message) => {
            eprintln!("==== {id} — {title} ====");
            eprintln!("FAILED: {message}\n");
        }
    }
    let Some(dir) = out_dir else { return true };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("failed to create {dir}: {e}");
        return false;
    }
    let mut ok = true;
    if let Ok(text) = outcome {
        let path = Path::new(dir).join(format!("{id}.txt"));
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("failed to write {}: {e}", path.display());
            ok = false;
        }
    }
    let json = build_json(id, title, outcome, wall_seconds, jobs).render();
    let path = Path::new(dir).join(format!("{id}.json"));
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("failed to write {}: {e}", path.display());
        ok = false;
    }
    ok
}

/// Runs a set of experiments: each isolated in the job pool (a panic in
/// one experiment fails that experiment, not the run), sequential at the
/// experiment level, `jobs`-wide inside each experiment's sweep.
fn run_set(set: Vec<experiments::Experiment>, jobs: usize, out_dir: Option<&str>) -> ExitCode {
    let tasks: Vec<_> = set
        .iter()
        .map(|e| {
            let run = e.run;
            move || {
                let (instrs0, prof0) = profile_totals();
                let text = run(jobs);
                let (instrs1, prof1) = profile_totals();
                (text, instrs1 - instrs0, profile_delta(&prof0, &prof1))
            }
        })
        .collect();
    let results = pool::run(tasks, 1);
    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut total = 0.0f64;
    let mut writes_ok = true;
    for (e, r) in set.iter().zip(results) {
        let wall = r.wall.as_secs_f64();
        total += wall;
        let mut sim = None;
        let outcome = r
            .result
            .map(|(text, instrs, prof)| {
                sim = Some((instrs, prof));
                text
            })
            .map_err(|p| p.message);
        match &outcome {
            Ok(_) => ok += 1,
            Err(_) => failed += 1,
        }
        writes_ok &= emit(e.id, e.title, &outcome, wall, jobs, out_dir);
        match sim {
            Some((instrs, prof)) if instrs > 0 => {
                let rate = instrs as f64 / wall.max(1e-9);
                eprintln!(
                    "[{} took {wall:.1}s — {instrs} instrs, {rate:.0} instrs/sec]",
                    e.id
                );
                eprintln!("  sim profile: {prof}");
            }
            _ => eprintln!("[{} took {wall:.1}s]", e.id),
        }
    }
    eprintln!("{ok} ok / {failed} failed / {total:.1}s total wall-time");
    if failed > 0 || !writes_ok {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut jobs = pool::available_parallelism();
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            positional.push(arg);
        }
    }
    let out_dir = positional.get(1).cloned();
    match positional.first().map(String::as_str) {
        None | Some("list") => {
            println!("available experiments:");
            for e in experiments::all() {
                println!("  {:<8} {}", e.id, e.title);
            }
            println!("  all      run everything");
            ExitCode::SUCCESS
        }
        Some("all") => run_set(experiments::all(), jobs, out_dir.as_deref()),
        Some(id) => match experiments::by_id(id) {
            Some(e) => run_set(vec![e], jobs, out_dir.as_deref()),
            None => {
                eprintln!("unknown experiment {id}; run with no arguments to list");
                ExitCode::FAILURE
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The emitted JSON parses back and carries the scraped rows
    /// (satellite smoke test for the results pipeline).
    #[test]
    fn result_json_roundtrips() {
        let text = experiments::by_id("table3").expect("table3 exists");
        let rendered = (text.run)(1);
        let doc = build_json("table3", text.title, &Ok(rendered.clone()), 0.25, 2);
        let back = Json::parse(&doc.render()).expect("valid JSON");
        assert_eq!(back, doc);
        assert_eq!(back.get("id").and_then(Json::as_str), Some("table3"));
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
        let rows = back.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), numeric_rows(&rendered).len());
        assert!(!rows.is_empty(), "table3 has numeric rows");
    }

    #[test]
    fn failed_experiment_json_carries_the_error() {
        let doc = build_json("fig4", "t", &Err("boom".to_string()), 0.0, 1);
        let back = Json::parse(&doc.render()).expect("valid JSON");
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(back.get("error").and_then(Json::as_str), Some("boom"));
        assert!(back.get("rows").is_none());
    }
}
