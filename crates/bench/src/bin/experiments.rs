//! CLI regenerating the paper's tables and figures.
//!
//! ```text
//! experiments                  # list available experiments
//! experiments fig14            # run one
//! experiments all              # run everything (a few minutes)
//! experiments all results/     # additionally write one file per exhibit
//! ```

use gpushield_bench::experiments;
use std::path::Path;
use std::time::Instant;

fn emit(id: &str, title: &str, text: &str, out_dir: Option<&str>) {
    println!("==== {id} — {title} ====\n");
    println!("{text}");
    if let Some(dir) = out_dir {
        let path = Path::new(dir).join(format!("{id}.txt"));
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, text)) {
            eprintln!("failed to write {}: {e}", path.display());
        }
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let out_dir = std::env::args().nth(2);
    match arg.as_deref() {
        None | Some("list") => {
            println!("available experiments:");
            for e in experiments::all() {
                println!("  {:<8} {}", e.id, e.title);
            }
            println!("  all      run everything");
        }
        Some("all") => {
            for e in experiments::all() {
                let t0 = Instant::now();
                let text = (e.run)();
                emit(e.id, e.title, &text, out_dir.as_deref());
                eprintln!("[{} took {:.1}s]", e.id, t0.elapsed().as_secs_f64());
            }
        }
        Some(id) => match experiments::by_id(id) {
            Some(e) => {
                let text = (e.run)();
                emit(e.id, e.title, &text, out_dir.as_deref());
            }
            None => {
                eprintln!("unknown experiment {id}; run with no arguments to list");
                std::process::exit(1);
            }
        },
    }
}
