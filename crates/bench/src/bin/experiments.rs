//! CLI regenerating the paper's tables and figures.
//!
//! ```text
//! experiments                        # list available experiments
//! experiments fig14                  # run one
//! experiments all                    # run everything (a few minutes)
//! experiments all results/           # also write results/<id>.txt + <id>.json
//! experiments all results/ --jobs 8  # fan each experiment's sweep over 8 threads
//! ```
//!
//! `--jobs N` sets the worker count for each experiment's inner simulation
//! sweep (default: available parallelism; `--jobs 1` is fully sequential).
//! Rendered output is byte-identical for every value — jobs only change
//! wall time. `--timeout-secs N` bounds each experiment's wall time
//! (default 900): an experiment that exceeds it is quarantined — recorded
//! as failed in its JSON with `"quarantined": true` — and the run moves
//! on. A panicking experiment is retried once before being quarantined.
//! `--max-cycles N` overrides the fault-resilience sweep's watchdog
//! budget. `--sim-threads N` shards each simulated GPU's cores across N
//! worker threads inside the cycle-quantum engine (default 1); like
//! `--jobs`, rendered output is byte-identical for every value. Exit
//! status is non-zero when any experiment fails or any result file fails
//! to write.

use gpushield_bench::runner::{self, profile_totals};
use gpushield_bench::{config_fingerprint, experiments};
use gpushield_runtime::pool;
use gpushield_runtime::report::{numeric_rows, Json};
use gpushield_sim::SimProfile;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Default per-experiment wall-time budget (seconds).
const DEFAULT_TIMEOUT_SECS: u64 = 900;

/// Renders this experiment's simulator activity as a `telemetry` JSON
/// object, with the telemetry registry as the single source of truth for
/// metric names and shapes: the [`SimProfile`] delta is published as
/// `sim.profile.*` gauges and read back from the registry's own renderer.
/// Serving exhibits additionally stash `driver.tenant.*` gauges (see
/// [`gpushield_bench::serving::stash_telemetry`]); the stash is drained
/// here so the per-tenant accounting lands in the same JSON document.
fn telemetry_json(sim: Option<&(u64, SimProfile)>) -> Json {
    let stashed = gpushield_bench::serving::take_stashed_telemetry();
    if sim.is_none() && stashed.is_empty() {
        return Json::obj();
    }
    let mut reg = gpushield_telemetry::Registry::new();
    if let Some((instrs, prof)) = sim {
        reg.set_named("sim.instructions", *instrs);
        prof.publish(&mut reg);
    }
    for (name, v) in &stashed {
        reg.set_named(name, *v);
    }
    Json::parse(&reg.render_json()).expect("registry renders valid JSON")
}

/// Builds the machine-readable `results/<id>.json` document for one
/// experiment outcome (`Err` = the experiment panicked or timed out).
/// `attempts` counts executions including retries; `quarantined` marks an
/// experiment that stayed broken after its retry (or hit the timeout) and
/// was skipped so the rest of the run could proceed.
#[allow(clippy::too_many_arguments)] // one flat record per outcome
fn build_json(
    id: &str,
    title: &str,
    outcome: &Result<String, String>,
    wall_seconds: f64,
    jobs: usize,
    attempts: u64,
    quarantined: bool,
    sim: Option<&(u64, SimProfile)>,
) -> Json {
    let mut doc = Json::obj();
    doc.set("id", Json::Str(id.to_string()));
    doc.set("title", Json::Str(title.to_string()));
    doc.set("ok", Json::Bool(outcome.is_ok()));
    doc.set("wall_seconds", Json::Float(wall_seconds));
    doc.set("jobs", Json::UInt(jobs as u64));
    doc.set("attempts", Json::UInt(attempts));
    doc.set("quarantined", Json::Bool(quarantined));
    doc.set("config_fingerprint", Json::Str(config_fingerprint()));
    doc.set("telemetry", telemetry_json(sim));
    match outcome {
        Ok(text) => {
            let rows = numeric_rows(text)
                .into_iter()
                .map(|r| {
                    let mut row = Json::obj();
                    row.set("label", Json::Str(r.label));
                    row.set(
                        "values",
                        Json::Arr(r.values.into_iter().map(Json::Float).collect()),
                    );
                    row
                })
                .collect();
            doc.set("rows", Json::Arr(rows));
        }
        Err(message) => {
            doc.set("error", Json::Str(message.clone()));
        }
    }
    doc
}

/// Prints one outcome and writes `<id>.txt` + `<id>.json` when an output
/// directory was given. Returns false on any write failure.
#[allow(clippy::too_many_arguments)] // one flat record per outcome
fn emit(
    id: &str,
    title: &str,
    outcome: &Result<String, String>,
    wall_seconds: f64,
    jobs: usize,
    attempts: u64,
    quarantined: bool,
    sim: Option<&(u64, SimProfile)>,
    out_dir: Option<&str>,
) -> bool {
    match outcome {
        Ok(text) => {
            println!("==== {id} — {title} ====\n");
            println!("{text}");
        }
        Err(message) => {
            eprintln!("==== {id} — {title} ====");
            let tag = if quarantined { "QUARANTINED" } else { "FAILED" };
            eprintln!("{tag}: {message}\n");
        }
    }
    let Some(dir) = out_dir else { return true };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("failed to create {dir}: {e}");
        return false;
    }
    let mut ok = true;
    if let Ok(text) = outcome {
        let path = Path::new(dir).join(format!("{id}.txt"));
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("failed to write {}: {e}", path.display());
            ok = false;
        }
    }
    let json = build_json(
        id,
        title,
        outcome,
        wall_seconds,
        jobs,
        attempts,
        quarantined,
        sim,
    )
    .render();
    let path = Path::new(dir).join(format!("{id}.json"));
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("failed to write {}: {e}", path.display());
        ok = false;
    }
    ok
}

/// One execution of an experiment, with the simulator-activity delta on
/// success.
struct Attempt {
    outcome: Result<(String, u64, SimProfile), String>,
    wall: f64,
    timed_out: bool,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "experiment panicked".to_string()
    }
}

/// Runs one experiment on a watchdog-supervised worker thread. A panic is
/// caught and reported as `Err`; exceeding `timeout` abandons the worker
/// (it keeps running detached — its profile counters may bleed into later
/// deltas, which is why timed-out runs report no simulator activity).
fn run_supervised(run: fn(usize) -> String, jobs: usize, timeout: Duration) -> Attempt {
    let (tx, rx) = mpsc::channel();
    let start = Instant::now();
    std::thread::spawn(move || {
        let (instrs0, prof0) = profile_totals();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| run(jobs)));
        let (instrs1, prof1) = profile_totals();
        let _ = tx.send(match result {
            Ok(text) => Ok((text, instrs1 - instrs0, prof1.diff(&prof0))),
            Err(payload) => Err(panic_message(payload.as_ref())),
        });
    });
    match rx.recv_timeout(timeout) {
        Ok(outcome) => Attempt {
            outcome,
            wall: start.elapsed().as_secs_f64(),
            timed_out: false,
        },
        Err(_) => Attempt {
            outcome: Err(format!(
                "exceeded the {}s wall-time budget; worker abandoned",
                timeout.as_secs()
            )),
            wall: start.elapsed().as_secs_f64(),
            timed_out: true,
        },
    }
}

/// Runs a set of experiments sequentially, `jobs`-wide inside each
/// experiment's sweep. A panicking experiment is retried once; a second
/// panic — or a wall-time budget overrun — quarantines it (recorded as
/// failed, run continues).
fn run_set(
    set: Vec<experiments::Experiment>,
    jobs: usize,
    out_dir: Option<&str>,
    timeout: Duration,
) -> ExitCode {
    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut total = 0.0f64;
    let mut writes_ok = true;
    for e in &set {
        let mut attempts = 1u64;
        let mut attempt = run_supervised(e.run, jobs, timeout);
        if attempt.outcome.is_err() && !attempt.timed_out {
            eprintln!("[{} panicked; retrying once]", e.id);
            attempts = 2;
            attempt = run_supervised(e.run, jobs, timeout);
        }
        let quarantined = attempt.outcome.is_err();
        let wall = attempt.wall;
        total += wall;
        let mut sim = None;
        let outcome = attempt.outcome.map(|(text, instrs, prof)| {
            sim = Some((instrs, prof));
            text
        });
        match &outcome {
            Ok(_) => ok += 1,
            Err(_) => failed += 1,
        }
        writes_ok &= emit(
            e.id,
            e.title,
            &outcome,
            wall,
            jobs,
            attempts,
            quarantined,
            sim.as_ref(),
            out_dir,
        );
        match sim {
            Some((instrs, _)) if instrs > 0 => {
                let rate = instrs as f64 / wall.max(1e-9);
                eprintln!(
                    "[{} took {wall:.1}s — {instrs} instrs, {rate:.0} instrs/sec]",
                    e.id
                );
            }
            _ => eprintln!("[{} took {wall:.1}s]", e.id),
        }
    }
    eprintln!("{ok} ok / {failed} failed / {total:.1}s total wall-time");
    if failed > 0 || !writes_ok {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses `--flag N` / `--flag=N` style options; returns `Ok(None)` when
/// `arg` is not this flag.
fn parse_flag<T: std::str::FromStr>(
    flag: &str,
    arg: &str,
    args: &mut impl Iterator<Item = String>,
) -> Result<Option<T>, ()> {
    let value = if arg == flag {
        args.next().ok_or(())?
    } else if let Some(v) = arg.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
        v.to_string()
    } else {
        return Ok(None);
    };
    value.parse::<T>().map(Some).map_err(|_| ())
}

fn main() -> ExitCode {
    let mut jobs = pool::available_parallelism();
    let mut timeout = Duration::from_secs(DEFAULT_TIMEOUT_SECS);
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match parse_flag::<usize>("--jobs", &arg, &mut args) {
            Ok(Some(n)) if n >= 1 => {
                jobs = n;
                continue;
            }
            Ok(Some(_)) | Err(()) => {
                eprintln!("--jobs needs a positive integer");
                return ExitCode::FAILURE;
            }
            Ok(None) => {}
        }
        match parse_flag::<u64>("--timeout-secs", &arg, &mut args) {
            Ok(Some(n)) if n >= 1 => {
                timeout = Duration::from_secs(n);
                continue;
            }
            Ok(Some(_)) | Err(()) => {
                eprintln!("--timeout-secs needs a positive integer");
                return ExitCode::FAILURE;
            }
            Ok(None) => {}
        }
        match parse_flag::<usize>("--sim-threads", &arg, &mut args) {
            Ok(Some(n)) if n >= 1 => {
                runner::set_sim_threads(n);
                continue;
            }
            Ok(Some(_)) | Err(()) => {
                eprintln!("--sim-threads needs a positive integer");
                return ExitCode::FAILURE;
            }
            Ok(None) => {}
        }
        match parse_flag::<u64>("--max-cycles", &arg, &mut args) {
            Ok(Some(n)) if n >= 1 => {
                experiments::resilience::set_max_cycles(n);
                continue;
            }
            Ok(Some(_)) | Err(()) => {
                eprintln!("--max-cycles needs a positive integer");
                return ExitCode::FAILURE;
            }
            Ok(None) => {}
        }
        positional.push(arg);
    }
    let out_dir = positional.get(1).cloned();
    match positional.first().map(String::as_str) {
        None | Some("list") => {
            println!("available experiments:");
            for e in experiments::all() {
                println!("  {:<8} {}", e.id, e.title);
            }
            println!("  all      run everything");
            ExitCode::SUCCESS
        }
        Some("all") => run_set(experiments::all(), jobs, out_dir.as_deref(), timeout),
        Some(id) => match experiments::by_id(id) {
            Some(e) => run_set(vec![e], jobs, out_dir.as_deref(), timeout),
            None => {
                eprintln!("unknown experiment {id}; run with no arguments to list");
                ExitCode::FAILURE
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The emitted JSON parses back and carries the scraped rows
    /// (satellite smoke test for the results pipeline).
    #[test]
    fn result_json_roundtrips() {
        let text = experiments::by_id("table3").expect("table3 exists");
        let rendered = (text.run)(1);
        let sim = (
            1234u64,
            SimProfile {
                alu_issues: 7,
                ..SimProfile::default()
            },
        );
        let doc = build_json(
            "table3",
            text.title,
            &Ok(rendered.clone()),
            0.25,
            2,
            1,
            false,
            Some(&sim),
        );
        let back = Json::parse(&doc.render()).expect("valid JSON");
        assert_eq!(back, doc);
        assert_eq!(back.get("id").and_then(Json::as_str), Some("table3"));
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(back.get("attempts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(back.get("quarantined").and_then(Json::as_bool), Some(false));
        let rows = back.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), numeric_rows(&rendered).len());
        assert!(!rows.is_empty(), "table3 has numeric rows");
        // The telemetry section comes straight from the registry renderer.
        let tele = back.get("telemetry").expect("telemetry section");
        let instrs = tele
            .get("sim.instructions")
            .and_then(|m| m.get("value"))
            .and_then(Json::as_f64);
        assert_eq!(instrs, Some(1234.0));
        let alu = tele
            .get("sim.profile.alu_issues")
            .and_then(|m| m.get("value"))
            .and_then(Json::as_f64);
        assert_eq!(alu, Some(7.0));
    }

    #[test]
    fn failed_experiment_json_carries_the_error() {
        let doc = build_json("fig4", "t", &Err("boom".to_string()), 0.0, 1, 2, true, None);
        let back = Json::parse(&doc.render()).expect("valid JSON");
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(back.get("error").and_then(Json::as_str), Some("boom"));
        assert_eq!(back.get("attempts").and_then(Json::as_f64), Some(2.0));
        assert_eq!(back.get("quarantined").and_then(Json::as_bool), Some(true));
        assert!(back.get("rows").is_none());
    }

    /// A panicking experiment is caught by the supervisor, not propagated;
    /// a hanging one is cut off at the wall-time budget.
    #[test]
    fn supervisor_catches_panics_and_timeouts() {
        fn boom(_jobs: usize) -> String {
            panic!("deliberate test panic")
        }
        let a = run_supervised(boom, 1, Duration::from_secs(30));
        assert!(!a.timed_out);
        assert!(a.outcome.unwrap_err().contains("deliberate test panic"));

        fn hang(_jobs: usize) -> String {
            loop {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        let a = run_supervised(hang, 1, Duration::from_millis(200));
        assert!(a.timed_out);
        assert!(a.outcome.unwrap_err().contains("wall-time budget"));
    }
}
