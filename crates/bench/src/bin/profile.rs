//! Telemetry CLI: stall-attribution tables, Chrome traces, and the metric
//! schema gate.
//!
//! ```text
//! profile                          # stall-attribution table (Fig. 13 analogue)
//! profile --jobs 4                 # same table, 4 worker threads (byte-identical)
//! profile --sim-threads 4          # shard each GPU's cores over 4 workers
//!                                  # inside the engine (also byte-identical)
//! profile --trace vectoradd --out trace.json   # Chrome trace for one workload
//! profile --schema                 # print the instrumented-run metric key set
//! profile --check-schema FIXTURE   # CI gate: key set must match the fixture
//! profile --openmetrics            # OpenMetrics text exposition of the
//!                                  # deterministic reference run
//! ```
//!
//! The schema is the *key set* of the telemetry registry after one
//! instrumented reference run (simulator + memory + driver metrics) plus a
//! verifier sweep (compiler pass metrics). Values are free to drift —
//! wall times and cycle counts change with the code — but a key
//! appearing or vanishing is a schema change consumers must see, so CI
//! pins the set against `tests/golden/telemetry_schema.json`.

use gpushield::{Registry, Trace};
use gpushield_bench::adapter::SystemHost;
use gpushield_bench::experiments::by_id;
use gpushield_bench::runner::{config, Protection, Target};
use gpushield_bench::schema::{openmetrics_registry, reference_registry, schema_json};
use gpushield_runtime::report::Json;
use gpushield_workloads::by_name;
use std::process::ExitCode;

/// Trace capacity for `--trace`: large enough for every small workload,
/// bounded so a long one cannot exhaust memory (the export renders the
/// cut point when it truncates).
const TRACE_CAPACITY: usize = 200_000;

fn check_schema(fixture_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(fixture_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {fixture_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse {fixture_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let expected: Vec<String> = doc
        .get("keys")
        .and_then(Json::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(|k| k.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    let reg = reference_registry();
    let actual: Vec<String> = reg.names().into_iter().map(str::to_string).collect();
    let missing: Vec<&String> = expected.iter().filter(|k| !actual.contains(k)).collect();
    let added: Vec<&String> = actual.iter().filter(|k| !expected.contains(k)).collect();
    if missing.is_empty() && added.is_empty() {
        eprintln!(
            "telemetry schema OK: {} keys match {fixture_path}",
            actual.len()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("TELEMETRY SCHEMA MISMATCH vs {fixture_path}:");
    for k in &missing {
        eprintln!("  - {k} (in fixture, not produced)");
    }
    for k in &added {
        eprintln!("  + {k} (produced, not in fixture)");
    }
    eprintln!("regenerate with: profile --schema > {fixture_path}");
    ExitCode::FAILURE
}

/// Runs `name` instrumented + traced and writes a Chrome Trace Event
/// Format JSON with one launch span per kernel launch.
fn trace_workload(name: &str, out: Option<&str>) -> ExitCode {
    let Some(w) = by_name(name) else {
        eprintln!("unknown workload {name}");
        return ExitCode::FAILURE;
    };
    let mut host = SystemHost::new(config(Target::Nvidia, Protection::shield_default()));
    host.attach_registry(Registry::new());
    host.attach_trace(Trace::new(TRACE_CAPACITY));
    w.run(&mut host);
    let trace = host.take_trace().expect("trace attached");
    let mut chrome = trace.to_chrome();
    // Launch phase spans on a dedicated host lane: every launch restarts
    // the simulated clock, so spans share t=0 and are told apart by tid.
    for (i, r) in host.reports.iter().enumerate() {
        chrome.push_span(
            &format!("launch {i}"),
            "launch",
            0,
            r.cycles,
            u32::MAX,
            i as u32,
        );
        chrome.arg("cycles", &r.cycles.to_string());
        chrome.arg("instructions", &r.instructions().to_string());
    }
    let rendered = chrome.render();
    eprintln!(
        "{name}: {} events ({} trace events, {} dropped), {} launches",
        chrome.len(),
        trace.events().len(),
        trace.dropped(),
        host.reports.len()
    );
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut jobs = gpushield_runtime::pool::available_parallelism();
    let mut trace: Option<String> = None;
    let mut out: Option<String> = None;
    let mut schema = false;
    let mut openmetrics = false;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--sim-threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => gpushield_bench::runner::set_sim_threads(n),
                _ => {
                    eprintln!("--sim-threads needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => trace = args.next(),
            "--out" => out = args.next(),
            "--schema" => schema = true,
            "--openmetrics" => openmetrics = true,
            "--check-schema" => check = args.next(),
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if schema {
        println!("{}", schema_json(&reference_registry()));
        return ExitCode::SUCCESS;
    }
    if openmetrics {
        print!("{}", openmetrics_registry().render_openmetrics());
        return ExitCode::SUCCESS;
    }
    if let Some(fixture) = check {
        return check_schema(&fixture);
    }
    if let Some(name) = trace {
        return trace_workload(&name, out.as_deref());
    }
    let e = by_id("profile").expect("profile exhibit registered");
    print!("{}", (e.run)(jobs));
    ExitCode::SUCCESS
}
