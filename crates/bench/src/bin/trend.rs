//! Trend gate over the committed bench baselines.
//!
//! ```text
//! trend --check              # CI gate: fresh fuzz sweep vs BENCH_detection.json
//! trend --check --jobs 8     # same, fanning the sweep over 8 workers
//! trend --write              # regenerate BENCH_detection.json from a fresh sweep
//! ```
//!
//! `--check` reruns the default fuzz corpus plus the static-precision
//! classification and the observation-overhead sweep, renders a one-table
//! trend report covering the committed baselines (`BENCH_detection.json`,
//! `BENCH_static_precision.json`, `BENCH_observe.json`,
//! `BENCH_simcore.json`, `BENCH_parcore.json`), and exits non-zero when a
//! gated baseline regresses:
//!
//! * any class's `detected` or `conforming` count drops,
//! * any class hangs,
//! * the class set or the per-class JSON key set drifts (schema drift —
//!   downstream consumers key on these),
//! * a benign control faults,
//! * the certificate prover's Type 1 count drops — overall, per workload,
//!   or in how many workloads improve over the seed analysis,
//! * the runtime auditor catches any certificate window lying,
//! * observation perturbs simulated results: any recorder mode's
//!   `sim_cycles` differing from the disabled run, the disabled run
//!   drifting from the committed observe baseline, the disabled run
//!   disagreeing with `BENCH_simcore.json`'s smoke section (same
//!   workload/protections/reps), or full-mode event coverage dropping.
//!
//! The simcore/parcore rows are report-only context (their rates are gated
//! separately by the throughput smoke); detection, precision, and
//! observation are the gating tables. Observation *wall* overhead is
//! report-only — wall clocks are machine-dependent.

use gpushield_bench::experiments::precision::precision_summary;
use gpushield_bench::fuzzsweep::{run_sweep, Scoreboard};
use gpushield_bench::observe::{run_observe_sweep, ObserveSweep};
use gpushield_bench::runner;
use gpushield_fuzzgen::{CORPUS_SEED, PER_CLASS};
use gpushield_runtime::report::Json;
use std::process::ExitCode;

const DETECTION_PATH: &str = "BENCH_detection.json";
const PRECISION_PATH: &str = "BENCH_static_precision.json";
const OBSERVE_PATH: &str = "BENCH_observe.json";
const SIMCORE_PATH: &str = "BENCH_simcore.json";

fn usage() -> ExitCode {
    eprintln!("usage: trend [--check|--write] [--jobs N] [--sim-threads N]");
    ExitCode::from(2)
}

fn uint(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_f64).map(|v| v as u64)
}

/// Renders one trend row: name, baseline value, current value, delta.
fn row(out: &mut String, name: &str, baseline: String, current: String, note: &str) {
    out.push_str(&format!(
        "{name:<34} {baseline:>16} {current:>16}   {note}\n"
    ));
}

/// Compares the fresh scoreboard against the committed baseline; returns
/// the failure messages (empty = gate passes) and appends per-class rows
/// to the report.
fn check_detection(sb: &Scoreboard, baseline: &Json, report: &mut String) -> Vec<String> {
    let mut failures = Vec::new();
    let fresh = sb.to_json();
    if baseline.get("schema").and_then(Json::as_str) != fresh.get("schema").and_then(Json::as_str) {
        failures.push(format!(
            "schema drift: baseline {:?} vs current {:?}",
            baseline.get("schema").and_then(Json::as_str),
            fresh.get("schema").and_then(Json::as_str)
        ));
        return failures;
    }
    let empty: Vec<Json> = Vec::new();
    let base_classes = baseline
        .get("classes")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let cur_classes = fresh
        .get("classes")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);

    let names = |cs: &[Json]| -> Vec<String> {
        cs.iter()
            .filter_map(|c| c.get("class").and_then(Json::as_str).map(str::to_string))
            .collect()
    };
    let base_names = names(base_classes);
    let cur_names = names(cur_classes);
    if base_names != cur_names {
        failures.push(format!(
            "class-set drift: baseline {base_names:?} vs current {cur_names:?}"
        ));
        return failures;
    }

    for (b, c) in base_classes.iter().zip(cur_classes) {
        let class = b.get("class").and_then(Json::as_str).unwrap_or("?");
        // Key-set drift inside a class row is schema drift too.
        let keys = |j: &Json| -> Vec<String> {
            match j {
                Json::Obj(kvs) => kvs.iter().map(|(k, _)| k.clone()).collect(),
                _ => Vec::new(),
            }
        };
        if keys(b) != keys(c) {
            failures.push(format!(
                "{class}: scoreboard key drift: baseline {:?} vs current {:?}",
                keys(b),
                keys(c)
            ));
            continue;
        }
        let (bd, cd) = (uint(b, "detected"), uint(c, "detected"));
        let (bc, cc) = (uint(b, "conforming"), uint(c, "conforming"));
        let hang = uint(c, "hang").unwrap_or(0);
        let false_faults = uint(c, "false_fault").unwrap_or(0);
        let expected = b.get("expected").and_then(Json::as_str).unwrap_or("?");
        let mut note = "ok";
        if cd < bd {
            failures.push(format!(
                "{class}: detected dropped {} -> {}",
                bd.unwrap_or(0),
                cd.unwrap_or(0)
            ));
            note = "REGRESSED";
        }
        if cc < bc {
            failures.push(format!(
                "{class}: conforming dropped {} -> {}",
                bc.unwrap_or(0),
                cc.unwrap_or(0)
            ));
            note = "REGRESSED";
        }
        if hang > 0 {
            failures.push(format!("{class}: {hang} hang(s)"));
            note = "HUNG";
        }
        if class == "benign-control" && false_faults > 0 {
            failures.push(format!("{class}: {false_faults} false fault(s)"));
            note = "FALSE-FAULT";
        }
        row(
            report,
            &format!("detection/{class}"),
            format!(
                "{}/{} {}",
                bd.unwrap_or(0),
                uint(b, "specimens").unwrap_or(0),
                expected
            ),
            format!(
                "{}/{} conform {}",
                cd.unwrap_or(0),
                uint(c, "specimens").unwrap_or(0),
                cc.unwrap_or(0)
            ),
            note,
        );
    }
    failures
}

/// Compares the fresh static-precision summary against the committed
/// baseline. The gate fails on a Type-1-share regression — overall, per
/// workload, or in the improved-workload count — and on any certificate
/// the runtime auditor caught lying.
fn check_precision(fresh: &Json, baseline: &Json, report: &mut String) -> Vec<String> {
    let mut failures = Vec::new();
    if baseline.get("schema").and_then(Json::as_str) != fresh.get("schema").and_then(Json::as_str) {
        failures.push(format!(
            "precision schema drift: baseline {:?} vs current {:?}",
            baseline.get("schema").and_then(Json::as_str),
            fresh.get("schema").and_then(Json::as_str)
        ));
        return failures;
    }
    let (b_cert, c_cert) = (uint(baseline, "cert_t1"), uint(fresh, "cert_t1"));
    let (b_imp, c_imp) = (uint(baseline, "improved"), uint(fresh, "improved"));
    let violations = uint(fresh, "audit_violations").unwrap_or(0);
    let mut note = "ok";
    if c_cert < b_cert {
        failures.push(format!(
            "certified Type 1 sites dropped {} -> {}",
            b_cert.unwrap_or(0),
            c_cert.unwrap_or(0)
        ));
        note = "REGRESSED";
    }
    if c_imp < b_imp {
        failures.push(format!(
            "improved-workload count dropped {} -> {}",
            b_imp.unwrap_or(0),
            c_imp.unwrap_or(0)
        ));
        note = "REGRESSED";
    }
    if violations > 0 {
        failures.push(format!("{violations} certificate audit violation(s)"));
        note = "UNSOUND";
    }
    let empty: Vec<Json> = Vec::new();
    let b_rows = baseline
        .get("rows")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let c_rows = fresh.get("rows").and_then(Json::as_arr).unwrap_or(&empty);
    let name = |j: &Json| {
        j.get("workload")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    if b_rows.iter().map(name).collect::<Vec<_>>() != c_rows.iter().map(name).collect::<Vec<_>>() {
        failures.push("precision workload-set drift".to_string());
    } else {
        for (b, c) in b_rows.iter().zip(c_rows) {
            if uint(c, "cert_t1") < uint(b, "cert_t1") {
                failures.push(format!(
                    "{}: certified Type 1 sites dropped {} -> {}",
                    name(b),
                    uint(b, "cert_t1").unwrap_or(0),
                    uint(c, "cert_t1").unwrap_or(0)
                ));
                note = "REGRESSED";
            }
        }
    }
    row(
        report,
        "precision/cert-type1",
        format!(
            "{}/{} sites",
            b_cert.unwrap_or(0),
            uint(baseline, "sites").unwrap_or(0)
        ),
        format!(
            "{}/{} improved {}",
            c_cert.unwrap_or(0),
            uint(fresh, "sites").unwrap_or(0),
            c_imp.unwrap_or(0)
        ),
        note,
    );
    failures
}

/// Compares the fresh observation-overhead sweep against the committed
/// baseline. Gated: schema drift, any recorder mode perturbing simulated
/// cycles, the disabled run drifting from the committed document or from
/// `BENCH_simcore.json`'s smoke section, and full-mode event-coverage
/// drops. Wall-clock overhead is rendered report-only.
fn check_observe(
    fresh: &ObserveSweep,
    baseline: &Json,
    simcore: Option<&Json>,
    report: &mut String,
) -> Vec<String> {
    let mut failures = Vec::new();
    let doc = fresh.to_json();
    if baseline.get("schema").and_then(Json::as_str) != doc.get("schema").and_then(Json::as_str) {
        failures.push(format!(
            "observe schema drift: baseline {:?} vs current {:?}",
            baseline.get("schema").and_then(Json::as_str),
            doc.get("schema").and_then(Json::as_str)
        ));
        return failures;
    }
    let mode = |d: &Json, m: &str, key: &str| -> Option<u64> {
        d.get(m)
            .and_then(|s| s.get(key))
            .and_then(Json::as_f64)
            .map(|v| v as u64)
    };
    let disabled_cycles = mode(&doc, "disabled", "sim_cycles");
    for m in ["counters", "full"] {
        if mode(&doc, m, "sim_cycles") != disabled_cycles {
            failures.push(format!(
                "observation perturbs simulation: {m} sim_cycles {:?} vs disabled {:?}",
                mode(&doc, m, "sim_cycles"),
                disabled_cycles
            ));
        }
    }
    if mode(baseline, "disabled", "sim_cycles") != disabled_cycles {
        failures.push(format!(
            "observe sim_cycles drift: baseline disabled {:?} vs current {:?}",
            mode(baseline, "disabled", "sim_cycles"),
            disabled_cycles
        ));
    }
    // The observe sweep mirrors the throughput smoke (same workload,
    // protections, reps), so the two committed documents must agree on
    // the simulated quantity; disagreement means one is stale.
    if let Some(sc) = simcore {
        let smoke_cycles = sc
            .get("smoke")
            .and_then(|s| s.get("sim_cycles"))
            .and_then(Json::as_f64)
            .map(|v| v as u64);
        if smoke_cycles != disabled_cycles {
            failures.push(format!(
                "BENCH_observe disabled sim_cycles {disabled_cycles:?} != \
                 BENCH_simcore smoke sim_cycles {smoke_cycles:?} (stale baseline)"
            ));
        }
    }
    let (b_ev, c_ev) = (
        mode(baseline, "full", "events_recorded"),
        mode(&doc, "full", "events_recorded"),
    );
    if c_ev < b_ev {
        failures.push(format!(
            "flight-recorder coverage dropped: events_recorded {} -> {}",
            b_ev.unwrap_or(0),
            c_ev.unwrap_or(0)
        ));
    }
    let wall = |m: &ObserveSweep, label: &str| {
        m.modes
            .iter()
            .find(|x| x.mode == label)
            .map_or(0.0, |x| x.wall_seconds)
    };
    let overhead = |label: &str| {
        let base = wall(fresh, "disabled").max(1e-9);
        format!("{:+.1}% wall", (wall(fresh, label) / base - 1.0) * 100.0)
    };
    for (label, note) in [
        ("disabled", "gated: cycles == simcore smoke"),
        ("counters", "gated: cycles == disabled"),
        ("full", "gated: cycles == disabled, coverage"),
    ] {
        row(
            report,
            &format!("observe/{label}"),
            format!("{} cyc", mode(baseline, label, "sim_cycles").unwrap_or(0)),
            format!(
                "{} cyc {}",
                mode(&doc, label, "sim_cycles").unwrap_or(0),
                if label == "disabled" {
                    "ref".to_string()
                } else {
                    overhead(label)
                }
            ),
            if failures.is_empty() {
                note
            } else {
                "REGRESSED"
            },
        );
    }
    failures
}

/// Report-only context row for a committed throughput baseline.
fn perf_row(report: &mut String, path: &str) {
    let Ok(text) = std::fs::read_to_string(path) else {
        row(
            report,
            path,
            "-".into(),
            "-".into(),
            "missing (report-only)",
        );
        return;
    };
    let Ok(doc) = Json::parse(&text) else {
        row(
            report,
            path,
            "-".into(),
            "-".into(),
            "unparsable (report-only)",
        );
        return;
    };
    let full = doc.get("full");
    let rate = full
        .and_then(|f| f.get("instrs_per_sec"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let cycles = full
        .and_then(|f| f.get("sim_cycles"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64;
    let threads = doc.get("sim_threads").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    row(
        report,
        &format!("throughput/sim-threads-{threads}"),
        format!("{cycles} cyc"),
        format!("{:.0} instr/s", rate),
        "committed (report-only)",
    );
}

fn main() -> ExitCode {
    let mut write = false;
    let mut jobs = std::thread::available_parallelism().map_or(1, usize::from);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => write = false,
            "--write" => write = true,
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => return usage(),
            },
            "--sim-threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => runner::set_sim_threads(n),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    let sb = run_sweep(CORPUS_SEED, PER_CLASS, jobs);
    let precision = precision_summary(jobs);
    let observe = run_observe_sweep();
    if write {
        for (path, doc) in [
            (DETECTION_PATH, sb.to_json().render()),
            (PRECISION_PATH, precision.render()),
            (OBSERVE_PATH, observe.to_json().render()),
        ] {
            if let Err(e) = std::fs::write(path, doc + "\n") {
                eprintln!("trend: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            println!("wrote {path}");
        }
        return ExitCode::SUCCESS;
    }

    let read_baseline = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(doc) => Ok(doc),
            Err(e) => {
                eprintln!("trend: {path} is not valid JSON: {e}");
                Err(ExitCode::from(2))
            }
        },
        Err(e) => {
            eprintln!("trend: cannot read {path}: {e} (run `trend --write`)");
            Err(ExitCode::from(2))
        }
    };
    let baseline = match read_baseline(DETECTION_PATH) {
        Ok(doc) => doc,
        Err(code) => return code,
    };
    let precision_baseline = match read_baseline(PRECISION_PATH) {
        Ok(doc) => doc,
        Err(code) => return code,
    };
    let observe_baseline = match read_baseline(OBSERVE_PATH) {
        Ok(doc) => doc,
        Err(code) => return code,
    };
    // The simcore cross-check is best-effort: simcore carries wall-clock
    // rates gated elsewhere, so a missing file only skips the staleness
    // comparison (perf_row below still reports it missing).
    let simcore = std::fs::read_to_string(SIMCORE_PATH)
        .ok()
        .and_then(|t| Json::parse(&t).ok());

    let mut report = String::new();
    report.push_str(&format!(
        "{:<34} {:>16} {:>16}   {}\n",
        "trend", "baseline", "current", "status"
    ));
    let mut failures = check_detection(&sb, &baseline, &mut report);
    failures.extend(check_precision(
        &precision,
        &precision_baseline,
        &mut report,
    ));
    failures.extend(check_observe(
        &observe,
        &observe_baseline,
        simcore.as_ref(),
        &mut report,
    ));
    perf_row(&mut report, SIMCORE_PATH);
    perf_row(&mut report, "BENCH_parcore.json");
    print!("{report}");

    if failures.is_empty() {
        println!("\ntrend: detection scoreboard matches or improves on the baseline");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("trend: FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
