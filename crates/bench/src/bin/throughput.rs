//! Simulator-core throughput harness: how many simulated warp instructions
//! per wall-clock second the hot path sustains on the Fig. 14 workload set.
//!
//! ```text
//! throughput                                # full fig14 sweep, print summary
//! throughput --out BENCH_simcore.json       # also write the JSON document
//! throughput --baseline pre.json            # embed a prior run + speedup
//! throughput --smoke                        # quick single-workload measure
//! throughput --smoke --check BENCH_simcore.json   # CI gate: fail if the
//!                                           # smoke rate regressed >30%
//! --tolerance 0.30                          # override the gate threshold
//! throughput --sim-threads 4 --out BENCH_parcore.json   # cycle-quantum
//!                                           # engine sharded over 4 workers
//! ```
//!
//! At `--sim-threads 1` (the default) the quantity tracked is the
//! sequential simulation rate of the cycle-quantum engine (committed as
//! `BENCH_simcore.json`); at higher counts it is the parallel-engine
//! throughput with the simulated GPU's cores sharded across worker
//! threads (committed as `BENCH_parcore.json` at 4). Simulated results
//! are byte-identical either way. Wall-clock numbers are
//! machine-dependent; the committed documents record the container that
//! produced them via the config fingerprint, and the CI gates use
//! generous tolerances so only real regressions trip them.

use gpushield_bench::runner::{config_fingerprint, run_workload, Protection, Target};
use gpushield_runtime::report::Json;
use gpushield_sim::SimProfile;
use gpushield_workloads::{by_name, cuda_set, Workload};
use std::process::ExitCode;
use std::time::Instant;

/// The three protection points Fig. 14 sweeps per workload.
fn protections() -> [(&'static str, Protection); 3] {
    [
        ("baseline", Protection::baseline()),
        ("shield-l1:1-l2:3", Protection::shield_lat(1, 3)),
        ("shield-l1:2-l2:5", Protection::shield_lat(2, 5)),
    ]
}

/// One measured sweep: total simulated instructions/cycles and wall time.
struct Measure {
    instructions: u64,
    sim_cycles: u64,
    wall_seconds: f64,
    profile: SimProfile,
}

impl Measure {
    fn instrs_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.wall_seconds
        }
    }
}

fn sweep(workloads: &[Workload]) -> Measure {
    let start = Instant::now();
    let mut instructions = 0u64;
    let mut sim_cycles = 0u64;
    let mut profile = SimProfile::default();
    for w in workloads {
        for (_, prot) in protections() {
            let r = run_workload(w, Target::Nvidia, prot);
            instructions += r.instructions;
            sim_cycles += r.cycles;
            profile.merge(&r.profile);
        }
    }
    Measure {
        instructions,
        sim_cycles,
        wall_seconds: start.elapsed().as_secs_f64(),
        profile,
    }
}

/// The smoke workload: small, allocation-and-check heavy enough to exercise
/// the whole LSU/BCU path, fast enough for CI.
fn smoke_sweep() -> Measure {
    let w = by_name("vectoradd").expect("vectoradd registered");
    // Repeat to get a wall time long enough to be stable on CI machines.
    let start = Instant::now();
    let mut instructions = 0u64;
    let mut sim_cycles = 0u64;
    let mut profile = SimProfile::default();
    for _ in 0..20 {
        for (_, prot) in protections() {
            let r = run_workload(&w, Target::Nvidia, prot);
            instructions += r.instructions;
            sim_cycles += r.cycles;
            profile.merge(&r.profile);
        }
    }
    Measure {
        instructions,
        sim_cycles,
        wall_seconds: start.elapsed().as_secs_f64(),
        profile,
    }
}

fn measure_json(m: &Measure) -> Json {
    let mut doc = Json::obj();
    doc.set("instructions", Json::UInt(m.instructions));
    doc.set("sim_cycles", Json::UInt(m.sim_cycles));
    doc.set("wall_seconds", Json::Float(m.wall_seconds));
    doc.set("instrs_per_sec", Json::Float(m.instrs_per_sec()));
    doc.set("profile", profile_json(&m.profile));
    doc
}

/// The profile section comes from the telemetry registry — the same
/// publish path the `experiments` binary and the instrumented simulator
/// use — so every consumer sees one metric namespace (`sim.profile.*`).
fn profile_json(p: &SimProfile) -> Json {
    let mut reg = gpushield_telemetry::Registry::new();
    p.publish(&mut reg);
    Json::parse(&reg.render_json()).expect("registry renders valid JSON")
}

fn print_measure(label: &str, m: &Measure) {
    eprintln!(
        "{label}: {} instrs, {} sim-cycles, {:.2}s wall, {:.0} instrs/sec",
        m.instructions,
        m.sim_cycles,
        m.wall_seconds,
        m.instrs_per_sec()
    );
    let p = &m.profile;
    eprintln!(
        "  phases: alu {} | mem {} (shared {}) | bar {} | malloc {} | txs {} | checks {} (stall {}) | dram {} | idle-skips {}",
        p.alu_issues,
        p.mem_issues,
        p.shared_issues,
        p.barrier_issues,
        p.malloc_issues,
        p.lsu_transactions,
        p.bcu_checks,
        p.bcu_stall_cycles,
        p.dram_accesses,
        p.idle_skips
    );
}

fn main() -> ExitCode {
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut check: Option<String> = None;
    let mut smoke = false;
    let mut tolerance = 0.30f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next(),
            "--baseline" => baseline = args.next(),
            "--check" => check = args.next(),
            "--smoke" => smoke = true,
            "--sim-threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => gpushield_bench::runner::set_sim_threads(n),
                _ => {
                    eprintln!("--sim-threads needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => tolerance = t,
                _ => {
                    eprintln!("--tolerance needs a fraction in [0, 1)");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let smoke_m = smoke_sweep();
    print_measure("smoke (vectoradd x3 prot x20)", &smoke_m);

    // CI gate: compare the smoke rate against the committed document.
    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let reference = doc
            .get("smoke")
            .and_then(|s| s.get("instrs_per_sec"))
            .and_then(Json::as_f64);
        let Some(reference) = reference else {
            eprintln!("{path} carries no smoke.instrs_per_sec");
            return ExitCode::FAILURE;
        };
        let floor = reference * (1.0 - tolerance);
        let rate = smoke_m.instrs_per_sec();
        if rate < floor {
            eprintln!(
                "THROUGHPUT REGRESSION: {rate:.0} instrs/sec < floor {floor:.0} \
                 ({reference:.0} reference, {:.0}% tolerance)",
                tolerance * 100.0
            );
            return ExitCode::FAILURE;
        }
        eprintln!("throughput gate OK: {rate:.0} >= floor {floor:.0} instrs/sec");
        return ExitCode::SUCCESS;
    }
    if smoke {
        return ExitCode::SUCCESS;
    }

    let full = sweep(&cuda_set());
    print_measure("fig14 set (cuda_set x3 prot)", &full);

    let mut doc = Json::obj();
    let st = gpushield_bench::runner::sim_threads();
    doc.set(
        "bench",
        Json::Str(
            if st > 1 {
                "parcore-throughput"
            } else {
                "simcore-throughput"
            }
            .to_string(),
        ),
    );
    doc.set(
        "workload_set",
        Json::Str(format!(
            "fig14: cuda_set x {{baseline, shield(1,3), shield(2,5)}}, sim_threads={st}"
        )),
    );
    doc.set("sim_threads", Json::UInt(st as u64));
    // Wall-clock rates only mean something relative to the machine that
    // produced them; the CI speedup gate compares parcore vs simcore only
    // when the producer actually had the cores to run the workers on.
    doc.set(
        "host_parallelism",
        Json::UInt(gpushield_runtime::pool::available_parallelism() as u64),
    );
    doc.set("config_fingerprint", Json::Str(config_fingerprint()));
    doc.set("full", measure_json(&full));
    doc.set("smoke", {
        let mut s = measure_json(&smoke_m);
        s.set("workload", Json::Str("vectoradd x3 prot x20".to_string()));
        s
    });
    if let Some(path) = baseline {
        match std::fs::read_to_string(&path).map_err(|e| e.to_string()) {
            Ok(text) => match Json::parse(&text) {
                Ok(prior) => {
                    let prior_rate = prior
                        .get("full")
                        .and_then(|f| f.get("instrs_per_sec"))
                        .and_then(Json::as_f64);
                    if let Some(prior_rate) = prior_rate {
                        let speedup = full.instrs_per_sec() / prior_rate.max(1e-9);
                        eprintln!("speedup vs baseline: {speedup:.2}x");
                        doc.set("speedup_vs_baseline", Json::Float(speedup));
                    }
                    doc.set("baseline", prior);
                }
                Err(e) => {
                    eprintln!("cannot parse baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, doc.render()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
