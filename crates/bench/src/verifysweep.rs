//! Registry-wide kernel verification and BAT soundness auditing.
//!
//! Two consumers share this module: the `static_analysis` / `bat_soundness`
//! experiments and the `verify` CLI that gates CI. Both sweep the full
//! workload registry; the difference is what they run per launch:
//!
//! * **Verification** replays each workload's host program against a
//!   [`CaptureHost`] — a pure recorder that mirrors exactly the
//!   [`gpushield_compiler::LaunchKnowledge`] the driver would construct at
//!   launch time — and runs the [`gpushield_compiler::PassManager`] over
//!   every distinct (kernel, knowledge) pair.
//! * **Auditing** runs each workload on a live [`gpushield::System`] with
//!   address recording on, and checks every observed per-site address range
//!   against the static claims the driver published for that launch: a
//!   Type 1 (Static) site observed outside its declared region, or a
//!   Type 3 site whose power-of-two reservation under-covers an observed
//!   access, disproves the analysis and is reported as a violation.

use gpushield::{Arg, BufferHandle, System, SystemConfig};
use gpushield_compiler::{ArgInfo, LaunchKnowledge, PassManager, VerifyReport};
use gpushield_isa::{Kernel, SiteCheck};
use gpushield_workloads::{BufId, HostApi, WArg, Workload};
use std::sync::Arc;

/// One recorded kernel launch with the knowledge the driver would have.
pub struct CapturedLaunch {
    /// The launched kernel.
    pub kernel: Arc<Kernel>,
    /// Workgroups.
    pub grid: u32,
    /// Threads per workgroup.
    pub block: u32,
    /// Launch-time knowledge, mirroring the driver's construction.
    pub know: LaunchKnowledge,
}

/// A metadata-only host recording every launch as a [`CapturedLaunch`].
#[derive(Default)]
pub struct CaptureHost {
    sizes: Vec<u64>,
    heap: Option<u64>,
    /// All launches, in program order.
    pub launches: Vec<CapturedLaunch>,
}

impl CaptureHost {
    /// Creates an empty capture host.
    pub fn new() -> Self {
        CaptureHost::default()
    }
}

impl HostApi for CaptureHost {
    fn alloc(&mut self, bytes: u64) -> BufId {
        self.sizes.push(bytes);
        self.sizes.len() - 1
    }

    fn upload_u32(&mut self, _buf: BufId, _offset_bytes: u64, _data: &[u32]) {}

    fn set_heap(&mut self, bytes: u64) {
        self.heap = Some(bytes);
    }

    fn launch(&mut self, kernel: &Arc<Kernel>, grid: u32, block: u32, args: &[WArg]) {
        // Mirror the driver: buffer args expose their allocation size,
        // scalars are launch-time constants, locals scale with the thread
        // count.
        let total_threads = u64::from(grid) * u64::from(block);
        let know = LaunchKnowledge {
            args: args
                .iter()
                .map(|a| match a {
                    WArg::Buf(b) => ArgInfo::Buffer {
                        size: self.sizes[*b],
                    },
                    WArg::Scalar(v) => ArgInfo::Scalar { value: Some(*v) },
                })
                .collect(),
            local_sizes: kernel
                .locals()
                .iter()
                .map(|l| l.bytes_per_thread() * total_threads)
                .collect(),
            block,
            grid,
            heap_size: self.heap,
        };
        self.launches.push(CapturedLaunch {
            kernel: kernel.clone(),
            grid,
            block,
            know,
        });
    }
}

/// Verification results for one workload: one report per distinct
/// (kernel, launch-knowledge) pair, in first-launch order.
pub struct WorkloadVerify {
    /// Registry name of the workload.
    pub workload: &'static str,
    /// Per-kernel verification reports.
    pub reports: Vec<VerifyReport>,
}

/// Replays `w`'s host program and verifies every distinct launch.
pub fn verify_workload(w: &Workload) -> WorkloadVerify {
    let mut sink = gpushield_telemetry::Registry::disabled();
    verify_workload_telemetry(w, &mut sink)
}

/// As [`verify_workload`], additionally publishing per-pass wall time and
/// diagnostic counts into `reg` under `compiler.pass.*` (accumulating
/// across kernels; wall times are nondeterministic — never byte-compare
/// them).
pub fn verify_workload_telemetry(
    w: &Workload,
    reg: &mut gpushield_telemetry::Registry,
) -> WorkloadVerify {
    let mut cap = CaptureHost::new();
    w.run(&mut cap);
    let pm = PassManager::with_default_passes();
    let mut seen: Vec<String> = Vec::new();
    let mut reports = Vec::new();
    for l in &cap.launches {
        // Workloads re-launch the same kernel in loops; knowledge has no
        // Eq, so the Debug form is the dedup key.
        let key = format!("{} {:?}", l.kernel.name(), l.know);
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let (report, profile) = pm.verify_profiled(&l.kernel, &l.know);
        profile.publish(reg);
        reports.push(report);
    }
    WorkloadVerify {
        workload: w.name(),
        reports,
    }
}

/// One audit violation: an observed address range escaping its claim.
pub struct AuditViolation {
    /// Kernel whose claim was disproved.
    pub kernel: String,
    /// The violated claim's site.
    pub site: (gpushield_isa::BlockId, usize),
    /// `Static` or `SizeEmbedded`.
    pub check: SiteCheck,
    /// Rendered `observed vs claimed` description.
    pub detail: String,
}

/// Audit results for one workload.
pub struct WorkloadAudit {
    /// Registry name of the workload.
    pub workload: &'static str,
    /// Kernel launches performed.
    pub launches: u64,
    /// Claims published by the driver across all launches.
    pub claims: u64,
    /// Claims with at least one observed access (audited for real).
    pub audited: u64,
    /// Static (Type 1) claims among the audited.
    pub audited_static: u64,
    /// Size-embedded (Type 3) claims among the audited.
    pub audited_type3: u64,
    /// Observed ranges escaping their claim — must be empty.
    pub violations: Vec<AuditViolation>,
}

/// The audit system configuration: the paper's default Nvidia shield with
/// every static decision the driver can make turned on, so Static,
/// elided-Static and SizeEmbedded claims all get exercised.
pub fn audit_config() -> SystemConfig {
    let mut cfg = SystemConfig::nvidia_protected();
    cfg.driver.enable_type3 = true;
    cfg.driver.enable_elision = true;
    cfg
}

/// A host that launches through [`System::launch_audited`] and checks
/// every observed per-site address range against the published claims.
struct AuditHost {
    sys: System,
    bufs: Vec<BufferHandle>,
    out: WorkloadAudit,
}

impl HostApi for AuditHost {
    fn alloc(&mut self, bytes: u64) -> BufId {
        let h = self.sys.alloc(bytes).expect("workload allocation");
        self.bufs.push(h);
        self.bufs.len() - 1
    }

    fn upload_u32(&mut self, buf: BufId, offset_bytes: u64, data: &[u32]) {
        let h = self.bufs[buf];
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.sys.write_buffer(h, offset_bytes, &bytes);
    }

    fn set_heap(&mut self, bytes: u64) {
        self.sys.set_heap_limit(bytes).expect("heap limit");
    }

    fn launch(&mut self, kernel: &Arc<Kernel>, grid: u32, block: u32, args: &[WArg]) {
        let mapped: Vec<Arg> = args
            .iter()
            .map(|a| match a {
                WArg::Buf(b) => Arg::Buffer(self.bufs[*b]),
                WArg::Scalar(v) => Arg::Scalar(*v),
            })
            .collect();
        let (report, claims) = self
            .sys
            .launch_audited(kernel.clone(), grid, block, &mapped)
            .expect("workload launch");
        self.out.launches += 1;
        self.out.claims += claims.len() as u64;
        for l in &report.launches {
            for o in &l.observed_ranges {
                let Some(c) = claims.iter().find(|c| c.site == o.site) else {
                    continue; // Runtime-checked site: nothing claimed.
                };
                self.out.audited += 1;
                match c.check {
                    SiteCheck::Static => self.out.audited_static += 1,
                    SiteCheck::SizeEmbedded => self.out.audited_type3 += 1,
                    SiteCheck::Runtime => {}
                }
                if o.lo < c.lo || o.hi > c.hi {
                    self.out.violations.push(AuditViolation {
                        kernel: kernel.name().to_string(),
                        site: c.site,
                        check: c.check,
                        detail: format!(
                            "observed [0x{:x}, 0x{:x}) escapes claimed [0x{:x}, 0x{:x})",
                            o.lo, o.hi, c.lo, c.hi
                        ),
                    });
                }
            }
        }
    }
}

/// Runs `w` on a fresh audited system and cross-checks every launch.
pub fn audit_workload(w: &Workload) -> WorkloadAudit {
    let mut host = AuditHost {
        sys: System::new(audit_config()),
        bufs: Vec::new(),
        out: WorkloadAudit {
            workload: w.name(),
            launches: 0,
            claims: 0,
            audited: 0,
            audited_static: 0,
            audited_type3: 0,
            violations: Vec::new(),
        },
    };
    w.run(&mut host);
    host.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_compiler::Severity;
    use gpushield_workloads::by_name;

    #[test]
    fn capture_host_mirrors_driver_knowledge() {
        let w = by_name("vectoradd").expect("registry workload");
        let mut cap = CaptureHost::new();
        w.run(&mut cap);
        assert!(!cap.launches.is_empty());
        let l = &cap.launches[0];
        assert_eq!(l.know.block, l.block);
        assert_eq!(l.know.grid, l.grid);
        assert_eq!(l.know.args.len(), l.kernel.params().len());
        assert!(l
            .know
            .args
            .iter()
            .any(|a| matches!(a, ArgInfo::Buffer { size } if *size > 0)));
    }

    #[test]
    fn vectoradd_verifies_clean() {
        let w = by_name("vectoradd").unwrap();
        let v = verify_workload(&w);
        assert!(!v.reports.is_empty());
        for r in &v.reports {
            assert!(
                r.at_least(Severity::Warning).next().is_none(),
                "unexpected findings: {:?}",
                r.diagnostics
            );
            assert!(r.breakdown.type1 + r.breakdown.type2 + r.breakdown.type3 > 0);
        }
    }

    #[test]
    fn vectoradd_audit_has_coverage_and_no_violations() {
        let w = by_name("vectoradd").unwrap();
        let a = audit_workload(&w);
        assert!(a.launches > 0);
        assert!(a.audited_static > 0, "static claims must be exercised");
        assert!(a.violations.is_empty());
    }
}
