//! The instrumented reference run behind the telemetry schema gate and
//! the OpenMetrics exposition: one `vectoradd` pass under default
//! GPUShield with full observation, so every metric family the stack can
//! produce — `sim.*`, `sim.flight.*`, `mem.*`, `driver.*`,
//! `driver.tenant.*`, `driver.audit.*` — lands in one registry.

use crate::adapter::SystemHost;
use crate::runner::{config, Protection, Target};
use crate::verifysweep::verify_workload_telemetry;
use gpushield::{ObserveMode, Registry};
use gpushield_runtime::report::Json;
use gpushield_workloads::by_name;

/// The deterministic half of the reference run: every simulated-quantity
/// metric (no verifier sweep, whose pass timings are wall-clock). This is
/// what `profile --openmetrics` renders and the golden exposition pins.
pub fn openmetrics_registry() -> Registry {
    let w = by_name("vectoradd").expect("vectoradd registered");
    let mut host = SystemHost::new(config(Target::Nvidia, Protection::shield_default()));
    host.system_mut().enable_observation(ObserveMode::Full);
    host.attach_registry(Registry::new());
    w.run(&mut host);
    let mut reg = host.take_registry().expect("registry attached");
    gpushield::TenantTable::with_slices([(1u16, 2u16, 1u64)]).publish_telemetry(&mut reg);
    reg
}

/// The full reference registry: the deterministic run plus the verifier
/// sweep's `compiler.pass.*` metrics (wall-clock values; the schema gate
/// pins keys only).
pub fn reference_registry() -> Registry {
    let w = by_name("vectoradd").expect("vectoradd registered");
    let mut reg = openmetrics_registry();
    verify_workload_telemetry(&w, &mut reg);
    reg
}

/// The schema document: the sorted metric key set as a JSON array.
pub fn schema_json(reg: &Registry) -> String {
    let mut doc = Json::obj();
    doc.set(
        "keys",
        Json::Arr(
            reg.names()
                .into_iter()
                .map(|n| Json::Str(n.to_string()))
                .collect(),
        ),
    );
    doc.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_registry_covers_every_metric_family() {
        let reg = reference_registry();
        let names = reg.names();
        for prefix in [
            "sim.",
            "sim.flight.",
            "mem.",
            "driver.",
            "driver.tenant.",
            "driver.audit.",
            "compiler.pass.",
        ] {
            assert!(
                names.iter().any(|n| n.starts_with(prefix)),
                "no {prefix}* metric in the reference registry"
            );
        }
    }

    #[test]
    fn openmetrics_registry_is_deterministic() {
        let a = openmetrics_registry().render_openmetrics();
        let b = openmetrics_registry().render_openmetrics();
        assert_eq!(a, b, "exposition must be reproducible run-to-run");
        assert!(a.contains("# TYPE"));
    }
}
