//! The adversarial-fuzz sweep: every [`gpushield_fuzzgen`] specimen runs
//! through the full protection stack — verifier passes, BAT construction,
//! then an audited launch on the everything-on shield configuration — and
//! its end-to-end outcome is judged against the specimen's machine-readable
//! [`PlantedBug`] oracle. The per-class tallies feed the `fuzz_scoreboard`
//! exhibit, the committed `BENCH_detection.json` baseline, and the `trend`
//! CI gate.
//!
//! Classification (per specimen):
//!
//! * **Detected** — the violation log names the planted site, and when the
//!   oracle's victim window resolves to virtual addresses the logged range
//!   overlaps it.
//! * **FalseFault** — a violation anywhere else, any violation on a benign
//!   control, or a launch refused without a logged violation.
//! * **SilentCorruption** — the run completed, nothing was logged, and the
//!   host-side probe word or the unshared sentinel buffer changed.
//! * **Masked** — a planted bug ran to completion with clean memory (the
//!   documented blind spots: use-after-free under timing-only `Free`,
//!   wrapped shared-memory scratch).
//! * **Completed** — a benign control finishing clean.
//! * **Hang** — watchdog-terminated; the sweep requires zero of these.

use crate::runner::{self, fan_out};
use gpushield::{Arg, BufferHandle, RunError, System, SystemConfig, SystemError};
use gpushield_compiler::{ArgInfo, LaunchKnowledge, PassManager, Severity};
use gpushield_fuzzgen::{BugClass, Expected, Specimen, VictimRef};
use gpushield_isa::{BlockId, Instr};
use gpushield_runtime::report::Json;
use std::fmt::Write as _;

/// Watchdog budget per specimen launch: the corpus kernels are tiny, so
/// anything still running after this is a livelock and must be surfaced
/// (the scoreboard requires zero hangs).
const MAX_CYCLES: u64 = 200_000;

/// Size of the unshared sentinel allocation placed after every specimen's
/// buffers; a far-out-of-bounds write the shield misses lands here.
const SENTINEL_BYTES: u64 = 256;

/// Word pattern the sentinel is filled with before launch.
const SENTINEL_WORD: u32 = 0x53E7_71E1;

/// The everything-on audit configuration the sweep judges: the paper's
/// Nvidia shield with static analysis, Type 3 size-embedded pointers and
/// check elision all enabled, plus the livelock watchdog.
pub(crate) fn sweep_config(elision: bool) -> SystemConfig {
    let mut cfg = SystemConfig::nvidia_protected();
    cfg.driver.enable_type3 = true;
    cfg.driver.enable_elision = elision;
    cfg.gpu.max_cycles = MAX_CYCLES;
    cfg.gpu.sim_threads = runner::sim_threads();
    cfg
}

/// What one specimen degraded into (see the module docs for semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Violation logged at the planted site, inside the victim window.
    Detected,
    /// A violation that the oracle did not plant.
    FalseFault,
    /// Completed clean but the probe or sentinel changed.
    SilentCorruption,
    /// Planted bug ran to completion with clean memory.
    Masked,
    /// Benign control finishing clean.
    Completed,
    /// Watchdog-terminated livelock (must never happen).
    Hang,
}

impl Outcome {
    /// Every outcome, in scoreboard column order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Detected,
        Outcome::FalseFault,
        Outcome::SilentCorruption,
        Outcome::Masked,
        Outcome::Completed,
        Outcome::Hang,
    ];

    /// Stable machine-readable name (JSON key).
    pub fn slug(self) -> &'static str {
        match self {
            Outcome::Detected => "detected",
            Outcome::FalseFault => "false_fault",
            Outcome::SilentCorruption => "silent_corruption",
            Outcome::Masked => "masked",
            Outcome::Completed => "completed",
            Outcome::Hang => "hang",
        }
    }

    /// Whether this outcome is the one the taxonomy expects for the class.
    fn conforms(self, expected: Expected) -> bool {
        matches!(
            (self, expected),
            (Outcome::Detected, Expected::Detected)
                | (Outcome::Masked, Expected::Masked)
                | (Outcome::SilentCorruption, Expected::SilentCorruption)
                | (Outcome::Completed, Expected::Completed)
        )
    }
}

/// One judged specimen.
struct SpecimenResult {
    outcome: Outcome,
    /// The BAT proved the planted access out of bounds before launch.
    static_flagged: bool,
    /// The verifier raised at least a warning on the kernel.
    verify_flagged: bool,
}

/// Resolves the oracle's `mem_ordinal` to the concrete instruction site
/// the violation log would name.
pub(crate) fn planted_site(s: &Specimen) -> Option<(BlockId, usize)> {
    let ord = s.bug.mem_ordinal?;
    s.kernel
        .iter_instrs()
        .filter(|(_, _, i)| {
            matches!(
                i,
                Instr::Ld { .. } | Instr::St { .. } | Instr::AtomAdd { .. }
            )
        })
        .nth(ord)
        .map(|(b, idx, _)| (b, idx))
}

/// Resolves the oracle's victim reference to a virtual-address window,
/// where one exists (`None` for locals, heap siblings and controls, whose
/// detection evidence is the site alone or host-visible corruption).
pub(crate) fn victim_window(
    s: &Specimen,
    sys: &System,
    bufs: &[BufferHandle],
) -> Option<(u64, u64)> {
    match s.bug.victim {
        VictimRef::BufferEnd { param, lo, hi } => {
            let end = sys.driver().buffer_va(bufs[param]) + s.buffers[param];
            Some(((end as i64 + lo) as u64, (end as i64 + hi) as u64))
        }
        VictimRef::HeapEnd { lo, hi } => {
            let (va, size) = sys.heap_window()?;
            Some((va + size + lo, va + size + hi))
        }
        _ => None,
    }
}

/// Mirrors the driver's launch-time knowledge for the verifier (same
/// construction as the registry sweep's `CaptureHost`).
fn knowledge(s: &Specimen) -> LaunchKnowledge {
    let total_threads = u64::from(s.grid) * u64::from(s.block);
    LaunchKnowledge {
        args: s
            .buffers
            .iter()
            .map(|&size| ArgInfo::Buffer { size })
            .collect(),
        local_sizes: s
            .kernel
            .locals()
            .iter()
            .map(|l| l.bytes_per_thread() * total_threads)
            .collect(),
        block: s.block,
        grid: s.grid,
        heap_size: (s.heap_limit > 0).then_some(s.heap_limit),
    }
}

fn run_specimen(s: &Specimen, elision: bool) -> SpecimenResult {
    // Stage 1: verifier passes over the same knowledge the driver gets.
    let report = PassManager::with_default_passes().verify(&s.kernel, &knowledge(s));
    let verify_flagged = report.at_least(Severity::Warning).next().is_some();

    // Stage 2: audited launch with a pattern-filled sentinel allocation
    // right after the specimen's buffers.
    let mut sys = System::new(sweep_config(elision));
    let bufs: Vec<BufferHandle> = s
        .buffers
        .iter()
        .map(|&b| sys.alloc(b).expect("specimen buffer"))
        .collect();
    let sentinel = sys.alloc(SENTINEL_BYTES).expect("sentinel buffer");
    for w in 0..SENTINEL_BYTES / 4 {
        sys.write_buffer(sentinel, w * 4, &SENTINEL_WORD.to_le_bytes());
    }
    if s.heap_limit > 0 {
        sys.set_heap_limit(s.heap_limit).expect("heap limit");
    }
    let args: Vec<Arg> = bufs.iter().map(|&h| Arg::Buffer(h)).collect();

    let launched = sys.launch_audited(s.kernel.clone(), s.grid, s.block, &args);
    let static_flagged = sys.last_bat().is_some_and(|bat| !bat.violations.is_empty());

    let completed = match launched {
        Ok((report, _claims)) => report.completed(),
        Err(SystemError::Run(
            RunError::CycleBudgetExceeded { .. } | RunError::HeapDeadlock { .. },
        )) => {
            return SpecimenResult {
                outcome: Outcome::Hang,
                static_flagged,
                verify_flagged,
            };
        }
        // A host-level refusal with nothing in the violation log is a
        // spurious rejection.
        Err(_) => false,
    };

    let site = planted_site(s);
    let window = victim_window(s, &sys, &bufs);
    let planted_hit = sys.violations().iter().any(|v| {
        Some(v.site) == site && window.is_none_or(|(lo, hi)| v.range.0 < hi && v.range.1 > lo)
    });
    let stray = sys.violations().iter().any(|v| Some(v.site) != site);

    let sentinel_clean = (0..SENTINEL_BYTES / 4)
        .all(|w| sys.read_uint(sentinel, w * 4, 4) == u64::from(SENTINEL_WORD));
    let probe_clean = s
        .probe
        .map(|p| sys.read_uint(bufs[p.param], p.offset, 4) == p.clean)
        .unwrap_or(true);

    let outcome = if s.bug.class == BugClass::Benign {
        if completed && sys.violations().is_empty() && sentinel_clean {
            Outcome::Completed
        } else {
            Outcome::FalseFault
        }
    } else if planted_hit {
        Outcome::Detected
    } else if stray || !completed {
        Outcome::FalseFault
    } else if !probe_clean || !sentinel_clean {
        Outcome::SilentCorruption
    } else {
        Outcome::Masked
    };
    SpecimenResult {
        outcome,
        static_flagged,
        verify_flagged,
    }
}

/// Per-class scoreboard row.
pub struct ClassRow {
    /// The taxonomy entry this row tallies.
    pub class: BugClass,
    /// Outcome counts in [`Outcome::ALL`] order.
    pub tally: [usize; 6],
    /// Specimens whose outcome matched [`BugClass::expected`].
    pub conforming: usize,
    /// Specimens whose BAT carried a statically proven violation.
    pub static_flagged: usize,
    /// Specimens the verifier warned about before launch.
    pub verify_flagged: usize,
}

impl ClassRow {
    /// Specimens tallied in this row.
    pub fn specimens(&self) -> usize {
        self.tally.iter().sum()
    }
}

/// The sweep's full result: one row per taxonomy class, in class order.
pub struct Scoreboard {
    /// Seed the corpus was generated from.
    pub corpus_seed: u64,
    /// Specimens per class.
    pub per_class: usize,
    /// Per-class tallies, in [`BugClass::ALL`] order.
    pub rows: Vec<ClassRow>,
}

/// Generates the corpus for `(corpus_seed, per_class)`, runs and judges
/// every specimen over `jobs` workers, and tallies per class. Results come
/// back in submission order, so the scoreboard is byte-identical at any
/// worker count (and at any `--sim-threads` value: the violation log is
/// bit-stable across engine shardings).
pub fn run_sweep(corpus_seed: u64, per_class: usize, jobs: usize) -> Scoreboard {
    run_sweep_with(corpus_seed, per_class, jobs, true)
}

/// [`run_sweep`] with proof-carrying check elision switchable: the
/// `elision_soundness` gate runs the corpus both ways and requires the
/// per-class outcomes to match — a discharged certificate must never turn
/// a Detected planted bug into a Masked one.
pub fn run_sweep_with(
    corpus_seed: u64,
    per_class: usize,
    jobs: usize,
    elision: bool,
) -> Scoreboard {
    let specs = gpushield_fuzzgen::corpus(corpus_seed, per_class);
    let tasks: Vec<_> = specs
        .iter()
        .map(|s| {
            let s = s.clone();
            move || run_specimen(&s, elision)
        })
        .collect();
    let results = fan_out(tasks, jobs);

    let rows = BugClass::ALL
        .iter()
        .map(|&class| {
            let mut row = ClassRow {
                class,
                tally: [0; 6],
                conforming: 0,
                static_flagged: 0,
                verify_flagged: 0,
            };
            for (s, r) in specs.iter().zip(&results) {
                if s.bug.class != class {
                    continue;
                }
                let slot = Outcome::ALL
                    .iter()
                    .position(|o| *o == r.outcome)
                    .expect("outcome indexed");
                row.tally[slot] += 1;
                row.conforming += usize::from(r.outcome.conforms(class.expected()));
                row.static_flagged += usize::from(r.static_flagged);
                row.verify_flagged += usize::from(r.verify_flagged);
            }
            row
        })
        .collect();
    Scoreboard {
        corpus_seed,
        per_class,
        rows,
    }
}

impl Scoreboard {
    /// Total specimens across every row.
    pub fn total(&self) -> usize {
        self.rows.iter().map(ClassRow::specimens).sum()
    }

    /// The rendered exhibit text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Adversarial fuzz scoreboard — {} seeded specimens across {} planted-bug classes\n \
             (corpus seed 0x{:X}, {} per class; shield config: Nvidia + static analysis +\n \
             Type 3 + elision; watchdog budget {} cycles — a hang is a sweep failure)\n",
            self.total(),
            self.rows.len(),
            self.corpus_seed,
            self.per_class,
            MAX_CYCLES
        );
        let _ = writeln!(
            out,
            "{:<23} {:<7} {:<9} {:>4} {:>6} {:>7} {:>7} {:>6} {:>5} {:>8} {:>7}",
            "class",
            "family",
            "expected",
            "det",
            "false",
            "silent",
            "masked",
            "compl",
            "hang",
            "conform",
            "static"
        );
        let mut grand = [0usize; 6];
        let mut conform_total = 0usize;
        for row in &self.rows {
            for (g, t) in grand.iter_mut().zip(row.tally) {
                *g += t;
            }
            conform_total += row.conforming;
            let _ = writeln!(
                out,
                "{:<23} {:<7} {:<9} {:>4} {:>6} {:>7} {:>7} {:>6} {:>5} {:>8} {:>7}",
                row.class.slug(),
                row.class.check_family(),
                row.class.expected().slug(),
                row.tally[0],
                row.tally[1],
                row.tally[2],
                row.tally[3],
                row.tally[4],
                row.tally[5],
                row.conforming,
                row.static_flagged
            );
        }
        let _ = writeln!(
            out,
            "{:<23} {:<7} {:<9} {:>4} {:>6} {:>7} {:>7} {:>6} {:>5} {:>8} {:>7}",
            "TOTALS",
            "",
            "",
            grand[0],
            grand[1],
            grand[2],
            grand[3],
            grand[4],
            grand[5],
            conform_total,
            self.rows.iter().map(|r| r.static_flagged).sum::<usize>()
        );
        let _ = writeln!(
            out,
            "\n(det/false/silent/masked columns judge each specimen against its PlantedBug\n \
             oracle — site, addressing class, victim window; `conform` counts outcomes\n \
             matching the taxonomy's expectation, `static` counts specimens the BAT\n \
             already proved out of bounds before launch. Masked rows are the documented\n \
             blind spots — see DESIGN.md section 14.)"
        );
        out
    }

    /// The `BENCH_detection.json` document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.set("bench", Json::Str("fuzz-detection".to_string()));
        doc.set("schema", Json::Str("fuzz-detection/v1".to_string()));
        doc.set("corpus_seed", Json::UInt(self.corpus_seed));
        doc.set("per_class", Json::UInt(self.per_class as u64));
        doc.set("specimens", Json::UInt(self.total() as u64));
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut r = Json::obj();
                r.set("class", Json::Str(row.class.slug().to_string()));
                r.set("family", Json::Str(row.class.check_family().to_string()));
                r.set(
                    "expected",
                    Json::Str(row.class.expected().slug().to_string()),
                );
                r.set("specimens", Json::UInt(row.specimens() as u64));
                for (o, t) in Outcome::ALL.iter().zip(row.tally) {
                    r.set(o.slug(), Json::UInt(t as u64));
                }
                r.set("conforming", Json::UInt(row.conforming as u64));
                r.set("static_flagged", Json::UInt(row.static_flagged as u64));
                r.set("verify_flagged", Json::UInt(row.verify_flagged as u64));
                r
            })
            .collect();
        doc.set("classes", Json::Arr(rows));
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-per-class mini-sweep exercising the full classification path.
    fn mini() -> Scoreboard {
        run_sweep(gpushield_fuzzgen::CORPUS_SEED, 2, 4)
    }

    #[test]
    fn mini_sweep_classifies_every_specimen_without_hangs() {
        let sb = mini();
        assert_eq!(sb.total(), BugClass::ALL.len() * 2);
        for row in &sb.rows {
            assert_eq!(row.specimens(), 2, "{} row short", row.class.slug());
            assert_eq!(row.tally[5], 0, "{} hung", row.class.slug());
        }
    }

    #[test]
    fn mini_sweep_conforms_to_the_taxonomy() {
        let sb = mini();
        for row in &sb.rows {
            assert_eq!(
                row.conforming,
                row.specimens(),
                "{}: expected every specimen to be {:?}, tally {:?}",
                row.class.slug(),
                row.class.expected(),
                row.tally
            );
        }
    }

    #[test]
    fn static_class_is_flagged_at_bat_time() {
        let sb = mini();
        let row = &sb.rows[0];
        assert_eq!(row.class, BugClass::StaticOobWrite);
        assert_eq!(
            row.static_flagged,
            row.specimens(),
            "constant-offset OOB must be proven at BAT construction"
        );
    }

    #[test]
    fn scoreboard_json_has_the_published_schema() {
        let sb = mini();
        let doc = sb.to_json();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("fuzz-detection/v1")
        );
        let classes = doc.get("classes").and_then(Json::as_arr).expect("classes");
        assert_eq!(classes.len(), BugClass::ALL.len());
        for c in classes {
            for key in [
                "class",
                "family",
                "expected",
                "specimens",
                "detected",
                "false_fault",
                "silent_corruption",
                "masked",
                "completed",
                "hang",
                "conforming",
                "static_flagged",
                "verify_flagged",
            ] {
                assert!(c.get(key).is_some(), "missing key {key}");
            }
        }
    }
}
