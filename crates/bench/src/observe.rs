//! Recorder-overhead sweep behind `BENCH_observe.json`: the throughput
//! smoke workload (`vectoradd` x 3 protection points x 20 reps) run once
//! per [`ObserveMode`], pinning two properties:
//!
//! * **Non-perturbation** — simulated cycles are byte-identical whether
//!   the flight recorder is disabled, counting, or recording full events.
//!   The disabled run's `sim_cycles` also equals the smoke section of
//!   `BENCH_simcore.json` (same workload, same protections, same reps), so
//!   the always-on recorder hook costs the uninstrumented hot path nothing
//!   simulated.
//! * **Bounded wall cost** — wall-clock per mode is recorded so the trend
//!   report can show the recorder's host-side overhead. Wall numbers are
//!   machine-dependent and therefore report-only; the gates compare
//!   simulated quantities and event counts.

use crate::adapter::SystemHost;
use crate::runner::{config, config_fingerprint, sim_threads, Protection, Target};
use gpushield::ObserveMode;
use gpushield_runtime::report::Json;
use gpushield_workloads::by_name;
use std::time::Instant;

/// Schema tag for `BENCH_observe.json`; bump on any key-set change.
pub const OBSERVE_SCHEMA: &str = "observe-overhead/v1";

/// Repetitions per mode in the committed sweep — matches the throughput
/// smoke sweep so `disabled.sim_cycles` lines up with
/// `BENCH_simcore.json`'s `smoke.sim_cycles`.
pub const OBSERVE_REPS: usize = 20;

/// The same three protection points the throughput smoke sweeps.
fn smoke_protections() -> [Protection; 3] {
    [
        Protection::baseline(),
        Protection::shield_lat(1, 3),
        Protection::shield_lat(2, 5),
    ]
}

/// One mode's measured sweep.
#[derive(Debug, Clone)]
pub struct ModeMeasure {
    /// Mode label: `disabled`, `counters`, or `full`.
    pub mode: &'static str,
    /// Total simulated warp instructions.
    pub instructions: u64,
    /// Total simulated cycles (must match across modes).
    pub sim_cycles: u64,
    /// Wall time for the whole mode sweep (machine-dependent).
    pub wall_seconds: f64,
    /// Flight-recorder events recorded (0 when disabled).
    pub events_recorded: u64,
    /// Flight-recorder events evicted from the ring (0 when disabled).
    pub events_dropped: u64,
}

impl ModeMeasure {
    /// Simulated instructions per wall-clock second.
    pub fn instrs_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.wall_seconds
        }
    }
}

/// The full three-mode sweep.
#[derive(Debug, Clone)]
pub struct ObserveSweep {
    /// Measures in mode order: disabled, counters, full.
    pub modes: Vec<ModeMeasure>,
}

fn measure_mode(label: &'static str, mode: ObserveMode, reps: usize) -> ModeMeasure {
    let w = by_name("vectoradd").expect("vectoradd registered");
    let start = Instant::now();
    let mut instructions = 0u64;
    let mut sim_cycles = 0u64;
    let mut events_recorded = 0u64;
    let mut events_dropped = 0u64;
    for _ in 0..reps {
        for prot in smoke_protections() {
            let mut host = SystemHost::new(config(Target::Nvidia, prot));
            host.system_mut().enable_observation(mode);
            w.run(&mut host);
            assert!(
                !host.any_abort(),
                "false positive under observation mode {label}"
            );
            instructions += host.reports.iter().map(|r| r.instructions()).sum::<u64>();
            sim_cycles += host.total_cycles();
            if let Some(f) = host.system().flight() {
                events_recorded += f.events_recorded();
                events_dropped += f.events_dropped();
            }
        }
    }
    ModeMeasure {
        mode: label,
        instructions,
        sim_cycles,
        wall_seconds: start.elapsed().as_secs_f64(),
        events_recorded,
        events_dropped,
    }
}

/// Runs the sweep with an explicit repetition count (tests use a small
/// one; the committed document uses [`OBSERVE_REPS`]).
pub fn run_observe_sweep_with(reps: usize) -> ObserveSweep {
    ObserveSweep {
        modes: vec![
            measure_mode("disabled", ObserveMode::Disabled, reps),
            measure_mode("counters", ObserveMode::Counters, reps),
            measure_mode("full", ObserveMode::Full, reps),
        ],
    }
}

/// The committed sweep: [`OBSERVE_REPS`] reps per mode.
pub fn run_observe_sweep() -> ObserveSweep {
    run_observe_sweep_with(OBSERVE_REPS)
}

impl ObserveSweep {
    /// Renders the `BENCH_observe.json` document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.set("bench", Json::Str("observe-overhead".to_string()));
        doc.set("schema", Json::Str(OBSERVE_SCHEMA.to_string()));
        doc.set(
            "workload_set",
            Json::Str(format!(
                "vectoradd x {{baseline, shield(1,3), shield(2,5)}} x {OBSERVE_REPS} reps per mode"
            )),
        );
        doc.set("sim_threads", Json::UInt(sim_threads() as u64));
        doc.set("config_fingerprint", Json::Str(config_fingerprint()));
        for m in &self.modes {
            let mut mode = Json::obj();
            mode.set("instructions", Json::UInt(m.instructions));
            mode.set("sim_cycles", Json::UInt(m.sim_cycles));
            mode.set("wall_seconds", Json::Float(m.wall_seconds));
            mode.set("instrs_per_sec", Json::Float(m.instrs_per_sec()));
            mode.set("events_recorded", Json::UInt(m.events_recorded));
            mode.set("events_dropped", Json::UInt(m.events_dropped));
            doc.set(m.mode, mode);
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_never_perturbs_simulated_results() {
        let s = run_observe_sweep_with(2);
        assert_eq!(s.modes.len(), 3);
        let cycles: Vec<u64> = s.modes.iter().map(|m| m.sim_cycles).collect();
        assert_eq!(
            cycles[0], cycles[1],
            "counters-only mode changed simulated cycles"
        );
        assert_eq!(cycles[0], cycles[2], "full mode changed simulated cycles");
        let instrs: Vec<u64> = s.modes.iter().map(|m| m.instructions).collect();
        assert_eq!(instrs[0], instrs[1]);
        assert_eq!(instrs[0], instrs[2]);
        assert_eq!(s.modes[0].events_recorded, 0, "disabled mode records");
        assert!(
            s.modes[2].events_recorded > 0,
            "full mode recorded no events"
        );
    }

    #[test]
    fn document_carries_the_pinned_key_set() {
        let s = run_observe_sweep_with(1);
        let doc = s.to_json();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(OBSERVE_SCHEMA)
        );
        for mode in ["disabled", "counters", "full"] {
            let m = doc.get(mode).unwrap_or_else(|| panic!("no {mode} section"));
            for key in [
                "instructions",
                "sim_cycles",
                "wall_seconds",
                "instrs_per_sec",
                "events_recorded",
                "events_dropped",
            ] {
                assert!(m.get(key).is_some(), "{mode}.{key} missing");
            }
        }
    }
}
