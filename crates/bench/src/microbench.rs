//! A tiny wall-clock harness for the per-exhibit microbenches
//! (`benches/*`), replacing the Criterion dependency the offline build
//! cannot resolve.
//!
//! Deliberately minimal: fixed warm-up, fixed sample count, min / mean /
//! max wall time per sample. The microbenches track the *harness's* cost
//! (how long a simulation takes on the host), not simulated cycles — the
//! figures themselves come from the `experiments` binary — so a simple
//! min/mean readout is the right fidelity.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmark's result.
///
/// `std::hint::black_box` wrapper, re-exported so benches don't reach
/// into `std::hint` themselves (and so the call sites read like the old
/// Criterion ones).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named group of measurements, printed as one table.
pub struct Group {
    name: String,
    samples: usize,
    warmup: usize,
}

impl Group {
    /// A group with 10 samples and 1 warm-up iteration per benchmark.
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        println!(
            "{:<44} {:>10} {:>10} {:>10}",
            "benchmark", "min", "mean", "max"
        );
        Group {
            name: name.to_string(),
            samples: 10,
            warmup: 1,
        }
    }

    /// Overrides the sample count.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Measures `f` `self.samples` times and prints one row.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        let mean = times.iter().sum::<Duration>() / self.samples as u32;
        println!(
            "{:<44} {:>10} {:>10} {:>10}",
            format!("{}/{label}", self.name),
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_formats() {
        let g = Group::new("smoke").sample_size(2);
        g.bench("noop", || 1 + 1);
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(150)), "150.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(25)), "25.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00s");
    }
}
