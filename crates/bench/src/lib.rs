//! Experiment harness regenerating every table and figure of the paper.

#![forbid(unsafe_code)]

pub mod adapter;
pub mod experiments;
pub mod fuzzsweep;
pub mod observe;
pub mod runner;
pub mod schema;
pub mod serving;
pub mod verifysweep;

pub mod microbench;

pub use adapter::SystemHost;
pub use runner::{
    config, config_fingerprint, fan_out, geomean, run_workload, Protection, Target, WorkloadRun,
};
