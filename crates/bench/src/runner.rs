//! Workload runners used by every experiment: build a configuration, run a
//! workload on it, and collect the figures' quantities.

use crate::adapter::SystemHost;
use gpushield::{BcuConfig, DriverConfig, GpuConfig, SystemConfig};
use gpushield_core::BcuStats;
use gpushield_sim::{SimProfile, StallAttribution};
use gpushield_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide simulator worker-thread count applied by [`config`] to
/// every configuration it builds. Defaults to 1 (sequential); the
/// `--sim-threads` flag of the experiment binaries sets it at startup.
/// Simulation results are bit-identical for every value, so this knob
/// never appears in [`config_fingerprint`].
static SIM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the worker-thread count the simulator's cycle-quantum engine uses
/// for every subsequently built configuration. Values are clamped to
/// `[1, num_cores]` by the engine itself.
pub fn set_sim_threads(n: usize) {
    SIM_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current process-wide simulator worker-thread count.
pub fn sim_threads() -> usize {
    SIM_THREADS.load(Ordering::Relaxed)
}

/// Which GPU preset an experiment targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Table 5 Nvidia configuration.
    Nvidia,
    /// Table 5 Intel configuration.
    Intel,
}

impl Target {
    fn gpu(self) -> GpuConfig {
        match self {
            Target::Nvidia => GpuConfig::nvidia(),
            Target::Intel => GpuConfig::intel(),
        }
    }
}

/// A named protection configuration.
#[derive(Debug, Clone, Copy)]
pub struct Protection {
    /// Shield on/off (off = the no-bounds-check baseline).
    pub shield: bool,
    /// Static-analysis check elision (`+static` in Fig. 17).
    pub static_analysis: bool,
    /// L1 RCache entries.
    pub l1_entries: usize,
    /// L1 RCache latency (cycles).
    pub l1_latency: u64,
    /// L2 RCache latency (cycles).
    pub l2_latency: u64,
    /// Ablation: per-thread instead of warp-level checking (§5.5.1).
    pub per_thread: bool,
    /// Type 3 size-embedded pointers (§5.3.3).
    pub type3: bool,
    /// Proof-carrying check elision: the driver discharges relational
    /// certificates at launch and elides the proven sites' checks.
    pub elision: bool,
}

impl Protection {
    /// The evaluation baseline: no bounds checking at all.
    pub fn baseline() -> Self {
        Protection {
            shield: false,
            static_analysis: false,
            l1_entries: 4,
            l1_latency: 1,
            l2_latency: 3,
            per_thread: false,
            type3: false,
            elision: false,
        }
    }

    /// Default GPUShield: 4-entry 1-cycle L1 RCache, 3-cycle L2, no static
    /// filtering (Figs. 14–16 run GPUShield's runtime path alone; Fig. 17
    /// adds `+static`).
    pub fn shield_default() -> Self {
        Protection {
            shield: true,
            ..Protection::baseline()
        }
    }

    /// GPUShield with explicit RCache latencies.
    pub fn shield_lat(l1_latency: u64, l2_latency: u64) -> Self {
        Protection {
            l1_latency,
            l2_latency,
            ..Protection::shield_default()
        }
    }

    /// Adds static-analysis filtering.
    pub fn with_static(mut self) -> Self {
        self.static_analysis = true;
        self
    }

    /// Sets the L1 RCache entry count (Fig. 15 sweep).
    pub fn with_l1_entries(mut self, entries: usize) -> Self {
        self.l1_entries = entries;
        self
    }

    /// Ablation: per-thread checking instead of warp-level gathering.
    pub fn with_per_thread_checks(mut self) -> Self {
        self.per_thread = true;
        self
    }

    /// Enables Type 3 size-embedded pointers (implies power-of-two
    /// allocation padding in the driver).
    pub fn with_type3(mut self) -> Self {
        self.type3 = true;
        self
    }

    /// Enables proof-carrying check elision (relational certificates
    /// discharged at launch time).
    pub fn with_elision(mut self) -> Self {
        self.elision = true;
        self
    }

    /// GPUShield running on *certificates alone*: the interval-analysis
    /// elision path stays off, so every skipped check is attributable to a
    /// discharged relational proof. This is the `static_precision`
    /// exhibit's measurement configuration.
    pub fn shield_certified() -> Self {
        Protection {
            elision: true,
            ..Protection::shield_default()
        }
    }
}

/// Builds the full system configuration for a target + protection pair.
pub fn config(target: Target, prot: Protection) -> SystemConfig {
    let mut gpu = target.gpu();
    gpu.sim_threads = sim_threads();
    SystemConfig {
        gpu,
        driver: DriverConfig {
            enable_shield: prot.shield,
            enable_static_analysis: prot.static_analysis,
            enable_type3: prot.type3,
            enable_elision: prot.elision,
            ..DriverConfig::default()
        },
        bcu: BcuConfig {
            l1_entries: prot.l1_entries,
            l1_latency: prot.l1_latency,
            l2_latency: prot.l2_latency,
            per_thread_checks: prot.per_thread,
            ..BcuConfig::default()
        },
        seed: 0x6057_5E1D,
    }
}

/// Everything an experiment needs from one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Workload name.
    pub name: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total dynamic warp instructions across launches.
    pub instructions: u64,
    /// Number of kernel launches.
    pub launches: u64,
    /// Buffers allocated.
    pub buffers: u64,
    /// Bytes allocated.
    pub buffer_bytes: u64,
    /// BCU statistics (zero when the shield was off).
    pub bcu: BcuStats,
    /// Static check-elision fraction.
    pub check_reduction: f64,
    /// True when any launch aborted (must be false for benign workloads).
    pub aborted: bool,
    /// Per-phase simulator activity counters, merged across launches.
    pub profile: SimProfile,
    /// Bounds-check stall attribution by metadata path (Fig. 13 analogue),
    /// merged across launches.
    pub attribution: StallAttribution,
}

/// Process-wide running totals over every [`run_workload`] call:
/// `(instructions, merged profile)`. The `experiments` binary snapshots
/// these around each experiment to report per-experiment simulator
/// throughput on stderr without touching the deterministic stdout text.
static TOTALS: Mutex<(u64, SimProfile)> = Mutex::new((
    0,
    SimProfile {
        alu_issues: 0,
        mem_issues: 0,
        shared_issues: 0,
        barrier_issues: 0,
        malloc_issues: 0,
        lsu_transactions: 0,
        bcu_checks: 0,
        bcu_stall_cycles: 0,
        dram_accesses: 0,
        idle_skips: 0,
    },
));

/// Snapshot of the process-wide `(instructions, profile)` totals.
pub fn profile_totals() -> (u64, SimProfile) {
    *TOTALS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs one workload under one configuration.
///
/// # Panics
///
/// Panics if the workload aborts — the benchmark suite is benign, so an
/// abort means a false positive, which the test suite must catch.
pub fn run_workload(w: &Workload, target: Target, prot: Protection) -> WorkloadRun {
    let mut host = SystemHost::new(config(target, prot));
    w.run(&mut host);
    assert!(
        !host.any_abort(),
        "false positive: {} aborted under {:?}",
        w.name(),
        prot
    );
    let mut profile = SimProfile::default();
    let mut attribution = StallAttribution::default();
    for r in &host.reports {
        profile.merge(&r.profile);
        for l in &r.launches {
            attribution.merge(&l.stall_attribution);
        }
    }
    let instructions: u64 = host.reports.iter().map(|r| r.instructions()).sum();
    {
        let mut t = TOTALS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        t.0 += instructions;
        t.1.merge(&profile);
    }
    WorkloadRun {
        name: w.name().to_string(),
        cycles: host.total_cycles(),
        instructions,
        launches: host.launches(),
        buffers: host.buffer_count(),
        buffer_bytes: host.buffer_bytes(),
        bcu: host.system().bcu_stats(),
        check_reduction: host.check_reduction(),
        aborted: host.any_abort(),
        profile,
        attribution,
    }
}

/// Fans independent simulation jobs out over `jobs` worker threads.
///
/// Thin wrapper over [`gpushield_runtime::pool::run_all`]: results come
/// back in submission order (so rendered tables are identical at any
/// width), and a panicking job re-raises as this experiment's panic —
/// which the `experiments` binary in turn isolates per experiment.
pub fn fan_out<T, F>(tasks: Vec<F>, jobs: usize) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    gpushield_runtime::pool::run_all(tasks, jobs)
}

/// A stable fingerprint of everything that determines experiment output:
/// both GPU presets, the default protection variants, and the simulation
/// seed (FNV-1a over their `Debug` forms). Recorded in every
/// `results/<id>.json` so trajectories across commits only compare runs
/// of the same configuration.
pub fn config_fingerprint() -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for target in [Target::Nvidia, Target::Intel] {
        for prot in [Protection::baseline(), Protection::shield_default()] {
            let mut c = config(target, prot);
            // Host-side tuning knob with no effect on simulated results;
            // runs at different worker counts must share a fingerprint.
            c.gpu.sim_threads = 1;
            eat(&format!("{c:?}"));
        }
    }
    format!("{h:016x}")
}

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_workloads::by_name;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn shield_overhead_is_small_on_affine_workload() {
        let w = by_name("vectoradd").unwrap();
        let base = run_workload(&w, Target::Nvidia, Protection::baseline());
        let prot = run_workload(&w, Target::Nvidia, Protection::shield_default());
        let ratio = prot.cycles as f64 / base.cycles as f64;
        assert!(
            ratio < 1.05,
            "default GPUShield should be near-free, got {ratio}"
        );
        assert!(prot.bcu.checks > 0, "runtime checks actually happened");
    }
}
