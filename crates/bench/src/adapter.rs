//! Adapter running workload host programs on a [`System`].

use gpushield::{Arg, BufferHandle, MemGuard, Registry, System, SystemConfig, Trace};
use gpushield_isa::Kernel;
use gpushield_sim::RunReport;
use gpushield_workloads::{BufId, HostApi, WArg};
use std::sync::Arc;

/// Runs workload programs against a live [`System`], accumulating one
/// [`RunReport`] per launch.
pub struct SystemHost {
    sys: System,
    bufs: Vec<BufferHandle>,
    guard: Option<Box<dyn MemGuard>>,
    registry: Option<Registry>,
    trace: Option<Trace>,
    /// One report per kernel launch, in order.
    pub reports: Vec<RunReport>,
}

impl SystemHost {
    /// Builds a host around a fresh system.
    pub fn new(cfg: SystemConfig) -> Self {
        SystemHost {
            sys: System::new(cfg),
            bufs: Vec::new(),
            guard: None,
            registry: None,
            trace: None,
            reports: Vec::new(),
        }
    }

    /// Builds a host whose launches run under an external guard (used for
    /// the software-tool cost models of Fig. 19); the system itself should
    /// be a shield-off baseline in that case.
    pub fn with_guard(cfg: SystemConfig, guard: Box<dyn MemGuard>) -> Self {
        SystemHost {
            sys: System::new(cfg),
            bufs: Vec::new(),
            guard: Some(guard),
            registry: None,
            trace: None,
            reports: Vec::new(),
        }
    }

    /// Attaches a telemetry registry: every later launch runs through
    /// [`System::launch_instrumented`], publishing scheduler, memory and
    /// driver metrics into the registry. Attaching a
    /// [`Registry::disabled`] registry keeps the instrumented code path
    /// but records nothing. External-guard launches ignore the registry.
    pub fn attach_registry(&mut self, registry: Registry) {
        self.registry = Some(registry);
    }

    /// Detaches and returns the registry attached with
    /// [`SystemHost::attach_registry`], if any.
    pub fn take_registry(&mut self) -> Option<Registry> {
        self.registry.take()
    }

    /// Attaches an execution trace recorder. Only effective together with
    /// [`SystemHost::attach_registry`]: instrumented launches append their
    /// events to this trace (subject to its capacity bound).
    pub fn attach_trace(&mut self, trace: Trace) {
        self.trace = Some(trace);
    }

    /// Detaches and returns the trace attached with
    /// [`SystemHost::attach_trace`], if any.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Total simulated cycles across all launches (host programs run their
    /// launches sequentially).
    pub fn total_cycles(&self) -> u64 {
        self.reports.iter().map(|r| r.cycles).sum()
    }

    /// Number of launches performed.
    pub fn launches(&self) -> u64 {
        self.reports.len() as u64
    }

    /// Total bytes allocated.
    pub fn buffer_bytes(&self) -> u64 {
        self.bufs
            .iter()
            .map(|b| self.sys.driver().buffer_size(*b))
            .sum()
    }

    /// Number of buffers allocated.
    pub fn buffer_count(&self) -> u64 {
        self.bufs.len() as u64
    }

    /// The driver handle of the `i`-th allocated buffer.
    pub fn handle(&self, i: usize) -> BufferHandle {
        self.bufs[i]
    }

    /// True when any launch aborted (bounds violation or fault).
    pub fn any_abort(&self) -> bool {
        self.reports.iter().any(|r| !r.completed())
    }

    /// Fraction of runtime checks removed by static analysis, aggregated.
    pub fn check_reduction(&self) -> f64 {
        let performed: u64 = self
            .reports
            .iter()
            .flat_map(|r| &r.launches)
            .map(|l| l.checks_performed)
            .sum();
        let skipped: u64 = self
            .reports
            .iter()
            .flat_map(|r| &r.launches)
            .map(|l| l.checks_skipped)
            .sum();
        if performed + skipped == 0 {
            0.0
        } else {
            skipped as f64 / (performed + skipped) as f64
        }
    }

    /// The underlying system (BCU statistics, violations, …).
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Mutable access to the underlying system.
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.sys
    }

    /// Translates workload arguments into driver arguments.
    pub fn map_args(&self, args: &[WArg]) -> Vec<Arg> {
        args.iter()
            .map(|a| match a {
                WArg::Buf(b) => Arg::Buffer(self.bufs[*b]),
                WArg::Scalar(v) => Arg::Scalar(*v),
            })
            .collect()
    }
}

impl HostApi for SystemHost {
    fn alloc(&mut self, bytes: u64) -> BufId {
        let h = self.sys.alloc(bytes).expect("workload allocation");
        self.bufs.push(h);
        self.bufs.len() - 1
    }

    fn upload_u32(&mut self, buf: BufId, offset_bytes: u64, data: &[u32]) {
        let h = self.bufs[buf];
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.sys.write_buffer(h, offset_bytes, &bytes);
    }

    fn set_heap(&mut self, bytes: u64) {
        self.sys.set_heap_limit(bytes).expect("heap limit");
    }

    fn launch(&mut self, kernel: &Arc<Kernel>, grid: u32, block: u32, args: &[WArg]) {
        let mapped = self.map_args(args);
        let report = match (self.guard.as_mut(), self.registry.as_mut()) {
            (Some(g), _) => self
                .sys
                .launch_with_guard(kernel.clone(), grid, block, &mapped, g.as_mut())
                .expect("workload launch"),
            (None, Some(reg)) => self
                .sys
                .launch_instrumented(
                    kernel.clone(),
                    grid,
                    block,
                    &mapped,
                    reg,
                    self.trace.as_mut(),
                )
                .expect("workload launch"),
            (None, None) => self
                .sys
                .launch(kernel.clone(), grid, block, &mapped)
                .expect("workload launch"),
        };
        self.reports.push(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_workloads::by_name;

    #[test]
    fn vectoradd_runs_on_baseline_and_shield() {
        let w = by_name("vectoradd").unwrap();
        let mut base = SystemHost::new(SystemConfig::nvidia_baseline());
        w.run(&mut base);
        assert!(!base.any_abort());
        assert!(base.total_cycles() > 0);

        let mut prot = SystemHost::new(SystemConfig::nvidia_protected());
        w.run(&mut prot);
        assert!(!prot.any_abort(), "no false positives on a benign workload");
    }
}
