//! End-to-end soundness gate for proof-carrying check elision: eliding
//! certified checks must not change what the adversarial fuzz corpus
//! detects. A planted bug that degrades from Detected to Masked when
//! elision is on would mean a discharged certificate covered an access it
//! should not have — exactly the failure the relational prover's
//! side-conditions and the BAT auditor exist to rule out.

use gpushield_bench::fuzzsweep::run_sweep_with;
use gpushield_bench::runner;
use gpushield_fuzzgen::{CORPUS_SEED, PER_CLASS};

/// One serial body drives both sweeps: the worker-count knobs are
/// process-wide, so interleaving with other sweep tests would race.
#[test]
fn elision_preserves_every_detection_outcome() {
    runner::set_sim_threads(1);
    let jobs = std::thread::available_parallelism().map_or(1, usize::from);

    let with_elision = run_sweep_with(CORPUS_SEED, PER_CLASS, jobs, true);
    let without = run_sweep_with(CORPUS_SEED, PER_CLASS, jobs, false);

    // Per-class outcome tallies must be identical with and without
    // elision — in particular, zero newly-Masked planted bugs.
    assert_eq!(
        with_elision.render_text(),
        without.render_text(),
        "elision changed a detection outcome"
    );

    // And the elision-on run must be byte-identical to the committed
    // baseline the `trend` CI gate checks against: the corpus seed,
    // per-class tallies and conformance columns all agree.
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_detection.json");
    let baseline = std::fs::read_to_string(baseline_path).expect("committed BENCH_detection.json");
    assert_eq!(
        with_elision.to_json().render() + "\n",
        baseline,
        "fuzz scoreboard diverged from the committed baseline"
    );
}
