//! Criterion bench behind Figs. 15/16: one RCache-sensitive workload swept
//! over L1 RCache entry counts (the hit-rate tables come from
//! `experiments fig15` / `experiments fig16`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpushield_bench::{run_workload, Protection, Target};
use gpushield_workloads::by_name;
use std::time::Duration;

fn bench_fig15(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_rcache_size");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let w = by_name("Dxtc").expect("registry name");
    for entries in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                b.iter(|| {
                    run_workload(
                        &w,
                        Target::Nvidia,
                        Protection::shield_default().with_l1_entries(entries),
                    )
                    .bcu
                    .l1_hit_rate()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig15);
criterion_main!(benches);
