//! Microbench behind Figs. 15/16: one RCache-sensitive workload swept
//! over L1 RCache entry counts (the hit-rate tables come from
//! `experiments fig15` / `experiments fig16`).

use gpushield_bench::microbench::Group;
use gpushield_bench::{run_workload, Protection, Target};
use gpushield_workloads::by_name;

fn main() {
    let g = Group::new("fig15_rcache_size");
    let w = by_name("Dxtc").expect("registry name");
    for entries in [1usize, 4, 16] {
        g.bench(&format!("{entries}"), || {
            run_workload(
                &w,
                Target::Nvidia,
                Protection::shield_default().with_l1_entries(entries),
            )
            .bcu
            .l1_hit_rate()
        });
    }
}
