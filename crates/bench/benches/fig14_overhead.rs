//! Microbench behind Fig. 14: simulate representative workloads with no
//! protection, default GPUShield, and slowed RCaches. The *simulated
//! cycle* comparison (the figure itself) is produced by
//! `cargo run --release -p gpushield-bench --bin experiments fig14`; this
//! bench tracks the harness's wall-clock cost per configuration.

use gpushield_bench::microbench::Group;
use gpushield_bench::{run_workload, Protection, Target};
use gpushield_workloads::by_name;

fn main() {
    let g = Group::new("fig14_overhead");
    for name in ["vectoradd", "Histogram", "dct"] {
        let w = by_name(name).expect("registry name");
        g.bench(&format!("baseline/{name}"), || {
            run_workload(&w, Target::Nvidia, Protection::baseline()).cycles
        });
        g.bench(&format!("gpushield_default/{name}"), || {
            run_workload(&w, Target::Nvidia, Protection::shield_default()).cycles
        });
        g.bench(&format!("gpushield_l1_2_l2_5/{name}"), || {
            run_workload(&w, Target::Nvidia, Protection::shield_lat(2, 5)).cycles
        });
    }
}
