//! Criterion bench behind Fig. 14: simulate representative workloads with
//! no protection, default GPUShield, and slowed RCaches. The *simulated
//! cycle* comparison (the figure itself) is produced by
//! `cargo run --release -p gpushield-bench --bin experiments fig14`; this
//! bench tracks the harness's wall-clock cost per configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpushield_bench::{run_workload, Protection, Target};
use gpushield_workloads::by_name;
use std::time::Duration;

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_overhead");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for name in ["vectoradd", "Histogram", "dct"] {
        let w = by_name(name).expect("registry name");
        g.bench_with_input(BenchmarkId::new("baseline", name), &w, |b, w| {
            b.iter(|| run_workload(w, Target::Nvidia, Protection::baseline()).cycles)
        });
        g.bench_with_input(BenchmarkId::new("gpushield_default", name), &w, |b, w| {
            b.iter(|| run_workload(w, Target::Nvidia, Protection::shield_default()).cycles)
        });
        g.bench_with_input(BenchmarkId::new("gpushield_l1_2_l2_5", name), &w, |b, w| {
            b.iter(|| run_workload(w, Target::Nvidia, Protection::shield_lat(2, 5)).cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
