//! Microbench behind Fig. 18: a representative kernel pair co-running
//! inter-core vs intra-core on the Intel configuration (the full 21-pair
//! table comes from `experiments fig18`).

use gpushield::{ConcurrentKernel, MultiKernelMode};
use gpushield_bench::microbench::Group;
use gpushield_bench::{config, Protection, SystemHost, Target};
use gpushield_workloads::representative;

fn run_pair(mode: MultiKernelMode) -> u64 {
    let mut host = SystemHost::new(config(Target::Intel, Protection::shield_default()));
    let ra = representative("kmeans").expect("rep");
    let rb = representative("nn").expect("rep");
    let args_a = ra.bind(&mut host);
    let args_b = rb.bind(&mut host);
    let kernels = vec![
        ConcurrentKernel {
            kernel: ra.kernel.clone(),
            grid: ra.grid,
            block: ra.block,
            args: host.map_args(&args_a),
        },
        ConcurrentKernel {
            kernel: rb.kernel.clone(),
            grid: rb.grid,
            block: rb.block,
            args: host.map_args(&args_b),
        },
    ];
    host.system_mut()
        .launch_concurrent(kernels, mode)
        .expect("pair")
        .cycles
}

fn main() {
    let g = Group::new("fig18_multikernel");
    for (label, mode) in [
        ("inter-core", MultiKernelMode::InterCore),
        ("intra-core", MultiKernelMode::IntraCore),
    ] {
        g.bench(label, || run_pair(mode));
    }
}
