//! Criterion bench behind Fig. 18: a representative kernel pair co-running
//! inter-core vs intra-core on the Intel configuration (the full 21-pair
//! table comes from `experiments fig18`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpushield::{ConcurrentKernel, MultiKernelMode};
use gpushield_bench::{config, Protection, SystemHost, Target};
use gpushield_workloads::representative;
use std::time::Duration;

fn run_pair(mode: MultiKernelMode) -> u64 {
    let mut host = SystemHost::new(config(Target::Intel, Protection::shield_default()));
    let ra = representative("kmeans").expect("rep");
    let rb = representative("nn").expect("rep");
    let args_a = ra.bind(&mut host);
    let args_b = rb.bind(&mut host);
    let kernels = vec![
        ConcurrentKernel {
            kernel: ra.kernel.clone(),
            grid: ra.grid,
            block: ra.block,
            args: host.map_args(&args_a),
        },
        ConcurrentKernel {
            kernel: rb.kernel.clone(),
            grid: rb.grid,
            block: rb.block,
            args: host.map_args(&args_b),
        },
    ];
    host.system_mut()
        .launch_concurrent(kernels, mode)
        .expect("pair")
        .cycles
}

fn bench_fig18(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18_multikernel");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (label, mode) in [
        ("inter-core", MultiKernelMode::InterCore),
        ("intra-core", MultiKernelMode::IntraCore),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| run_pair(mode))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig18);
criterion_main!(benches);
