//! Criterion bench behind Fig. 19: one Rodinia workload under the
//! unprotected baseline, the CUDA-MEMCHECK instrumentation model, and
//! GPUShield (the full table comes from `experiments fig19`).

use criterion::{criterion_group, criterion_main, Criterion};
use gpushield_baselines::MemcheckGuard;
use gpushield_bench::{config, run_workload, Protection, SystemHost, Target};
use gpushield_workloads::by_name;
use std::time::Duration;

fn bench_fig19(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig19_tools");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    let w = by_name("kmeans").expect("registry name");
    g.bench_function("baseline", |b| {
        b.iter(|| run_workload(&w, Target::Nvidia, Protection::baseline()).cycles)
    });
    g.bench_function("gpushield_static", |b| {
        b.iter(|| {
            run_workload(&w, Target::Nvidia, Protection::shield_default().with_static()).cycles
        })
    });
    g.bench_function("cuda_memcheck_model", |b| {
        b.iter(|| {
            let mut host = SystemHost::with_guard(
                config(Target::Nvidia, Protection::baseline()),
                Box::new(MemcheckGuard::new()),
            );
            w.run(&mut host);
            host.total_cycles()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig19);
criterion_main!(benches);
