//! Microbench behind Fig. 19: one Rodinia workload under the unprotected
//! baseline, the CUDA-MEMCHECK instrumentation model, and GPUShield (the
//! full table comes from `experiments fig19`).

use gpushield_baselines::MemcheckGuard;
use gpushield_bench::microbench::Group;
use gpushield_bench::{config, run_workload, Protection, SystemHost, Target};
use gpushield_workloads::by_name;

fn main() {
    let g = Group::new("fig19_tools");
    let w = by_name("kmeans").expect("registry name");
    g.bench("baseline", || {
        run_workload(&w, Target::Nvidia, Protection::baseline()).cycles
    });
    g.bench("gpushield_static", || {
        run_workload(
            &w,
            Target::Nvidia,
            Protection::shield_default().with_static(),
        )
        .cycles
    });
    g.bench("cuda_memcheck_model", || {
        let mut host = SystemHost::with_guard(
            config(Target::Nvidia, Protection::baseline()),
            Box::new(MemcheckGuard::new()),
        );
        w.run(&mut host);
        host.total_cycles()
    });
}
