//! Microbenchmarks of GPUShield's hardware-path components: the ID cipher,
//! the warp coalescer + address gather, the RCache hierarchy, and a full
//! BCU check (supports the Fig. 12 latency discussion and Table 3 sizing).

use gpushield_bench::microbench::{black_box, Group};
use gpushield_core::{Bcu, BcuConfig, L1RCache, L2RCache};
use gpushield_driver::{encrypt_id, write_entry, BoundsEntry, ShieldSetup};
use gpushield_isa::{BlockId, MemSpace, SiteCheck, TaggedPtr};
use gpushield_mem::coalesce::warp_address_range;
use gpushield_mem::{coalesce_warp, AllocPolicy, VirtualMemorySpace};
use gpushield_sim::{MemAccess, MemGuard};

fn main() {
    let g = Group::new("components").sample_size(50);

    g.bench("cipher_encrypt_decrypt", || {
        let ct = encrypt_id(black_box(0x1ABC), black_box(0xFEED));
        gpushield_driver::decrypt_id(ct, 0xFEED)
    });

    let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(0x1000 + i * 4)).collect();
    g.bench("coalesce_warp_32_lanes", || {
        coalesce_warp(black_box(&addrs), 4)
    });
    g.bench("warp_address_gather", || {
        warp_address_range(black_box(&addrs), 4)
    });

    {
        let mut rc = L1RCache::new(4);
        let e = BoundsEntry {
            valid: true,
            readonly: false,
            kernel_id: 1,
            base: 0x1000,
            size: 4096,
        };
        rc.fill((1, 7), e);
        g.bench("l1_rcache_probe_hit", || rc.probe(black_box((1, 7))));
    }

    {
        let mut rc = L2RCache::new(64);
        let e = BoundsEntry {
            valid: true,
            readonly: false,
            kernel_id: 1,
            base: 0x1000,
            size: 4096,
        };
        for id in 0..64u16 {
            rc.fill((1, id), e);
        }
        g.bench("l2_rcache_probe_hit_64_entries", || {
            rc.probe(black_box((1, 33)))
        });
    }

    // A full BCU check against a warm RCache.
    let mut vm = VirtualMemorySpace::new();
    let rbt = vm
        .alloc(gpushield_driver::RBT_BYTES, AllocPolicy::Isolated)
        .unwrap();
    let buf = vm.alloc(4096, AllocPolicy::Device512).unwrap();
    let setup = ShieldSetup {
        kernel_id: 3,
        rbt_base: rbt.va,
        key: 0xABCD_EF01,
    };
    write_entry(
        &mut vm,
        rbt.va,
        0x111,
        &BoundsEntry {
            valid: true,
            readonly: false,
            kernel_id: 3,
            base: buf.va,
            size: 4096,
        },
    )
    .unwrap();
    let mut bcu = Bcu::new(BcuConfig::default(), 1);
    bcu.register_kernel(setup);
    let access = MemAccess {
        core: 0,
        kernel_id: 3,
        is_store: false,
        space: MemSpace::Global,
        pointer: TaggedPtr::with_region_id(buf.va, encrypt_id(0x111, setup.key)),
        site: (BlockId(0), 0),
        range: (buf.va, buf.va + 128),
        site_check: SiteCheck::Runtime,
        transactions: 1,
        active_lanes: 32,
        l1d_all_hit: true,
    };
    let _ = bcu.check(&access, &vm); // warm the RCaches
    g.bench("bcu_check_l1_hit", || bcu.check(black_box(&access), &vm));
}
