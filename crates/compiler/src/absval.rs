//! Abstract values: numbers or region-relative pointers.
//!
//! The analysis mirrors the operand-tree construction of paper Fig. 8:
//! instead of materialising trees, every register holds either a numeric
//! interval or a *pointer into a named region with an offset interval* —
//! exactly the information the root of an operand tree would carry.

use crate::interval::Interval;
use gpushield_isa::{BinOp, CmpOp, UnOp};
use std::fmt;

/// The protected region a pointer refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Buffer bound to kernel argument slot `n`.
    Param(u8),
    /// Declared local-memory variable `n`.
    Local(u8),
    /// The device heap chunk (`malloc` results).
    Heap,
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Param(p) => write!(f, "arg{p}"),
            Origin::Local(v) => write!(f, "local{v}"),
            Origin::Heap => f.write_str("heap"),
        }
    }
}

/// An abstract register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// A number in an interval.
    Num(Interval),
    /// Base of `Origin` plus a byte offset in an interval.
    Ptr(Origin, Interval),
}

impl AbsVal {
    /// The completely unknown value.
    pub fn top() -> Self {
        AbsVal::Num(Interval::full())
    }

    /// A known constant.
    pub fn constant(v: i128) -> Self {
        AbsVal::Num(Interval::constant(v))
    }

    /// The numeric interval, or the full interval for pointers (a pointer's
    /// numeric value is unknown at analysis time — the driver picks it).
    pub fn as_num(&self) -> Interval {
        match self {
            AbsVal::Num(i) => *i,
            AbsVal::Ptr(..) => Interval::full(),
        }
    }

    /// Lattice join.
    pub fn join(&self, o: &AbsVal) -> AbsVal {
        match (self, o) {
            (AbsVal::Num(a), AbsVal::Num(b)) => AbsVal::Num(a.union(b)),
            (AbsVal::Ptr(oa, a), AbsVal::Ptr(ob, b)) if oa == ob => AbsVal::Ptr(*oa, a.union(b)),
            _ => AbsVal::top(),
        }
    }

    /// Widening (applied at loop heads).
    pub fn widen(&self, newer: &AbsVal) -> AbsVal {
        match (self, newer) {
            (AbsVal::Num(a), AbsVal::Num(b)) => AbsVal::Num(a.widen(b)),
            (AbsVal::Ptr(oa, a), AbsVal::Ptr(ob, b)) if oa == ob => AbsVal::Ptr(*oa, a.widen(b)),
            _ => AbsVal::top(),
        }
    }

    /// Abstract binary operation.
    pub fn bin(op: BinOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
        use AbsVal::{Num, Ptr};
        match op {
            BinOp::Add => match (a, b) {
                (Num(x), Num(y)) => Num(x.add(y)),
                (Ptr(o, x), Num(y)) | (Num(y), Ptr(o, x)) => Ptr(*o, x.add(y)),
                _ => AbsVal::top(),
            },
            BinOp::Sub => match (a, b) {
                (Num(x), Num(y)) => Num(x.sub(y)),
                (Ptr(o, x), Num(y)) => Ptr(*o, x.sub(y)),
                (Ptr(oa, x), Ptr(ob, y)) if oa == ob => Num(x.sub(y)),
                _ => AbsVal::top(),
            },
            _ => {
                // Every other operation destroys pointer provenance.
                let (x, y) = match (a, b) {
                    (Num(x), Num(y)) => (*x, *y),
                    _ => return AbsVal::top(),
                };
                Num(match op {
                    BinOp::Mul => x.mul(&y),
                    BinOp::Div => x.div(&y),
                    BinOp::Rem => x.rem(&y),
                    BinOp::And => x.and(&y),
                    BinOp::Or | BinOp::Xor => x.or_xor(&y),
                    BinOp::Shl => x.shl(&y),
                    BinOp::Shr => x.shr(&y),
                    BinOp::Min => x.min_(&y),
                    BinOp::Max => x.max_(&y),
                    BinOp::Add | BinOp::Sub => unreachable!("handled above"),
                })
            }
        }
    }

    /// Abstract unary operation.
    pub fn un(op: UnOp, a: &AbsVal) -> AbsVal {
        match (op, a) {
            (UnOp::Neg, AbsVal::Num(x)) => AbsVal::Num(x.neg()),
            (UnOp::Abs, AbsVal::Num(x)) => AbsVal::Num(x.abs()),
            _ => AbsVal::top(),
        }
    }

    /// Abstract comparison: always 0/1.
    pub fn cmp(_op: CmpOp, _a: &AbsVal, _b: &AbsVal) -> AbsVal {
        AbsVal::Num(Interval::range(0, 1))
    }
}

impl fmt::Display for AbsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsVal::Num(i) => write!(f, "{i}"),
            AbsVal::Ptr(o, i) => write!(f, "&{o}+{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_arithmetic_keeps_provenance() {
        let p = AbsVal::Ptr(Origin::Param(0), Interval::constant(0));
        let off = AbsVal::Num(Interval::range(0, 124));
        let q = AbsVal::bin(BinOp::Add, &p, &off);
        assert_eq!(q, AbsVal::Ptr(Origin::Param(0), Interval::range(0, 124)));
        // Commuted form too (base may be either operand).
        let q2 = AbsVal::bin(BinOp::Add, &off, &p);
        assert_eq!(q, q2);
    }

    #[test]
    fn pointer_difference_is_numeric() {
        let p = AbsVal::Ptr(Origin::Param(1), Interval::range(8, 16));
        let q = AbsVal::Ptr(Origin::Param(1), Interval::constant(4));
        assert_eq!(
            AbsVal::bin(BinOp::Sub, &p, &q),
            AbsVal::Num(Interval::range(4, 12))
        );
    }

    #[test]
    fn cross_origin_join_is_top() {
        let p = AbsVal::Ptr(Origin::Param(0), Interval::constant(0));
        let q = AbsVal::Ptr(Origin::Param(1), Interval::constant(0));
        assert_eq!(p.join(&q), AbsVal::top());
    }

    #[test]
    fn multiplying_pointers_loses_provenance() {
        let p = AbsVal::Ptr(Origin::Heap, Interval::constant(0));
        let n = AbsVal::constant(2);
        assert_eq!(AbsVal::bin(BinOp::Mul, &p, &n), AbsVal::top());
    }

    #[test]
    fn cmp_is_boolean() {
        let r = AbsVal::cmp(CmpOp::Lt, &AbsVal::top(), &AbsVal::top());
        assert_eq!(r, AbsVal::Num(Interval::range(0, 1)));
    }
}
