//! Relational bounds domain with proof-carrying certificates (§5.3
//! upgraded): a reduced product of three components evaluated under the
//! *compile-time* view of a launch ([`LaunchKnowledge::value_less`]):
//!
//! 1. **Affine forms** `t·tid + b·ctaid + c` ([`crate::affine::Aff`]) so
//!    per-thread windows keep their shape through arithmetic instead of
//!    collapsing to one grid-wide interval.
//! 2. **Congruences** `x ≡ r (mod m)` ([`Cong`]) for alignment and
//!    stride facts — a site whose offset is provably `0 (mod 8)` cannot
//!    straddle an 8-byte boundary, and a congruence tightens the maximal
//!    reachable offset below a symbolic bound.
//! 3. **Symbolic linear bounds** ([`LinExpr`], sums `Σ kᵢ·argᵢ + k`)
//!    derived from guards: `if (i < n)` caps `i` at `n − 1` even though
//!    `n`'s value is unknown at compile time, and the cap flows through
//!    `+`, `−`, `·const`, `shl`, `min` — which is exactly what counted
//!    loops and grid-stride loops need after widening blasts their
//!    induction variable to `⊤`.
//!
//! [`prove_sites`] runs the product fixpoint and emits one [`SiteProof`]
//! per provable memory site: the proven per-site offset window (concrete
//! and/or symbolic), the congruence fact, and the domain facts used. The
//! driver later *discharges* a certificate against the concrete argument
//! values of a real launch ([`discharge`]): the symbolic window is
//! evaluated, tightened by the congruence, and checked against the
//! region's actual size — only then is the site's runtime check elided.
//! The BAT soundness auditor closes the loop at runtime by comparing
//! every discharged window against the observed per-site address range.

use crate::absval::Origin;
use crate::affine::{aff_bin, aff_un, negate, swap, Aff};
use crate::analysis::{origin_size, protected_space, ArgInfo, LaunchKnowledge};
use crate::interval::{Interval, NEG_INF, POS_INF};
use gpushield_isa::{
    AddrExpr, BinOp, BlockId, CmpOp, Instr, Kernel, Operand, ParamKind, Special, VReg,
};
use std::collections::HashMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Symbolic linear expressions over unknown scalar arguments.

/// Fit discipline for symbolic expressions: monomial counts and
/// coefficient magnitudes are capped at construction time, and
/// [`discharge`] additionally requires every evaluated quantity to lie
/// within ±2⁶² — together this keeps accepted windows far away from the
/// wrap-around behaviour of the 64-bit ISA arithmetic.
const MAX_MONOMIALS: usize = 8;
const MAX_COEFF: i128 = 1 << 32;
const MAX_K: i128 = 1 << 44;
const FIT_BOUND: i128 = 1 << 62;

/// Merges two sorted `(key, coefficient)` monomial lists, dropping
/// zero-coefficient entries; `None` on coefficient overflow.
fn merge_monomials<K: Ord + Copy>(a: &[(K, i128)], b: &[(K, i128)]) -> Option<Vec<(K, i128)>> {
    let mut out: Vec<(K, i128)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let (p, c) = match (a.get(i), b.get(j)) {
            (Some(&(pa, ca)), Some(&(pb, cb))) if pa == pb => {
                i += 1;
                j += 1;
                (pa, ca.checked_add(cb)?)
            }
            (Some(&(pa, ca)), Some(&(pb, _))) if pa < pb => {
                i += 1;
                (pa, ca)
            }
            (Some(_), Some(&(pb, cb))) => {
                j += 1;
                (pb, cb)
            }
            (Some(&(pa, ca)), None) => {
                i += 1;
                (pa, ca)
            }
            (None, Some(&(pb, cb))) => {
                j += 1;
                (pb, cb)
            }
            (None, None) => unreachable!("loop condition"),
        };
        if c != 0 {
            out.push((p, c));
        }
    }
    Some(out)
}

/// A polynomial `k + Σ kᵢ·arg(i) + Σ kᵢⱼ·arg(i)·arg(j)` of degree ≤ 2
/// over the kernel's *unknown scalar* arguments, used for guard-derived
/// symbolic bounds (the quadratic monomials cover `tid < n·n`-style
/// guards of flattened 2-D kernels).
///
/// Buffer sizes, grid geometry, and known scalars are folded into the
/// constant term at construction time; only genuinely launch-varying
/// scalars appear as monomials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinExpr {
    /// Constant term.
    pub k: i128,
    /// Linear `(argument index, coefficient)` pairs, sorted, no zeros.
    pub terms: Vec<(u8, i128)>,
    /// Quadratic `((i, j), coefficient)` monomials `arg(i)·arg(j)` with
    /// `i ≤ j`, sorted, no zeros.
    pub quad: Vec<((u8, u8), i128)>,
}

impl LinExpr {
    /// The constant expression `k`.
    pub fn constant(k: i128) -> Self {
        LinExpr {
            k,
            terms: vec![],
            quad: vec![],
        }
    }

    /// The expression `arg(p)`.
    pub fn arg(p: u8) -> Self {
        LinExpr {
            k: 0,
            terms: vec![(p, 1)],
            quad: vec![],
        }
    }

    /// `Some(k)` when the expression is the constant `k`.
    pub fn as_const(&self) -> Option<i128> {
        (self.terms.is_empty() && self.quad.is_empty()).then_some(self.k)
    }

    /// Enforces the fit discipline on a freshly built expression.
    fn bounded(self) -> Option<LinExpr> {
        let small = self.terms.len() + self.quad.len() <= MAX_MONOMIALS
            && self.k.abs() <= MAX_K
            && self.terms.iter().all(|&(_, c)| c.abs() <= MAX_COEFF)
            && self.quad.iter().all(|&(_, c)| c.abs() <= MAX_COEFF);
        small.then_some(self)
    }

    /// `self + o`; `None` on overflow or a fit-discipline breach.
    pub fn add(&self, o: &LinExpr) -> Option<LinExpr> {
        LinExpr {
            k: self.k.checked_add(o.k)?,
            terms: merge_monomials(&self.terms, &o.terms)?,
            quad: merge_monomials(&self.quad, &o.quad)?,
        }
        .bounded()
    }

    /// `self + k`; `None` on overflow.
    pub fn add_const(&self, k: i128) -> Option<LinExpr> {
        LinExpr {
            k: self.k.checked_add(k)?,
            terms: self.terms.clone(),
            quad: self.quad.clone(),
        }
        .bounded()
    }

    /// `self − o`; `None` on overflow or a fit-discipline breach.
    pub fn sub(&self, o: &LinExpr) -> Option<LinExpr> {
        self.add(&o.mul_const(-1)?)
    }

    /// `self · k`; `None` on overflow.
    pub fn mul_const(&self, k: i128) -> Option<LinExpr> {
        if k == 0 {
            return Some(LinExpr::constant(0));
        }
        let mut terms = Vec::with_capacity(self.terms.len());
        for &(p, c) in &self.terms {
            terms.push((p, c.checked_mul(k)?));
        }
        let mut quad = Vec::with_capacity(self.quad.len());
        for &(pq, c) in &self.quad {
            quad.push((pq, c.checked_mul(k)?));
        }
        LinExpr {
            k: self.k.checked_mul(k)?,
            terms,
            quad,
        }
        .bounded()
    }

    /// `self · o` as a polynomial product; `None` when the result would
    /// exceed degree 2 (either factor already quadratic and the other
    /// non-constant) or breach the fit discipline.
    pub fn mul(&self, o: &LinExpr) -> Option<LinExpr> {
        if let Some(k) = o.as_const() {
            return self.mul_const(k);
        }
        if let Some(k) = self.as_const() {
            return o.mul_const(k);
        }
        if !self.quad.is_empty() || !o.quad.is_empty() {
            return None; // degree would exceed 2
        }
        let mut acc = LinExpr::constant(self.k.checked_mul(o.k)?);
        for &(p, c) in &o.terms {
            let t = LinExpr {
                k: 0,
                terms: vec![(p, c.checked_mul(self.k)?)],
                quad: vec![],
            };
            acc = acc.add(&t)?;
        }
        for &(p, c) in &self.terms {
            let t = LinExpr {
                k: 0,
                terms: vec![(p, c.checked_mul(o.k)?)],
                quad: vec![],
            };
            acc = acc.add(&t)?;
        }
        for &(p, cp) in &self.terms {
            for &(q, cq) in &o.terms {
                let key = if p <= q { (p, q) } else { (q, p) };
                let t = LinExpr {
                    k: 0,
                    terms: vec![],
                    quad: vec![(key, cp.checked_mul(cq)?)],
                };
                acc = acc.add(&t)?;
            }
        }
        Some(acc)
    }

    /// Evaluates against concrete launch knowledge; `None` when a
    /// monomial's argument has no known value or the arithmetic
    /// overflows.
    pub fn eval(&self, know: &LaunchKnowledge) -> Option<i128> {
        let val = |p: u8| match know.args.get(usize::from(p)) {
            Some(ArgInfo::Scalar { value: Some(v) }) => Some(i128::from(*v)),
            _ => None,
        };
        let mut acc = self.k;
        for &(p, c) in &self.terms {
            acc = acc.checked_add(c.checked_mul(val(p)?)?)?;
        }
        for &((p, q), c) in &self.quad {
            acc = acc.checked_add(c.checked_mul(val(p)?)?.checked_mul(val(q)?)?)?;
        }
        Some(acc)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &((p, q), c) in &self.quad {
            if !first {
                f.write_str(" + ")?;
            }
            first = false;
            if c == 1 {
                write!(f, "arg{p}*arg{q}")?;
            } else {
                write!(f, "{c}*arg{p}*arg{q}")?;
            }
        }
        for &(p, c) in &self.terms {
            if !first {
                f.write_str(" + ")?;
            }
            first = false;
            if c == 1 {
                write!(f, "arg{p}")?;
            } else {
                write!(f, "{c}*arg{p}")?;
            }
        }
        if self.k != 0 || first {
            if !first {
                f.write_str(" + ")?;
            }
            write!(f, "{}", self.k)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Congruence (stride/alignment) component.

/// Congruence modulus ceiling: facts coarser than this collapse to ⊤,
/// which sidesteps overflow in modulus products (alignment facts that
/// matter here are tiny powers of two).
const CONG_MAX_M: i128 = 1 << 20;

/// The congruence `x ≡ r (mod m)`: `m > 1` is a real stride fact,
/// `m == 0` means exactly the constant `r`, and `m == 1` is ⊤.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cong {
    /// Modulus (`0` = constant, `1` = unconstrained).
    pub m: i128,
    /// Residue; normalized to `0 ≤ r < m` when `m > 1`.
    pub r: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Cong {
    /// The unconstrained congruence (⊤).
    pub fn top() -> Self {
        Cong { m: 1, r: 0 }
    }

    /// Exactly the constant `v`.
    pub fn constant(v: i128) -> Self {
        Cong { m: 0, r: v }
    }

    /// True for ⊤.
    pub fn is_top(&self) -> bool {
        self.m == 1
    }

    fn norm(m: i128, r: i128) -> Cong {
        if m == 0 {
            return Cong { m: 0, r };
        }
        if m == 1 || m > CONG_MAX_M {
            return Cong::top();
        }
        Cong {
            m,
            r: r.rem_euclid(m),
        }
    }

    /// Lattice join. Chains are finite (each join moves the modulus to a
    /// divisor of the previous one), so no widening operator is needed.
    pub fn join(&self, o: &Cong) -> Cong {
        if self.m == 0 && o.m == 0 && self.r == o.r {
            return *self;
        }
        let g = gcd(gcd(self.m, o.m), self.r - o.r);
        if g == 0 {
            *self // both constants, equal residues
        } else {
            Cong::norm(g, self.r)
        }
    }

    /// `self + o`.
    pub fn add(&self, o: &Cong) -> Cong {
        if self.m == 0 && o.m == 0 {
            return match self.r.checked_add(o.r) {
                Some(v) => Cong::constant(v),
                None => Cong::top(),
            };
        }
        let g = if self.m == 0 || o.m == 0 {
            self.m.max(o.m)
        } else {
            gcd(self.m, o.m)
        };
        Cong::norm(g, self.r.wrapping_add(o.r))
    }

    /// `self - o`.
    pub fn sub(&self, o: &Cong) -> Cong {
        self.add(&Cong {
            m: o.m,
            r: match o.r.checked_neg() {
                Some(v) => v,
                None => return Cong::top(),
            },
        })
    }

    /// `self · o`.
    pub fn mul(&self, o: &Cong) -> Cong {
        if self.m == 0 && o.m == 0 {
            return match self.r.checked_mul(o.r) {
                Some(v) => Cong::constant(v),
                None => Cong::top(),
            };
        }
        // kx ≡ kr (mod |k|m) for a constant factor k.
        let by_const = |k: i128, c: &Cong| -> Cong {
            if k == 0 {
                return Cong::constant(0);
            }
            match (c.m.checked_mul(k.abs()), c.r.checked_mul(k)) {
                (Some(m), Some(r)) => Cong::norm(m, r),
                _ => Cong::top(),
            }
        };
        if self.m == 0 {
            return by_const(self.r, o);
        }
        if o.m == 0 {
            return by_const(o.r, self);
        }
        // x = am + r, y = bm' + r': xy ≡ rr' (mod gcd(mm', mr', m'r)).
        match (
            self.m.checked_mul(o.m),
            self.m.checked_mul(o.r),
            o.m.checked_mul(self.r),
            self.r.checked_mul(o.r),
        ) {
            (Some(mm), Some(mr), Some(mr2), Some(rr)) => Cong::norm(gcd(gcd(mm, mr), mr2), rr),
            _ => Cong::top(),
        }
    }

    /// Largest value `≤ hi` consistent with the congruence (tightens a
    /// window's upper bound). Identity for ⊤ and constants.
    pub fn tighten_hi(&self, hi: i128) -> i128 {
        if self.m > 1 {
            hi - (hi - self.r).rem_euclid(self.m)
        } else {
            hi
        }
    }
}

impl fmt::Display for Cong {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.m {
            0 => write!(f, "= {}", self.r),
            1 => f.write_str("(mod 1)"),
            _ => write!(f, "≡ {} (mod {})", self.r, self.m),
        }
    }
}

// ---------------------------------------------------------------------------
// The product value and state.

/// How many side-conditions one window may accumulate before it is
/// dropped (discharge cost and join-precision both degrade past this).
const MAX_CONDS: usize = 6;

/// Deduplicating union of two side-condition sets; `None` when the
/// result would exceed [`MAX_CONDS`].
fn merge_conds(a: &[LinExpr], b: &[LinExpr]) -> Option<Vec<LinExpr>> {
    let mut out = a.to_vec();
    for c in b {
        if !out.contains(c) {
            out.push(c.clone());
        }
    }
    (out.len() <= MAX_CONDS).then_some(out)
}

/// A conditionally-valid symbolic window on a value: *if* every
/// expression in `conds` evaluates ≥ 0 under the launch's concrete
/// scalar arguments, the value lies in `[lo, hi]` (each bound optional,
/// inclusive). Guard-derived facts carry no conditions; rule-derived
/// facts (e.g. multiplying a window by a symbolic factor, which is only
/// monotone when that factor is non-negative) record what must be
/// re-checked at discharge time.
#[derive(Debug, Clone, PartialEq, Default)]
struct SymWin {
    lo: Option<LinExpr>,
    hi: Option<LinExpr>,
    conds: Vec<LinExpr>,
}

impl SymWin {
    fn is_empty(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }
}

/// One register's abstract numeric value in the product domain.
#[derive(Debug, Clone, PartialEq)]
struct RelVal {
    /// Affine form with interval coefficients.
    aff: Aff,
    /// Congruence of the value.
    cong: Cong,
    /// Exact symbolic value, when the value *is* a polynomial of
    /// unknown scalar args (e.g. the register holding `n - 1`).
    sym: Option<LinExpr>,
    /// Guard- and rule-derived symbolic window on the value.
    win: SymWin,
}

impl RelVal {
    fn top() -> Self {
        RelVal {
            aff: Aff::top(),
            cong: Cong::top(),
            sym: None,
            win: SymWin::default(),
        }
    }

    fn constant(v: i128) -> Self {
        RelVal {
            aff: Aff::uniform(Interval::constant(v)),
            cong: Cong::constant(v),
            sym: Some(LinExpr::constant(v)),
            win: SymWin::default(),
        }
    }

    fn from_aff(aff: Aff) -> Self {
        RelVal {
            aff,
            cong: Cong::top(),
            sym: None,
            win: SymWin::default(),
        }
    }

    /// The concrete interval under the feasible `tid`/`ctaid` ranges.
    fn conc(&self, tids: &Interval, ctaids: &Interval) -> Interval {
        self.aff.concretize(tids, ctaids)
    }

    /// Window view `(lo, hi, conds)` of the value: the exact symbolic
    /// value when there is one, else the guard window with finite
    /// concrete bounds filling either missing side.
    fn wview(
        &self,
        tids: &Interval,
        ctaids: &Interval,
    ) -> (Option<LinExpr>, Option<LinExpr>, Vec<LinExpr>) {
        if let Some(s) = &self.sym {
            return (Some(s.clone()), Some(s.clone()), vec![]);
        }
        let conc = self.conc(tids, ctaids);
        let clo = (conc.lo() > NEG_INF).then(|| LinExpr::constant(conc.lo()));
        let chi = (conc.hi() < POS_INF).then(|| LinExpr::constant(conc.hi()));
        if self.win.is_empty() {
            (clo, chi, vec![])
        } else {
            (
                self.win.lo.clone().or(clo),
                self.win.hi.clone().or(chi),
                self.win.conds.clone(),
            )
        }
    }

    fn join(&self, o: &RelVal) -> RelVal {
        RelVal {
            aff: self.aff.join(&o.aff),
            cong: self.cong.join(&o.cong),
            sym: (self.sym == o.sym).then(|| self.sym.clone()).flatten(),
            win: if self.win == o.win {
                self.win.clone()
            } else {
                SymWin::default()
            },
        }
    }

    fn widen(&self, newer: &RelVal) -> RelVal {
        RelVal {
            aff: self.aff.widen(&newer.aff),
            // Congruence chains are finite; join suffices for termination.
            cong: self.cong.join(&newer.cong),
            sym: (self.sym == newer.sym).then(|| self.sym.clone()).flatten(),
            win: if self.win == newer.win {
                self.win.clone()
            } else {
                SymWin::default()
            },
        }
    }
}

/// A register value: a number or a region-relative pointer.
#[derive(Debug, Clone, PartialEq)]
enum RelAbs {
    Num(RelVal),
    Ptr(Origin, RelVal),
}

impl RelAbs {
    fn top() -> Self {
        RelAbs::Num(RelVal::top())
    }

    fn as_num(&self) -> RelVal {
        match self {
            RelAbs::Num(v) => v.clone(),
            // A pointer's numeric value is unknown at analysis time.
            RelAbs::Ptr(..) => RelVal::top(),
        }
    }

    fn join(&self, o: &RelAbs) -> RelAbs {
        match (self, o) {
            (RelAbs::Num(a), RelAbs::Num(b)) => RelAbs::Num(a.join(b)),
            (RelAbs::Ptr(oa, a), RelAbs::Ptr(ob, b)) if oa == ob => RelAbs::Ptr(*oa, a.join(b)),
            _ => RelAbs::top(),
        }
    }

    fn widen(&self, newer: &RelAbs) -> RelAbs {
        match (self, newer) {
            (RelAbs::Num(a), RelAbs::Num(b)) => RelAbs::Num(a.widen(b)),
            (RelAbs::Ptr(oa, a), RelAbs::Ptr(ob, b)) if oa == ob => RelAbs::Ptr(*oa, a.widen(b)),
            _ => RelAbs::top(),
        }
    }
}

/// Per-path state: register values plus the feasible `tid`/`ctaid`
/// ranges under the guards taken so far.
#[derive(Debug, Clone, PartialEq)]
struct RelState {
    regs: Vec<RelAbs>,
    tid: Interval,
    ctaid: Interval,
}

type Fact = (CmpOp, Operand, Operand);

fn eval(op: Operand, st: &RelState, kernel: &Kernel, know: &LaunchKnowledge) -> RelAbs {
    match op {
        Operand::Reg(VReg(r)) => st.regs[usize::from(r)].clone(),
        Operand::Imm(i) => RelAbs::Num(RelVal::constant(i128::from(i))),
        Operand::Param(p) => match kernel.params()[usize::from(p)].kind() {
            ParamKind::Buffer { .. } => RelAbs::Ptr(Origin::Param(p), RelVal::constant(0)),
            ParamKind::Scalar => match know.args.get(usize::from(p)) {
                Some(ArgInfo::Scalar { value: Some(v) }) => {
                    RelAbs::Num(RelVal::constant(i128::from(*v)))
                }
                // The whole point: an unknown scalar is *symbolically*
                // exact even though its interval is ⊤.
                _ => RelAbs::Num(RelVal {
                    aff: Aff::top(),
                    cong: Cong::top(),
                    sym: Some(LinExpr::arg(p)),
                    win: SymWin::default(),
                }),
            },
        },
        Operand::LocalBase(v) => RelAbs::Ptr(Origin::Local(v), RelVal::constant(0)),
        Operand::Special(s) => RelAbs::Num(match s {
            Special::ThreadId => RelVal::from_aff(Aff::tid()),
            Special::BlockId => RelVal::from_aff(Aff::ctaid()),
            Special::BlockDim => RelVal::constant(i128::from(know.block)),
            Special::GridDim => RelVal::constant(i128::from(know.grid)),
            Special::LaneId => RelVal::from_aff(Aff::uniform(Interval::range(0, 63))),
        }),
    }
}

/// Binary transfer on the numeric product value.
fn rel_bin(op: BinOp, x: &RelVal, y: &RelVal, tids: &Interval, ctaids: &Interval) -> RelVal {
    let xc = x.conc(tids, ctaids);
    let yc = y.conc(tids, ctaids);
    let y_const = (yc.lo() == yc.hi() && yc.lo() > NEG_INF).then(|| yc.lo());
    let x_const = (xc.lo() == xc.hi() && xc.lo() > NEG_INF).then(|| xc.lo());

    let mut aff = aff_bin(op, x.aff, y.aff);
    // Interval-domain tightenings the affine form alone cannot express
    // (non-uniform operand masked/reduced by a constant).
    match op {
        BinOp::And => {
            if let Some(k) = y_const.or(x_const) {
                if k >= 0 {
                    let hi = if xc.lo() >= 0 && yc.lo() >= 0 {
                        k.min(xc.hi().min(yc.hi()))
                    } else {
                        k
                    };
                    aff = Aff::uniform(Interval::range(0, hi));
                }
            }
        }
        BinOp::Rem => {
            if let Some(n) = y_const {
                if n > 0 && aff.c.is_full() && aff.is_uniform() {
                    aff = Aff::uniform(if xc.lo() >= 0 {
                        Interval::range(0, n - 1)
                    } else {
                        Interval::range(-(n - 1), n - 1)
                    });
                }
            }
        }
        _ => {}
    }

    // Congruence component.
    let cong = match op {
        BinOp::Add => x.cong.add(&y.cong),
        BinOp::Sub => x.cong.sub(&y.cong),
        BinOp::Mul => x.cong.mul(&y.cong),
        BinOp::Shl => match y_const {
            Some(s) if (0..=63).contains(&s) => x.cong.mul(&Cong::constant(1i128 << s)),
            _ => Cong::top(),
        },
        BinOp::Rem => match y_const {
            // n | m ⇒ (x mod n) keeps the residue mod n (for x ≥ 0, where
            // the machine's remainder matches the mathematical one).
            Some(n) if n > 1 && x.cong.m > 0 && x.cong.m % n == 0 && xc.lo() >= 0 => {
                Cong::constant(x.cong.r.rem_euclid(n))
            }
            _ => Cong::top(),
        },
        _ => Cong::top(),
    };

    // Exact symbolic value.
    let sym = match op {
        BinOp::Add => match (&x.sym, &y.sym) {
            (Some(a), Some(b)) => a.add(b),
            _ => None,
        },
        BinOp::Sub => match (&x.sym, &y.sym) {
            (Some(a), Some(b)) => a.sub(b),
            _ => None,
        },
        BinOp::Mul => match (&x.sym, y_const, &y.sym, x_const) {
            (Some(a), Some(k), _, _) => a.mul_const(k),
            (_, _, Some(b), Some(k)) => b.mul_const(k),
            // Polynomial product (e.g. the `n·n` guard of a flattened
            // 2-D kernel), degree-capped at 2.
            (Some(a), _, Some(b), _) => a.mul(b),
            _ => None,
        },
        BinOp::Shl => match (&x.sym, y_const) {
            (Some(a), Some(s)) if (0..=63).contains(&s) => a.mul_const(1i128 << s),
            _ => None,
        },
        _ => None,
    };

    // Conditionally-valid symbolic window. Each rule combines the
    // operands' window views and records, as side-conditions, whatever
    // sign facts its monotonicity argument needs — `discharge` evaluates
    // those against the launch's concrete scalars before trusting the
    // window, and an inconsistent window (lo > hi) is rejected there.
    let (xlo, xhi, xconds) = x.wview(tids, ctaids);
    let (ylo, yhi, yconds) = y.wview(tids, ctaids);
    let xlo_nonneg = xlo
        .as_ref()
        .and_then(LinExpr::as_const)
        .is_some_and(|c| c >= 0);
    let win = (|| -> Option<SymWin> {
        let pair = |a: &Option<LinExpr>,
                    b: &Option<LinExpr>,
                    f: fn(&LinExpr, &LinExpr) -> Option<LinExpr>| match (a, b) {
            (Some(a), Some(b)) => f(a, b),
            _ => None,
        };
        Some(match op {
            BinOp::Add => SymWin {
                lo: pair(&xlo, &ylo, LinExpr::add),
                hi: pair(&xhi, &yhi, LinExpr::add),
                conds: merge_conds(&xconds, &yconds)?,
            },
            BinOp::Sub => SymWin {
                lo: pair(&xlo, &yhi, LinExpr::sub),
                hi: pair(&xhi, &ylo, LinExpr::sub),
                conds: merge_conds(&xconds, &yconds)?,
            },
            BinOp::Mul | BinOp::Shl => {
                // Reduce both to multiplication by a known factor.
                let (wlo, whi, wconds, factor) = if op == BinOp::Shl {
                    match y_const {
                        Some(s) if (0..=63).contains(&s) => {
                            (&xlo, &xhi, &xconds, Factor::Const(1i128 << s))
                        }
                        _ => return None,
                    }
                } else if let Some(k) = y_const {
                    (&xlo, &xhi, &xconds, Factor::Const(k))
                } else if let Some(k) = x_const {
                    (&ylo, &yhi, &yconds, Factor::Const(k))
                } else if let Some(e) = y.sym.clone() {
                    (&xlo, &xhi, &xconds, Factor::Sym(e))
                } else if let Some(e) = x.sym.clone() {
                    (&ylo, &yhi, &yconds, Factor::Sym(e))
                } else {
                    return None;
                };
                match factor {
                    // A constant factor scales the window, swapping the
                    // ends when negative.
                    Factor::Const(k) => {
                        let lo = wlo.as_ref().and_then(|e| e.mul_const(k));
                        let hi = whi.as_ref().and_then(|e| e.mul_const(k));
                        let (lo, hi) = if k >= 0 { (lo, hi) } else { (hi, lo) };
                        SymWin {
                            lo,
                            hi,
                            conds: wconds.clone(),
                        }
                    }
                    // A symbolic factor `e` preserves the window only
                    // when `e ≥ 0` — recorded as a side-condition.
                    Factor::Sym(e) => SymWin {
                        lo: wlo.as_ref().and_then(|g| g.mul(&e)),
                        hi: whi.as_ref().and_then(|f| f.mul(&e)),
                        conds: merge_conds(wconds, &[e])?,
                    },
                }
            }
            // x ≥ 0, divisor ≥ 1 ⇒ 0 ≤ x/d ≤ x (the signed ISA division
            // truncates toward zero).
            BinOp::Div if xlo_nonneg => {
                let (hi, conds) = match (y_const, &y.sym) {
                    (Some(n), _) if n >= 1 => {
                        let hi = xhi.as_ref().map(|e| match e.as_const() {
                            Some(c) => LinExpr::constant(c.div_euclid(n)),
                            None => e.clone(),
                        });
                        (hi, xconds.clone())
                    }
                    (None, Some(e)) if e.as_const().is_none() => {
                        (xhi.clone(), merge_conds(&xconds, &[e.add_const(-1)?])?)
                    }
                    _ => return None,
                };
                SymWin {
                    lo: Some(LinExpr::constant(0)),
                    hi,
                    conds,
                }
            }
            // x ≥ 0 ⇒ 0 ≤ x mod d ≤ d − 1 for d ≥ 1 (the remainder's
            // sign follows the dividend).
            BinOp::Rem if xlo_nonneg => match (y_const, &y.sym) {
                (Some(n), _) if n >= 1 => SymWin {
                    lo: Some(LinExpr::constant(0)),
                    hi: Some(LinExpr::constant(n - 1)),
                    conds: xconds.clone(),
                },
                (None, Some(e)) if e.as_const().is_none() => {
                    let hi = e.add_const(-1)?;
                    SymWin {
                        lo: Some(LinExpr::constant(0)),
                        hi: Some(hi.clone()),
                        conds: merge_conds(&xconds, &[hi])?,
                    }
                }
                _ => return None,
            },
            BinOp::Shr if xlo_nonneg => match y_const {
                Some(s) if (0..=63).contains(&s) => SymWin {
                    lo: Some(LinExpr::constant(0)),
                    hi: xhi.as_ref().map(|e| match e.as_const() {
                        Some(c) => LinExpr::constant(c >> s),
                        None => e.clone(),
                    }),
                    conds: xconds.clone(),
                },
                _ => return None,
            },
            BinOp::Min => {
                // Either side's upper bound caps the minimum; prefer a
                // symbolic one. A side's lower bound holds only when it
                // is ≤ the other's — a discharge-time comparison.
                let hi = match (&xhi, &yhi) {
                    (Some(a), Some(b)) => Some(match (a.as_const(), b.as_const()) {
                        (Some(ca), Some(cb)) => LinExpr::constant(ca.min(cb)),
                        (Some(_), None) => b.clone(),
                        _ => a.clone(),
                    }),
                    (a, b) => a.clone().or_else(|| b.clone()),
                };
                let (lo, extra) = match (&xlo, &ylo) {
                    (Some(a), Some(b)) => match (a.as_const(), b.as_const()) {
                        (Some(ca), Some(cb)) => (Some(LinExpr::constant(ca.min(cb))), None),
                        (Some(_), None) => (Some(a.clone()), b.sub(a)),
                        _ => (Some(b.clone()), a.sub(b)),
                    },
                    _ => (None, None),
                };
                let conds = merge_conds(&xconds, &yconds)?;
                SymWin {
                    lo,
                    hi,
                    conds: match extra {
                        Some(c) => merge_conds(&conds, &[c])?,
                        None => conds,
                    },
                }
            }
            BinOp::Max => {
                // Either side's lower bound floors the maximum; prefer a
                // non-negative constant (the usual `max(x, 0)` clamp).
                let lo = match (&xlo, &ylo) {
                    (Some(a), Some(b)) => Some(match (a.as_const(), b.as_const()) {
                        (Some(ca), Some(cb)) => LinExpr::constant(ca.max(cb)),
                        (Some(ca), None) if ca >= 0 => a.clone(),
                        (Some(_), None) => b.clone(),
                        _ => a.clone(),
                    }),
                    (a, b) => a.clone().or_else(|| b.clone()),
                };
                let (hi, extra) = match (&xhi, &yhi) {
                    (Some(a), Some(b)) => match (a.as_const(), b.as_const()) {
                        (Some(ca), Some(cb)) => (Some(LinExpr::constant(ca.max(cb))), None),
                        (Some(_), None) => (Some(b.clone()), b.sub(a)),
                        _ => (Some(a.clone()), a.sub(b)),
                    },
                    _ => (None, None),
                };
                let conds = merge_conds(&xconds, &yconds)?;
                SymWin {
                    lo,
                    hi,
                    conds: match extra {
                        Some(c) => merge_conds(&conds, &[c])?,
                        None => conds,
                    },
                }
            }
            _ => return None,
        })
    })()
    .unwrap_or_default();

    // Keep only window components that improve on the concrete interval
    // (constant windows duplicating the affine bounds are noise); the
    // exact symbolic value subsumes any window.
    let rconc = aff.concretize(tids, ctaids);
    let mut win = if sym.is_some() {
        SymWin::default()
    } else {
        win
    };
    win.lo = win.lo.filter(|e| match e.as_const() {
        Some(c) => c > rconc.lo(),
        None => true,
    });
    win.hi = win.hi.filter(|e| match e.as_const() {
        Some(c) => c < rconc.hi(),
        None => true,
    });
    if win.is_empty() {
        win = SymWin::default();
    }

    RelVal {
        aff,
        cong,
        sym: sym.filter(|s| s.as_const().is_none() || x.sym.is_some() && y.sym.is_some()),
        win,
    }
}

/// A multiplication factor a window is scaled by: a known constant or a
/// symbolic expression (sound only when it discharges ≥ 0).
enum Factor {
    Const(i128),
    Sym(LinExpr),
}

fn rel_abs_bin(op: BinOp, a: &RelAbs, b: &RelAbs, tids: &Interval, ctaids: &Interval) -> RelAbs {
    use RelAbs::{Num, Ptr};
    match op {
        BinOp::Add => match (a, b) {
            (Ptr(o, x), Num(y)) | (Num(y), Ptr(o, x)) => {
                Ptr(*o, rel_bin(BinOp::Add, x, y, tids, ctaids))
            }
            (Num(x), Num(y)) => Num(rel_bin(op, x, y, tids, ctaids)),
            _ => RelAbs::top(),
        },
        BinOp::Sub => match (a, b) {
            (Ptr(o, x), Num(y)) => Ptr(*o, rel_bin(BinOp::Sub, x, y, tids, ctaids)),
            (Ptr(oa, x), Ptr(ob, y)) if oa == ob => Num(rel_bin(BinOp::Sub, x, y, tids, ctaids)),
            (Num(x), Num(y)) => Num(rel_bin(op, x, y, tids, ctaids)),
            _ => RelAbs::top(),
        },
        _ => match (a, b) {
            (Num(x), Num(y)) => Num(rel_bin(op, x, y, tids, ctaids)),
            _ => RelAbs::top(),
        },
    }
}

fn transfer(
    instr: &Instr,
    st: &mut RelState,
    cmp_defs: &mut HashMap<u16, Fact>,
    kernel: &Kernel,
    know: &LaunchKnowledge,
) {
    let write = |st: &mut RelState, cmp_defs: &mut HashMap<u16, Fact>, dst: VReg, v: RelAbs| {
        st.regs[usize::from(dst.0)] = v;
        // Kill stale facts that mention the redefined register.
        cmp_defs.retain(|key, (_, a, b)| {
            *key != dst.0 && *a != Operand::Reg(dst) && *b != Operand::Reg(dst)
        });
    };
    let (tids, ctaids) = (st.tid, st.ctaid);
    match instr {
        Instr::Mov { dst, src } => {
            let v = eval(*src, st, kernel, know);
            write(st, cmp_defs, *dst, v);
        }
        Instr::Un { op, dst, a } => {
            let av = eval(*a, st, kernel, know);
            let v = match av {
                RelAbs::Num(x) => RelAbs::Num(RelVal::from_aff(aff_un(*op, x.aff))),
                RelAbs::Ptr(..) => RelAbs::top(),
            };
            write(st, cmp_defs, *dst, v);
        }
        Instr::Bin { op, dst, a, b } => {
            let av = eval(*a, st, kernel, know);
            let bv = eval(*b, st, kernel, know);
            let v = rel_abs_bin(*op, &av, &bv, &tids, &ctaids);
            write(st, cmp_defs, *dst, v);
        }
        Instr::Cmp { op, dst, a, b } => {
            let (op, a, b) = (*op, *a, *b);
            write(
                st,
                cmp_defs,
                *dst,
                RelAbs::Num(RelVal::from_aff(Aff::uniform(Interval::range(0, 1)))),
            );
            cmp_defs.insert(dst.0, (op, a, b));
        }
        Instr::Sel { dst, a, b, .. } => {
            let v = eval(*a, st, kernel, know).join(&eval(*b, st, kernel, know));
            write(st, cmp_defs, *dst, v);
        }
        Instr::Ld { dst, .. } | Instr::AtomAdd { dst, .. } => {
            write(st, cmp_defs, *dst, RelAbs::top());
        }
        Instr::Malloc { dst, .. } => {
            write(st, cmp_defs, *dst, RelAbs::Ptr(Origin::Heap, RelVal::top()));
        }
        Instr::St { .. } | Instr::Free { .. } | Instr::Bar => {}
        Instr::Bra { .. } | Instr::Jmp { .. } | Instr::Ret => {}
    }
}

/// Meets interval `x` against `x op bound`.
fn meet_bound(op: CmpOp, x: Interval, bound: &Interval) -> Option<Interval> {
    let constraint = match op {
        CmpOp::Lt => Interval::range(NEG_INF, bound.hi().saturating_sub(1)),
        CmpOp::Le => Interval::range(NEG_INF, bound.hi()),
        CmpOp::Gt => Interval::range(bound.lo().saturating_add(1), POS_INF),
        CmpOp::Ge => Interval::range(bound.lo(), POS_INF),
        CmpOp::Eq => *bound,
        CmpOp::Ne => return Some(x),
    };
    x.intersect(&constraint)
}

/// Refines `st` along a branch edge where `(op, a, b)` holds. Returns
/// `false` when the edge is infeasible.
fn refine_edge(st: &mut RelState, fact: Fact, kernel: &Kernel, know: &LaunchKnowledge) -> bool {
    let (op, a, b) = fact;
    for (lhs, rhs, op) in [(a, b, op), (b, a, swap(op))] {
        let rhs_v = eval(rhs, st, kernel, know).as_num();
        let rhs_conc = rhs_v.conc(&st.tid, &st.ctaid);
        let lhs_v = eval(lhs, st, kernel, know).as_num();

        // 1. Feasible tid/ctaid ranges, exactly like the race pass.
        if rhs_v.aff.is_uniform() {
            if lhs_v.aff == Aff::tid() && lhs_v.sym.is_none() {
                match meet_bound(op, st.tid, &rhs_conc) {
                    Some(m) => st.tid = m,
                    None => return false,
                }
            }
            if lhs_v.aff == Aff::ctaid() && lhs_v.sym.is_none() {
                match meet_bound(op, st.ctaid, &rhs_conc) {
                    Some(m) => st.ctaid = m,
                    None => return false,
                }
            }
        }

        // 2. Concrete refinement of a register operand.
        if let Operand::Reg(VReg(r)) = lhs {
            let ri = usize::from(r);
            match &st.regs[ri] {
                RelAbs::Num(v) if v.aff.is_uniform() && rhs_v.aff.is_uniform() => {
                    match meet_bound(op, v.aff.c, &rhs_conc) {
                        Some(m) => {
                            let mut nv = v.clone();
                            nv.aff = Aff::uniform(m);
                            st.regs[ri] = RelAbs::Num(nv);
                        }
                        None => return false,
                    }
                }
                _ => {}
            }
        }

        // 3. Symbolic window from the guard: `v < rhs ≤ ub(rhs)` caps `v`
        // at `ub − 1`; `v > rhs ≥ lb(rhs)` floors it at `lb + 1`. The
        // rhs's own window conditions travel with the new fact.
        let (rlo, rhi, rconds) = rhs_v.wview(&st.tid, &st.ctaid);
        let new_hi = match (op, &rhi) {
            (CmpOp::Lt, Some(e)) => e.add_const(-1),
            (CmpOp::Le | CmpOp::Eq, Some(e)) => Some(e.clone()),
            _ => None,
        };
        let new_lo = match (op, &rlo) {
            (CmpOp::Gt, Some(e)) => e.add_const(1),
            (CmpOp::Ge | CmpOp::Eq, Some(e)) => Some(e.clone()),
            _ => None,
        };
        let new_hi = new_hi.filter(|c| c.as_const().is_none());
        let new_lo = new_lo.filter(|c| c.as_const().is_none());
        if new_hi.is_some() || new_lo.is_some() {
            let exact = (op == CmpOp::Eq).then(|| rhs_v.sym.clone()).flatten();
            let apply = |v: &mut RelVal| {
                let Some(conds) = merge_conds(&v.win.conds, &rconds) else {
                    return;
                };
                if let Some(h) = &new_hi {
                    v.win.hi = Some(h.clone());
                }
                if let Some(l) = &new_lo {
                    v.win.lo = Some(l.clone());
                }
                v.win.conds = conds;
                if let Some(e) = &exact {
                    v.sym = Some(e.clone());
                }
            };
            // The guarded register itself…
            if let Operand::Reg(VReg(r)) = lhs {
                if let RelAbs::Num(v) = &mut st.regs[usize::from(r)] {
                    apply(v);
                }
            }
            // …and every register currently holding the *same non-uniform
            // affine form* (a relational fact: aliases computed before the
            // guard are constrained too).
            if !lhs_v.aff.is_uniform() {
                for reg in &mut st.regs {
                    if let RelAbs::Num(v) = reg {
                        if v.aff == lhs_v.aff && v.sym == lhs_v.sym {
                            apply(v);
                        }
                    }
                }
            }
        }
    }
    true
}

const WIDEN_AFTER: u32 = 4;
const VISIT_FUEL: u32 = 20_000;

/// Runs the product-domain fixpoint; returns per-block entry states.
fn analyze_rel(kernel: &Kernel, know: &LaunchKnowledge) -> Vec<Option<RelState>> {
    let nblocks = kernel.blocks().len();
    let nregs = usize::from(kernel.num_regs()).max(1);
    let mut in_states: Vec<Option<RelState>> = vec![None; nblocks];
    in_states[0] = Some(RelState {
        regs: vec![RelAbs::Num(RelVal::constant(0)); nregs],
        tid: Interval::range(0, i128::from(know.block) - 1),
        ctaid: Interval::range(0, i128::from(know.grid) - 1),
    });
    let mut visits = vec![0u32; nblocks];
    let mut work = vec![0usize];
    let mut fuel = VISIT_FUEL;
    while let Some(b) = work.pop() {
        if fuel == 0 {
            break; // sound: remaining states keep their last (wider) value
        }
        fuel -= 1;
        let mut st = in_states[b].clone().expect("worklist blocks have states");
        let mut cmp_defs: HashMap<u16, Fact> = HashMap::new();
        let instrs = kernel.blocks()[b].instrs();
        for instr in instrs {
            transfer(instr, &mut st, &mut cmp_defs, kernel, know);
        }
        let mut edges: Vec<(usize, Option<Fact>)> = Vec::new();
        match instrs.last() {
            Some(Instr::Jmp { target }) => edges.push((target.0 as usize, None)),
            Some(Instr::Bra {
                cond,
                taken,
                not_taken,
            }) => {
                let fact = match cond {
                    Operand::Reg(VReg(c)) => cmp_defs.get(c).copied(),
                    _ => None,
                };
                edges.push((taken.0 as usize, fact));
                edges.push((
                    not_taken.0 as usize,
                    fact.map(|(op, a, b)| (negate(op), a, b)),
                ));
            }
            _ => {}
        }
        for (succ, fact) in edges {
            let mut out = st.clone();
            if let Some(f) = fact {
                if !refine_edge(&mut out, f, kernel, know) {
                    continue;
                }
            }
            let changed = match &in_states[succ] {
                None => {
                    in_states[succ] = Some(out);
                    true
                }
                Some(old) => {
                    let widen = visits[succ] >= WIDEN_AFTER;
                    let mut merged = RelState {
                        regs: Vec::with_capacity(old.regs.len()),
                        tid: old.tid.union(&out.tid),
                        ctaid: old.ctaid.union(&out.ctaid),
                    };
                    if widen {
                        merged.tid = old.tid.widen(&merged.tid);
                        merged.ctaid = old.ctaid.widen(&merged.ctaid);
                    }
                    for (o, n) in old.regs.iter().zip(out.regs.iter()) {
                        let j = o.join(n);
                        merged.regs.push(if widen { o.widen(&j) } else { j });
                    }
                    if merged != *old {
                        in_states[succ] = Some(merged);
                        true
                    } else {
                        false
                    }
                }
            };
            if changed {
                visits[succ] += 1;
                work.push(succ);
            }
        }
    }
    in_states
}

// ---------------------------------------------------------------------------
// Certificates.

/// A machine-readable per-site proof: "provided every side-condition
/// evaluates ≥ 0, every byte this site touches lies at
/// `origin + [max(lo, lo_sym(args)), min(hi_const, hi_sym(args))] +
/// [0, width)`", valid for *any* scalar argument values (the symbolic
/// bounds and conditions reference them).
///
/// The driver discharges a proof against a concrete launch with
/// [`discharge`]; the resulting window is what the BAT soundness auditor
/// cross-checks against the observed per-site address range.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteProof {
    /// Memory instruction site `(block, instruction index)`.
    pub site: (BlockId, usize),
    /// Region the site addresses.
    pub origin: Origin,
    /// Access width in bytes.
    pub width: u64,
    /// Concrete lower offset bound (inclusive, bytes; may be the `-inf`
    /// clamp when only the symbolic floor is finite).
    pub lo: i128,
    /// Concrete upper offset bound (inclusive, bytes; may be the `+inf`
    /// clamp when only the symbolic bound is finite).
    pub hi_const: i128,
    /// Symbolic lower offset bound over scalar arguments, when proven.
    pub lo_sym: Option<LinExpr>,
    /// Symbolic upper offset bound over scalar arguments, when a guard
    /// provided one.
    pub hi_sym: Option<LinExpr>,
    /// Side-conditions: each expression must evaluate ≥ 0 under the
    /// launch's concrete scalar arguments for the window to hold.
    pub conds: Vec<LinExpr>,
    /// Offset congruence `(m, r)` with `m > 1`, when proven.
    pub align: Option<(u64, u64)>,
    /// Human-readable domain facts the proof rests on.
    pub facts: Vec<String>,
}

/// Runs the relational prover and emits a [`SiteProof`] for every
/// protected-space memory site whose offset window it can bound — fully
/// concretely, symbolically in the scalar arguments, or both. Sites whose
/// lower bound may be negative, or with no finite bound of either kind,
/// get no certificate.
///
/// Run this under [`LaunchKnowledge::value_less`] to obtain certificates
/// that remain valid for every scalar argument valuation.
pub fn prove_sites(kernel: &Kernel, know: &LaunchKnowledge) -> Vec<SiteProof> {
    let states = analyze_rel(kernel, know);
    let mut proofs = Vec::new();
    for (bi, blk) in kernel.blocks().iter().enumerate() {
        let Some(entry) = &states[bi] else { continue };
        let mut st = entry.clone();
        let mut cmp_defs = HashMap::new();
        for (ii, instr) in blk.instrs().iter().enumerate() {
            if let Instr::Ld { space, width, .. }
            | Instr::St { space, width, .. }
            | Instr::AtomAdd { space, width, .. } = instr
            {
                if protected_space(*space) {
                    let site = (BlockId(bi as u32), ii);
                    if let Some(p) = prove_one(site, instr, &st, kernel, know, width.bytes()) {
                        proofs.push(p);
                    }
                }
            }
            transfer(instr, &mut st, &mut cmp_defs, kernel, know);
        }
    }
    proofs
}

/// Resolves a site's address under the relational state.
fn resolve_rel(
    instr: &Instr,
    st: &RelState,
    kernel: &Kernel,
    know: &LaunchKnowledge,
) -> Option<(Origin, RelVal)> {
    let addr = match instr {
        Instr::Ld { addr, .. } | Instr::St { addr, .. } | Instr::AtomAdd { addr, .. } => addr,
        _ => return None,
    };
    let (tids, ctaids) = (st.tid, st.ctaid);
    match addr {
        AddrExpr::BaseOffset { base, offset } => match eval(*base, st, kernel, know) {
            RelAbs::Ptr(o, boff) => {
                let off = eval(*offset, st, kernel, know).as_num();
                Some((o, rel_bin(BinOp::Add, &boff, &off, &tids, &ctaids)))
            }
            _ => None,
        },
        AddrExpr::BindingTable { bti, offset } => Some((
            Origin::Param(*bti),
            eval(*offset, st, kernel, know).as_num(),
        )),
        AddrExpr::Flat { addr } => match eval(*addr, st, kernel, know) {
            RelAbs::Ptr(o, off) => Some((o, off)),
            _ => None,
        },
    }
}

fn prove_one(
    site: (BlockId, usize),
    instr: &Instr,
    st: &RelState,
    kernel: &Kernel,
    know: &LaunchKnowledge,
    width: u64,
) -> Option<SiteProof> {
    let (origin, off) = resolve_rel(instr, st, kernel, know)?;
    if origin == Origin::Heap {
        return None; // coarse runtime-only protection (§5.2.1)
    }
    let conc = off.conc(&st.tid, &st.ctaid);
    let (wlo, whi, conds) = off.wview(&st.tid, &st.ctaid);
    // Keep only symbolic bounds that improve on the concrete interval
    // (a conditionally-valid constant still counts — e.g. the `≥ 0`
    // floor of a remainder by an unknown divisor).
    let lo_sym = wlo.filter(|e| match e.as_const() {
        Some(c) => c > conc.lo(),
        None => true,
    });
    let hi_sym = whi.filter(|e| match e.as_const() {
        Some(c) => c < conc.hi(),
        None => true,
    });
    if conc.lo() < 0 && lo_sym.is_none() {
        return None; // possibly-negative offset with no symbolic floor
    }
    if conc.hi() >= POS_INF && hi_sym.is_none() {
        return None; // no upper bound of any kind
    }
    let mut facts = vec![format!("affine: off = {}", off.aff)];
    if let Some(e) = &lo_sym {
        facts.push(format!("floor: off >= {e}"));
    }
    if let Some(e) = &hi_sym {
        facts.push(format!("guard: off <= {e}"));
    }
    for c in &conds {
        facts.push(format!("valid when: {c} >= 0"));
    }
    let align = (off.cong.m > 1).then_some((off.cong.m as u64, off.cong.r as u64));
    if let Some((m, r)) = align {
        facts.push(format!("cong: off ≡ {r} (mod {m})"));
    }
    facts.push(format!("feasible: tid ∈ {}, ctaid ∈ {}", st.tid, st.ctaid));
    Some(SiteProof {
        site,
        origin,
        width,
        lo: conc.lo(),
        hi_const: conc.hi(),
        lo_sym,
        hi_sym,
        conds,
        align,
        facts,
    })
}

/// Discharges a certificate against a concrete launch: re-checks every
/// side-condition, evaluates the symbolic bounds with the actual scalar
/// values, tightens by the congruence, and verifies the window lies
/// inside the origin region.
///
/// Returns the proven byte-offset window `[lo, hi)` (exclusive `hi`,
/// covering the access width) when the site's check may be elided, or
/// `None` when the proof does not discharge for this launch (unknown
/// argument, failed side-condition, fit-discipline breach, inconsistent
/// window, or window not contained in the region).
pub fn discharge(proof: &SiteProof, kernel: &Kernel, know: &LaunchKnowledge) -> Option<(u64, u64)> {
    let size = origin_size(proof.origin, kernel, know)?;
    // Fit discipline: every evaluated quantity must sit comfortably
    // inside the 64-bit signed range, so the wrapping ISA arithmetic the
    // window reasons about cannot actually have wrapped.
    let fit = |v: i128| (-FIT_BOUND..=FIT_BOUND).contains(&v).then_some(v);
    for c in &proof.conds {
        if fit(c.eval(know)?)? < 0 {
            return None; // a monotonicity side-condition fails
        }
    }
    let mut hi = proof.hi_const;
    if let Some(e) = &proof.hi_sym {
        hi = hi.min(fit(e.eval(know)?)?);
    }
    let mut lo = proof.lo;
    if let Some(e) = &proof.lo_sym {
        lo = lo.max(fit(e.eval(know)?)?);
    }
    if let Some((m, r)) = proof.align {
        hi = Cong {
            m: i128::from(m),
            r: i128::from(r),
        }
        .tighten_hi(hi);
    }
    if hi >= POS_INF || lo < 0 || hi < lo {
        return None;
    }
    let hi_excl = hi.checked_add(i128::from(proof.width))?;
    if hi_excl > i128::from(size) {
        return None; // window exceeds the region: keep the runtime check
    }
    Some((lo as u64, hi_excl as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_isa::{KernelBuilder, MemSpace, MemWidth};

    fn know(args: Vec<ArgInfo>, block: u32, grid: u32) -> LaunchKnowledge {
        LaunchKnowledge {
            args,
            local_sizes: vec![],
            block,
            grid,
            heap_size: None,
        }
    }

    /// if (gtid < n) out[gtid*4] = … — unprovable for the interval domain
    /// when `n` is unknown, provable here with the window `[0, 4n − 4]`.
    fn guarded_kernel() -> Kernel {
        let mut b = KernelBuilder::new("guarded");
        let out = b.param_buffer("out", false);
        let n = b.param_scalar("n");
        let tid = b.global_thread_id();
        let c = b.lt(tid, n);
        b.if_then(c, |b| {
            let off = b.shl(tid, Operand::Imm(2));
            b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        });
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn guard_on_unknown_scalar_yields_symbolic_window() {
        let k = guarded_kernel();
        let vl = know(
            vec![
                ArgInfo::Buffer { size: 400 },
                ArgInfo::Scalar { value: None },
            ],
            256,
            16,
        );
        let proofs = prove_sites(&k, &vl);
        assert_eq!(proofs.len(), 1, "{proofs:?}");
        let p = &proofs[0];
        assert_eq!(p.origin, Origin::Param(0));
        assert_eq!(p.lo, 0);
        // Symbolic bound 4·(n−1) = 4n − 4.
        let e = p.hi_sym.as_ref().expect("guard must yield symbolic bound");
        assert_eq!(e.terms, vec![(1, 4)]);
        assert_eq!(e.k, -4);
        // Alignment: offsets are tid<<2, ≡ 0 (mod 4).
        assert_eq!(p.align, Some((4, 0)));
    }

    #[test]
    fn discharge_respects_the_actual_size() {
        let k = guarded_kernel();
        let vl = know(
            vec![
                ArgInfo::Buffer { size: 400 },
                ArgInfo::Scalar { value: None },
            ],
            256,
            16,
        );
        let p = &prove_sites(&k, &vl)[0];
        // n = 100 on a 400-byte buffer: window [0, 400) — exactly fits.
        let fits = know(
            vec![
                ArgInfo::Buffer { size: 400 },
                ArgInfo::Scalar { value: Some(100) },
            ],
            256,
            16,
        );
        assert_eq!(discharge(p, &k, &fits), Some((0, 400)));
        // n = 101: window [0, 404) exceeds the buffer — no elision.
        let overflows = know(
            vec![
                ArgInfo::Buffer { size: 400 },
                ArgInfo::Scalar { value: Some(101) },
            ],
            256,
            16,
        );
        assert_eq!(discharge(p, &k, &overflows), None);
        // Value still unknown at discharge time: no elision either.
        assert_eq!(discharge(p, &k, &vl), None);
    }

    #[test]
    fn counted_loop_window_survives_widening() {
        // for i in 0..n: out[i*4] — the induction variable widens to ⊤
        // but the loop guard re-caps it on the body edge every iteration.
        let mut b = KernelBuilder::new("loop");
        let out = b.param_buffer("out", false);
        let n = b.param_scalar("n");
        b.for_loop(Operand::Imm(0), n, 1, |b, i| {
            let off = b.shl(i, Operand::Imm(2));
            b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), i);
        });
        b.ret();
        let k = b.finish().unwrap();
        let vl = know(
            vec![
                ArgInfo::Buffer { size: 256 },
                ArgInfo::Scalar { value: None },
            ],
            32,
            1,
        );
        let proofs = prove_sites(&k, &vl);
        assert_eq!(proofs.len(), 1, "{proofs:?}");
        let e = proofs[0].hi_sym.as_ref().expect("symbolic loop bound");
        assert_eq!((e.terms.clone(), e.k), (vec![(1, 4)], -4));
        // n = 64 on 256 bytes: fits exactly.
        let full = know(
            vec![
                ArgInfo::Buffer { size: 256 },
                ArgInfo::Scalar { value: Some(64) },
            ],
            32,
            1,
        );
        assert_eq!(discharge(&proofs[0], &k, &full), Some((0, 256)));
    }

    #[test]
    fn grid_stride_loop_is_certified() {
        // for (i = gtid; i < n; i += blockDim·gridDim) out[i*4] — the
        // canonical grid-stride shape the interval domain widens to ⊤.
        let mut b = KernelBuilder::new("gridstride");
        let out = b.param_buffer("out", false);
        let n = b.param_scalar("n");
        let gtid = b.global_thread_id();
        let stride = b.mul(b.block_dim(), b.grid_dim());
        let i = b.mov(gtid);
        b.while_loop(
            |b| Operand::Reg(b.lt(i, n)),
            |b| {
                let off = b.shl(i, Operand::Imm(2));
                b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), i);
                let next = b.add(i, stride);
                b.assign(i, next);
            },
        );
        b.ret();
        let k = b.finish().unwrap();
        let vl = know(
            vec![
                ArgInfo::Buffer { size: 4096 },
                ArgInfo::Scalar { value: None },
            ],
            32,
            2,
        );
        let proofs = prove_sites(&k, &vl);
        assert_eq!(proofs.len(), 1, "{proofs:?}");
        let e = proofs[0].hi_sym.as_ref().expect("symbolic bound");
        assert_eq!((e.terms.clone(), e.k), (vec![(1, 4)], -4));
        let full = know(
            vec![
                ArgInfo::Buffer { size: 4096 },
                ArgInfo::Scalar { value: Some(1024) },
            ],
            32,
            2,
        );
        assert_eq!(discharge(&proofs[0], &k, &full), Some((0, 4096)));
    }

    #[test]
    fn unguarded_unknown_index_gets_no_certificate() {
        // out[j*4] with j loaded from memory: nothing bounds it.
        let mut b = KernelBuilder::new("indirect");
        let idx = b.param_buffer("idx", true);
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let ioff = b.shl(tid, Operand::Imm(2));
        let j = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(idx, ioff));
        let off = b.shl(j, Operand::Imm(2));
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(out, off),
            Operand::Imm(1),
        );
        b.ret();
        let k = b.finish().unwrap();
        let vl = know(
            vec![
                ArgInfo::Buffer { size: 4096 },
                ArgInfo::Buffer { size: 4096 },
            ],
            16,
            4,
        );
        let proofs = prove_sites(&k, &vl);
        // The index load is concretely bounded; the indirect store is not.
        assert_eq!(proofs.len(), 1);
        assert_eq!(proofs[0].origin, Origin::Param(0));
    }

    #[test]
    fn congruence_tracks_strided_offsets() {
        let a = Cong::constant(8).mul(&Cong::top());
        assert_eq!(a, Cong { m: 8, r: 0 });
        let shifted = a.add(&Cong::constant(4));
        assert_eq!(shifted, Cong { m: 8, r: 4 });
        assert_eq!(shifted.tighten_hi(21), 20);
        assert_eq!(shifted.join(&Cong { m: 8, r: 0 }), Cong { m: 4, r: 0 });
        // Constant folding.
        assert_eq!(
            Cong::constant(6).mul(&Cong::constant(7)),
            Cong::constant(42)
        );
    }

    #[test]
    fn linexpr_algebra_and_eval() {
        let e = LinExpr::arg(2).mul_const(4).unwrap().add_const(-4).unwrap();
        assert_eq!(e.to_string(), "4*arg2 + -4");
        let k = know(
            vec![
                ArgInfo::Buffer { size: 16 },
                ArgInfo::Buffer { size: 16 },
                ArgInfo::Scalar { value: Some(10) },
            ],
            1,
            1,
        );
        assert_eq!(e.eval(&k), Some(36));
        let missing = know(
            vec![
                ArgInfo::Buffer { size: 16 },
                ArgInfo::Buffer { size: 16 },
                ArgInfo::Scalar { value: None },
            ],
            1,
            1,
        );
        assert_eq!(e.eval(&missing), None);
        // Terms cancel back to a constant.
        let z = e.add(&LinExpr::arg(2).mul_const(-4).unwrap()).unwrap();
        assert_eq!(z.as_const(), Some(-4));
    }

    #[test]
    fn rem_by_unknown_divisor_is_certified() {
        // out[(tid % n)*4] — the window [0, 4n − 4] only holds when the
        // divisor is positive, recorded as the side-condition n − 1 ≥ 0.
        let mut b = KernelBuilder::new("rem");
        let out = b.param_buffer("out", false);
        let n = b.param_scalar("n");
        let tid = b.global_thread_id();
        let r = b.rem(tid, n);
        let off = b.shl(r, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        let k = b.finish().unwrap();
        let vl = know(
            vec![
                ArgInfo::Buffer { size: 400 },
                ArgInfo::Scalar { value: None },
            ],
            256,
            16,
        );
        let proofs = prove_sites(&k, &vl);
        assert_eq!(proofs.len(), 1, "{proofs:?}");
        let p = &proofs[0];
        let e = p.hi_sym.as_ref().expect("symbolic remainder bound");
        assert_eq!((e.terms.clone(), e.k), (vec![(1, 4)], -4));
        assert!(!p.conds.is_empty(), "divisor positivity must be recorded");
        let with_n = |v| {
            know(
                vec![
                    ArgInfo::Buffer { size: 400 },
                    ArgInfo::Scalar { value: Some(v) },
                ],
                256,
                16,
            )
        };
        // n = 100: offsets in [0, 396], window [0, 400) fits exactly.
        assert_eq!(discharge(p, &k, &with_n(100)), Some((0, 400)));
        // n = 101: window [0, 404) exceeds the buffer.
        assert_eq!(discharge(p, &k, &with_n(101)), None);
        // n = 0: x % 0 = 0 in the ISA, but the recorded side-condition
        // n − 1 ≥ 0 fails, so the certificate is (soundly) not discharged.
        assert_eq!(discharge(p, &k, &with_n(0)), None);
    }

    #[test]
    fn quadratic_guard_discharges_within_fit_bounds() {
        // if (tid < n·n) out[tid*4] — the guard bound is the degree-2
        // monomial n², carried through the proof and evaluated (with the
        // magnitude fit) at discharge time.
        let mut b = KernelBuilder::new("quad");
        let out = b.param_buffer("out", false);
        let n = b.param_scalar("n");
        let tid = b.global_thread_id();
        let nn = b.mul(n, n);
        let c = b.lt(tid, nn);
        b.if_then(c, |b| {
            let off = b.shl(tid, Operand::Imm(2));
            b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        });
        b.ret();
        let k = b.finish().unwrap();
        let vl = know(
            vec![
                ArgInfo::Buffer { size: 400 },
                ArgInfo::Scalar { value: None },
            ],
            256,
            16,
        );
        let proofs = prove_sites(&k, &vl);
        assert_eq!(proofs.len(), 1, "{proofs:?}");
        let p = &proofs[0];
        let e = p.hi_sym.as_ref().expect("quadratic guard bound");
        assert_eq!(e.quad, vec![((1, 1), 4)], "4n² term");
        assert_eq!(e.k, -4);
        let with_n = |v| {
            know(
                vec![
                    ArgInfo::Buffer { size: 400 },
                    ArgInfo::Scalar { value: Some(v) },
                ],
                256,
                16,
            )
        };
        // n = 10: offsets in [0, 396] on 400 bytes.
        assert_eq!(discharge(p, &k, &with_n(10)), Some((0, 400)));
        // n = 11: 4·121 − 4 = 480 escapes the buffer.
        assert_eq!(discharge(p, &k, &with_n(11)), None);
        // n = 2⁴⁰: 4n² ≈ 2⁸² blows the evaluation fit bound — rejected,
        // never silently wrapped.
        assert_eq!(discharge(p, &k, &with_n(1 << 40)), None);
    }

    #[test]
    fn ge_guard_yields_symbolic_lower_bound() {
        // if (tid >= k) out[(tid − k)*4] — the interval domain sees a
        // possibly-negative offset; the guard floors it at zero.
        let mut b = KernelBuilder::new("floor");
        let out = b.param_buffer("out", false);
        let kk = b.param_scalar("k");
        let tid = b.global_thread_id();
        let c = b.ge(tid, kk);
        b.if_then(c, |b| {
            let d = b.sub(tid, kk);
            let off = b.shl(d, Operand::Imm(2));
            b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        });
        b.ret();
        let k = b.finish().unwrap();
        let vl = know(
            vec![
                ArgInfo::Buffer { size: 4096 },
                ArgInfo::Scalar { value: None },
            ],
            32,
            2,
        );
        let proofs = prove_sites(&k, &vl);
        assert_eq!(proofs.len(), 1, "{proofs:?}");
        let p = &proofs[0];
        assert!(
            p.lo_sym.is_some(),
            "the floor must be proven, not assumed: {p:?}"
        );
        // k = 10 over 64 threads: offsets in [0, 4·(63 − 10)] = [0, 212].
        let at = know(
            vec![
                ArgInfo::Buffer { size: 4096 },
                ArgInfo::Scalar { value: Some(10) },
            ],
            32,
            2,
        );
        assert_eq!(discharge(p, &k, &at), Some((0, 216)));
    }

    #[test]
    fn min_clamp_caps_an_oversized_index() {
        // out[min(gtid, n)*4] on a 40-byte buffer with 64 threads: the
        // interval bound (4·63 = 252) escapes the buffer, so only the
        // clamp's symbolic cap `n` proves the site. The clamp is *signed*
        // min, so a negative n would drag the offset negative — the
        // discharge-time window consistency check must catch that.
        let mut b = KernelBuilder::new("clamp");
        let out = b.param_buffer("out", false);
        let n = b.param_scalar("n");
        let tid = b.global_thread_id();
        let m = b.min(tid, n);
        let off = b.shl(m, Operand::Imm(2));
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(out, off),
            Operand::Imm(1),
        );
        b.ret();
        let k = b.finish().unwrap();
        let vl = know(
            vec![
                ArgInfo::Buffer { size: 40 },
                ArgInfo::Scalar { value: None },
            ],
            16,
            4,
        );
        let proofs = prove_sites(&k, &vl);
        assert_eq!(proofs.len(), 1, "{proofs:?}");
        let p = &proofs[0];
        let e = p.hi_sym.as_ref().expect("clamp must yield a symbolic cap");
        assert_eq!((e.terms.clone(), e.k), (vec![(1, 4)], 0), "4n");
        let with_n = |v| {
            know(
                vec![
                    ArgInfo::Buffer { size: 40 },
                    ArgInfo::Scalar { value: Some(v) },
                ],
                16,
                4,
            )
        };
        // n = 9: offsets in [0, 36] on 40 bytes — exactly fits.
        assert_eq!(discharge(p, &k, &with_n(9)), Some((0, 40)));
        // n = 10: the clamp itself reaches offset 40.
        assert_eq!(discharge(p, &k, &with_n(10)), None);
        // n = u64::MAX is −1 signed: min(gtid, −1) = −1, offset −4. The
        // symbolic hi evaluates past the fit bound and is rejected.
        assert_eq!(discharge(p, &k, &with_n(u64::MAX)), None);
    }
}
