//! Interval domain for the static bounds analysis.
//!
//! Values are modelled as mathematical integers in `i128` with clamped
//! "infinite" bounds, so 64-bit kernel arithmetic never overflows the
//! abstract domain. All operations are *sound over-approximations*: the
//! concrete result of an operation on members of the input intervals is
//! always contained in the output interval.

use std::fmt;

/// Lower clamp standing in for −∞.
pub const NEG_INF: i128 = i128::MIN >> 2;
/// Upper clamp standing in for +∞.
pub const POS_INF: i128 = i128::MAX >> 2;

/// A closed integer interval `[lo, hi]`.
///
/// # Example
///
/// ```
/// use gpushield_compiler::Interval;
///
/// // tid in [0, 255], elements of 4 bytes: offsets in [0, 1020].
/// let tid = Interval::range(0, 255);
/// let off = tid.mul(&Interval::constant(4));
/// assert!(off.within(0, 1020));
/// assert!(!off.within(0, 1019));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: i128,
    hi: i128,
}

fn clamp(v: i128) -> i128 {
    v.clamp(NEG_INF, POS_INF)
}

impl Interval {
    /// The full (unknown) interval.
    pub fn full() -> Self {
        Interval {
            lo: NEG_INF,
            hi: POS_INF,
        }
    }

    /// The singleton interval `[v, v]`.
    pub fn constant(v: i128) -> Self {
        let v = clamp(v);
        Interval { lo: v, hi: v }
    }

    /// The interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(lo: i128, hi: i128) -> Self {
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval {
            lo: clamp(lo),
            hi: clamp(hi),
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> i128 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> i128 {
        self.hi
    }

    /// True when this is the full interval.
    pub fn is_full(&self) -> bool {
        self.lo <= NEG_INF && self.hi >= POS_INF
    }

    /// True when `v` lies in the interval.
    pub fn contains(&self, v: i128) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// True when the whole interval lies in `[lo, hi]`.
    pub fn within(&self, lo: i128, hi: i128) -> bool {
        lo <= self.lo && self.hi <= hi
    }

    /// Convex hull of two intervals (the join of the lattice).
    pub fn union(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Intersection; `None` when disjoint.
    pub fn intersect(&self, o: &Interval) -> Option<Interval> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Standard widening: bounds that grew jump to ±∞ so fixpoints are
    /// reached in finitely many steps.
    pub fn widen(&self, newer: &Interval) -> Interval {
        Interval {
            lo: if newer.lo < self.lo { NEG_INF } else { self.lo },
            hi: if newer.hi > self.hi { POS_INF } else { self.hi },
        }
    }

    /// `self + o`.
    pub fn add(&self, o: &Interval) -> Interval {
        Interval {
            lo: clamp(self.lo.saturating_add(o.lo)),
            hi: clamp(self.hi.saturating_add(o.hi)),
        }
    }

    /// `self - o`.
    pub fn sub(&self, o: &Interval) -> Interval {
        Interval {
            lo: clamp(self.lo.saturating_sub(o.hi)),
            hi: clamp(self.hi.saturating_sub(o.lo)),
        }
    }

    /// `self * o`.
    pub fn mul(&self, o: &Interval) -> Interval {
        let cands = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval {
            lo: clamp(*cands.iter().min().expect("non-empty")),
            hi: clamp(*cands.iter().max().expect("non-empty")),
        }
    }

    /// Signed division (sound superset; exact for constant positive
    /// divisors).
    pub fn div(&self, o: &Interval) -> Interval {
        if o.lo == o.hi && o.lo > 0 {
            Interval {
                lo: self.lo.div_euclid(o.lo).min(self.lo / o.lo),
                hi: self.hi.div_euclid(o.lo).max(self.hi / o.lo),
            }
        } else {
            Interval::full()
        }
    }

    /// Signed remainder (sound superset; tight for constant positive
    /// divisors).
    pub fn rem(&self, o: &Interval) -> Interval {
        if o.lo == o.hi && o.lo > 0 {
            let n = o.lo;
            if self.lo >= 0 {
                // Result in [0, n-1]; keep tighter bound for small ranges.
                if self.hi < n {
                    *self
                } else {
                    Interval::range(0, n - 1)
                }
            } else {
                Interval::range(-(n - 1), n - 1)
            }
        } else {
            Interval::full()
        }
    }

    /// Bitwise and.
    pub fn and(&self, o: &Interval) -> Interval {
        // x & c with constant c ≥ 0 keeps only c's bits: result ∈ [0, c].
        if o.lo == o.hi && o.lo >= 0 {
            return Interval::range(0, o.lo);
        }
        if self.lo == self.hi && self.lo >= 0 {
            return Interval::range(0, self.lo);
        }
        if self.lo >= 0 && o.lo >= 0 {
            return Interval::range(0, self.hi.min(o.hi));
        }
        Interval::full()
    }

    /// Bitwise or / xor share the same sound bound for non-negative inputs.
    pub fn or_xor(&self, o: &Interval) -> Interval {
        if self.lo >= 0 && o.lo >= 0 {
            let m = self.hi.max(o.hi);
            // Smallest all-ones value ≥ m bounds both OR and XOR.
            let bound = if m <= 0 {
                0
            } else {
                (1i128 << (128 - (m as u128).leading_zeros())) - 1
            };
            Interval::range(0, clamp(bound))
        } else {
            Interval::full()
        }
    }

    /// Left shift by a constant amount.
    pub fn shl(&self, o: &Interval) -> Interval {
        if o.lo == o.hi && (0..=63).contains(&o.lo) {
            let k = o.lo as u32;
            let lo = self.lo.checked_shl(k);
            let hi = self.hi.checked_shl(k);
            match (lo, hi) {
                (Some(l), Some(h)) if (l >> k) == self.lo && (h >> k) == self.hi && l <= h => {
                    Interval::range(clamp(l), clamp(h))
                }
                _ => Interval::full(),
            }
        } else {
            Interval::full()
        }
    }

    /// Logical right shift by a constant amount (non-negative ranges only;
    /// logical and arithmetic shifts agree there).
    pub fn shr(&self, o: &Interval) -> Interval {
        if o.lo == o.hi && (0..=63).contains(&o.lo) && self.lo >= 0 {
            Interval::range(self.lo >> o.lo, self.hi >> o.lo)
        } else {
            Interval::full()
        }
    }

    /// Signed minimum.
    pub fn min_(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    /// Signed maximum.
    pub fn max_(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Negation.
    pub fn neg(&self) -> Interval {
        Interval {
            lo: clamp(-self.hi),
            hi: clamp(-self.lo),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Interval {
        if self.lo >= 0 {
            *self
        } else if self.hi <= 0 {
            self.neg()
        } else {
            Interval::range(0, self.hi.max(-self.lo))
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = |v: i128| -> String {
            if v <= NEG_INF {
                "-inf".into()
            } else if v >= POS_INF {
                "+inf".into()
            } else {
                v.to_string()
            }
        };
        write!(f, "[{}, {}]", show(self.lo), show(self.hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_soundness_spot_checks() {
        let a = Interval::range(2, 5);
        let b = Interval::range(-3, 4);
        assert_eq!(a.add(&b), Interval::range(-1, 9));
        assert_eq!(a.sub(&b), Interval::range(-2, 8));
        assert_eq!(a.mul(&b), Interval::range(-15, 20));
    }

    #[test]
    fn shifts_on_constants() {
        let a = Interval::range(0, 31);
        assert_eq!(a.shl(&Interval::constant(2)), Interval::range(0, 124));
        assert_eq!(a.shr(&Interval::constant(2)), Interval::range(0, 7));
        assert!(a.shl(&Interval::range(0, 2)).is_full());
    }

    #[test]
    fn rem_by_positive_constant() {
        let a = Interval::range(0, 1000);
        assert_eq!(a.rem(&Interval::constant(32)), Interval::range(0, 31));
        let small = Interval::range(0, 5);
        assert_eq!(small.rem(&Interval::constant(32)), small);
        let neg = Interval::range(-10, 10);
        assert_eq!(neg.rem(&Interval::constant(4)), Interval::range(-3, 3));
    }

    #[test]
    fn and_masks() {
        let a = Interval::full();
        assert_eq!(a.and(&Interval::constant(0xff)), Interval::range(0, 255));
    }

    #[test]
    fn or_xor_bound_is_all_ones() {
        let a = Interval::range(0, 5);
        let b = Interval::range(0, 9);
        let r = a.or_xor(&b);
        assert_eq!(r, Interval::range(0, 15));
    }

    #[test]
    fn widening_stabilizes() {
        let old = Interval::range(0, 10);
        let grown = Interval::range(0, 11);
        let w = old.widen(&grown);
        assert_eq!(w.lo(), 0);
        assert!(w.hi() >= POS_INF);
        // Widening an already-widened interval is a no-op.
        assert_eq!(w.widen(&Interval::range(0, 1 << 40)), w);
    }

    #[test]
    fn union_and_intersect() {
        let a = Interval::range(0, 4);
        let b = Interval::range(10, 12);
        assert_eq!(a.union(&b), Interval::range(0, 12));
        assert!(a.intersect(&b).is_none());
        assert_eq!(
            a.intersect(&Interval::range(3, 7)),
            Some(Interval::range(3, 4))
        );
    }

    #[test]
    fn display_infinities() {
        assert_eq!(Interval::full().to_string(), "[-inf, +inf]");
        assert_eq!(Interval::constant(3).to_string(), "[3, 3]");
    }

    #[test]
    fn abs_and_neg() {
        let a = Interval::range(-5, 3);
        assert_eq!(a.neg(), Interval::range(-3, 5));
        assert_eq!(a.abs(), Interval::range(0, 5));
    }

    #[test]
    fn widening_chain_reaches_fixpoint_past_widen_after() {
        // Simulates the analyser's loop handling: after WIDEN_AFTER visits
        // it widens every further growth, so any monotone chain of updates
        // stabilises in at most two widening steps per side.
        let mut cur = Interval::range(0, 0);
        let mut steps = 0;
        loop {
            let grown = cur.add(&Interval::constant(1));
            let next = cur.widen(&grown);
            steps += 1;
            if next == cur {
                break;
            }
            cur = next;
            assert!(steps < 4, "widening failed to converge");
        }
        assert!(cur.hi() >= POS_INF);
        assert_eq!(cur.lo(), 0);
        // A two-sided growing chain also converges immediately.
        let full = Interval::range(0, 0).widen(&Interval::range(-1, 1));
        assert!(full.is_full());
        assert_eq!(full.widen(&Interval::full()), full);
    }

    #[test]
    fn empty_meets() {
        // Disjoint, adjacent, and barely-touching intersections.
        let a = Interval::range(0, 9);
        assert!(a.intersect(&Interval::range(10, 20)).is_none());
        assert!(Interval::constant(5)
            .intersect(&Interval::constant(6))
            .is_none());
        // Touching at a single point is a singleton, not empty.
        assert_eq!(
            a.intersect(&Interval::range(9, 20)),
            Some(Interval::constant(9))
        );
        // Meets against the full interval are identity.
        assert_eq!(a.intersect(&Interval::full()), Some(a));
        // An empty meet of refined branch facts, e.g. x < 0 ∧ x ∈ [0, 9].
        assert!(a.intersect(&Interval::range(NEG_INF, -1)).is_none());
    }

    #[test]
    fn u64_boundary_arithmetic_does_not_overflow() {
        // The analyser models 64-bit kernel values in i128; every bound a
        // kernel can produce must survive arithmetic without a debug-mode
        // overflow panic (clamped to the ±inf sentinels instead).
        let umax = Interval::constant(u64::MAX as i128);
        let r = umax.add(&umax);
        assert!(r.contains(2 * u64::MAX as i128));
        let sq = umax.mul(&umax);
        assert_eq!(sq.hi(), POS_INF);
        assert!(!umax.sub(&umax.neg()).is_full() || umax.sub(&umax.neg()).hi() >= POS_INF);

        // Full-interval (±inf sentinel) arithmetic saturates, never panics.
        let f = Interval::full();
        assert!(f.add(&f).is_full());
        assert!(f.sub(&f).is_full());
        assert!(f.mul(&f).is_full());
        // Negating the sentinels clamps (−POS_INF is one above NEG_INF):
        // still a superset of every representable 64-bit value, no panic.
        let nf = f.neg();
        assert!(nf.lo() <= NEG_INF + 1 && nf.hi() >= POS_INF);

        // Shifting a u64-sized value left by 63 overflows 64 bits but not
        // the i128 domain; the result is exact.
        let one = Interval::constant(1);
        let shifted = one.shl(&Interval::constant(63));
        assert_eq!(shifted, Interval::constant(1i128 << 63));
        // Shifting the sentinel loses exactness and falls back to full.
        assert!(Interval::full().shl(&Interval::constant(1)).is_full());
        // Right shift of a u64::MAX-sized value stays exact.
        assert_eq!(
            umax.shr(&Interval::constant(32)),
            Interval::range(u64::MAX as i128 >> 32, u64::MAX as i128 >> 32)
        );

        // or/xor near the top of the u64 range stays sound and finite.
        let big = Interval::range(0, (u64::MAX - 1) as i128);
        let bound = big.or_xor(&big);
        assert!(bound.hi() >= big.hi());
    }

    #[test]
    fn widen_at_the_u64_boundary() {
        let umax = u64::MAX as i128;
        let near = Interval::range(umax - 1, umax);
        // A stable interval never widens against itself.
        assert_eq!(near.widen(&near), near);
        // Growth past u64::MAX blasts the grown side to the sentinel in
        // one step (no creeping through the 2^64..2^126 gap)…
        let w = near.widen(&Interval::range(umax - 1, umax + 1));
        assert_eq!(w.lo(), umax - 1);
        assert!(w.hi() >= POS_INF);
        // …and is then stable for arbitrarily larger updates.
        assert_eq!(w.widen(&Interval::range(umax - 1, POS_INF)), w);
        // Downward growth at the negated boundary widens lo, keeps hi.
        let neg = Interval::range(-umax, 0);
        let wn = neg.widen(&Interval::range(-umax - 1, 0));
        assert!(wn.lo() <= NEG_INF);
        assert_eq!(wn.hi(), 0);
    }

    #[test]
    fn meet_and_union_at_the_u64_boundary() {
        let umax = u64::MAX as i128;
        // Meets touching exactly at u64::MAX keep the exact singleton.
        assert_eq!(
            Interval::range(0, umax).intersect(&Interval::range(umax, POS_INF)),
            Some(Interval::constant(umax))
        );
        // One-past-the-end guard facts produce an empty meet, not a wrap.
        assert!(Interval::range(umax + 1, POS_INF)
            .intersect(&Interval::range(0, umax))
            .is_none());
        // Unions spanning the full u64 range stay exact (no sentinel).
        let u = Interval::range(0, 1).union(&Interval::constant(umax));
        assert_eq!(u, Interval::range(0, umax));
        assert!(u.hi() < POS_INF);
        // Boundary arithmetic feeding a meet: (umax + 1) − 1 meets back
        // down to a representable singleton.
        let bumped = Interval::constant(umax).add(&Interval::constant(1));
        let back = bumped.sub(&Interval::constant(1));
        assert_eq!(
            back.intersect(&Interval::range(0, umax)),
            Some(Interval::constant(umax))
        );
    }
}
