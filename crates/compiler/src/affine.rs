//! Shared affine abstract domain `t·tid + b·ctaid + c`.
//!
//! An [`Aff`] models a per-lane value as an affine combination of the
//! thread index within the block (`tid`) and the block index (`ctaid`),
//! with *interval* coefficients: `%tid` is `1·tid`, uniform values have
//! both coefficients zero, and anything non-affine (loaded data,
//! `tid·tid`) widens to `c = ⊤` with zero coefficients — which can never
//! be proven anything, so over-approximation always errs toward keeping
//! a runtime check (bounds domain) or reporting a race (race pass).
//!
//! This module was promoted out of `verify/race.rs` (where it tracked
//! only `k·tid + c`) so the relational bounds domain and the
//! shared-memory race pass share one implementation. The race pass keeps
//! `ctaid` folded to a uniform interval — shared memory is block-local,
//! so both threads of a candidate race agree on `ctaid` — while the
//! bounds domain keeps it symbolic for grid-wide windows.

use crate::interval::Interval;
use gpushield_isa::{BinOp, CmpOp, UnOp};
use std::fmt;

/// An abstract per-lane value `t·tid + b·ctaid + c` with interval
/// coefficients (each chosen per lane, so widening `c` to ⊤ soundly
/// covers arbitrary thread-dependent values with zero coefficients).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aff {
    /// Coefficient on the in-block thread index.
    pub t: Interval,
    /// Coefficient on the block index.
    pub b: Interval,
    /// Constant term.
    pub c: Interval,
}

impl Aff {
    /// The completely unknown value (`c = ⊤`, no usable form).
    pub fn top() -> Self {
        Aff {
            t: Interval::constant(0),
            b: Interval::constant(0),
            c: Interval::full(),
        }
    }

    /// A thread-uniform value in `c`.
    pub fn uniform(c: Interval) -> Self {
        Aff {
            t: Interval::constant(0),
            b: Interval::constant(0),
            c,
        }
    }

    /// Exactly the thread index: `1·tid + 0`.
    pub fn tid() -> Self {
        Aff {
            t: Interval::constant(1),
            b: Interval::constant(0),
            c: Interval::constant(0),
        }
    }

    /// Exactly the block index: `1·ctaid + 0`.
    pub fn ctaid() -> Self {
        Aff {
            t: Interval::constant(0),
            b: Interval::constant(1),
            c: Interval::constant(0),
        }
    }

    /// True when both coefficients are exactly zero (a uniform value).
    pub fn is_uniform(&self) -> bool {
        self.t == Interval::constant(0) && self.b == Interval::constant(0)
    }

    /// Lattice join (componentwise hull).
    pub fn join(&self, o: &Aff) -> Aff {
        Aff {
            t: self.t.union(&o.t),
            b: self.b.union(&o.b),
            c: self.c.union(&o.c),
        }
    }

    /// Componentwise widening (applied at loop heads).
    pub fn widen(&self, newer: &Aff) -> Aff {
        Aff {
            t: self.t.widen(&newer.t),
            b: self.b.widen(&newer.b),
            c: self.c.widen(&newer.c),
        }
    }

    /// The concrete interval this form can take when `tid ∈ tids` and
    /// `ctaid ∈ ctaids`.
    pub fn concretize(&self, tids: &Interval, ctaids: &Interval) -> Interval {
        self.t.mul(tids).add(&self.b.mul(ctaids)).add(&self.c)
    }
}

impl fmt::Display for Aff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}*tid + {}*ctaid + {}", self.t, self.b, self.c)
    }
}

/// Abstract binary operation on affine forms.
pub fn aff_bin(op: BinOp, a: Aff, b: Aff) -> Aff {
    match op {
        BinOp::Add => Aff {
            t: a.t.add(&b.t),
            b: a.b.add(&b.b),
            c: a.c.add(&b.c),
        },
        BinOp::Sub => Aff {
            t: a.t.sub(&b.t),
            b: a.b.sub(&b.b),
            c: a.c.sub(&b.c),
        },
        BinOp::Mul => {
            // (t·tid + b·ctaid + c)·u stays affine only when one factor is
            // uniform.
            if a.is_uniform() {
                Aff {
                    t: b.t.mul(&a.c),
                    b: b.b.mul(&a.c),
                    c: b.c.mul(&a.c),
                }
            } else if b.is_uniform() {
                Aff {
                    t: a.t.mul(&b.c),
                    b: a.b.mul(&b.c),
                    c: a.c.mul(&b.c),
                }
            } else {
                Aff::top()
            }
        }
        BinOp::Shl if b.is_uniform() => Aff {
            t: a.t.shl(&b.c),
            b: a.b.shl(&b.c),
            c: a.c.shl(&b.c),
        },
        _ => {
            if a.is_uniform() && b.is_uniform() {
                let c = match op {
                    BinOp::Div => a.c.div(&b.c),
                    BinOp::Rem => a.c.rem(&b.c),
                    BinOp::And => a.c.and(&b.c),
                    BinOp::Or | BinOp::Xor => a.c.or_xor(&b.c),
                    BinOp::Shl => a.c.shl(&b.c),
                    BinOp::Shr => a.c.shr(&b.c),
                    BinOp::Min => a.c.min_(&b.c),
                    BinOp::Max => a.c.max_(&b.c),
                    BinOp::Add | BinOp::Sub | BinOp::Mul => unreachable!("handled above"),
                };
                Aff::uniform(c)
            } else {
                Aff::top()
            }
        }
    }
}

/// Abstract unary operation on affine forms.
pub fn aff_un(op: UnOp, a: Aff) -> Aff {
    match op {
        UnOp::Neg => Aff {
            t: a.t.neg(),
            b: a.b.neg(),
            c: a.c.neg(),
        },
        UnOp::Abs if a.is_uniform() => Aff::uniform(a.c.abs()),
        _ => Aff::top(),
    }
}

/// The comparison that holds on the fall-through edge when `op` failed.
pub fn negate(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
    }
}

/// The comparison with its operands exchanged (`a op b ⟺ b swap(op) a`).
pub fn swap(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_times_uniform_scales_the_coefficient() {
        let four = Aff::uniform(Interval::constant(4));
        let r = aff_bin(BinOp::Mul, Aff::tid(), four);
        assert_eq!(r.t, Interval::constant(4));
        assert_eq!(r.b, Interval::constant(0));
        assert_eq!(r.c, Interval::constant(0));
        // Commuted form too.
        assert_eq!(aff_bin(BinOp::Mul, four, Aff::tid()), r);
    }

    #[test]
    fn global_thread_id_form_is_exact() {
        // gtid = ctaid·blockDim + tid with blockDim = 64.
        let bdim = Aff::uniform(Interval::constant(64));
        let scaled = aff_bin(BinOp::Mul, Aff::ctaid(), bdim);
        let gtid = aff_bin(BinOp::Add, scaled, Aff::tid());
        assert_eq!(gtid.t, Interval::constant(1));
        assert_eq!(gtid.b, Interval::constant(64));
        assert_eq!(gtid.c, Interval::constant(0));
        // Concretizing over a 64×4 launch covers exactly [0, 255].
        let r = gtid.concretize(&Interval::range(0, 63), &Interval::range(0, 3));
        assert_eq!(r, Interval::range(0, 255));
    }

    #[test]
    fn non_affine_products_go_to_top() {
        assert_eq!(aff_bin(BinOp::Mul, Aff::tid(), Aff::tid()), Aff::top());
        assert_eq!(aff_bin(BinOp::Mul, Aff::tid(), Aff::ctaid()), Aff::top());
    }

    #[test]
    fn shl_by_uniform_shifts_all_components() {
        let two = Aff::uniform(Interval::constant(2));
        let r = aff_bin(BinOp::Shl, Aff::tid(), two);
        assert_eq!(r.t, Interval::constant(4));
        assert!(!r.is_uniform());
    }

    #[test]
    fn join_and_widen_are_componentwise() {
        let a = Aff::tid();
        let b = Aff::uniform(Interval::constant(7));
        let j = a.join(&b);
        assert_eq!(j.t, Interval::range(0, 1));
        assert_eq!(j.c, Interval::range(0, 7));
        // Widening the old `a` against the grown join blows the grown
        // bounds to ±inf and keeps the stable ones.
        let w = a.widen(&j);
        assert!(w.t.lo() < 0, "t's lower bound grew downward, so it widens");
        assert_eq!(w.t.hi(), 1);
        assert!(w.c.hi() > 7);
        assert_eq!(w.c.lo(), 0);
    }

    #[test]
    fn negate_and_swap_are_involutions_where_expected() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert_eq!(negate(negate(op)), op);
            assert_eq!(swap(swap(op)), op);
        }
    }
}
