//! Fixpoint abstract interpretation over the kernel CFG.
//!
//! Implements the data-flow analysis of paper §5.3.2: operand values are
//! filled from launch knowledge (argument sizes, scalar values, grid
//! geometry) or from hardware maxima, loops are handled with widening, and
//! branch conditions refine ranges on the outgoing edges — which is what
//! lets `if (tid < n)`-guarded accesses and counted loops be proven safe.

use crate::absval::{AbsVal, Origin};
use crate::affine::{negate, swap};
use crate::interval::Interval;
use gpushield_isa::{CmpOp, Instr, Kernel, MemSpace, Operand, ParamKind, Special, VReg};
use std::collections::{HashMap, VecDeque};

/// What the driver knows about one kernel argument at launch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgInfo {
    /// A buffer of `size` bytes.
    Buffer {
        /// Allocation size in bytes (the `size` column of the BAT in
        /// Fig. 5).
        size: u64,
    },
    /// A scalar, with its value when the host passes a compile-time-known
    /// constant (Fig. 8's "Arg. Info & Constants").
    Scalar {
        /// Known value, if any.
        value: Option<u64>,
    },
}

/// Launch-time knowledge the analysis may use (paper Fig. 5: the host-code
/// analysis supplies buffer sizes and constants; `get_global_id` is bounded
/// by the launch geometry).
#[derive(Debug, Clone)]
pub struct LaunchKnowledge {
    /// Per-argument information, parallel to the kernel's parameter list.
    pub args: Vec<ArgInfo>,
    /// Total size of each local variable's interleaved region, in bytes.
    pub local_sizes: Vec<u64>,
    /// Workitems per workgroup.
    pub block: u32,
    /// Workgroups in the grid.
    pub grid: u32,
    /// Device heap size, when configured.
    pub heap_size: Option<u64>,
}

impl LaunchKnowledge {
    /// Buffer size for argument `p`, if it is a buffer.
    pub fn buffer_size(&self, p: u8) -> Option<u64> {
        match self.args.get(usize::from(p)) {
            Some(ArgInfo::Buffer { size }) => Some(*size),
            _ => None,
        }
    }

    /// The compile-time view of this launch: scalar argument *values* are
    /// blanked while buffer/local sizes and the grid geometry — which the
    /// driver always knows — are kept. The relational prover runs under
    /// this view so its [`crate::SiteProof`] certificates stay valid for
    /// any scalar values the host may pass; the driver then discharges
    /// them against the concrete values at launch.
    pub fn value_less(&self) -> LaunchKnowledge {
        LaunchKnowledge {
            args: self
                .args
                .iter()
                .map(|a| match a {
                    ArgInfo::Scalar { .. } => ArgInfo::Scalar { value: None },
                    buf => *buf,
                })
                .collect(),
            local_sizes: self.local_sizes.clone(),
            block: self.block,
            grid: self.grid,
            heap_size: self.heap_size,
        }
    }
}

const WIDEN_AFTER: u32 = 4;
pub(crate) const VISIT_FUEL: u32 = 50_000;

/// A branch condition traced back to its comparison: `(op, lhs, rhs)`.
type Fact = (CmpOp, Operand, Operand);

pub(crate) struct AnalysisResult {
    /// Abstract state at each block entry (`None` = unreachable).
    pub in_states: Vec<Option<Vec<AbsVal>>>,
    /// Worklist iterations the fixpoint consumed (out of [`VISIT_FUEL`]);
    /// pinned by the widening-termination tests.
    pub iterations: u32,
}

pub(crate) fn eval_operand(
    op: Operand,
    st: &[AbsVal],
    kernel: &Kernel,
    know: &LaunchKnowledge,
) -> AbsVal {
    match op {
        Operand::Reg(VReg(r)) => st[usize::from(r)],
        Operand::Imm(i) => AbsVal::constant(i128::from(i)),
        Operand::Param(p) => match kernel.params()[usize::from(p)].kind() {
            ParamKind::Buffer { .. } => AbsVal::Ptr(Origin::Param(p), Interval::constant(0)),
            ParamKind::Scalar => match know.args.get(usize::from(p)) {
                Some(ArgInfo::Scalar { value: Some(v) }) => AbsVal::constant(i128::from(*v)),
                _ => AbsVal::top(),
            },
        },
        Operand::LocalBase(v) => AbsVal::Ptr(Origin::Local(v), Interval::constant(0)),
        Operand::Special(s) => AbsVal::Num(match s {
            Special::ThreadId => Interval::range(0, i128::from(know.block) - 1),
            Special::BlockId => Interval::range(0, i128::from(know.grid) - 1),
            Special::BlockDim => Interval::constant(i128::from(know.block)),
            Special::GridDim => Interval::constant(i128::from(know.grid)),
            // Lane index is bounded by the widest SIMT width we model.
            Special::LaneId => Interval::range(0, 63),
        }),
    }
}

/// Transfers one non-terminator instruction; updates the `cmp_defs` map so
/// branch conditions can be traced back to their comparison.
pub(crate) fn transfer(
    instr: &Instr,
    st: &mut [AbsVal],
    cmp_defs: &mut HashMap<u16, Fact>,
    kernel: &Kernel,
    know: &LaunchKnowledge,
) {
    let write = |st: &mut [AbsVal], cmp_defs: &mut HashMap<u16, _>, dst: VReg, v: AbsVal| {
        st[usize::from(dst.0)] = v;
        cmp_defs.remove(&dst.0);
    };
    match instr {
        Instr::Mov { dst, src } => {
            let v = eval_operand(*src, st, kernel, know);
            write(st, cmp_defs, *dst, v);
        }
        Instr::Un { op, dst, a } => {
            let v = AbsVal::un(*op, &eval_operand(*a, st, kernel, know));
            write(st, cmp_defs, *dst, v);
        }
        Instr::Bin { op, dst, a, b } => {
            let v = AbsVal::bin(
                *op,
                &eval_operand(*a, st, kernel, know),
                &eval_operand(*b, st, kernel, know),
            );
            write(st, cmp_defs, *dst, v);
        }
        Instr::Cmp { op, dst, a, b } => {
            let v = AbsVal::cmp(
                *op,
                &eval_operand(*a, st, kernel, know),
                &eval_operand(*b, st, kernel, know),
            );
            write(st, cmp_defs, *dst, v);
            cmp_defs.insert(dst.0, (*op, *a, *b));
        }
        Instr::Sel { dst, a, b, .. } => {
            let v = eval_operand(*a, st, kernel, know).join(&eval_operand(*b, st, kernel, know));
            write(st, cmp_defs, *dst, v);
        }
        Instr::Ld { dst, .. } | Instr::AtomAdd { dst, .. } => {
            // Loaded data is unknown (this is precisely why indirect graph
            // workloads defeat static analysis, §8.3).
            write(st, cmp_defs, *dst, AbsVal::top());
        }
        Instr::Malloc { dst, .. } => {
            let v = AbsVal::Ptr(Origin::Heap, Interval::full());
            write(st, cmp_defs, *dst, v);
        }
        Instr::St { .. } | Instr::Free { .. } | Instr::Bar => {}
        Instr::Bra { .. } | Instr::Jmp { .. } | Instr::Ret => {}
    }
}

fn meet_bound(op: CmpOp, x: Interval, bound: Interval) -> Option<Interval> {
    let constraint = match op {
        CmpOp::Lt => Interval::range(crate::interval::NEG_INF, bound.hi().saturating_sub(1)),
        CmpOp::Le => Interval::range(crate::interval::NEG_INF, bound.hi()),
        CmpOp::Gt => Interval::range(bound.lo().saturating_add(1), crate::interval::POS_INF),
        CmpOp::Ge => Interval::range(bound.lo(), crate::interval::POS_INF),
        CmpOp::Eq => bound,
        CmpOp::Ne => return Some(x),
    };
    x.intersect(&constraint)
}

/// Refines `st` along a branch edge where `(op, a, b)` is known to hold.
/// Returns `false` when the edge is infeasible.
fn refine_edge(
    st: &mut [AbsVal],
    op: CmpOp,
    a: Operand,
    b: Operand,
    kernel: &Kernel,
    know: &LaunchKnowledge,
) -> bool {
    // Refine register `a` against the value of `b`, then symmetrically.
    let sides = [(a, b, op), (b, a, swap(op))];
    for (lhs, rhs, op) in sides {
        let Operand::Reg(VReg(r)) = lhs else { continue };
        let rhs_val = eval_operand(rhs, st, kernel, know);
        match (st[usize::from(r)], rhs_val) {
            (AbsVal::Num(x), AbsVal::Num(bound)) => match meet_bound(op, x, bound) {
                Some(m) => st[usize::from(r)] = AbsVal::Num(m),
                None => return false,
            },
            (AbsVal::Ptr(o1, x), AbsVal::Ptr(o2, bound)) if o1 == o2 => {
                match meet_bound(op, x, bound) {
                    Some(m) => st[usize::from(r)] = AbsVal::Ptr(o1, m),
                    None => return false,
                }
            }
            _ => {}
        }
    }
    true
}

/// Runs the fixpoint analysis and returns per-block entry states.
pub(crate) fn analyze_kernel(kernel: &Kernel, know: &LaunchKnowledge) -> AnalysisResult {
    let nblocks = kernel.blocks().len();
    let nregs = usize::from(kernel.num_regs());
    let mut in_states: Vec<Option<Vec<AbsVal>>> = vec![None; nblocks];
    let mut visits = vec![0u32; nblocks];
    // Registers start as zero in hardware.
    in_states[0] = Some(vec![AbsVal::constant(0); nregs.max(1)]);
    let mut work: VecDeque<usize> = VecDeque::from([0usize]);
    let mut fuel = VISIT_FUEL;

    while let Some(b) = work.pop_front() {
        if fuel == 0 {
            break; // Sound: remaining states stay at their last (wider) value.
        }
        fuel -= 1;
        let mut st = in_states[b].clone().expect("worklist blocks have states");
        let mut cmp_defs: HashMap<u16, Fact> = HashMap::new();
        let instrs = kernel.blocks()[b].instrs();
        for instr in instrs {
            transfer(instr, &mut st, &mut cmp_defs, kernel, know);
        }
        // Build (successor, refinement) edges from the terminator.
        let mut edges: Vec<(usize, Option<Fact>)> = Vec::new();
        match instrs.last() {
            Some(Instr::Jmp { target }) => edges.push((target.0 as usize, None)),
            Some(Instr::Bra {
                cond,
                taken,
                not_taken,
            }) => {
                let fact = match cond {
                    Operand::Reg(VReg(c)) => cmp_defs.get(c).copied(),
                    _ => None,
                };
                edges.push((taken.0 as usize, fact));
                edges.push((
                    not_taken.0 as usize,
                    fact.map(|(op, a, b)| (negate(op), a, b)),
                ));
            }
            _ => {}
        }
        for (succ, refinement) in edges {
            let mut out = st.clone();
            if let Some((op, a, b)) = refinement {
                if !refine_edge(&mut out, op, a, b, kernel, know) {
                    continue; // infeasible edge
                }
            }
            let changed = match &in_states[succ] {
                None => {
                    in_states[succ] = Some(out);
                    true
                }
                Some(old) => {
                    let widen = visits[succ] >= WIDEN_AFTER;
                    let mut merged = Vec::with_capacity(old.len());
                    let mut any = false;
                    for (o, n) in old.iter().zip(out.iter()) {
                        let j = o.join(n);
                        let j = if widen { o.widen(&j) } else { j };
                        if j != *o {
                            any = true;
                        }
                        merged.push(j);
                    }
                    if any {
                        in_states[succ] = Some(merged);
                    }
                    any
                }
            };
            if changed {
                visits[succ] += 1;
                if !work.contains(&succ) {
                    work.push_back(succ);
                }
            }
        }
    }

    // Narrowing: widening blasts loop-variable bounds to ±∞ and the branch
    // refinement then re-derives the real bound on the body edge, but the
    // widened join at the body entry discards it. Two decreasing passes
    // recompute block entries purely from predecessor edges, recovering
    // bounds like `iv ∈ [0, n-1]` inside counted loops. Soundness: each
    // pass recomputes entries from sound predecessor states, so results
    // stay sound over-approximations.
    for _ in 0..2 {
        let mut new_in: Vec<Option<Vec<AbsVal>>> = vec![None; nblocks];
        new_in[0] = Some(vec![AbsVal::constant(0); nregs.max(1)]);
        for (b, entry_opt) in in_states.iter().enumerate().take(nblocks) {
            let Some(entry) = entry_opt else { continue };
            let mut st = entry.clone();
            let mut cmp_defs: HashMap<u16, Fact> = HashMap::new();
            let instrs = kernel.blocks()[b].instrs();
            for instr in instrs {
                transfer(instr, &mut st, &mut cmp_defs, kernel, know);
            }
            let mut edges: Vec<(usize, Option<Fact>)> = Vec::new();
            match instrs.last() {
                Some(Instr::Jmp { target }) => edges.push((target.0 as usize, None)),
                Some(Instr::Bra {
                    cond,
                    taken,
                    not_taken,
                }) => {
                    let fact = match cond {
                        Operand::Reg(VReg(c)) => cmp_defs.get(c).copied(),
                        _ => None,
                    };
                    edges.push((taken.0 as usize, fact));
                    edges.push((
                        not_taken.0 as usize,
                        fact.map(|(op, a, bb)| (negate(op), a, bb)),
                    ));
                }
                _ => {}
            }
            for (succ, refinement) in edges {
                let mut out = st.clone();
                if let Some((op, a, bb)) = refinement {
                    if !refine_edge(&mut out, op, a, bb, kernel, know) {
                        continue;
                    }
                }
                match &mut new_in[succ] {
                    None => new_in[succ] = Some(out),
                    Some(old) => {
                        for (o, n) in old.iter_mut().zip(out.iter()) {
                            *o = o.join(n);
                        }
                    }
                }
            }
        }
        in_states = new_in;
    }

    AnalysisResult {
        in_states,
        iterations: VISIT_FUEL - fuel,
    }
}

/// Resolved abstract address of a memory site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SiteAddress {
    pub origin: Origin,
    pub offset: Interval,
    /// Fig. 2 addressing method: 'A', 'B', or 'C'.
    pub method: char,
}

/// Resolves the address expression of a memory instruction under state
/// `st`; `None` when the base cannot be traced to a protected region.
pub(crate) fn resolve_site(
    instr: &Instr,
    st: &[AbsVal],
    kernel: &Kernel,
    know: &LaunchKnowledge,
) -> Option<SiteAddress> {
    let addr = match instr {
        Instr::Ld { addr, .. } | Instr::St { addr, .. } | Instr::AtomAdd { addr, .. } => addr,
        _ => return None,
    };
    match addr {
        gpushield_isa::AddrExpr::BaseOffset { base, offset } => {
            match eval_operand(*base, st, kernel, know) {
                AbsVal::Ptr(o, boff) => Some(SiteAddress {
                    origin: o,
                    offset: boff.add(&eval_operand(*offset, st, kernel, know).as_num()),
                    method: 'C',
                }),
                _ => None,
            }
        }
        gpushield_isa::AddrExpr::BindingTable { bti, offset } => Some(SiteAddress {
            origin: Origin::Param(*bti),
            offset: eval_operand(*offset, st, kernel, know).as_num(),
            method: 'A',
        }),
        gpushield_isa::AddrExpr::Flat { addr } => match eval_operand(*addr, st, kernel, know) {
            AbsVal::Ptr(o, i) => Some(SiteAddress {
                origin: o,
                offset: i,
                method: 'B',
            }),
            _ => None,
        },
    }
}

/// Size in bytes of the region `origin`, when known.
pub(crate) fn origin_size(origin: Origin, kernel: &Kernel, know: &LaunchKnowledge) -> Option<u64> {
    match origin {
        Origin::Param(p) => {
            // Only buffers have sizes; scalars can never be proven.
            match kernel.params().get(usize::from(p))?.kind() {
                ParamKind::Buffer { .. } => know.buffer_size(p),
                ParamKind::Scalar => None,
            }
        }
        Origin::Local(v) => know.local_sizes.get(usize::from(v)).copied(),
        Origin::Heap => None, // coarse runtime-only protection (§5.2.1)
    }
}

/// True when accesses in `space` are subject to GPUShield protection.
pub(crate) fn protected_space(space: MemSpace) -> bool {
    matches!(
        space,
        MemSpace::Global | MemSpace::Local | MemSpace::Const | MemSpace::Texture
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};

    /// Pathological triple-nested loop whose accumulator couples all three
    /// induction variables: the concrete iteration space is cubic in `n`,
    /// so the only way the fixpoint terminates promptly is the widening
    /// discipline (every header widens after `WIDEN_AFTER` visits).
    #[test]
    fn nested_loop_widening_terminates_in_bounded_iterations() {
        let mut b = KernelBuilder::new("nested");
        let out = b.param_buffer("out", false);
        let n = b.param_scalar("n");
        let acc = b.mov(Operand::Imm(0));
        b.for_loop(Operand::Imm(0), n, 1, |b, i| {
            b.for_loop(Operand::Imm(0), n, 1, |b, j| {
                b.for_loop(Operand::Imm(0), n, 1, |b, k| {
                    let t1 = b.add(i, j);
                    let t2 = b.add(t1, k);
                    let t3 = b.add(acc, t2);
                    b.assign(acc, t3);
                    let off = b.and(t3, Operand::Imm(0xfc));
                    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), t3);
                });
            });
        });
        b.ret();
        let k = b.finish().unwrap();
        let know = LaunchKnowledge {
            args: vec![
                ArgInfo::Buffer { size: 256 },
                ArgInfo::Scalar { value: None },
            ],
            local_sizes: vec![],
            block: 64,
            grid: 4,
            heap_size: None,
        };
        let res = analyze_kernel(&k, &know);
        assert!(res.iterations < VISIT_FUEL, "fixpoint exhausted its fuel");
        assert!(
            res.iterations <= 200,
            "nested-loop fixpoint took {} worklist iterations",
            res.iterations
        );
    }
}
