//! Shared-memory race detection between consecutive barriers.
//!
//! GPUVerify-style two-thread reasoning specialised to this IR: shared
//! memory is private to a workgroup, so a data race is two accesses from
//! *distinct* threads of the same workgroup, at least one a non-atomic
//! write, touching overlapping bytes inside the same *barrier epoch* (the
//! region between two `Bar`s, where nothing orders the threads).
//!
//! Three ingredients:
//!
//! 1. **Affine addresses.** A forward fixpoint evaluates every register as
//!    `k·tid + c` with *interval* coefficients ([`Lin`]): `%tid` is
//!    `1·tid + 0`, uniform values have `k = 0`, and anything non-affine
//!    (loaded data, `tid·tid`) widens to `k = 0, c = ⊤` — which can never
//!    be proven disjoint, so over-approximation errs toward reporting.
//!    Branch edges refine the feasible `tid` range through comparisons on
//!    registers that hold exactly `tid` (`if (tid < s)` guards).
//! 2. **Barrier epochs.** Every epoch start (kernel entry and each `Bar`)
//!    scans forward over the CFG, collecting shared accesses until the
//!    next `Bar` on each path. Two accesses can race only when some epoch
//!    contains both — including an access paired with itself, which is how
//!    `sh[f(tid)]` with a non-injective `f` is caught.
//! 3. **Disjointness solving.** For a conflicting pair with singleton
//!    coefficients, the byte ranges `[k·t₁+c₁, +w₁)` and `[k·t₂+c₂, +w₂)`
//!    overlap for distinct `t₁ ≠ t₂` iff the integer window
//!    `-w₁ < k·Δ + (c₂-c₁) < w₂` admits a non-zero `Δ = t₂ - t₁` within
//!    the guard-refined thread ranges. No admissible `Δ` is a proof of
//!    race freedom for the pair.

use super::{Diagnostic, Pass, PassContext, Severity};
use crate::affine::{aff_bin, aff_un, negate, swap, Aff};
use crate::analysis::LaunchKnowledge;
use crate::interval::{Interval, NEG_INF, POS_INF};
use gpushield_isa::{
    AddrExpr, BinOp, BlockId, CmpOp, Instr, Kernel, MemSpace, Operand, ParamKind, Special, VReg,
};
use std::collections::HashMap;

/// The shared-memory race pass (`"race"`).
pub struct SharedRacePass;

/// Per-path abstract state: register values plus the feasible local-tid
/// range under the guards taken so far.
#[derive(Debug, Clone, PartialEq)]
struct State {
    regs: Vec<Aff>,
    tid: Interval,
}

type Fact = (CmpOp, Operand, Operand);

fn eval(op: Operand, st: &State, kernel: &Kernel, know: &LaunchKnowledge) -> Aff {
    match op {
        Operand::Reg(VReg(r)) => st.regs[usize::from(r)],
        Operand::Imm(i) => Aff::uniform(Interval::constant(i128::from(i))),
        Operand::Param(p) => match kernel.params()[usize::from(p)].kind() {
            ParamKind::Scalar => match know.args.get(usize::from(p)) {
                Some(crate::analysis::ArgInfo::Scalar { value: Some(v) }) => {
                    Aff::uniform(Interval::constant(i128::from(*v)))
                }
                _ => Aff::top(),
            },
            // A buffer pointer flowing into a *shared* address is already
            // nonsense; ⊤ keeps it unprovable.
            ParamKind::Buffer { .. } => Aff::top(),
        },
        Operand::LocalBase(_) => Aff::top(),
        Operand::Special(s) => match s {
            Special::ThreadId => Aff::tid(),
            // The lane index is `tid mod warp_width` — tid-dependent but
            // not affine in tid; ⊤ keeps it unprovable.
            Special::LaneId => Aff::top(),
            Special::BlockDim => Aff::uniform(Interval::constant(i128::from(know.block))),
            Special::GridDim => Aff::uniform(Interval::constant(i128::from(know.grid))),
            // Shared memory is block-local: both threads of a candidate
            // race share one `ctaid`, so the block index folds to a
            // uniform interval rather than staying symbolic.
            Special::BlockId => Aff::uniform(Interval::range(0, i128::from(know.grid) - 1)),
        },
    }
}

/// Transfers one instruction; maintains `cmp_defs` so branch conditions
/// trace back to their comparison (entries die when any mentioned register
/// is redefined).
fn transfer(
    instr: &Instr,
    st: &mut State,
    cmp_defs: &mut HashMap<u16, Fact>,
    kernel: &Kernel,
    know: &LaunchKnowledge,
) {
    let write = |st: &mut State, cmp_defs: &mut HashMap<u16, Fact>, dst: VReg, v: Aff| {
        st.regs[usize::from(dst.0)] = v;
        cmp_defs.retain(|key, (_, a, b)| {
            *key != dst.0 && *a != Operand::Reg(dst) && *b != Operand::Reg(dst)
        });
    };
    match instr {
        Instr::Mov { dst, src } => {
            let v = eval(*src, st, kernel, know);
            write(st, cmp_defs, *dst, v);
        }
        Instr::Un { op, dst, a } => {
            let v = aff_un(*op, eval(*a, st, kernel, know));
            write(st, cmp_defs, *dst, v);
        }
        Instr::Bin { op, dst, a, b } => {
            let v = aff_bin(*op, eval(*a, st, kernel, know), eval(*b, st, kernel, know));
            write(st, cmp_defs, *dst, v);
        }
        Instr::Cmp { op, dst, a, b } => {
            let (op, a, b) = (*op, *a, *b);
            write(st, cmp_defs, *dst, Aff::uniform(Interval::range(0, 1)));
            cmp_defs.insert(dst.0, (op, a, b));
        }
        Instr::Sel { dst, a, b, .. } => {
            let v = eval(*a, st, kernel, know).join(&eval(*b, st, kernel, know));
            write(st, cmp_defs, *dst, v);
        }
        Instr::Ld { dst, .. } | Instr::AtomAdd { dst, .. } | Instr::Malloc { dst, .. } => {
            write(st, cmp_defs, *dst, Aff::top());
        }
        Instr::St { .. } | Instr::Free { .. } | Instr::Bar => {}
        Instr::Bra { .. } | Instr::Jmp { .. } | Instr::Ret => {}
    }
}

fn meet_tid(op: CmpOp, tid: Interval, bound: &Interval) -> Option<Interval> {
    let constraint = match op {
        CmpOp::Lt => Interval::range(NEG_INF, bound.hi().saturating_sub(1)),
        CmpOp::Le => Interval::range(NEG_INF, bound.hi()),
        CmpOp::Gt => Interval::range(bound.lo().saturating_add(1), POS_INF),
        CmpOp::Ge => Interval::range(bound.lo(), POS_INF),
        CmpOp::Eq => *bound,
        CmpOp::Ne => return Some(tid),
    };
    tid.intersect(&constraint)
}

/// Refines the feasible tid range along a branch edge where `(op, a, b)`
/// holds. Only comparisons of a register holding exactly `tid` against a
/// uniform value refine; everything else passes through. Returns `false`
/// when the edge is infeasible.
fn refine_edge(st: &mut State, fact: Fact, kernel: &Kernel, know: &LaunchKnowledge) -> bool {
    let (op, a, b) = fact;
    for (lhs, rhs, op) in [(a, b, op), (b, a, swap(op))] {
        let lhs_lin = eval(lhs, st, kernel, know);
        if lhs_lin != Aff::tid() {
            continue;
        }
        let rhs_lin = eval(rhs, st, kernel, know);
        if !rhs_lin.is_uniform() {
            continue;
        }
        match meet_tid(op, st.tid, &rhs_lin.c) {
            Some(m) => st.tid = m,
            None => return false,
        }
    }
    true
}

const WIDEN_AFTER: u32 = 4;
const VISIT_FUEL: u32 = 20_000;

/// Runs the affine fixpoint; returns per-block entry states (`None` =
/// unreachable).
fn analyze_lin(kernel: &Kernel, know: &LaunchKnowledge) -> Vec<Option<State>> {
    let nblocks = kernel.blocks().len();
    let nregs = usize::from(kernel.num_regs()).max(1);
    let mut in_states: Vec<Option<State>> = vec![None; nblocks];
    in_states[0] = Some(State {
        regs: vec![Aff::uniform(Interval::constant(0)); nregs],
        tid: Interval::range(0, i128::from(know.block) - 1),
    });
    let mut visits = vec![0u32; nblocks];
    let mut work = vec![0usize];
    let mut fuel = VISIT_FUEL;
    while let Some(b) = work.pop() {
        if fuel == 0 {
            break; // sound: remaining states keep their last (wider) value
        }
        fuel -= 1;
        let mut st = in_states[b].clone().expect("worklist blocks have states");
        let mut cmp_defs: HashMap<u16, Fact> = HashMap::new();
        let instrs = kernel.blocks()[b].instrs();
        for instr in instrs {
            transfer(instr, &mut st, &mut cmp_defs, kernel, know);
        }
        let mut edges: Vec<(usize, Option<Fact>)> = Vec::new();
        match instrs.last() {
            Some(Instr::Jmp { target }) => edges.push((target.0 as usize, None)),
            Some(Instr::Bra {
                cond,
                taken,
                not_taken,
            }) => {
                let fact = match cond {
                    Operand::Reg(VReg(c)) => cmp_defs.get(c).copied(),
                    _ => None,
                };
                edges.push((taken.0 as usize, fact));
                edges.push((
                    not_taken.0 as usize,
                    fact.map(|(op, a, b)| (negate(op), a, b)),
                ));
            }
            _ => {}
        }
        for (succ, fact) in edges {
            let mut out = st.clone();
            if let Some(f) = fact {
                if !refine_edge(&mut out, f, kernel, know) {
                    continue;
                }
            }
            let changed = match &in_states[succ] {
                None => {
                    in_states[succ] = Some(out);
                    true
                }
                Some(old) => {
                    let widen = visits[succ] >= WIDEN_AFTER;
                    let mut merged = State {
                        regs: Vec::with_capacity(old.regs.len()),
                        tid: old.tid.union(&out.tid),
                    };
                    if widen {
                        merged.tid = old.tid.widen(&merged.tid);
                    }
                    for (o, n) in old.regs.iter().zip(out.regs.iter()) {
                        let j = o.join(n);
                        merged.regs.push(if widen { o.widen(&j) } else { j });
                    }
                    if merged != *old {
                        in_states[succ] = Some(merged);
                        true
                    } else {
                        false
                    }
                }
            };
            if changed {
                visits[succ] += 1;
                work.push(succ);
            }
        }
    }
    in_states
}

/// One shared-memory access with its abstract address `k·tid + c`.
#[derive(Debug, Clone, Copy)]
struct SharedAccess {
    site: (BlockId, usize),
    store: bool,
    atomic: bool,
    k: Interval,
    c: Interval,
    tid: Interval,
    width: i128,
}

fn addr_lin(addr: &AddrExpr, st: &State, kernel: &Kernel, know: &LaunchKnowledge) -> Aff {
    match addr {
        AddrExpr::Flat { addr } => eval(*addr, st, kernel, know),
        AddrExpr::BaseOffset { base, offset } => aff_bin(
            BinOp::Add,
            eval(*base, st, kernel, know),
            eval(*offset, st, kernel, know),
        ),
        AddrExpr::BindingTable { .. } => Aff::top(),
    }
}

/// Collects the shared accesses of the epoch starting at `start` (a block
/// index and the instruction index *after* the epoch-opening `Bar`, or
/// `(0, 0)` for kernel entry), scanning each path until the next `Bar`.
fn epoch_accesses(
    start: (usize, usize),
    kernel: &Kernel,
    states: &[Option<State>],
    know: &LaunchKnowledge,
) -> Vec<SharedAccess> {
    let nblocks = kernel.blocks().len();
    let mut accesses = Vec::new();
    let mut visited = vec![false; nblocks];
    // (block, from_index). The opening scan starts mid-block; revisits via
    // back edges start at 0 and use the `visited` set.
    let mut stack = vec![start];
    while let Some((b, from)) = stack.pop() {
        if from == 0 {
            if visited[b] {
                continue;
            }
            visited[b] = true;
        }
        let Some(entry) = &states[b] else { continue };
        let mut st = entry.clone();
        let mut cmp_defs: HashMap<u16, Fact> = HashMap::new();
        let mut stopped = false;
        for (ii, instr) in kernel.blocks()[b].instrs().iter().enumerate() {
            if ii >= from {
                if matches!(instr, Instr::Bar) {
                    stopped = true;
                    break;
                }
                let shared = match instr {
                    Instr::Ld {
                        addr,
                        space: MemSpace::Shared,
                        width,
                        ..
                    } => Some((addr, false, false, width)),
                    Instr::St {
                        addr,
                        space: MemSpace::Shared,
                        width,
                        ..
                    } => Some((addr, true, false, width)),
                    Instr::AtomAdd {
                        addr,
                        space: MemSpace::Shared,
                        width,
                        ..
                    } => Some((addr, true, true, width)),
                    _ => None,
                };
                if let Some((addr, store, atomic, width)) = shared {
                    let lin = addr_lin(addr, &st, kernel, know);
                    // The race eval folds `ctaid` to a uniform interval, so
                    // the block coefficient is always zero; anything else
                    // would be unsolvable and degrades to ⊤ defensively.
                    let (k, c) = if lin.b == Interval::constant(0) {
                        (lin.t, lin.c)
                    } else {
                        (Interval::constant(0), Interval::full())
                    };
                    accesses.push(SharedAccess {
                        site: (BlockId(b as u32), ii),
                        store,
                        atomic,
                        k,
                        c,
                        tid: st.tid,
                        width: width.bytes() as i128,
                    });
                }
            }
            transfer(instr, &mut st, &mut cmp_defs, kernel, know);
        }
        if !stopped {
            // Successor entry states already carry edge-refined tid ranges
            // from the fixpoint, so the walk itself needs no refinement.
            match kernel.blocks()[b].instrs().last() {
                Some(Instr::Jmp { target }) => stack.push((target.0 as usize, 0)),
                Some(Instr::Bra {
                    taken, not_taken, ..
                }) => {
                    stack.push((taken.0 as usize, 0));
                    stack.push((not_taken.0 as usize, 0));
                }
                _ => {}
            }
        }
    }
    accesses
}

fn div_floor(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

fn div_ceil_(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}

/// Is there an integer `Δ ∈ [dmin, dmax] \ {0}` with `lo < k·Δ < hi`
/// (`k > 0`)?
fn window_has_nonzero(k: i128, lo: i128, hi: i128, dmin: i128, dmax: i128) -> bool {
    let wlo = div_floor(lo, k) + 1;
    let whi = div_ceil_(hi, k) - 1;
    let l = wlo.max(dmin);
    let h = whi.min(dmax);
    if l > h {
        return false;
    }
    !(l == 0 && h == 0)
}

fn singleton(i: &Interval) -> Option<i128> {
    (i.lo() == i.hi()).then(|| i.lo())
}

/// `None` = provably disjoint for distinct threads; `Some(reason)` = may
/// race.
fn pair_conflict(a1: &SharedAccess, a2: &SharedAccess, block: u32) -> Option<String> {
    if !(a1.store || a2.store) {
        return None; // load/load
    }
    if a1.atomic && a2.atomic {
        return None; // atomics serialize against each other
    }
    let full = Interval::range(0, i128::from(block) - 1);
    let (Some(r1), Some(r2)) = (a1.tid.intersect(&full), a2.tid.intersect(&full)) else {
        return None; // a guard excludes every thread: unreachable access
    };
    let (Some(k1), Some(c1), Some(k2), Some(c2)) = (
        singleton(&a1.k),
        singleton(&a1.c),
        singleton(&a2.k),
        singleton(&a2.c),
    ) else {
        return Some("address is not provably affine in tid".to_string());
    };
    let (w1, w2) = (a1.width, a2.width);
    if k1 == k2 {
        let e = c2 - c1;
        if k1 == 0 {
            // Both uniform: same address for every thread.
            let overlap = c1 < c2 + w2 && c2 < c1 + w1;
            let two_threads = r1.lo() != r1.hi() || r2.lo() != r2.hi() || r1.lo() != r2.lo();
            return (overlap && two_threads)
                .then(|| format!("threads share the fixed address 0x{:x}", c1.max(c2)));
        }
        // Overlap for Δ = t2 - t1 iff -w1 < kΔ + e < w2, i.e.
        // -w1 - e < kΔ < w2 - e; Δ = 0 is the same thread (no race).
        let (k, lo, hi) = if k1 > 0 {
            (k1, -w1 - e, w2 - e)
        } else {
            // kΔ ∈ (lo, hi) ⟺ (-k)(-Δ) ∈ (lo, hi); mirror Δ's range.
            (-k1, -w1 - e, w2 - e)
        };
        let (dmin, dmax) = if k1 > 0 {
            (r2.lo() - r1.hi(), r2.hi() - r1.lo())
        } else {
            (-(r2.hi() - r1.lo()), -(r2.lo() - r1.hi()))
        };
        return window_has_nonzero(k, lo, hi, dmin, dmax).then(|| {
            format!("stride {k1} cannot separate offsets {c1} and {c2} for width {w1}/{w2}")
        });
    }
    if k1 == 0 || k2 == 0 {
        // One fixed address, one strided: solve for the strided thread.
        let (cf, wf, rf, ks, cs, ws, rs) = if k1 == 0 {
            (c1, w1, &r1, k2, c2, w2, &r2)
        } else {
            (c2, w2, &r2, k1, c1, w1, &r1)
        };
        // Overlap iff cf - cs - ws < ks·t < cf - cs + wf.
        let (k, lo, hi, tmin, tmax) = if ks > 0 {
            (ks, cf - cs - ws, cf - cs + wf, rs.lo(), rs.hi())
        } else {
            (-ks, cf - cs - ws, cf - cs + wf, -rs.hi(), -rs.lo())
        };
        let wlo = div_floor(lo, k) + 1;
        let whi = div_ceil_(hi, k) - 1;
        let l = wlo.max(tmin);
        let h = whi.min(tmax);
        if l > h {
            return None;
        }
        // Some strided thread t hits the fixed address; the fixed access
        // races unless the only such t is also the only fixed-side thread.
        let t = if ks > 0 { l } else { -l };
        let lone_hit = l == h && rf.lo() == rf.hi() && rf.lo() == t;
        return (!lone_hit)
            .then(|| format!("stride-{ks} accesses reach the fixed address 0x{cf:x}"));
    }
    // Different non-zero strides: fall back to whole-range separation.
    let span1 = a1.k.mul(&r1).add(&a1.c);
    let span2 = a2.k.mul(&r2).add(&a2.c);
    let disjoint = span1.hi() + w1 <= span2.lo() || span2.hi() + w2 <= span1.lo();
    (!disjoint).then(|| format!("strides {k1} and {k2} not provably disjoint"))
}

impl Pass for SharedRacePass {
    fn id(&self) -> &'static str {
        "race"
    }

    fn run(&self, ctx: &PassContext<'_>) -> Vec<Diagnostic> {
        let kernel = ctx.kernel;
        if kernel.shared_bytes() == 0 {
            return Vec::new();
        }
        let states = analyze_lin(kernel, ctx.know);
        // Epoch starts: entry, plus the instruction after every Bar.
        let mut starts = vec![(0usize, 0usize)];
        for (bi, blk) in kernel.blocks().iter().enumerate() {
            for (ii, instr) in blk.instrs().iter().enumerate() {
                if matches!(instr, Instr::Bar) {
                    starts.push((bi, ii + 1));
                }
            }
        }
        let mut out: Vec<Diagnostic> = Vec::new();
        let mut reported: Vec<((BlockId, usize), (BlockId, usize))> = Vec::new();
        for start in starts {
            let accesses = epoch_accesses(start, kernel, &states, ctx.know);
            for i in 0..accesses.len() {
                for j in i..accesses.len() {
                    let (a1, a2) = (&accesses[i], &accesses[j]);
                    if i == j && !a1.store {
                        continue;
                    }
                    let pair = (a1.site.min(a2.site), a1.site.max(a2.site));
                    if reported.contains(&pair) {
                        continue;
                    }
                    if let Some(reason) = pair_conflict(a1, a2, ctx.know.block) {
                        reported.push(pair);
                        out.push(Diagnostic {
                            pass: self.id(),
                            severity: Severity::Error,
                            kernel: kernel.name().to_string(),
                            block: Some(a1.site.0),
                            pc: Some(a1.site.1),
                            message: format!(
                                "possible shared-memory race between {}:{} and {}:{} \
                                 in the same barrier epoch: {reason}",
                                a1.site.0, a1.site.1, a2.site.0, a2.site.1
                            ),
                        });
                    }
                }
            }
        }
        out.sort_by_key(|d| (d.block, d.pc));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ArgInfo;
    use gpushield_isa::{Cfg, KernelBuilder, MemWidth};

    fn run_with(kernel: &Kernel, block: u32) -> Vec<Diagnostic> {
        let know = LaunchKnowledge {
            args: kernel
                .params()
                .iter()
                .map(|p| match p.kind() {
                    ParamKind::Buffer { .. } => ArgInfo::Buffer { size: 4096 },
                    ParamKind::Scalar => ArgInfo::Scalar { value: None },
                })
                .collect(),
            local_sizes: vec![],
            block,
            grid: 1,
            heap_size: None,
        };
        let cfg = Cfg::build(kernel);
        let idoms = cfg.immediate_dominators();
        let ipdoms = cfg.immediate_post_dominators();
        SharedRacePass.run(&PassContext {
            kernel,
            know: &know,
            cfg: &cfg,
            idoms: &idoms,
            ipdoms: &ipdoms,
        })
    }

    /// sh[4·tid] = tid; v = sh[4·(tid+1)] — neighbour read without a
    /// barrier: a textbook race.
    fn racy_kernel(with_barrier: bool) -> Kernel {
        let mut b = KernelBuilder::new(if with_barrier { "fixed" } else { "racy" });
        b.shared_mem(33 * 4);
        let t = b.mov(b.thread_id());
        let off = b.shl(t, Operand::Imm(2));
        b.st(MemSpace::Shared, MemWidth::W4, b.flat(off), t);
        if with_barrier {
            b.bar();
        }
        let t1 = b.add(t, Operand::Imm(1));
        let noff = b.shl(t1, Operand::Imm(2));
        let _ = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(noff));
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn neighbour_read_without_barrier_is_flagged() {
        let ds = run_with(&racy_kernel(false), 32);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].severity, Severity::Error);
        assert!(ds[0].message.contains("race"));
    }

    #[test]
    fn barrier_corrected_variant_is_clean() {
        assert!(run_with(&racy_kernel(true), 32).is_empty());
    }

    #[test]
    fn same_stride_stores_are_race_free() {
        let mut b = KernelBuilder::new("k");
        b.shared_mem(32 * 4);
        let t = b.mov(b.thread_id());
        let off = b.shl(t, Operand::Imm(2));
        b.st(MemSpace::Shared, MemWidth::W4, b.flat(off), t);
        b.ret();
        assert!(run_with(&b.finish().unwrap(), 32).is_empty());
    }

    #[test]
    fn all_threads_storing_to_slot_zero_is_flagged() {
        let mut b = KernelBuilder::new("k");
        b.shared_mem(4);
        let t = b.mov(b.thread_id());
        b.st(MemSpace::Shared, MemWidth::W4, b.flat(Operand::Imm(0)), t);
        b.ret();
        let ds = run_with(&b.finish().unwrap(), 32);
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn guarded_single_writer_is_clean() {
        // if (tid == 0) sh[0] = 1 — the guard leaves one feasible thread.
        let mut b = KernelBuilder::new("k");
        b.shared_mem(4);
        let t = b.mov(b.thread_id());
        let is0 = b.eq(t, Operand::Imm(0));
        b.if_then(is0, |b| {
            b.st(
                MemSpace::Shared,
                MemWidth::W4,
                b.flat(Operand::Imm(0)),
                Operand::Imm(1),
            );
        });
        b.ret();
        assert!(run_with(&b.finish().unwrap(), 32).is_empty());
    }

    #[test]
    fn unrolled_tree_reduction_is_proven_race_free() {
        // The registry's reduction shape: guarded strided loads/stores with
        // a barrier between levels.
        let block = 16u32;
        let mut b = KernelBuilder::new("reduce");
        b.shared_mem(u64::from(block) * 4);
        let t = b.mov(b.thread_id());
        let off = b.shl(t, Operand::Imm(2));
        b.st(MemSpace::Shared, MemWidth::W4, b.flat(off), t);
        b.bar();
        let mut s = block / 2;
        while s >= 1 {
            let c = b.lt(t, Operand::Imm(i64::from(s)));
            b.if_then(c, |b| {
                let peer = b.add(t, Operand::Imm(i64::from(s)));
                let poff = b.shl(peer, Operand::Imm(2));
                let pv = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(poff));
                let moff = b.shl(t, Operand::Imm(2));
                let mv = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(moff));
                let sum = b.add(mv, pv);
                b.st(MemSpace::Shared, MemWidth::W4, b.flat(moff), sum);
            });
            b.bar();
            s /= 2;
        }
        b.ret();
        let ds = run_with(&b.finish().unwrap(), block);
        assert!(ds.is_empty(), "false positives: {ds:?}");
    }

    #[test]
    fn missing_level_barrier_in_reduction_is_flagged() {
        let block = 16u32;
        let mut b = KernelBuilder::new("reduce_bad");
        b.shared_mem(u64::from(block) * 4);
        let t = b.mov(b.thread_id());
        let off = b.shl(t, Operand::Imm(2));
        b.st(MemSpace::Shared, MemWidth::W4, b.flat(off), t);
        b.bar();
        // Two tree levels with NO barrier between them: level 2's read of
        // sh[tid+4] races with level 1's write of sh[tid].
        for s in [8i64, 4] {
            let c = b.lt(t, Operand::Imm(s));
            b.if_then(c, |b| {
                let peer = b.add(t, Operand::Imm(s));
                let poff = b.shl(peer, Operand::Imm(2));
                let pv = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(poff));
                let moff = b.shl(t, Operand::Imm(2));
                let mv = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(moff));
                let sum = b.add(mv, pv);
                b.st(MemSpace::Shared, MemWidth::W4, b.flat(moff), sum);
            });
        }
        b.ret();
        let ds = run_with(&b.finish().unwrap(), block);
        assert!(!ds.is_empty(), "the missing barrier must be caught");
    }

    #[test]
    fn atomic_accumulation_is_race_free() {
        let mut b = KernelBuilder::new("k");
        b.shared_mem(4);
        let t = b.mov(b.thread_id());
        let _ = b.atom_add(MemSpace::Shared, MemWidth::W4, b.flat(Operand::Imm(0)), t);
        b.ret();
        assert!(run_with(&b.finish().unwrap(), 32).is_empty());
    }
}
