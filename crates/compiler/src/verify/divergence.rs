//! Barrier divergence: `Bar` under thread-dependent control flow.
//!
//! A workgroup barrier only completes when *every* thread of the workgroup
//! reaches it. If a branch whose condition differs between threads of the
//! same workgroup guards a `Bar`, some threads wait at the barrier while
//! others took the far arm and never arrive — on real GPUs this deadlocks
//! or (worse) silently releases the barrier early, depending on the part.
//!
//! Detection is a forward taint fixpoint: a value is *thread-dependent*
//! (tainted) when it derives from `%tid`/`%laneid`, loaded data, an atomic
//! result, or a `malloc` pointer; parameters, immediates and the workgroup
//! geometry specials are uniform. (`%ctaid` is uniform *within* a
//! workgroup, which is the scope of a barrier.) A branch with a tainted
//! condition diverges; its influence region is every block reachable from
//! its successors strictly before the immediate post-dominator, where the
//! SIMT stack reconverges the warp. Any `Bar` inside such a region is
//! reported as an [`Severity::Error`].
//!
//! Taint only over-approximates (a uniform value may be called tainted,
//! never the reverse), so a silent pass is a proof of barrier convergence
//! under the SIMT reconvergence model.

use super::{Diagnostic, Pass, PassContext, Severity};
use gpushield_isa::{BlockId, Instr, Operand, Special};

/// The barrier-divergence pass (`"divergence"`).
pub struct BarrierDivergencePass;

type RegSet = u128;

fn operand_tainted(op: Operand, taint: RegSet) -> bool {
    match op {
        Operand::Reg(r) => taint & (1u128 << r.0.min(127)) != 0,
        Operand::Special(Special::ThreadId | Special::LaneId) => true,
        Operand::Special(_) | Operand::Imm(_) | Operand::Param(_) | Operand::LocalBase(_) => false,
    }
}

impl Pass for BarrierDivergencePass {
    fn id(&self) -> &'static str {
        "divergence"
    }

    fn run(&self, ctx: &PassContext<'_>) -> Vec<Diagnostic> {
        let kernel = ctx.kernel;
        let nblocks = kernel.blocks().len();

        // Taint fixpoint: IN[b] = ∪ OUT[preds]; monotone increasing.
        let mut in_taint: Vec<RegSet> = vec![0; nblocks];
        let mut work = vec![0usize];
        let mut out_taint = vec![0u128; nblocks];
        while let Some(b) = work.pop() {
            let mut t = in_taint[b];
            for instr in kernel.blocks()[b].instrs() {
                let dst_tainted = match instr {
                    // Loaded data, atomic results and heap pointers differ
                    // per lane regardless of operand taint.
                    Instr::Ld { .. } | Instr::AtomAdd { .. } | Instr::Malloc { .. } => true,
                    _ => instr.sources().iter().any(|op| operand_tainted(*op, t)),
                };
                if let Some(r) = instr.dst() {
                    let bit = 1u128 << r.0.min(127);
                    if dst_tainted {
                        t |= bit;
                    } else {
                        t &= !bit;
                    }
                }
            }
            out_taint[b] = t;
            for s in ctx.cfg.successors(BlockId(b as u32)) {
                let si = s.0 as usize;
                let merged = in_taint[si] | t;
                if merged != in_taint[si] {
                    in_taint[si] = merged;
                    work.push(si);
                }
            }
        }

        // For every tainted branch, scan the region before reconvergence.
        let mut out = Vec::new();
        for (bi, blk) in kernel.blocks().iter().enumerate() {
            let Some(Instr::Bra { cond, .. }) = blk.instrs().last() else {
                continue;
            };
            if !operand_tainted(*cond, out_taint[bi]) {
                continue;
            }
            let stop = ctx.ipdoms[bi];
            let mut visited = vec![false; nblocks];
            let mut stack: Vec<usize> = ctx
                .cfg
                .successors(BlockId(bi as u32))
                .iter()
                .map(|s| s.0 as usize)
                .collect();
            while let Some(r) = stack.pop() {
                if visited[r] || Some(BlockId(r as u32)) == stop {
                    continue;
                }
                visited[r] = true;
                for (ii, instr) in kernel.blocks()[r].instrs().iter().enumerate() {
                    if matches!(instr, Instr::Bar) {
                        out.push(Diagnostic {
                            pass: self.id(),
                            severity: Severity::Error,
                            kernel: kernel.name().to_string(),
                            block: Some(BlockId(r as u32)),
                            pc: Some(ii),
                            message: format!(
                                "barrier reachable under thread-dependent branch at \
                                 bb{bi} before reconvergence — threads that take the \
                                 other arm never arrive"
                            ),
                        });
                    }
                }
                for s in ctx.cfg.successors(BlockId(r as u32)) {
                    stack.push(s.0 as usize);
                }
            }
        }
        // A barrier under two distinct divergent branches is reported once
        // per branch by construction; dedupe identical findings.
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{ArgInfo, LaunchKnowledge};
    use gpushield_isa::{Kernel, KernelBuilder, MemSpace, MemWidth};

    fn run(kernel: &Kernel) -> Vec<Diagnostic> {
        let know = LaunchKnowledge {
            args: vec![ArgInfo::Scalar { value: None }],
            local_sizes: vec![],
            block: 32,
            grid: 1,
            heap_size: None,
        };
        let cfg = gpushield_isa::Cfg::build(kernel);
        let idoms = cfg.immediate_dominators();
        let ipdoms = cfg.immediate_post_dominators();
        BarrierDivergencePass.run(&PassContext {
            kernel,
            know: &know,
            cfg: &cfg,
            idoms: &idoms,
            ipdoms: &ipdoms,
        })
    }

    #[test]
    fn barrier_under_tid_branch_is_flagged() {
        let mut b = KernelBuilder::new("k");
        b.shared_mem(256);
        let t = b.mov(b.thread_id());
        let c = b.lt(t, Operand::Imm(4));
        b.if_then(c, |b| {
            b.bar();
        });
        b.ret();
        let k = b.finish().unwrap();
        let ds = run(&k);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].severity, Severity::Error);
    }

    #[test]
    fn barrier_at_reconvergence_point_is_clean() {
        let mut b = KernelBuilder::new("k");
        b.shared_mem(256);
        let t = b.mov(b.thread_id());
        let c = b.lt(t, Operand::Imm(4));
        b.if_then(c, |b| {
            let _ = b.add(t, Operand::Imm(1));
        });
        b.bar(); // join block — all threads reconverged
        b.ret();
        let k = b.finish().unwrap();
        assert!(run(&k).is_empty());
    }

    #[test]
    fn barrier_under_uniform_branch_is_clean() {
        let mut b = KernelBuilder::new("k");
        b.shared_mem(256);
        let n = b.param_scalar("n");
        let v = b.mov(n);
        let c = b.lt(v, Operand::Imm(4));
        b.if_then(c, |b| {
            b.bar(); // every thread sees the same n: no divergence
        });
        b.ret();
        let k = b.finish().unwrap();
        assert!(run(&k).is_empty());
    }

    #[test]
    fn barrier_under_data_dependent_branch_is_flagged() {
        // The branch condition comes from loaded data — divergent even
        // though %tid never appears.
        let mut b = KernelBuilder::new("k");
        b.shared_mem(256);
        let buf = b.param_buffer("buf", true);
        let v = b.ld(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(buf, Operand::Imm(0)),
        );
        let c = b.lt(v, Operand::Imm(4));
        b.if_then(c, |b| {
            b.bar();
        });
        b.ret();
        let k = b.finish().unwrap();
        assert_eq!(run(&k).len(), 1);
    }

    #[test]
    fn retainting_is_killed_by_uniform_redefinition() {
        let mut b = KernelBuilder::new("k");
        b.shared_mem(256);
        let t = b.mov(b.thread_id());
        b.assign(t, Operand::Imm(3)); // now uniform again
        let c = b.lt(t, Operand::Imm(4));
        b.if_then(c, |b| {
            b.bar();
        });
        b.ret();
        let k = b.finish().unwrap();
        assert!(run(&k).is_empty());
    }
}
