//! Redundant-check reporting: Type 2 sites upgradable to Type 1.
//!
//! The elision analysis itself lives in the bounds analyser
//! ([`crate::analyze`] with [`AnalysisConfig::enable_elision`]): a runtime
//! check is redundant when an identical-region check dominates it on every
//! incoming path with no intervening redefinition of the address
//! registers. This pass only *reports* those sites, so a registry sweep
//! shows where the paper's §5.3 static classification leaves checks on the
//! table. Findings are [`Severity::Info`] — elision is an optimisation
//! opportunity, never a defect — and the elision run here is separate from
//! the manager's breakdown computation, keeping the pass self-contained.

use super::{Diagnostic, Pass, PassContext, Severity};
use crate::bat::{analyze, AnalysisConfig};

/// The redundant-check pass (`"elide"`).
pub struct RedundantCheckPass;

impl Pass for RedundantCheckPass {
    fn id(&self) -> &'static str {
        "elide"
    }

    fn run(&self, ctx: &PassContext<'_>) -> Vec<Diagnostic> {
        let bat = analyze(
            ctx.kernel,
            ctx.know,
            AnalysisConfig {
                enable_elision: true,
                ..AnalysisConfig::default()
            },
        );
        bat.elided_sites
            .iter()
            .map(|&(block, pc)| {
                let region = bat
                    .site_origins
                    .get(&(block, pc))
                    .map(|o| o.to_string())
                    .unwrap_or_else(|| "?".to_string());
                Diagnostic {
                    pass: self.id(),
                    severity: Severity::Info,
                    kernel: ctx.kernel.name().to_string(),
                    block: Some(block),
                    pc: Some(pc),
                    message: format!(
                        "runtime check on {region} is redundant: an identical covering \
                         check dominates every path here; elidable to Type 1"
                    ),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{ArgInfo, LaunchKnowledge};
    use gpushield_isa::{Cfg, KernelBuilder, MemSpace, MemWidth, Operand};

    fn run(kernel: &gpushield_isa::Kernel, know: &LaunchKnowledge) -> Vec<Diagnostic> {
        let cfg = Cfg::build(kernel);
        let idoms = cfg.immediate_dominators();
        let ipdoms = cfg.immediate_post_dominators();
        RedundantCheckPass.run(&PassContext {
            kernel,
            know,
            cfg: &cfg,
            idoms: &idoms,
            ipdoms: &ipdoms,
        })
    }

    #[test]
    fn repeated_unprovable_access_reports_the_dominated_site() {
        // Two loads of buf[tid·4] where tid·4 cannot be proven in bounds
        // (buffer too small): both are Type 2, the second is dominated by
        // the first and reported elidable.
        let mut b = KernelBuilder::new("k");
        let buf = b.param_buffer("buf", false);
        let t = b.global_thread_id();
        let off = b.shl(t, Operand::Imm(2));
        let addr = b.base_offset(buf, off);
        let _ = b.ld(MemSpace::Global, MemWidth::W4, addr);
        let _ = b.ld(MemSpace::Global, MemWidth::W4, addr);
        b.ret();
        let k = b.finish().unwrap();
        let know = LaunchKnowledge {
            args: vec![ArgInfo::Buffer { size: 16 }],
            local_sizes: vec![],
            block: 32,
            grid: 4,
            heap_size: None,
        };
        let ds = run(&k, &know);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].severity, Severity::Info);
        assert!(ds[0].message.contains("arg0"));
    }

    #[test]
    fn provable_kernel_reports_nothing() {
        let mut b = KernelBuilder::new("k");
        let buf = b.param_buffer("buf", false);
        let t = b.global_thread_id();
        let off = b.shl(t, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(buf, off), t);
        b.ret();
        let k = b.finish().unwrap();
        let know = LaunchKnowledge {
            args: vec![ArgInfo::Buffer { size: 128 * 4 }],
            local_sizes: vec![],
            block: 32,
            grid: 4,
            heap_size: None,
        };
        assert!(run(&k, &know).is_empty());
    }
}
